//! Fault-injection and recovery tests: for each fault class, corrupt live
//! Vantage state mid-run and prove that (a) the cache keeps serving accesses
//! without panicking, (b) a scrub pass restores every accounting invariant,
//! and (c) partition sizes re-converge to their targets within a bounded
//! number of accesses, with bounded interference on healthy partitions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage::fault::{Fault, FaultKind, FaultPlan};
use vantage::{VantageConfig, VantageLlc};
use vantage_cache::{CacheArray, LineAddr, ZArray};
use vantage_partitioning::{AccessRequest, Llc, PartitionId};

fn z52(frames: usize) -> Box<dyn CacheArray> {
    Box::new(ZArray::new(frames, 4, 52, 0xFA17))
}

fn default_llc(frames: usize, partitions: usize) -> VantageLlc {
    VantageLlc::try_new(z52(frames), partitions, VantageConfig::default(), 3)
        .expect("valid Vantage config")
}

/// Drives `n` uniform random accesses over `working_set` lines of `part`'s
/// address space.
fn drive(llc: &mut VantageLlc, part: usize, working_set: u64, n: u64, rng: &mut SmallRng) {
    let base = (part as u64 + 1) << 40;
    for _ in 0..n {
        llc.access(AccessRequest::read(
            PartitionId::from_index(part),
            LineAddr(base + rng.gen_range(0..working_set)),
        ));
    }
}

/// Warms a 2-partition cache into steady state with both partitions
/// churning, then asserts the invariants hold — the healthy baseline every
/// fault test perturbs.
fn warmed(frames: usize, targets: &[u64]) -> (VantageLlc, SmallRng) {
    let mut llc = default_llc(frames, targets.len());
    llc.set_targets(targets);
    let mut rng = SmallRng::seed_from_u64(17);
    for _ in 0..20 {
        for p in 0..targets.len() {
            drive(&mut llc, p, 100_000, 4_000, &mut rng);
        }
    }
    llc.invariants().expect("invariants hold");
    (llc, rng)
}

/// After a fault + scrub, both partitions must re-converge to within the
/// feedback slack (plus drift margin) of their scaled targets inside
/// `accesses` further accesses.
fn assert_reconverged(llc: &mut VantageLlc, rng: &mut SmallRng, accesses: u64) {
    let parts = llc.num_partitions();
    for _ in 0..(accesses / (1_000 * parts as u64)).max(1) {
        for p in 0..parts {
            drive(llc, p, 100_000, 1_000, rng);
        }
    }
    llc.invariants().expect("invariants hold");
    for p in 0..parts {
        let t = llc.partition_target(PartitionId::from_index(p)) as f64;
        let s = llc.partition_size(PartitionId::from_index(p)) as f64;
        assert!(
            s >= t * 0.85 && s <= t * 1.25,
            "partition {p} failed to re-converge: size {s} vs target {t}"
        );
    }
}

#[test]
fn tag_pid_corruption_is_tolerated_and_scrubbed() {
    let (mut llc, mut rng) = warmed(4096, &[3072, 1024]);
    // Flip high PID bits on many lines: most become out-of-range tags.
    for i in 0..64u64 {
        llc.inject(&Fault::TagPartFlip {
            frame_sel: i * 61,
            bit: 15,
        });
    }
    // The cache must keep serving accesses (adoption + preferred-eviction
    // fallbacks) without panicking, even before any scrub runs.
    drive(&mut llc, 0, 100_000, 5_000, &mut rng);
    drive(&mut llc, 1, 100_000, 5_000, &mut rng);
    // Registers have drifted; scrub repairs everything in one pass.
    let report = llc.scrub();
    assert!(report.repaired_tags <= 64, "more repairs than injections");
    assert!(
        report.size_corrections > 0,
        "PID flips must desync size registers"
    );
    llc.invariants().expect("invariants hold");
    assert_reconverged(&mut llc, &mut rng, 40_000);
}

#[test]
fn tag_ts_corruption_recovers() {
    let (mut llc, mut rng) = warmed(4096, &[2048, 2048]);
    for i in 0..128u64 {
        llc.inject(&Fault::TagTsFlip {
            frame_sel: i * 37,
            bit: (i % 8) as u8,
        });
    }
    // Timestamp flips only mis-age lines: accesses must proceed, and sizes
    // are still exactly accounted (no scrub needed for the registers).
    drive(&mut llc, 0, 100_000, 5_000, &mut rng);
    drive(&mut llc, 1, 100_000, 5_000, &mut rng);
    llc.invariants().expect("invariants hold");
    assert_reconverged(&mut llc, &mut rng, 20_000);
}

#[test]
fn actual_size_register_corruption_recovers_via_scrub() {
    let (mut llc, mut rng) = warmed(4096, &[3072, 1024]);
    let before = llc.partition_size(PartitionId::from_index(0));
    // Stuck high bit: the register reads ~512K lines; the feedback loop
    // sees a huge overshoot and demotes aggressively.
    llc.inject(&Fault::ActualSizeCorrupt {
        part_sel: 0,
        bit: 19,
    });
    assert!(
        llc.partition_size(PartitionId::from_index(0)) > before,
        "corruption must be visible"
    );
    drive(&mut llc, 0, 100_000, 2_000, &mut rng);
    let report = llc.scrub();
    assert!(
        report.size_corrections > 0,
        "scrub must rewrite the register"
    );
    llc.invariants().expect("invariants hold");
    // The register now matches the array again and sizes re-converge.
    assert_reconverged(&mut llc, &mut rng, 60_000);
}

#[test]
fn wedged_setpoint_is_recentered() {
    let (mut llc, mut rng) = warmed(4096, &[2048, 2048]);
    // Wedge partition 0's keep window fully open (demote nothing): its
    // setpoint equals the current timestamp minus 255.
    llc.inject(&Fault::SetpointCorrupt {
        part_sel: 0,
        value: 1,
    });
    drive(&mut llc, 0, 100_000, 1_000, &mut rng);
    llc.scrub();
    // Either the window was wedged at an extreme (recentered), or feedback
    // already pulled it back — in both cases invariants hold afterwards.
    llc.invariants().expect("invariants hold");
    assert_reconverged(&mut llc, &mut rng, 60_000);
    // Re-centering must be idempotent: a second scrub finds nothing.
    let again = llc.scrub();
    assert_eq!(again.setpoints_recentered, 0, "second scrub re-recentered");
}

#[test]
fn corrupted_meters_are_reset() {
    let (mut llc, mut rng) = warmed(2048, &[1024, 1024]);
    llc.inject(&Fault::MeterCorrupt {
        part_sel: 1,
        seen: 40_000,
        demoted: 65_000,
    });
    assert!(llc.invariants().is_err(), "corrupt meters must be detected");
    let report = llc.scrub();
    assert!(report.meters_reset >= 1);
    llc.invariants().expect("invariants hold");
    drive(&mut llc, 1, 100_000, 5_000, &mut rng);
    llc.invariants().expect("invariants hold");
}

#[test]
fn churn_burst_interference_is_bounded() {
    // The workload-level fault: a quiet partition holds its working set
    // while the other partition takes an adversarial streaming burst.
    let (mut llc, mut rng) = warmed(4096, &[2048, 2048]);
    drive(&mut llc, 0, 1_500, 40_000, &mut rng); // partition 0 settles
    let resident = llc.partition_size(PartitionId::from_index(0));
    let mut plan = FaultPlan::new(5, 2_000, &[FaultKind::ChurnBurst]);
    let mut burst_accesses = 0u64;
    let mut next_addr = 0u64;
    for step in 0..100_000u64 {
        if let Some(Fault::ChurnBurst { accesses, .. }) = plan.poll(step) {
            for _ in 0..accesses.min(2_000) {
                llc.access(AccessRequest::read(
                    PartitionId::from_index(1),
                    LineAddr((7u64 << 40) + next_addr),
                ));
                next_addr += 1;
                burst_accesses += 1;
            }
        }
    }
    assert!(
        burst_accesses > 50_000,
        "bursts too small to stress anything"
    );
    llc.invariants().expect("invariants hold");
    // Inject() must report churn bursts as not-applicable.
    assert!(!llc.inject(&Fault::ChurnBurst {
        part_sel: 0,
        accesses: 10
    }));
    // The quiet partition loses lines only to (rare) forced managed
    // evictions: bounded victim interference.
    let after = llc.partition_size(PartitionId::from_index(0));
    assert!(
        after as f64 > resident as f64 * 0.95,
        "churn bursts displaced {} of {} quiet lines",
        resident - after,
        resident
    );
}

#[test]
fn continuous_fault_storm_with_periodic_scrub_survives() {
    // The full harness loop: every fault class fires continuously while an
    // automatic scrubber runs; the cache must never panic, and at the end
    // one scrub restores a state that passes every invariant.
    let (mut llc, mut rng) = warmed(4096, &[3072, 1024]);
    llc.set_scrub_period(Some(5_000));
    let mut plan = FaultPlan::new(0xBAD5EED, 500, &FaultKind::INJECTABLE);
    let mut injected = 0u64;
    for step in 0..60u64 {
        for p in 0..2 {
            drive(&mut llc, p, 100_000, 1_000, &mut rng);
        }
        if let Some(fault) = plan.poll(step * 2_000) {
            if llc.inject(&fault) {
                injected += 1;
            }
        }
    }
    assert!(injected > 20, "storm injected too few faults ({injected})");
    assert!(llc.vantage_stats().scrubs > 10, "auto-scrub never engaged");
    llc.scrub();
    llc.invariants().expect("invariants hold");
    // Even under a continuous storm the controller stays in the vicinity
    // of its targets (the storm corrupts state strictly slower than the
    // scrubber repairs it).
    for p in 0..2 {
        let t = llc.partition_target(PartitionId::from_index(p)) as f64;
        let s = llc.partition_size(PartitionId::from_index(p)) as f64;
        assert!(
            s > t * 0.5 && s < t * 1.6,
            "partition {p} lost control: {s} vs {t}"
        );
    }
}

#[test]
fn fault_log_records_every_injection() {
    let mut plan = FaultPlan::new(99, 250, &FaultKind::ALL);
    let mut llc = default_llc(1024, 2);
    let mut rng = SmallRng::seed_from_u64(1);
    drive(&mut llc, 0, 5_000, 2_000, &mut rng);
    let mut emitted = 0;
    for acc in (0..5_000u64).step_by(50) {
        if let Some(f) = plan.poll(acc) {
            llc.inject(&f);
            emitted += 1;
        }
    }
    assert_eq!(plan.log().len(), emitted);
    assert!(emitted >= 19, "expected ~20 faults, got {emitted}");
}
