//! Equivalence tests for the pluggable allocation-policy layer.
//!
//! The tentpole refactor moved UCP out of `CmpSim` and behind the
//! `AllocationPolicy` trait; these tests pin golden values captured from
//! the pre-refactor simulator (where UCP was hard-wired into
//! `CmpSim::new`/`repartition`) and assert the trait path reproduces them
//! **bit-for-bit** — miss counts, IPC bit patterns, and an FNV-1a digest
//! of every trace sample. They also drive each alternative policy end to
//! end with telemetry attached.

use vantage_repro::sim::{CmpSim, PolicyKind, SchemeKind, SimResult, SystemConfig};
use vantage_repro::telemetry::{RingSink, Telemetry};
use vantage_repro::workloads::mixes;

/// The machine the goldens were captured on: small-scale, shortened run.
fn golden_sys() -> SystemConfig {
    let mut sys = SystemConfig::small_scale();
    sys.instructions = 300_000;
    sys.repartition_interval = 50_000;
    sys
}

/// FNV-1a over every trace sample's targets, actuals and cycle — any
/// reordering or perturbation of the repartitioning schedule changes it.
fn trace_digest(r: &SimResult) -> u64 {
    let mut d: u64 = 0xcbf2_9ce4_8422_2325;
    for s in &r.trace {
        for &v in s.targets.iter().chain(s.actuals.iter()).chain([&s.cycle]) {
            d ^= v;
            d = d.wrapping_mul(0x0100_0000_01b3);
        }
    }
    d
}

struct Golden {
    mix: usize,
    kind: SchemeKind,
    misses: [u64; 4],
    ipc_bits: [u64; 4],
    trace_len: usize,
    trace_digest: u64,
}

/// Golden values captured from the pre-refactor simulator (UCP hard-wired
/// into `CmpSim`, commit e46cf16) on `mixes(4, 1, 11)` with the machine
/// from [`golden_sys`] and a 60 000-cycle trace interval.
#[test]
fn ucp_via_trait_is_bit_identical_to_prerefactor() {
    let goldens = [
        Golden {
            mix: 17,
            kind: SchemeKind::vantage_paper(),
            misses: [11342, 9855, 9024, 1469],
            ipc_bits: [
                4592842332003511917,
                4593819492146314407,
                4594211833307959624,
                4602323833278804831,
            ],
            trace_len: 44,
            trace_digest: 0x5d53ac05aedd9dc9,
        },
        Golden {
            mix: 8,
            kind: SchemeKind::vantage_paper(),
            misses: [19695, 15430, 9877, 1094],
            ipc_bits: [
                4589522280749376594,
                4590823856217834203,
                4593862152800600933,
                4603115977430315138,
            ],
            trace_len: 74,
            trace_digest: 0x91d4e9ab1c6fc478,
        },
        Golden {
            mix: 17,
            kind: SchemeKind::WayPart,
            misses: [11368, 9933, 9068, 1469],
            ipc_bits: [
                4592829756755653490,
                4593790986840461062,
                4594193015516276862,
                4602323971801321564,
            ],
            trace_len: 44,
            trace_digest: 0xbfcef3eb09c4b2ac,
        },
        Golden {
            mix: 8,
            kind: SchemeKind::Pipp,
            misses: [19672, 15439, 9877, 1094],
            ipc_bits: [
                4589528837387654270,
                4590824725072776549,
                4593862152800600933,
                4603115977430315138,
            ],
            trace_len: 74,
            trace_digest: 0x4bf32cfae69028b2,
        },
    ];
    let all = mixes(4, 1, 11);
    for g in &goldens {
        let mix = &all[g.mix];
        let mut sim = CmpSim::new(golden_sys(), &g.kind, mix);
        sim.enable_trace(60_000);
        let r = sim.run();
        let ctx = format!("mix {} under {}", mix.name, r.label);
        assert_eq!(r.l2_misses, g.misses, "misses diverged: {ctx}");
        let bits: Vec<u64> = r.ipc.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, g.ipc_bits, "IPC bit patterns diverged: {ctx}");
        assert_eq!(r.trace.len(), g.trace_len, "trace length diverged: {ctx}");
        assert_eq!(
            trace_digest(&r),
            g.trace_digest,
            "trace digest diverged: {ctx}"
        );
    }
}

/// Explicitly requesting the default policy must be a no-op: same label,
/// same results as leaving `SystemConfig::policy` untouched.
#[test]
fn explicit_ucp_policy_matches_default() {
    let mix = &mixes(4, 1, 11)[17];
    let a = CmpSim::new(golden_sys(), &SchemeKind::vantage_paper(), mix).run();
    let mut sys = golden_sys();
    sys.policy = PolicyKind::Ucp;
    let b = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix).run();
    assert_eq!(a.label, b.label);
    assert_eq!(a.l2_misses, b.l2_misses);
    assert_eq!(a.ipc, b.ipc);
}

/// Every policy runs end to end on a UCP-managed scheme with telemetry
/// flowing, produces sane IPCs, and tags its label so artifacts from
/// different policies cannot be confused.
#[test]
fn every_policy_runs_end_to_end_with_telemetry() {
    let mix = &mixes(4, 1, 11)[8];
    let mut labels = Vec::new();
    for kind in PolicyKind::ALL {
        let mut sys = golden_sys();
        sys.policy = kind;
        let mut sim = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix);
        let (sink, reader) = RingSink::with_capacity(1 << 16);
        assert!(sim.set_telemetry(Telemetry::new(Box::new(sink), 1024)));
        let r = sim.run();
        sim.take_telemetry();
        assert_eq!(r.ipc.len(), 4, "{}", r.label);
        assert!(
            r.ipc.iter().all(|&i| i > 0.0 && i <= 1.0),
            "{}: IPCs {:?}",
            r.label,
            r.ipc
        );
        assert!(
            !reader.records().is_empty(),
            "{}: telemetry captured nothing",
            r.label
        );
        if kind != PolicyKind::Ucp {
            assert!(
                r.label.ends_with(&format!("+{}", kind.label())),
                "{}: label must carry the policy tag",
                r.label
            );
        }
        labels.push(r.label);
    }
    labels.sort();
    labels.dedup();
    assert_eq!(labels.len(), PolicyKind::ALL.len(), "labels collide");
}

/// The same non-default policy run twice is deterministic (the policy layer
/// introduced no hidden global state).
#[test]
fn alternative_policies_are_deterministic() {
    let mix = &mixes(4, 1, 11)[8];
    for kind in [PolicyKind::Equal, PolicyKind::MissRatio, PolicyKind::Qos] {
        let mut sys = golden_sys();
        sys.policy = kind;
        let a = CmpSim::new(sys.clone(), &SchemeKind::vantage_paper(), mix).run();
        let b = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix).run();
        assert_eq!(a.l2_misses, b.l2_misses, "{}", a.label);
        assert_eq!(a.ipc, b.ipc, "{}", a.label);
    }
}

/// Policies must actually steer the cache: equal-shares allocates
/// differently from UCP's lookahead on a heterogeneous mix, so the runs
/// diverge (if they did not, the policy knob would be dead).
#[test]
fn policies_change_behavior() {
    let mix = &mixes(4, 1, 11)[8];
    let ucp = CmpSim::new(golden_sys(), &SchemeKind::vantage_paper(), mix).run();
    let mut sys = golden_sys();
    sys.policy = PolicyKind::Equal;
    let eq = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix).run();
    assert_ne!(
        ucp.l2_misses, eq.l2_misses,
        "equal-shares should allocate differently from lookahead"
    );
}

/// The invariant-checking path recovers (scrub + count) instead of
/// panicking, and a clean run reports zero recoveries.
#[test]
fn invariant_checking_recovers_instead_of_panicking() {
    let mix = &mixes(4, 1, 11)[17];
    let mut sys = golden_sys();
    sys.check_invariants = true;
    let r = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix)
        .try_run()
        .expect("clean run passes invariant checks");
    assert_eq!(r.invariant_recoveries, 0);
}

/// Order-independent multiset digest of a telemetry capture: each record's
/// CSV rendering is FNV-1a hashed and the per-record hashes are summed
/// (wrapping), so any added, dropped or altered record changes the digest
/// while buffering-order differences do not.
fn telemetry_multiset(records: &[vantage_repro::telemetry::TelemetryRecord]) -> (usize, u64) {
    use vantage_repro::telemetry::to_csv_row;
    let mut sum = 0u64;
    for rec in records {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in to_csv_row(rec).bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        sum = sum.wrapping_add(h);
    }
    (records.len(), sum)
}

/// Telemetry multiset goldens for the three partitioning schemes: the
/// event stream a golden run emits is pinned as a record count plus an
/// order-independent digest, so a scheme change that perturbs *any*
/// demotion, eviction, aperture or sampling event is caught even when the
/// miss counts happen to survive.
#[test]
fn telemetry_multisets_match_goldens() {
    let goldens: [(usize, SchemeKind, usize, u64); 3] = [
        (17, SchemeKind::vantage_paper(), 17503, 0x05ff6c7d0cdf8a92),
        (17, SchemeKind::WayPart, 9620, 0x65499eed1a897c9a),
        (8, SchemeKind::Pipp, 26992, 0x2bd91184af36001e),
    ];
    let all = mixes(4, 1, 11);
    for (mix_idx, kind, want_len, want_digest) in goldens {
        let mix = &all[mix_idx];
        let mut sim = CmpSim::new(golden_sys(), &kind, mix);
        let (sink, reader) = RingSink::with_capacity(1 << 18);
        assert!(sim.set_telemetry(Telemetry::new(Box::new(sink), 1024)));
        let r = sim.run();
        sim.take_telemetry();
        let (len, digest) = telemetry_multiset(&reader.records());
        let ctx = format!("mix {} under {}", mix.name, r.label);
        assert_eq!(len, want_len, "telemetry record count diverged: {ctx}");
        assert_eq!(
            digest, want_digest,
            "telemetry multiset digest diverged: {ctx} (len {len}, digest {digest:#018x})"
        );
    }
}

/// A v1 (array-of-structs era) checkpoint must restore into the current
/// snapshot layer and continue bit-identically. The formats share their
/// payload encoding — the SoA lanes serialize exactly where the AoS
/// fields did, and the v3 lifecycle tail is appended after everything a
/// v1/v2 reader consumes — so the differences are the header version, the
/// v1 convention of leaving never-filled frames tagged owner 0 (restore
/// normalizes those to the sentinel), and the tail (whose absence restore
/// tolerates; presence is harmless to the fixture). A version-patched
/// image is therefore a faithful v1 fixture, exercised at an early split
/// (array partially filled, so the normalization path runs) and a late
/// one (array full).
#[test]
fn v1_checkpoint_restores_into_v2_with_identical_digests() {
    use vantage_repro::snapshot::SnapshotReader;
    let mix = &mixes(4, 1, 11)[17];
    for kind in [
        SchemeKind::vantage_paper(),
        SchemeKind::WayPart,
        SchemeKind::Pipp,
    ] {
        let build = || {
            let mut s = CmpSim::new(golden_sys(), &kind, mix);
            s.enable_trace(60_000);
            s
        };
        let mut straight = build();
        let want = straight.run();
        let total = straight.steps();
        for split in [total / 20, total * 3 / 4] {
            let mut warm = build();
            assert!(warm.run_for(split).is_none(), "paused before completion");
            let v2 = warm.write_checkpoint().to_bytes();
            assert_eq!(&v2[8..12], &5u32.to_le_bytes(), "checkpoints write v5");
            let mut v1 = v2.clone();
            v1[8..12].copy_from_slice(&1u32.to_le_bytes());
            let reader = SnapshotReader::from_bytes(&v1).expect("v1 image parses");
            assert_eq!(reader.version(), 1);
            let mut resumed = build();
            resumed.restore_checkpoint(&reader).expect("v1 restores");
            let got = resumed.run();
            let ctx = format!("{} @ {split}", got.label);
            assert_eq!(want.l2_misses, got.l2_misses, "misses diverged: {ctx}");
            let (wb, gb): (Vec<u64>, Vec<u64>) = (
                want.ipc.iter().map(|x| x.to_bits()).collect(),
                got.ipc.iter().map(|x| x.to_bits()).collect(),
            );
            assert_eq!(wb, gb, "IPC bit patterns diverged: {ctx}");
            assert_eq!(
                trace_digest(&want),
                trace_digest(&got),
                "trace digests diverged: {ctx}"
            );
        }
    }
}
