//! Model-vs-measurement consistency: the analytical guarantees of §3/§4
//! checked against the actual implementation, end to end.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_repro::cache::ZArray;
use vantage_repro::core::model::sizing;
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{AccessRequest, Llc, PartitionId};

fn churn(llc: &mut VantageLlc, parts: usize, accesses: u64, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..accesses {
        let p = (i % parts as u64) as usize;
        let base = (p as u64 + 1) << 40;
        llc.access(AccessRequest::read(
            PartitionId::from_index(p),
            (base + rng.gen_range(0..100_000u64)).into(),
        ));
    }
}

#[test]
fn managed_eviction_fraction_tracks_unmanaged_sizing() {
    // Growing u must reduce forced managed evictions by orders of
    // magnitude, staying in the neighborhood of the model's worst case.
    let mut fractions = Vec::new();
    for u in [0.05, 0.15, 0.25] {
        let cfg = VantageConfig {
            unmanaged_fraction: u,
            ..VantageConfig::default()
        };
        let mut llc = VantageLlc::try_new(Box::new(ZArray::new(8 * 1024, 4, 52, 1)), 4, cfg, 1)
            .expect("valid Vantage config");
        llc.set_targets(&[2048; 4]);
        churn(&mut llc, 4, 1_500_000, 42);
        // Skip warmup effects: drain the counters and measure a
        // steady-state window.
        llc.take_vantage_stats();
        churn(&mut llc, 4, 1_500_000, 43);
        fractions.push(llc.vantage_stats().managed_eviction_fraction());
    }
    assert!(
        fractions[0] > fractions[1] && fractions[1] >= fractions[2],
        "managed evictions must fall with u: {fractions:?}"
    );
    // u = 25%: the model's worst case is ~1e-4; steady state must be tiny.
    let model = sizing::worst_case_pev(0.25, 52, 0.5, 0.1);
    assert!(
        fractions[2] <= model * 50.0 + 1e-4,
        "u=25%: measured {} vs model worst-case {model}",
        fractions[2]
    );
}

#[test]
fn feedback_outgrowth_respects_eq9() {
    // In steady state, aggregate outgrowth beyond targets is bounded by
    // slack/(A_max·R) of the cache (Eq. 9) plus MSS borrowing (Eq. 6).
    let cfg = VantageConfig::default();
    let cap = 8 * 1024u64;
    let mut llc = VantageLlc::try_new(Box::new(ZArray::new(cap as usize, 4, 52, 2)), 4, cfg, 1)
        .expect("valid Vantage config");
    llc.set_targets(&[cap / 4; 4]);
    churn(&mut llc, 4, 3_000_000, 7);
    llc.invariants().expect("invariants hold");
    let outgrowth: f64 = (0..4)
        .map(|p| {
            (llc.partition_size(PartitionId::from_index(p)) as f64
                - llc.partition_target(PartitionId::from_index(p)) as f64)
                .max(0.0)
        })
        .sum();
    let bound = (sizing::feedback_outgrowth(0.1, 0.5, 52) + sizing::total_borrowed_approx(0.5, 52))
        * cap as f64;
    assert!(
        outgrowth <= bound * 1.5,
        "aggregate outgrowth {outgrowth} lines exceeds model bound {bound}"
    );
}

#[test]
fn minimum_stable_size_bounded_by_eq5() {
    // One partition with target ~0 and all the churn: it must stabilize at
    // most around MSS = ΣS/(A_max·R·m) lines (Eq. 5 with C_j/ΣC = 1).
    let cap = 8 * 1024u64;
    let cfg = VantageConfig::default();
    let mut llc = VantageLlc::try_new(Box::new(ZArray::new(cap as usize, 4, 52, 3)), 2, cfg, 1)
        .expect("valid Vantage config");
    llc.set_targets(&[16, cap - 16]);
    // Partition 1 fills once and goes quiet; partition 0 churns forever.
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..40_000 {
        llc.access(AccessRequest::read(
            PartitionId::from_index(1),
            ((2u64 << 40) + rng.gen_range(0..7_000u64)).into(),
        ));
    }
    for i in 0..1_500_000u64 {
        llc.access(AccessRequest::read(
            PartitionId::from_index(0),
            ((1u64 << 40) + i).into(),
        ));
    }
    llc.invariants().expect("invariants hold");
    let mss_lines = cap as f64 / (0.5 * 52.0); // ≈ 1/(A_max·R) of the cache
    let s0 = llc.partition_size(PartitionId::from_index(0)) as f64;
    assert!(
        s0 <= mss_lines * 1.6,
        "high-churn tiny partition at {s0} lines, MSS bound {mss_lines}"
    );
}

#[test]
fn unmanaged_region_absorbs_borrowing_without_interference() {
    // Two partitions: one outgrows its target (high churn), borrowing from
    // the unmanaged region; the quiet partner's size must be untouched.
    let cap = 8 * 1024u64;
    let cfg = VantageConfig {
        unmanaged_fraction: 0.15,
        ..VantageConfig::default()
    };
    let mut llc = VantageLlc::try_new(Box::new(ZArray::new(cap as usize, 4, 52, 4)), 2, cfg, 1)
        .expect("valid Vantage config");
    llc.set_targets(&[cap / 2, cap / 2]);
    let mut rng = SmallRng::seed_from_u64(13);
    // Quiet partner loads a set well under its target.
    for _ in 0..60_000 {
        llc.access(AccessRequest::read(
            PartitionId::from_index(1),
            ((2u64 << 40) + rng.gen_range(0..3_000u64)).into(),
        ));
    }
    let quiet_before = llc.partition_size(PartitionId::from_index(1));
    for i in 0..1_200_000u64 {
        llc.access(AccessRequest::read(
            PartitionId::from_index(0),
            ((1u64 << 40) + i).into(),
        ));
    }
    let quiet_after = llc.partition_size(PartitionId::from_index(1));
    assert!(
        quiet_after as f64 >= quiet_before as f64 * 0.98,
        "borrowing dented the quiet partner: {quiet_before} -> {quiet_after}"
    );
}
