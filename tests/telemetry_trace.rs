//! Integration tests for the telemetry layer: partition dynamics must be
//! observable through a sink and show the controller converging after a
//! target flip, and file sinks must produce parseable traces.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_repro::cache::{LineAddr, SetAssocArray, ZArray};
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{AccessRequest, BaselineLlc, Llc, PartitionId, RankPolicy};
use vantage_repro::telemetry::{
    from_csv_row, from_json_line, CsvSink, JsonSink, RingSink, Telemetry, TelemetryRecord,
    CSV_HEADER, UNMANAGED_PART,
};

/// Uniform random traffic over two partitions with 6000-line working sets
/// (the cache holds 8192 lines, so both partitions stay demand-unlimited).
fn drive(llc: &mut VantageLlc, accesses: u64, rng: &mut SmallRng) {
    for _ in 0..accesses {
        let p = (rng.gen::<u32>() % 2) as usize;
        let base = ((p as u64) + 1) << 40;
        llc.access(AccessRequest::read(
            PartitionId::from_index(p),
            LineAddr(base + rng.gen_range(0..6000u64)),
        ));
    }
}

/// The telemetry stream must show partition sizes and apertures re-converging
/// after the targets flip: the shrunk partition demotes its overshoot away
/// and the grown partition fills toward its new target.
#[test]
fn sizes_and_apertures_converge_after_a_target_flip() {
    let mut llc = VantageLlc::try_new(
        Box::new(ZArray::new(8 * 1024, 4, 52, 3)),
        2,
        VantageConfig::default(),
        3,
    )
    .expect("valid Vantage config");
    let (sink, reader) = RingSink::with_capacity(1 << 16);
    assert!(llc.set_telemetry(Telemetry::new(Box::new(sink), 1024)));

    let mut rng = SmallRng::seed_from_u64(77);
    llc.set_targets(&[5000, 2000]);
    drive(&mut llc, 600_000, &mut rng);
    // Flip: partition 0 must shrink toward 2000, partition 1 grow to 5000.
    llc.set_targets(&[2000, 5000]);
    drive(&mut llc, 600_000, &mut rng);
    llc.take_telemetry();

    let records = reader.records();
    assert!(!records.is_empty(), "ring captured nothing");

    // Record accesses are non-decreasing within the retained window.
    let mut last = 0;
    for r in &records {
        assert!(r.access() >= last, "out-of-order record at {}", r.access());
        last = r.access();
    }

    // The latest sample per partition reflects the post-flip targets and a
    // converged actual size (within enforcement slack of the target).
    let latest = |part: u16| {
        let part = vantage_telemetry::PartitionId::from_raw(part);
        records
            .iter()
            .filter_map(|r| match r {
                TelemetryRecord::Sample(s) if s.part == part => Some(s),
                _ => None,
            })
            .next_back()
            .unwrap_or_else(|| panic!("no samples for partition {part}"))
    };
    let s0 = latest(0);
    let s1 = latest(1);
    // Targets are scaled into the managed region (a 5% unmanaged fraction
    // by default), so the samples carry ~95% of the requested sizes.
    assert!(
        s0.target >= 1800 && s0.target <= 2000,
        "sample must carry the post-flip target: {}",
        s0.target
    );
    assert!(
        s1.target >= 4500 && s1.target <= 5000,
        "sample must carry the post-flip target: {}",
        s1.target
    );
    assert!(
        s0.actual < 3000,
        "partition 0 did not shrink: {} lines",
        s0.actual
    );
    assert!(
        s1.actual > 4000,
        "partition 1 did not grow: {} lines",
        s1.actual
    );

    // The unmanaged region is sampled alongside the partitions.
    let um = records.iter().any(
        |r| matches!(r, TelemetryRecord::Sample(s) if s.part == UNMANAGED_PART && s.actual > 0),
    );
    assert!(um, "no unmanaged-region samples");

    // The feedback loop is visible: demotions and aperture updates flow
    // throughout the retained (post-flip) window.
    let demotions = records
        .iter()
        .filter(|r| matches!(r, TelemetryRecord::Event(e) if matches!(e, vantage_repro::telemetry::TelemetryEvent::Demotion { .. })))
        .count();
    let apertures = records
        .iter()
        .filter(|r| matches!(r, TelemetryRecord::Event(e) if matches!(e, vantage_repro::telemetry::TelemetryEvent::ApertureUpdate { .. })))
        .count();
    assert!(demotions > 0, "no demotion events");
    assert!(apertures > 0, "no aperture updates");
}

/// A JSON Lines trace written by a Vantage cache must parse line-by-line
/// back into records, with both samples and events present.
#[test]
fn json_trace_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join(format!("vantage-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");

    let mut llc = VantageLlc::try_new(
        Box::new(ZArray::new(4 * 1024, 4, 52, 9)),
        2,
        VantageConfig::default(),
        9,
    )
    .expect("valid Vantage config");
    let sink = JsonSink::create(&path).unwrap();
    assert!(llc.set_telemetry(Telemetry::new(Box::new(sink), 512)));
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..60_000u64 {
        let p = (rng.gen::<u32>() % 2) as usize;
        let base = ((p as u64) + 1) << 40;
        llc.access(AccessRequest::read(
            PartitionId::from_index(p),
            LineAddr(base + rng.gen_range(0..3000u64)),
        ));
    }
    llc.take_telemetry(); // drop flushes the file

    let body = std::fs::read_to_string(&path).unwrap();
    let mut samples = 0;
    let mut events = 0;
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        match from_json_line(line) {
            Some(TelemetryRecord::Sample(_)) => samples += 1,
            Some(TelemetryRecord::Event(_)) => events += 1,
            None => panic!("unparseable JSON line: {line}"),
        }
    }
    assert!(samples > 10, "too few samples: {samples}");
    assert!(events > 0, "no events in trace");
    let _ = std::fs::remove_file(&path);
}

/// A CSV trace from a *baseline* (non-Vantage) cache must carry the header
/// and parse row-by-row — the observation API is scheme-agnostic.
#[test]
fn baseline_csv_trace_parses_row_by_row() {
    let dir = std::env::temp_dir().join(format!("vantage-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.csv");

    let mut llc = BaselineLlc::try_new(
        Box::new(SetAssocArray::hashed(4 * 1024, 16, 1)),
        2,
        RankPolicy::Lru,
    )
    .expect("valid baseline geometry");
    let sink = CsvSink::create(&path).unwrap();
    assert!(llc.set_telemetry(Telemetry::new(Box::new(sink), 512)));
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..60_000u64 {
        let p = (rng.gen::<u32>() % 2) as usize;
        let base = ((p as u64) + 1) << 40;
        llc.access(AccessRequest::read(
            PartitionId::from_index(p),
            LineAddr(base + rng.gen_range(0..3000u64)),
        ));
    }
    llc.take_telemetry();

    let body = std::fs::read_to_string(&path).unwrap();
    let mut lines = body.lines().filter(|l| !l.trim().is_empty());
    assert_eq!(lines.next(), Some(CSV_HEADER), "missing CSV header");
    let mut samples = 0;
    let mut evictions = 0;
    for row in lines {
        match from_csv_row(row) {
            Some(TelemetryRecord::Sample(_)) => samples += 1,
            Some(TelemetryRecord::Event(_)) => evictions += 1,
            None => panic!("unparseable CSV row: {row}"),
        }
    }
    assert!(samples > 10, "too few samples: {samples}");
    assert!(evictions > 0, "baseline emitted no eviction events");
    let _ = std::fs::remove_file(&path);
}
