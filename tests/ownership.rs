//! Ownership-layer integration tests: the `ShareMode` contract observed
//! from outside the cache.
//!
//! * `Replicate` trades capacity for isolation by salting shared
//!   addresses per partition — however hard partitions hammer a common
//!   hot set, total occupancy never exceeds the array and no
//!   cross-partition hit is ever observed.
//! * `Pin` resolves cross-partition hits in place — lines never change
//!   owner, so the `OwnershipTransfer` telemetry lane and observation
//!   counters must stay silent.
//! * The measured leak harness (the `security` subcommand kernel) is a
//!   pure function of the machine and seed: every execution engine —
//!   serial banked, batched, worker-pool, pipelined — must produce the
//!   same per-trial miss sequence, hence the same leak-rate digest, for
//!   every share mode.

use proptest::prelude::*;
use vantage_experiments::security::{measure_channel, probe_geometry};
use vantage_repro::cache::{ShareMode, ZArray};
use vantage_repro::core::{EngineKind, VantageConfig, VantageLlc};
use vantage_repro::partitioning::{Llc, PartitionId};
use vantage_repro::sim::{Scheme, SchemeKind, SystemConfig};
use vantage_repro::telemetry::{RingSink, Telemetry, TelemetryEvent, TelemetryRecord};
use vantage_repro::workloads::SharedHotSet;

/// Builds a Vantage cache over `frames` Z4/16 lines in `mode`.
fn vantage(frames: usize, parts: usize, mode: ShareMode, seed: u64) -> VantageLlc {
    let mut llc = VantageLlc::try_new(
        Box::new(ZArray::new(frames, 4, 16, seed)),
        parts,
        VantageConfig::default(),
        seed,
    )
    .expect("valid Vantage config");
    llc.set_targets(&vec![(frames / (2 * parts)) as u64; parts]);
    assert!(llc.set_share_mode(mode), "vantage supports every mode");
    llc
}

/// Drives `chunk`-sized rounds of shared-hot-set traffic from every
/// partition through `llc`.
fn drive_shared(llc: &mut dyn Llc, gen: &SharedHotSet, parts: usize, rounds: u64, chunk: usize) {
    let mut reqs = Vec::new();
    let mut outs = Vec::new();
    for round in 0..rounds {
        reqs.clear();
        outs.clear();
        for p in 0..parts {
            gen.fill(
                PartitionId::from_index(p),
                round * chunk as u64,
                chunk,
                &mut reqs,
            );
        }
        llc.access_batch(&reqs, &mut outs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replicate conserves occupancy: per-partition copies of the shared
    /// set never sum past the array, and no cross-partition hit leaks
    /// through the per-partition address salt.
    #[test]
    fn replicate_conserves_occupancy(seed in 0u64..1 << 16, parts in 2usize..5) {
        let frames = 2048;
        let mut llc = vantage(frames, parts, ShareMode::Replicate, seed);
        let gen = SharedHotSet::new(seed);
        for _ in 0..4 {
            drive_shared(&mut llc, &gen, parts, 2, 1500);
            let obs = llc.observations();
            let total: u64 = obs.actual.iter().sum();
            prop_assert!(
                total <= frames as u64,
                "replicas overran the array: {total} > {frames}"
            );
            prop_assert!(
                obs.shared_hits.iter().all(|&s| s == 0),
                "salted replicas must never cross-hit: {:?}",
                obs.shared_hits
            );
            prop_assert!(
                obs.ownership_transfers.iter().all(|&t| t == 0),
                "replicate never adopts: {:?}",
                obs.ownership_transfers
            );
        }
    }
}

/// Pin never transfers ownership: heavy cross-partition sharing produces
/// shared hits but not a single `OwnershipTransfer` event or counter.
#[test]
fn pin_never_emits_ownership_transfers() {
    let parts = 4;
    let mut llc = vantage(4096, parts, ShareMode::Pin, 33);
    let (sink, reader) = RingSink::with_capacity(1 << 20);
    assert!(llc.set_telemetry(Telemetry::new(Box::new(sink), 512)));
    let gen = SharedHotSet::new(33);
    drive_shared(&mut llc, &gen, parts, 8, 2000);
    llc.take_telemetry();
    let obs = llc.observations();
    assert!(
        obs.shared_hits.iter().sum::<u64>() > 0,
        "the hot set must actually be shared for this test to bite"
    );
    assert_eq!(
        obs.ownership_transfers.iter().sum::<u64>(),
        0,
        "pin froze ownership"
    );
    let transfers = reader
        .records()
        .iter()
        .filter(|r| {
            matches!(
                r,
                TelemetryRecord::Event(TelemetryEvent::OwnershipTransfer { .. })
            )
        })
        .count();
    assert_eq!(transfers, 0, "no OwnershipTransfer event under pin");
}

/// Adopt, by contrast, both cross-hits and transfers — the control that
/// the pin test above is not vacuous.
#[test]
fn adopt_does_emit_ownership_transfers() {
    let parts = 4;
    let mut llc = vantage(4096, parts, ShareMode::Adopt, 33);
    let gen = SharedHotSet::new(33);
    drive_shared(&mut llc, &gen, parts, 8, 2000);
    let obs = llc.observations();
    assert!(obs.shared_hits.iter().sum::<u64>() > 0);
    assert!(obs.ownership_transfers.iter().sum::<u64>() > 0);
}

/// Every execution engine produces the identical leak-rate digest per
/// share mode: the measured channel is a property of the machine, not of
/// how batches are scheduled onto banks.
#[test]
fn engines_agree_on_leak_digest_per_mode() {
    for &mode in &ShareMode::ALL {
        let mut results: Vec<(String, u64, f64)> = Vec::new();
        for (label, engine, jobs) in [
            ("serial", EngineKind::Serial, 1),
            ("batched", EngineKind::Batched, 1),
            ("parallel", EngineKind::Batched, 2),
            ("pipelined", EngineKind::Pipelined, 2),
        ] {
            let mut sys = SystemConfig::small_scale();
            sys.l2_lines = 4096;
            sys.share_mode = mode;
            let mut scheme = Scheme::builder(SchemeKind::vantage_paper(), sys)
                .banks(4)
                .bank_jobs(jobs)
                .engine(engine)
                .try_build()
                .expect("valid banked scheme");
            let m = measure_channel(scheme.llc_mut(), &probe_geometry(7), 24, |_, _| 0);
            results.push((format!("{label} x{jobs}"), m.digest(), m.bits_per_trial));
        }
        let (ref name0, digest0, bits0) = results[0];
        for (name, digest, bits) in &results[1..] {
            assert_eq!(
                *digest,
                digest0,
                "{}: {name} diverged from {name0}",
                mode.label()
            );
            assert_eq!(
                *bits,
                bits0,
                "{}: {name} leak rate diverged from {name0}",
                mode.label()
            );
        }
    }
}
