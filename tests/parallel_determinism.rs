//! Engine-equivalence tests for the parallel sharded-bank engine: on the
//! same seeded mixed trace, [`ParallelBankedLlc`] at any worker count must
//! be indistinguishable from the serial per-access [`BankedLlc`] — same
//! outcome stream, same statistics, same partition sizes, and the same
//! multiset of telemetry records (per-bank streams interleave differently
//! in the shared ring, so order is not part of the contract).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_partitioning::PartitionId;
use vantage_repro::cache::{LineAddr, ZArray};
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{
    AccessOutcome, AccessRequest, BankedLlc, Llc, ParallelBankedLlc, PipelinedBankedLlc,
};
use vantage_repro::sim::{Scheme, SchemeKind, SystemConfig};
use vantage_repro::telemetry::{RingSink, Telemetry};

const PARTS: usize = 4;
const BANKS: usize = 4;
const FRAMES: usize = 8 * 1024;

/// Seeded mixed trace: reads and writes over per-partition working sets
/// sized for steady churn (hits, misses, demotions and evictions all
/// occur).
fn mixed_trace(n: u64, seed: u64) -> Vec<AccessRequest> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let p = (rng.gen::<u32>() as usize) % PARTS;
            let base = (p as u64 + 1) << 40;
            let addr = LineAddr(base + rng.gen_range(0..(FRAMES as u64 / 2)));
            if rng.gen_ratio(1, 4) {
                AccessRequest::write(PartitionId::from_index(p), addr)
            } else {
                AccessRequest::read(PartitionId::from_index(p), addr)
            }
        })
        .collect()
}

/// The gate configuration in miniature: `BANKS` Vantage-Z4/52 banks behind
/// an address-interleaved [`BankedLlc`] with even targets. Deterministic in
/// `seed`.
fn build_banked(seed: u64) -> BankedLlc {
    let banks = (0..BANKS)
        .map(|b| {
            let array = ZArray::new(FRAMES / BANKS, 4, 52, seed ^ (b as u64 + 1));
            Box::new(
                VantageLlc::try_new(
                    Box::new(array),
                    PARTS,
                    VantageConfig::default(),
                    seed ^ ((b as u64) << 8),
                )
                .expect("valid Vantage config"),
            ) as Box<dyn Llc>
        })
        .collect();
    let mut llc = BankedLlc::try_new(banks, seed ^ 0xBA2C).expect("valid bank set");
    llc.set_targets(&[(FRAMES / PARTS) as u64; PARTS]);
    llc
}

/// Everything observable about a run: the outcome stream, final statistics,
/// partition sizes, and the telemetry record multiset (sorted rendering).
struct Observed {
    outcomes: Vec<AccessOutcome>,
    stats: String,
    sizes: Vec<u64>,
    telemetry: Vec<String>,
}

fn observe(
    llc: &mut dyn Llc,
    outcomes: Vec<AccessOutcome>,
    reader: impl FnOnce() -> Vec<String>,
) -> Observed {
    let stats = format!("{:?}", llc.stats_mut());
    let sizes = (0..llc.num_partitions())
        .map(|p| llc.partition_size(PartitionId::from_index(p)))
        .collect();
    let mut telemetry = reader();
    telemetry.sort_unstable();
    Observed {
        outcomes,
        stats,
        sizes,
        telemetry,
    }
}

/// Drives `llc` one access at a time with telemetry attached.
fn run_serial(mut llc: BankedLlc, reqs: &[AccessRequest]) -> Observed {
    let (sink, reader) = RingSink::with_capacity(1 << 20);
    assert!(llc.set_telemetry(Telemetry::new(Box::new(sink), 512)));
    let outcomes: Vec<AccessOutcome> = reqs.iter().map(|&r| llc.access(r)).collect();
    llc.take_telemetry();
    observe(&mut llc, outcomes, || {
        reader.records().iter().map(|r| format!("{r:?}")).collect()
    })
}

/// Drives `llc` through `access_batch` in uneven chunks (to exercise batch
/// boundaries) with telemetry attached.
fn run_batched(mut llc: ParallelBankedLlc, reqs: &[AccessRequest]) -> Observed {
    let (sink, reader) = RingSink::with_capacity(1 << 20);
    assert!(llc.set_telemetry(Telemetry::new(Box::new(sink), 512)));
    let mut outcomes = Vec::with_capacity(reqs.len());
    for chunk in reqs.chunks(999) {
        llc.access_batch(chunk, &mut outcomes);
    }
    llc.take_telemetry();
    observe(&mut llc, outcomes, || {
        reader.records().iter().map(|r| format!("{r:?}")).collect()
    })
}

/// The tentpole determinism claim: batched, sharded service at 1, 2 and 4
/// workers replays the serial reference bit-for-bit.
#[test]
fn parallel_engine_matches_serial_at_every_worker_count() {
    let reqs = mixed_trace(120_000, 0xD15C);
    let reference = run_serial(build_banked(9), &reqs);
    assert!(
        reference.outcomes.iter().any(|o| o.is_hit())
            && reference.outcomes.iter().any(|o| !o.is_hit()),
        "trace must exercise both hits and misses"
    );
    assert!(
        !reference.telemetry.is_empty(),
        "telemetry captured nothing"
    );

    for jobs in [1, 2, 4] {
        let par = ParallelBankedLlc::from_banked(build_banked(9), jobs);
        let got = run_batched(par, &reqs);
        assert_eq!(
            got.outcomes, reference.outcomes,
            "outcome stream diverged at {jobs} workers"
        );
        assert_eq!(
            got.stats, reference.stats,
            "stats diverged at {jobs} workers"
        );
        assert_eq!(
            got.sizes, reference.sizes,
            "sizes diverged at {jobs} workers"
        );
        assert_eq!(
            got.telemetry, reference.telemetry,
            "telemetry record multiset diverged at {jobs} workers"
        );
    }
}

/// Drives a pipelined ring engine through `access_batch` in uneven chunks
/// with telemetry attached — each chunk is ingested into the per-bank rings
/// and drained bank-major, so this exercises the full shard/queue/drain
/// path, not just the serial fallback.
fn run_pipelined(mut llc: PipelinedBankedLlc, reqs: &[AccessRequest]) -> Observed {
    let (sink, reader) = RingSink::with_capacity(1 << 20);
    assert!(llc.set_telemetry(Telemetry::new(Box::new(sink), 512)));
    let mut outcomes = Vec::with_capacity(reqs.len());
    for chunk in reqs.chunks(997) {
        llc.access_batch(chunk, &mut outcomes);
    }
    llc.take_telemetry();
    observe(&mut llc, outcomes, || {
        reader.records().iter().map(|r| format!("{r:?}")).collect()
    })
}

/// The pipelined ring engine holds the same contract at every worker
/// count, including more workers than the host has cores: bank-major
/// service preserves per-bank FIFO order, so outcomes, stats, sizes and
/// the telemetry multiset replay the serial reference bit-for-bit.
#[test]
fn pipelined_engine_matches_serial_at_every_worker_count() {
    let reqs = mixed_trace(120_000, 0xD15C);
    let reference = run_serial(build_banked(9), &reqs);

    for jobs in [1, 2, 4, 8] {
        let pipe = PipelinedBankedLlc::from_banked(build_banked(9), jobs);
        let got = run_pipelined(pipe, &reqs);
        assert_eq!(
            got.outcomes, reference.outcomes,
            "outcome stream diverged at {jobs} pipelined workers"
        );
        assert_eq!(
            got.stats, reference.stats,
            "stats diverged at {jobs} pipelined workers"
        );
        assert_eq!(
            got.sizes, reference.sizes,
            "sizes diverged at {jobs} pipelined workers"
        );
        assert_eq!(
            got.telemetry, reference.telemetry,
            "telemetry record multiset diverged at {jobs} pipelined workers"
        );
    }
}

/// The same equivalence holds for engines built through the `Scheme`
/// builder (the path simulations actually take): a banked machine with a
/// worker pool must replay the serial banked machine exactly.
#[test]
fn builder_parallel_scheme_matches_builder_serial_scheme() {
    let sys = {
        let mut sys = SystemConfig::small_scale();
        sys.l2_lines = FRAMES;
        sys
    };
    let build = |jobs: usize| {
        Scheme::builder(SchemeKind::vantage_paper(), sys.clone())
            .banks(BANKS)
            .bank_jobs(jobs)
            .try_build()
            .expect("valid scheme config")
    };
    let reqs = mixed_trace(60_000, 0x5EED);
    let mut reference = build(1);
    assert!(matches!(reference, Scheme::Banked { .. }));
    let ref_outcomes: Vec<AccessOutcome> = reqs
        .iter()
        .map(|&r| reference.llc_mut().access(r))
        .collect();
    let ref_stats = format!("{:?}", reference.llc_mut().stats_mut());

    for jobs in [2, 4] {
        let mut scheme = build(jobs);
        assert!(matches!(scheme, Scheme::ParallelBanked { .. }));
        let mut outcomes = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(777) {
            scheme.llc_mut().access_batch(chunk, &mut outcomes);
        }
        assert_eq!(
            outcomes, ref_outcomes,
            "outcomes diverged at {jobs} workers"
        );
        assert_eq!(
            format!("{:?}", scheme.llc_mut().stats_mut()),
            ref_stats,
            "stats diverged at {jobs} workers"
        );
    }

    // The pipelined engine selected through the same builder surface also
    // replays the serial machine, with and without worker threads.
    for jobs in [1, 2] {
        let mut scheme = Scheme::builder(SchemeKind::vantage_paper(), sys.clone())
            .banks(BANKS)
            .bank_jobs(jobs)
            .engine(vantage_repro::core::EngineKind::Pipelined)
            .try_build()
            .expect("valid scheme config");
        assert!(matches!(scheme, Scheme::Pipelined { .. }));
        let mut outcomes = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(777) {
            scheme.llc_mut().access_batch(chunk, &mut outcomes);
        }
        scheme.epoch_barrier();
        assert_eq!(
            outcomes, ref_outcomes,
            "outcomes diverged on the pipelined engine at {jobs} workers"
        );
        assert_eq!(
            format!("{:?}", scheme.llc_mut().stats_mut()),
            ref_stats,
            "stats diverged on the pipelined engine at {jobs} workers"
        );
    }
}
