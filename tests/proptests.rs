//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use vantage_repro::cache::{CacheArray, LineAddr, Walk, ZArray};
use vantage_repro::core::controller::ThresholdTable;
use vantage_repro::core::model::{assoc, managed, sizing};
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::llc::ways_from_targets;
use vantage_repro::partitioning::{AccessRequest, Llc, PartitionId};
use vantage_repro::ucp::{interpolate_curve, lookahead};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The zcache placement invariant survives arbitrary access sequences:
    /// walks stay well-formed, install keeps every line findable, and
    /// occupancy accounting matches a full scan.
    #[test]
    fn zcache_invariants_under_arbitrary_traffic(
        seed in 0u64..1000,
        ops in prop::collection::vec((0u64..5000, 0usize..52), 50..400),
    ) {
        let mut a = ZArray::new(512, 4, 52, seed);
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        for (addr, victim_hint) in ops {
            let addr = LineAddr(addr);
            if a.lookup(addr).is_some() {
                continue;
            }
            a.walk(addr, &mut walk);
            prop_assert!(!walk.is_empty());
            prop_assert!(walk.len() <= 52);
            // Parent links must point backwards.
            for (i, n) in walk.nodes.iter().enumerate() {
                if let Some(p) = n.parent() {
                    prop_assert!((p as usize) < i);
                }
            }
            let victim = walk.first_empty().unwrap_or(victim_hint % walk.len());
            moves.clear();
            a.install(addr, &walk, victim, &mut moves);
            prop_assert!(a.lookup(addr).is_some(), "installed line must be findable");
        }
        // Occupancy equals the number of distinct frames holding lines.
        let scan = (0..512u32).filter(|&f| a.occupant(f).is_some()).count();
        prop_assert_eq!(scan, a.occupancy());
    }

    /// Way allocation: sums exactly, respects the 1-way floor, and is
    /// monotone-ish (a partition asking for everything gets the most).
    #[test]
    fn way_allocation_properties(
        targets in prop::collection::vec(0u64..100_000, 1..16),
        extra_ways in 0u32..48,
    ) {
        let ways = targets.len() as u32 + extra_ways;
        let alloc = ways_from_targets(&targets, ways);
        prop_assert_eq!(alloc.iter().sum::<u32>(), ways);
        prop_assert!(alloc.iter().all(|&w| w >= 1));
        if let Some((imax, _)) = targets.iter().enumerate().max_by_key(|(_, &t)| t) {
            let wmax = alloc[imax];
            prop_assert!(alloc.iter().all(|&w| w <= wmax + 1), "biggest asker got {wmax}, alloc {alloc:?}");
        }
    }

    /// Lookahead conserves blocks and never starves below the minimum.
    #[test]
    fn lookahead_conserves_blocks(
        curves in prop::collection::vec(
            prop::collection::vec(0u64..10_000, 17..18),
            2..6
        ),
        blocks in 8u32..16,
    ) {
        // Make each curve non-increasing (a valid miss curve).
        let curves: Vec<Vec<u64>> = curves
            .into_iter()
            .map(|mut c| {
                c.sort_unstable_by(|a, b| b.cmp(a));
                c
            })
            .collect();
        let n = curves.len() as u32;
        let blocks = blocks.max(n);
        let alloc = lookahead(&curves, blocks, 1);
        prop_assert_eq!(alloc.iter().sum::<u32>(), blocks);
        prop_assert!(alloc.iter().all(|&b| b >= 1));
    }

    /// Interpolation preserves endpoints and monotonicity.
    #[test]
    fn interpolation_properties(
        curve in prop::collection::vec(0u64..1_000_000, 2..20),
        blocks in 1u32..512,
    ) {
        let mut curve = curve;
        curve.sort_unstable_by(|a, b| b.cmp(a));
        let fine = interpolate_curve(&curve, blocks);
        prop_assert_eq!(fine.len(), blocks as usize + 1);
        prop_assert_eq!(fine[0], curve[0]);
        prop_assert_eq!(*fine.last().unwrap(), *curve.last().unwrap());
        for w in fine.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
    }

    /// The associativity CDF is a valid, monotone CDF for any R.
    #[test]
    fn assoc_cdf_is_valid(r in 1u32..128, x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(assoc::cdf(lo, r) <= assoc::cdf(hi, r) + 1e-15);
        prop_assert!((0.0..=1.0).contains(&assoc::cdf(x, r)));
        // Quantile inverts.
        let q = assoc::quantile(x, r);
        prop_assert!((assoc::cdf(q, r) - x).abs() < 1e-9);
    }

    /// Eq. 2 dominates Eq. 3 nowhere above the aperture threshold... more
    /// precisely: demote-on-average never demotes below `1 - A`, while
    /// exactly-one always has positive mass there.
    #[test]
    fn managed_models_ordering(r in 4u32..64, u in 0.05f64..0.5) {
        let a = managed::balanced_aperture(r, 1.0 - u).min(1.0);
        let x = (1.0 - a) * 0.95;
        prop_assert_eq!(managed::average_demotion_cdf(x, a), 0.0);
        prop_assert!(managed::one_demotion_cdf(x, r, u) > 0.0);
    }

    /// The sizing rule is monotone: stricter isolation or fewer candidates
    /// always need a (weakly) larger unmanaged region.
    #[test]
    fn sizing_monotonicity(
        r in 8u32..128,
        pev_exp in -6.0f64..-0.5,
        a_max in 0.1f64..1.0,
    ) {
        let pev = 10f64.powf(pev_exp);
        let u = sizing::unmanaged_fraction(r, pev, a_max, 0.1);
        let stricter = sizing::unmanaged_fraction(r, pev / 10.0, a_max, 0.1);
        prop_assert!(stricter >= u - 1e-12);
        let fewer = sizing::unmanaged_fraction(r / 2, pev, a_max, 0.1);
        prop_assert!(fewer >= u - 1e-12);
    }

    /// Threshold tables: monotone in size, zero at/below target, saturating
    /// at c·A_max.
    #[test]
    fn threshold_table_properties(
        target in 16u64..100_000,
        slack in 0.02f64..0.5,
        a_max in 0.1f64..1.0,
    ) {
        let t = ThresholdTable::try_new(target, slack, a_max, 256, 8).expect("valid controller parameters");
        prop_assert_eq!(t.threshold(target), None);
        let cap = (256.0 * a_max).round() as u32;
        let mut prev = 0u32;
        for k in 1..=12u64 {
            let size = target + k * ((slack * target as f64 / 8.0).ceil() as u64 + 1);
            let thr = t.threshold(size).expect("over target");
            prop_assert!(thr >= prev, "thresholds must not decrease");
            prop_assert!(thr <= cap);
            prev = thr;
        }
        // Aperture is within [0, A_max] and monotone.
        prop_assert!(t.aperture(target * 2 + 16) <= a_max + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Set-associative and skew arrays never lose an installed line until
    /// it is explicitly evicted, and candidate counts equal the way count.
    #[test]
    fn sa_and_skew_lookup_after_install(
        seed in 0u64..500,
        addrs in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        use vantage_repro::cache::{SetAssocArray, SkewArray};
        let mut arrays: Vec<Box<dyn CacheArray>> = vec![
            Box::new(SetAssocArray::hashed(256, 4, seed)),
            Box::new(SetAssocArray::modulo(256, 4)),
            Box::new(SkewArray::new(256, 4, seed)),
        ];
        for a in &mut arrays {
            let mut walk = Walk::new();
            let mut moves = Vec::new();
            for &x in &addrs {
                let addr = LineAddr(x);
                if a.lookup(addr).is_some() {
                    continue;
                }
                a.walk(addr, &mut walk);
                prop_assert_eq!(walk.len(), 4);
                let v = walk.first_empty().unwrap_or(0);
                moves.clear();
                a.install(addr, &walk, v, &mut moves);
                prop_assert!(moves.is_empty(), "flat arrays never relocate");
                prop_assert!(a.lookup(addr).is_some());
            }
        }
    }

    /// TargetRamp conserves capacity at every step and terminates exactly.
    #[test]
    fn target_ramp_properties(
        from in prop::collection::vec(0u64..10_000, 2..8),
        deltas in prop::collection::vec(-500i64..500, 2..8),
        steps in 1u32..20,
    ) {
        use vantage_repro::core::TargetRamp;
        let n = from.len().min(deltas.len());
        let from: Vec<u64> = from[..n].to_vec();
        // Build a `to` with the same total by paired transfers.
        let mut to = from.clone();
        for i in 0..n / 2 {
            let d = deltas[i].unsigned_abs().min(to[2 * i]);
            to[2 * i] -= d;
            to[2 * i + 1] += d;
        }
        let total: u64 = from.iter().sum();
        let mut ramp = TargetRamp::new(from, to.clone(), steps);
        let mut count = 0;
        let mut last = Vec::new();
        while let Some(t) = ramp.step() {
            prop_assert_eq!(t.iter().sum::<u64>(), total);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, steps);
        prop_assert_eq!(last, to);
    }

    /// Fairness allocation conserves blocks and never starves.
    #[test]
    fn fairness_allocation_conserves(
        raw in prop::collection::vec(
            prop::collection::vec(0u64..10_000, 17..18),
            2..6
        ),
        accesses in prop::collection::vec(1u64..100_000, 6),
    ) {
        use vantage_repro::ucp::equalize_miss_ratios;
        let curves: Vec<Vec<u64>> = raw
            .into_iter()
            .map(|mut c| {
                c.sort_unstable_by(|a, b| b.cmp(a));
                c
            })
            .collect();
        let acc = &accesses[..curves.len()];
        let alloc = equalize_miss_ratios(&curves, acc, 16, 1);
        prop_assert_eq!(alloc.iter().sum::<u32>(), 16);
        prop_assert!(alloc.iter().all(|&b| b >= 1));
    }

    /// State overhead grows monotonically with partition count and stays
    /// small for realistic configurations.
    #[test]
    fn overhead_monotone_in_partitions(lines_kb in 64u64..32_768, parts in 1u32..512) {
        use vantage_repro::core::state_overhead;
        let lines = lines_kb * 16; // 64 B lines
        let o1 = state_overhead(lines, parts, 64);
        let o2 = state_overhead(lines, parts * 2, 64);
        prop_assert!(o2.total_added_bits >= o1.total_added_bits);
        // The per-partition controller registers amortize over the lines,
        // so the "small overhead" claim needs a realistic lines-per-
        // partition ratio (the paper's configs have >= 4K lines per
        // partition; extreme combos like 1K lines / 512 partitions
        // legitimately cost more).
        if lines >= u64::from(parts) * 256 {
            prop_assert!(o1.overhead_fraction < 0.05, "overhead {:.3}", o1.overhead_fraction);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// VantageLlc accounting invariants hold under arbitrary interleavings
    /// of accesses and retargets.
    #[test]
    fn vantage_llc_accounting_invariants(
        seed in 0u64..100,
        phases in prop::collection::vec((0u64..3, 1u64..2000), 2..6),
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut llc = VantageLlc::try_new(
            Box::new(ZArray::new(1024, 4, 52, seed)),
            3,
            VantageConfig::default(),
            seed,
        ).expect("valid Vantage config");
        let mut rng = SmallRng::seed_from_u64(seed);
        for (retarget, accesses) in phases {
            match retarget {
                0 => llc.set_targets(&[512, 256, 256]),
                1 => llc.set_targets(&[100, 800, 124]),
                _ => llc.set_targets(&[341, 341, 342]),
            }
            for _ in 0..accesses {
                let p = rng.gen_range(0..3usize);
                let base = (p as u64 + 1) << 40;
                llc.access(AccessRequest::read(PartitionId::from_index(p), LineAddr(base + rng.gen_range(0..5_000u64))));
            }
            llc.invariants().expect("invariants hold");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Largest-remainder apportionment is exact for any weight vector:
    /// shares sum to exactly `total` (the conservation property every
    /// allocation policy leans on).
    #[test]
    fn apportion_conserves_total(
        total in 0u64..1_000_000,
        weights in prop::collection::vec(0.0f64..100.0, 1..16),
    ) {
        use vantage_repro::ucp::apportion;
        let shares = apportion(total, &weights);
        prop_assert_eq!(shares.len(), weights.len());
        prop_assert_eq!(shares.iter().sum::<u64>(), total);
    }

    /// Snapshot-driven policies conserve the budget for arbitrary inputs,
    /// equal shares stay within one line of each other, and QoS floors are
    /// honored whenever they fit inside the capacity.
    #[test]
    fn snapshot_policies_conserve_budget_and_floors(
        capacity in 8u64..1_000_000,
        misses in prop::collection::vec(0u64..50_000, 2..9),
        weights in prop::collection::vec(0.01f64..10.0, 9),
        min_fracs in prop::collection::vec(0u64..1_000, 9),
    ) {
        use vantage_repro::ucp::{AllocationPolicy, EqualShares, PolicyInput, QosGuarantee};
        let n = misses.len();
        let zeros = vec![0u64; n];
        let input = PolicyInput {
            capacity,
            actual: &zeros,
            hits: &zeros,
            misses: &misses,
            churn: &zeros,
            insertions: &zeros,
            shared_hits: &[],
            ownership_transfers: &[],
            live: &[],
            arrived: &[],
            departed: &[],
        };

        let eq = EqualShares::new().reallocate(&input);
        prop_assert_eq!(eq.len(), n);
        prop_assert_eq!(eq.iter().sum::<u64>(), capacity);
        let (lo, hi) = (eq.iter().min().unwrap(), eq.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "equal shares skewed: {eq:?}");

        // Minimums span under- and over-committed cases (~0..4.5x capacity).
        let mins: Vec<u64> = min_fracs[..n].iter().map(|&f| f * capacity / 2_000).collect();
        let fits = mins.iter().sum::<u64>() <= capacity;
        let mut qos = QosGuarantee::try_new(mins.clone(), weights[..n].to_vec()).expect("valid QoS spec");
        let t = qos.reallocate(&input);
        prop_assert_eq!(t.iter().sum::<u64>(), capacity);
        if fits {
            for (p, (&got, &min)) in t.iter().zip(&mins).enumerate() {
                prop_assert!(got >= min, "partition {p} got {got} < guaranteed {min}");
            }
        }
        // Policies are pure functions of (state, input): rerun matches.
        prop_assert_eq!(t, qos.reallocate(&input));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Stream-driven policies (UCP/Lookahead and the miss-ratio equalizer)
    /// are deterministic for a fixed seed — two instances fed the same
    /// access stream emit identical targets — and conserve the capacity.
    #[test]
    fn stream_policies_deterministic_and_exact(
        seed in 0u64..1_000,
        parts in 2usize..5,
        addrs in prop::collection::vec((0usize..5, 0u64..10_000), 100..400),
    ) {
        use vantage_repro::ucp::{
            AllocationPolicy, MissRatioEqualizer, PolicyInput, UcpGranularity, UcpPolicy,
        };
        let capacity = 8_192u64;
        let gran = UcpGranularity::Fine { blocks: 256 };
        let zeros = vec![0u64; parts];
        let input = PolicyInput {
            capacity,
            actual: &zeros,
            hits: &zeros,
            misses: &zeros,
            churn: &zeros,
            insertions: &zeros,
            shared_hits: &[],
            ownership_transfers: &[],
            live: &[],
            arrived: &[],
            departed: &[],
        };

        let mut a = UcpPolicy::new(parts, 16, 32, 64, capacity, gran, seed);
        let mut b = UcpPolicy::new(parts, 16, 32, 64, capacity, gran, seed);
        for &(p, x) in &addrs {
            let part = p % parts;
            let addr = LineAddr(((part as u64 + 1) << 40) | x);
            AllocationPolicy::observe(&mut a, part, addr);
            AllocationPolicy::observe(&mut b, part, addr);
        }
        let ta = AllocationPolicy::reallocate(&mut a, &input);
        let tb = AllocationPolicy::reallocate(&mut b, &input);
        prop_assert_eq!(&ta, &tb, "lookahead diverged for a fixed seed");
        prop_assert_eq!(ta.iter().sum::<u64>(), capacity);

        let mut m = MissRatioEqualizer::new(parts, 16, 32, 64, capacity, gran, seed);
        let mut m2 = MissRatioEqualizer::new(parts, 16, 32, 64, capacity, gran, seed);
        for &(p, x) in &addrs {
            let part = p % parts;
            let addr = LineAddr(((part as u64 + 1) << 40) | x);
            m.observe(part, addr);
            m2.observe(part, addr);
        }
        let tm = m.reallocate(&input);
        prop_assert_eq!(&tm, &m2.reallocate(&input), "equalizer diverged for a fixed seed");
        prop_assert_eq!(tm.iter().sum::<u64>(), capacity);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batched access surface is pure sugar: for every scheme,
    /// `access_batch` over arbitrary chunkings of an arbitrary mixed trace
    /// produces the same outcome stream and statistics as serving the
    /// trace one `access` at a time.
    #[test]
    fn access_batch_is_equivalent_to_repeated_access_for_every_scheme(
        seed in 0u64..1000,
        chunk in 1usize..400,
        ops in prop::collection::vec((0usize..4, 0u64..3000, 0u32..4), 200..800),
    ) {
        use vantage_repro::sim::{ArrayKind, BaselineRank, Scheme, SchemeKind, SystemConfig};

        let reqs: Vec<AccessRequest> = ops
            .iter()
            .map(|&(p, a, kind)| {
                let addr = LineAddr(((p as u64 + 1) << 40) + a);
                if kind == 0 { AccessRequest::write(PartitionId::from_index(p), addr) } else { AccessRequest::read(PartitionId::from_index(p), addr) }
            })
            .collect();
        let mut sys = SystemConfig::small_scale();
        sys.l2_lines = 4 * 1024;
        sys.seed = seed;
        let kinds = [
            SchemeKind::Baseline { array: ArrayKind::SetAssoc { ways: 16 }, rank: BaselineRank::Lru },
            SchemeKind::WayPart,
            SchemeKind::Pipp,
            SchemeKind::vantage_paper(),
        ];
        // Every kind is also exercised sharded (serial worker-pool, and the
        // pipelined ring engine with and without worker threads).
        use vantage_repro::core::EngineKind;
        let machines = [
            (1usize, 1usize, EngineKind::Batched),
            (4, 1, EngineKind::Batched),
            (4, 2, EngineKind::Batched),
            (4, 1, EngineKind::Pipelined),
            (4, 2, EngineKind::Pipelined),
        ];
        for kind in &kinds {
            for &(banks, jobs, engine) in &machines {
                let build = || {
                    Scheme::builder(kind.clone(), sys.clone())
                        .banks(banks)
                        .bank_jobs(jobs)
                        .engine(engine)
                        .try_build().expect("valid scheme config")
                };
                let mut one = build();
                let serial: Vec<_> = reqs.iter().map(|&r| one.llc_mut().access(r)).collect();
                let mut many = build();
                let mut batched = Vec::with_capacity(reqs.len());
                for c in reqs.chunks(chunk) {
                    many.llc_mut().access_batch(c, &mut batched);
                }
                prop_assert_eq!(
                    &batched, &serial,
                    "outcomes diverged for {} on {}x{} banks/jobs", kind.label(), banks, jobs
                );
                prop_assert_eq!(
                    format!("{:?}", many.llc_mut().stats_mut()),
                    format!("{:?}", one.llc_mut().stats_mut()),
                    "stats diverged for {} on {}x{} banks/jobs", kind.label(), banks, jobs
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pipelined ring engine is observationally identical to the
    /// serial banked engine under adversarial window schedules — empty
    /// windows, single-request windows, non-divisible window and staging-
    /// batch sizes, tiny ring capacities (forcing inline backpressure
    /// drains), and tenant churn landing *mid-window* while work is still
    /// queued in the rings. Outcomes are checked per bank via the engine's
    /// own FNV digests against a reference fold of the serial outcome
    /// stream; statistics, partition sizes and the telemetry record
    /// multiset must match exactly.
    #[test]
    fn pipelined_rings_match_serial_under_windows_and_churn(
        seed in 0u64..400,
        jobs in 1usize..3,
        batch in 1usize..7,
        ring_cap in 1usize..4,
        windows in prop::collection::vec(0usize..50, 4..20),
        ops in prop::collection::vec((0usize..4, 0u64..2000, 0u32..4), 150..500),
        churn in prop::collection::vec((0usize..500, 0u64..128), 0..4),
    ) {
        use vantage_repro::partitioning::{
            pipeline::DIGEST_SEED, BankedLlc, PartitionSpec, PipelinedBankedLlc, Sharded,
        };
        use vantage_repro::telemetry::{RingSink, Telemetry};

        const BANKS: usize = 4;
        const FRAMES: usize = 2048;
        let fnv = |h: u64, x: u64| (h ^ x).wrapping_mul(0x0000_0100_0000_01B3);
        let build = || {
            let banks = (0..BANKS)
                .map(|b| {
                    Box::new(VantageLlc::try_new(
                        Box::new(ZArray::new(FRAMES / BANKS, 4, 52, seed ^ (b as u64 + 1))),
                        4,
                        VantageConfig::default(),
                        seed ^ ((b as u64) << 8),
                    ).expect("valid Vantage config")) as Box<dyn Llc>
                })
                .collect();
            let mut llc = BankedLlc::try_new(banks, seed ^ 0xBA2C).expect("valid bank set");
            llc.set_targets(&[(FRAMES / 4) as u64; 4]);
            llc
        };
        let reqs: Vec<AccessRequest> = ops
            .iter()
            .map(|&(p, a, kind)| {
                let addr = LineAddr(((p as u64 + 1) << 40) + a);
                if kind == 0 {
                    AccessRequest::write(PartitionId::from_index(p), addr)
                } else {
                    AccessRequest::read(PartitionId::from_index(p), addr)
                }
            })
            .collect();
        // Churn schedule: at request index `at`, create a fresh partition
        // (alternating with destroying the most recent churn-created one).
        // Traffic only ever targets partitions 0..4, so destroyed
        // partitions are never accessed afterwards.
        let mut churn: Vec<(usize, u64)> = churn;
        churn.retain(|&(at, _)| at < reqs.len());
        churn.sort_unstable();
        churn.dedup_by_key(|&mut (at, _)| at);
        // An all-empty window schedule would never make progress; keep the
        // empty windows (they are an edge case under test) but guarantee
        // at least one request moves per cycle.
        let mut windows = windows;
        if windows.iter().sum::<usize>() == 0 {
            windows.push(3);
        }

        // Serial reference: per-access service, churn applied between
        // accesses, per-bank digests folded from the outcome stream.
        let mut serial = build();
        let (sink_s, reader_s) = RingSink::with_capacity(1 << 18);
        prop_assert!(serial.set_telemetry(Telemetry::new(Box::new(sink_s), 256)));
        let mut ref_digests = [DIGEST_SEED; BANKS];
        let mut ref_lifecycle: Vec<String> = Vec::new();
        let mut ref_created: Vec<PartitionId> = Vec::new();
        {
            let mut churn_it = churn.iter().peekable();
            for (i, &r) in reqs.iter().enumerate() {
                while let Some(&&(at, target)) = churn_it.peek() {
                    if at > i { break; }
                    churn_it.next();
                    if ref_created.is_empty() {
                        let got = serial.create_partition(PartitionSpec::with_target(target));
                        if let Ok(id) = got { ref_created.push(id); }
                        ref_lifecycle.push(format!("{got:?}"));
                    } else {
                        let id = ref_created.pop().unwrap();
                        ref_lifecycle.push(format!("{:?}", serial.destroy_partition(id)));
                    }
                }
                let b = serial.bank_of(r.addr);
                let o = serial.access(r);
                ref_digests[b] = fnv(ref_digests[b], o.is_hit() as u64);
            }
        }
        serial.take_telemetry();
        let ref_stats = format!("{:?}", serial.stats_mut());
        let ref_sizes: Vec<u64> = (0..serial.num_partitions())
            .map(|p| serial.partition_size(PartitionId::from_index(p)))
            .collect();
        let mut ref_tele: Vec<String> =
            reader_s.records().iter().map(|r| format!("{r:?}")).collect();
        ref_tele.sort_unstable();

        // Pipelined run: the same stream fed through `run_window` in the
        // generated window sizes; churn ops land wherever they fall —
        // including while prior windows are still queued in the rings
        // (the lifecycle barrier must drain them first).
        let mut pipe = PipelinedBankedLlc::from_banked(build(), jobs)
            .with_batch_size(batch)
            .with_ring_capacity(ring_cap);
        let (sink_p, reader_p) = RingSink::with_capacity(1 << 18);
        prop_assert!(pipe.set_telemetry(Telemetry::new(Box::new(sink_p), 256)));
        {
            let mut lifecycle: Vec<String> = Vec::new();
            let mut created: Vec<PartitionId> = Vec::new();
            let mut churn_it = churn.iter().peekable();
            let mut served = 0usize;
            let mut wi = 0usize;
            while served < reqs.len() {
                let want = windows[wi % windows.len()];
                wi += 1;
                let mut end = (served + want).min(reqs.len());
                // A churn op inside this window splits it: requests before
                // the op are ingested (queued, not necessarily served),
                // then the lifecycle call fires mid-window.
                if let Some(&&(at, _)) = churn_it.peek() {
                    if at < end { end = at.max(served); }
                }
                pipe.run_window(&reqs[served..end]);
                served = end;
                while let Some(&&(at, target)) = churn_it.peek() {
                    if at > served { break; }
                    churn_it.next();
                    if created.is_empty() {
                        let got = pipe.create_partition(PartitionSpec::with_target(target));
                        if let Ok(id) = got { created.push(id); }
                        lifecycle.push(format!("{got:?}"));
                    } else {
                        let id = created.pop().unwrap();
                        lifecycle.push(format!("{:?}", pipe.destroy_partition(id)));
                    }
                }
            }
            pipe.barrier();
            prop_assert_eq!(&lifecycle, &ref_lifecycle, "lifecycle results diverged");
        }
        pipe.take_telemetry();
        prop_assert_eq!(pipe.bank_digests(), &ref_digests[..], "per-bank outcome digests diverged");
        prop_assert_eq!(format!("{:?}", pipe.stats_mut()), ref_stats, "stats diverged");
        let sizes: Vec<u64> = (0..pipe.num_partitions())
            .map(|p| pipe.partition_size(PartitionId::from_index(p)))
            .collect();
        prop_assert_eq!(sizes, ref_sizes, "partition sizes diverged");
        let mut tele: Vec<String> =
            reader_p.records().iter().map(|r| format!("{r:?}")).collect();
        tele.sort_unstable();
        prop_assert_eq!(tele, ref_tele, "telemetry record multiset diverged");
    }
}
