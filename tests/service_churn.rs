//! Service-mode lifecycle tests: partition churn must be deterministic
//! across engines, survive mid-churn checkpoints bit-identically, honor
//! QoS floors for whoever is live, drain destroyed partitions through
//! the ordinary demotion machinery, and reject hostile lifecycle state
//! in snapshots (while still accepting pre-lifecycle v2 payloads).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_repro::cache::{LineAddr, ZArray};
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{
    AccessOutcome, AccessRequest, BankedLlc, Llc, ParallelBankedLlc, PartitionId, PartitionSpec,
};
use vantage_repro::snapshot::{Decoder, Encoder, Snapshot};
use vantage_repro::ucp::{AllocationPolicy, PolicyInput, QosGuarantee};
use vantage_repro::workloads::{ChurnEvent, TenantChurn, TenantChurnConfig};

const FRAMES: usize = 4 * 1024;

fn churn_gen(seed: u64) -> TenantChurn {
    TenantChurn::try_new(TenantChurnConfig {
        max_tenants: 12,
        mean_lifetime: 12_000.0,
        mean_interarrival: 1_500.0,
        footprint_lines: 256,
        diurnal_period: 10_000,
        seed,
        ..TenantChurnConfig::default()
    })
    .expect("valid churn config")
}

fn fresh_llc(seed: u64) -> VantageLlc {
    let mut llc = VantageLlc::try_new(
        Box::new(ZArray::new(FRAMES, 4, 16, seed)),
        1,
        VantageConfig::default(),
        seed,
    )
    .expect("valid Vantage config");
    // The construction-time slot belongs to no tenant; the population
    // starts empty and is driven entirely by the churn events.
    llc.destroy_partition(PartitionId::from_index(0))
        .expect("fresh slot destroys cleanly");
    llc
}

/// Maps churn events onto lifecycle calls and accesses; every observable
/// (outcome stream, slot assignments, final stats and sizes) is captured
/// for cross-engine comparison.
#[derive(Default)]
struct Driven {
    outcomes: Vec<AccessOutcome>,
    slots: Vec<u16>,
    stats: String,
    sizes: Vec<u64>,
    observations: String,
}

fn drive(llc: &mut dyn Llc, gen: &mut TenantChurn, events: u64, batch: usize) -> Driven {
    drive_with(
        llc,
        gen,
        events,
        batch,
        &mut std::collections::HashMap::new(),
    )
}

fn drive_with(
    llc: &mut dyn Llc,
    gen: &mut TenantChurn,
    events: u64,
    batch: usize,
    slot_of: &mut std::collections::HashMap<u64, PartitionId>,
) -> Driven {
    let mut d = Driven::default();
    let mut pending: Vec<AccessRequest> = Vec::new();
    let flush = |llc: &mut dyn Llc, pending: &mut Vec<AccessRequest>, d: &mut Driven| {
        if batch == 0 {
            for &r in pending.iter() {
                d.outcomes.push(llc.access(r));
            }
        } else {
            for chunk in pending.chunks(batch) {
                llc.access_batch(chunk, &mut d.outcomes);
            }
        }
        pending.clear();
    };
    for _ in 0..events {
        match gen.next_event() {
            ChurnEvent::Arrive { tenant } => {
                flush(llc, &mut pending, &mut d);
                let slot = llc
                    .create_partition(PartitionSpec::with_target(256))
                    .expect("slot available under the admission cap");
                d.slots.push(slot.raw());
                slot_of.insert(tenant, slot);
            }
            ChurnEvent::Depart { tenant } => {
                flush(llc, &mut pending, &mut d);
                let slot = slot_of.remove(&tenant).expect("departing tenant is live");
                llc.destroy_partition(slot).expect("live slot destroys");
            }
            ChurnEvent::Access { tenant, addr } => {
                pending.push(AccessRequest::read(slot_of[&tenant], addr));
            }
        }
    }
    flush(llc, &mut pending, &mut d);
    d.stats = format!("{:?}", llc.stats_mut());
    d.sizes = (0..llc.num_partitions())
        .map(|p| llc.partition_size(PartitionId::from_index(p)))
        .collect();
    d.observations = format!("{:?}", llc.observations());
    d
}

fn build_banked(seed: u64, banks: usize) -> BankedLlc {
    let units = (0..banks)
        .map(|b| {
            let array = ZArray::new(FRAMES / banks, 4, 16, seed ^ (b as u64 + 1));
            let mut llc = VantageLlc::try_new(
                Box::new(array),
                1,
                VantageConfig::default(),
                seed ^ ((b as u64) << 8),
            )
            .expect("valid Vantage config");
            llc.destroy_partition(PartitionId::from_index(0))
                .expect("fresh slot destroys cleanly");
            Box::new(llc) as Box<dyn Llc>
        })
        .collect();
    BankedLlc::try_new(units, seed ^ 0xBA2C).expect("valid bank set")
}

/// Lifecycle calls interleaved with batched traffic must replay the
/// serial per-access engine bit-for-bit at every worker count.
#[test]
fn churn_is_deterministic_across_serial_and_parallel_engines() {
    let reference = drive(&mut build_banked(7, 4), &mut churn_gen(0xC0DE), 60_000, 0);
    assert!(
        reference.slots.len() > 8,
        "trace must churn the population (got {} arrivals)",
        reference.slots.len()
    );
    assert!(reference.outcomes.iter().any(|o| o.is_hit()));
    assert!(reference.outcomes.iter().any(|o| !o.is_hit()));
    for jobs in [1, 2, 4] {
        let mut par = ParallelBankedLlc::from_banked(build_banked(7, 4), jobs);
        let got = drive(&mut par, &mut churn_gen(0xC0DE), 60_000, 997);
        assert_eq!(
            got.slots, reference.slots,
            "slot ids diverged at {jobs} workers"
        );
        assert_eq!(
            got.outcomes, reference.outcomes,
            "outcomes diverged at {jobs} workers"
        );
        assert_eq!(
            got.stats, reference.stats,
            "stats diverged at {jobs} workers"
        );
        assert_eq!(
            got.sizes, reference.sizes,
            "sizes diverged at {jobs} workers"
        );
        assert_eq!(
            got.observations, reference.observations,
            "observations diverged at {jobs} workers"
        );
    }
}

/// A checkpoint taken mid-churn — slots draining, slots recycled, pending
/// arrival/departure queues non-empty — must restore into a fresh cache
/// and replay the original's future bit-identically.
#[test]
fn mid_churn_checkpoint_restores_bit_identically() {
    let mut gen = churn_gen(0xF00D);
    let mut llc = fresh_llc(11);
    let mut slot_of = std::collections::HashMap::new();
    drive_with(&mut llc, &mut gen, 30_000, 0, &mut slot_of);
    // Unconsumed lifecycle state at the save point: a fresh arrival and a
    // departure neither of which any observations() call has drained.
    let extra = llc
        .create_partition(PartitionSpec::with_target(64))
        .expect("slot available");
    llc.destroy_partition(extra).expect("live slot destroys");
    let mut enc = Encoder::new();
    llc.save_state(&mut enc);
    let bytes = enc.into_bytes();

    let mut restored = fresh_llc(11);
    restored
        .load_state(&mut Decoder::new(&bytes, "mid-churn checkpoint"))
        .expect("checkpoint restores");

    let mut gen2 = gen.clone();
    let mut slots2 = slot_of.clone();
    let a = drive_with(&mut llc, &mut gen, 30_000, 0, &mut slot_of);
    let b = drive_with(&mut restored, &mut gen2, 30_000, 0, &mut slots2);
    assert_eq!(a.slots, b.slots, "restored run assigned different slots");
    assert_eq!(a.outcomes, b.outcomes, "restored run diverged");
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.sizes, b.sizes);
    assert_eq!(
        a.observations, b.observations,
        "lifecycle queues or liveness diverged after restore"
    );
}

/// Destruction must not flush: lines stay resident at the destroy call and
/// leave only through the ordinary demotion machinery as other tenants
/// apply pressure.
#[test]
fn destroy_drains_through_demotions_not_bulk_eviction() {
    let mut llc = fresh_llc(3);
    let doomed = llc
        .create_partition(PartitionSpec::with_target(1024))
        .expect("slot available");
    let survivor = llc
        .create_partition(PartitionSpec::with_target(1024))
        .expect("slot available");
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..20_000 {
        let addr = LineAddr(1 << 32 | rng.gen_range(0..900));
        llc.access(AccessRequest::read(doomed, addr));
    }
    let resident = llc.partition_size(doomed);
    assert!(resident > 100, "partition must hold lines before destroy");
    let evictions_before = llc.stats().evictions;
    let demotions_before = llc.vantage_stats().demotions;
    llc.destroy_partition(doomed).expect("live slot destroys");
    assert_eq!(
        llc.stats().evictions,
        evictions_before,
        "destroy must not evict anything itself"
    );
    assert_eq!(
        llc.partition_size(doomed),
        resident,
        "destroy must leave resident lines in place"
    );
    // Other tenants' misses drain the doomed partition via demotions. The
    // survivor streams through fresh addresses so its walks' level-0 hash
    // positions cover every frame: a zcache walk only visits frames
    // reachable from the missing address, so a small fixed footprint would
    // leave a few frames — and any doomed lines parked there — unscanned
    // forever.
    for i in 0..200_000u64 {
        let addr = LineAddr(2 << 32 | i);
        llc.access(AccessRequest::read(survivor, addr));
        if llc.partition_size(doomed) == 0 {
            break;
        }
    }
    assert_eq!(
        llc.partition_size(doomed),
        0,
        "doomed partition never drained"
    );
    assert!(
        llc.vantage_stats().demotions > demotions_before,
        "drain must flow through the demotion machinery"
    );
    llc.invariants().expect("invariants hold after the drain");
    // The drained slot is recycled by the next create.
    let next = llc
        .create_partition(PartitionSpec::with_target(64))
        .expect("slot available");
    assert_eq!(next, doomed, "drained slot must be recycled first");
}

/// Under a uniform QoS contract, every live tenant's target honors the
/// guaranteed floor at every repartitioning epoch, across arrivals and
/// departures.
#[test]
fn qos_floors_hold_for_live_tenants_throughout_churn() {
    let floor = 64u64;
    let mut policy = QosGuarantee::uniform(floor, 1.0).expect("valid contract");
    let mut llc = fresh_llc(21);
    let mut gen = churn_gen(0xFACE);
    let mut slot_of = std::collections::HashMap::new();
    let mut epochs = 0u32;
    for step in 0..80_000u64 {
        match gen.next_event() {
            ChurnEvent::Arrive { tenant } => {
                let slot = llc
                    .create_partition(PartitionSpec::with_target(floor))
                    .expect("slot available");
                slot_of.insert(tenant, slot);
            }
            ChurnEvent::Depart { tenant } => {
                let slot = slot_of.remove(&tenant).expect("departing tenant is live");
                llc.destroy_partition(slot).expect("live slot destroys");
            }
            ChurnEvent::Access { tenant, addr } => {
                llc.access(AccessRequest::read(slot_of[&tenant], addr));
            }
        }
        if step % 5_000 == 4_999 {
            let capacity = llc.capacity() as u64;
            let obs = llc.observations();
            let targets = policy.reallocate(&PolicyInput {
                capacity,
                actual: &obs.actual,
                hits: &obs.hits,
                misses: &obs.misses,
                churn: &obs.churn,
                insertions: &obs.insertions,
                shared_hits: &obs.shared_hits,
                ownership_transfers: &obs.ownership_transfers,
                live: &obs.live,
                arrived: &obs.arrived,
                departed: &obs.departed,
            });
            for (p, (&t, &live)) in targets.iter().zip(obs.live.iter()).enumerate() {
                if live {
                    assert!(
                        t >= floor,
                        "epoch {epochs}: slot {p} granted {t} < floor {floor}"
                    );
                } else {
                    assert_eq!(t, 0, "epoch {epochs}: dead slot {p} granted capacity");
                }
            }
            llc.set_targets(&targets);
            epochs += 1;
        }
    }
    assert!(epochs >= 10, "run must cross many repartitioning epochs");
    assert!(!slot_of.is_empty(), "population must end non-empty");
}

/// Byte offsets of the v3 lifecycle tail, counted from the end of the
/// payload: `u8_slice` slot lane (8 + npart bytes), then the arrived and
/// departed queues as `u16_slice`s (8 + 2·len each).
fn tail_layout(npart: usize, arrived: usize, departed: usize) -> (usize, usize, usize) {
    let departed_bytes = 8 + 2 * departed;
    let arrived_bytes = 8 + 2 * arrived;
    let lane_bytes = 8 + npart;
    (lane_bytes, arrived_bytes, departed_bytes)
}

/// Byte size of the v5 ownership tail that follows the lifecycle tail:
/// a mode byte plus three length-prefixed `u64` counter lanes.
fn ownership_tail_bytes(npart: usize) -> usize {
    1 + 3 * (8 + 8 * npart)
}

/// Builds a checkpoint with known lifecycle-tail geometry: `npart` slots,
/// one pending arrival, one pending departure, and slot 1 drained (Free)
/// with slot 0 Active.
fn lifecycle_checkpoint() -> (VantageLlc, Vec<u8>, usize) {
    let mut llc = fresh_llc(17);
    let a = llc
        .create_partition(PartitionSpec::with_target(512))
        .expect("slot available");
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..8_000 {
        llc.access(AccessRequest::read(a, LineAddr(rng.gen_range(0..600))));
    }
    let _ = llc.observations(); // drain the queues accumulated so far
    let b = llc
        .create_partition(PartitionSpec::with_target(64))
        .expect("slot available");
    llc.destroy_partition(b)
        .expect("empty slot destroys instantly");
    // Queues now hold exactly one arrival (b) and one departure (b).
    let npart = llc.num_partitions();
    let mut enc = Encoder::new();
    llc.save_state(&mut enc);
    (llc, enc.into_bytes(), npart)
}

#[test]
fn v2_checkpoints_without_the_lifecycle_tail_still_restore() {
    let mut llc = fresh_llc(29);
    let a = llc
        .create_partition(PartitionSpec::with_target(512))
        .expect("slot available");
    let mut rng = SmallRng::seed_from_u64(31);
    for _ in 0..8_000 {
        llc.access(AccessRequest::read(a, LineAddr(rng.gen_range(0..600))));
    }
    let _ = llc.observations(); // empty queues: the tail carries no ids
    let npart = llc.num_partitions();
    let mut enc = Encoder::new();
    llc.save_state(&mut enc);
    let mut bytes = enc.into_bytes();
    // A v2 writer stopped at the array section; synthesize its payload by
    // trimming the v5 ownership tail and the v3 lifecycle tail (every slot
    // here is Active and no sharing has happened, so nothing is lost).
    let (lane, arr, dep) = tail_layout(npart, 0, 0);
    let own = ownership_tail_bytes(npart);
    bytes.truncate(bytes.len() - own - lane - arr - dep);
    let mut restored = fresh_llc(29);
    restored
        .load_state(&mut Decoder::new(&bytes, "v2 checkpoint"))
        .expect("v2 payload restores");
    // All slots live, no pending lifecycle events.
    let obs = restored.observations();
    assert!(
        obs.live.iter().all(|&l| l),
        "v2 restore must mark all slots live"
    );
    assert!(obs.arrived.is_empty() && obs.departed.is_empty());
    // Both caches replay the same future.
    let mut rng2 = SmallRng::seed_from_u64(77);
    for _ in 0..4_000 {
        let addr = LineAddr(rng2.gen_range(0..600));
        assert_eq!(
            llc.access(AccessRequest::read(a, addr)),
            restored.access(AccessRequest::read(a, addr)),
            "restored v2 cache diverged"
        );
    }
    assert_eq!(
        format!("{:?}", llc.stats()),
        format!("{:?}", restored.stats())
    );
}

#[test]
fn hostile_lifecycle_tails_are_rejected() {
    let (_, bytes, npart) = lifecycle_checkpoint();
    let (lane, arr, dep) = tail_layout(npart, 1, 1);
    // The v5 ownership tail sits past the lifecycle tail; every
    // end-relative offset below must skip over it.
    let own = ownership_tail_bytes(npart);
    let try_restore =
        |bytes: &[u8]| fresh_llc(17).load_state(&mut Decoder::new(bytes, "hostile checkpoint"));
    assert!(
        try_restore(&bytes).is_ok(),
        "pristine checkpoint must restore"
    );

    // Unknown slot-state discriminant.
    let mut evil = bytes.clone();
    let lane_start = evil.len() - own - dep - arr - lane + 8;
    evil[lane_start] = 3;
    assert!(try_restore(&evil).is_err(), "unknown slot state accepted");

    // A dead slot claiming capacity: flip the Active tenant (slot 0, the
    // recycled construction slot, carrying a nonzero target) to Free.
    let mut evil = bytes.clone();
    evil[lane_start] = 2;
    assert!(
        try_restore(&evil).is_err(),
        "dead slot with a capacity target accepted"
    );

    // A lifecycle queue naming an out-of-range slot.
    let mut evil = bytes.clone();
    let arrived_data = evil.len() - own - dep - 2; // the single arrived id
    evil[arrived_data] = 0xFF;
    evil[arrived_data + 1] = 0xFF; // UNMANAGED sentinel
    assert!(
        try_restore(&evil).is_err(),
        "out-of-range queue id accepted"
    );

    // A slot-state lane shorter than the slot table.
    let mut evil = bytes.clone();
    evil.drain(lane_start..lane_start + 1);
    assert!(
        try_restore(&evil).is_err(),
        "short slot-state lane accepted"
    );
}
