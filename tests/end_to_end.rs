//! End-to-end integration: full simulations spanning every crate
//! (workloads → cores/L1 → UCP → scheme → arrays).

use vantage_repro::sim::{ArrayKind, BaselineRank, CmpSim, SchemeKind, SystemConfig};
use vantage_repro::workloads::mixes;

fn quick_sys() -> SystemConfig {
    let mut s = SystemConfig::small_scale();
    s.instructions = 400_000;
    s.repartition_interval = 50_000;
    s
}

#[test]
fn every_scheme_completes_on_every_class_shape() {
    let all = mixes(4, 1, 21);
    // One mix from each "corner" class: homogeneous s/f/t/n.
    for prefix in ["ssss", "ffff", "tttt", "nnnn"] {
        let mix = all
            .iter()
            .find(|m| m.name.starts_with(prefix))
            .expect("class exists");
        for kind in [
            SchemeKind::Baseline {
                array: ArrayKind::SetAssoc { ways: 16 },
                rank: BaselineRank::Lru,
            },
            SchemeKind::WayPart,
            SchemeKind::Pipp,
            SchemeKind::vantage_paper(),
        ] {
            let r = CmpSim::new(quick_sys(), &kind, mix).run();
            assert_eq!(r.ipc.len(), 4, "{} on {}", r.label, mix.name);
            assert!(
                r.ipc.iter().all(|&i| i > 0.0 && i <= 1.0),
                "{} on {}: IPCs {:?}",
                r.label,
                mix.name,
                r.ipc
            );
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let mix = &mixes(4, 1, 5)[12];
    let kind = SchemeKind::vantage_paper();
    let a = CmpSim::new(quick_sys(), &kind, mix).run();
    let b = CmpSim::new(quick_sys(), &kind, mix).run();
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.l2_misses, b.l2_misses);
    assert_eq!(a.l2_accesses, b.l2_accesses);
}

#[test]
fn seeds_change_outcomes() {
    let kind = SchemeKind::vantage_paper();
    let mut s1 = quick_sys();
    s1.seed = 1;
    let mut s2 = quick_sys();
    s2.seed = 2;
    let mix = &mixes(4, 1, 5)[12];
    let a = CmpSim::new(s1, &kind, mix).run();
    let b = CmpSim::new(s2, &kind, mix).run();
    assert_ne!(
        a.l2_misses, b.l2_misses,
        "different seeds should perturb the run"
    );
}

#[test]
fn vantage_matches_baseline_within_noise_on_insensitive_mixes() {
    // On an all-insensitive mix nothing contends; partitioning must not
    // hurt (the paper's "maintains associativity" property).
    let all = mixes(4, 1, 33);
    let mix = all
        .iter()
        .find(|m| m.name.starts_with("nnnn"))
        .expect("class exists");
    let base = CmpSim::new(
        quick_sys(),
        &SchemeKind::Baseline {
            array: ArrayKind::SetAssoc { ways: 16 },
            rank: BaselineRank::Lru,
        },
        mix,
    )
    .run();
    let vant = CmpSim::new(quick_sys(), &SchemeKind::vantage_paper(), mix).run();
    let ratio = vant.throughput / base.throughput;
    assert!(
        ratio > 0.97,
        "Vantage degraded an uncontended mix: {ratio:.3}"
    );
}

#[test]
fn thirty_two_core_vantage_runs_with_32_partitions_on_4_ways() {
    // The scalability headline: 32 fine-grain partitions on a 4-way array.
    // The quota must comfortably cover cache warmup: the managed-fraction
    // bound below includes the fill transient, during which the unmanaged
    // region has not formed yet and forced managed evictions dominate.
    let mut sys = SystemConfig::large_scale();
    sys.instructions = 240_000;
    let mix = &mixes(32, 1, 3)[10];
    let r = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix).run();
    assert_eq!(r.ipc.len(), 32);
    assert!(r.throughput > 0.0);
    let mf = r.managed_eviction_fraction.expect("vantage reports it");
    assert!(
        mf < 0.2,
        "warmup-inclusive managed fraction out of range: {mf:.4}"
    );
}

#[test]
fn trace_targets_follow_ucp_and_actuals_follow_targets() {
    let mut sys = quick_sys();
    sys.instructions = 800_000;
    let all = mixes(4, 1, 9);
    let mix = all
        .iter()
        .find(|m| m.name.starts_with("sfft"))
        .expect("class exists");
    let mut sim = CmpSim::new(sys.clone(), &SchemeKind::vantage_paper(), mix);
    sim.enable_trace(sys.repartition_interval / 2);
    let r = sim.run();
    assert!(r.trace.len() >= 4);
    // Vantage bounds sizes from above: no partition materially exceeds its
    // (managed-scaled) target plus slack and the MSS reserve. Under-target
    // is fine — partitions only fill up to their demand.
    let mss = 32_768.0 / (0.5 * 52.0);
    for (i, s) in r.trace.iter().enumerate().skip(4) {
        let total: u64 = s.actuals.iter().sum();
        assert!(total <= 32_768, "actual sizes exceed capacity: {total}");
        for (p, (&t, &a)) in s.targets.iter().zip(&s.actuals).enumerate() {
            // Downsizing drains at a finite (A_max-limited) rate, so the
            // bound only applies once the target has been stable for a few
            // samples (§3.4, "Transient behavior").
            let stable = (i - 3..i).all(|j| r.trace[j].targets[p] == t);
            if !stable {
                continue;
            }
            let managed_target = t as f64 * 0.95; // scaled by 1 - u
            assert!(
                (a as f64) <= managed_target * 1.15 + mss,
                "partition {p} at {a} lines exceeds bound for target {t} (cycle {})",
                s.cycle
            );
        }
    }
    // And UCP must actually retarget over time for this phased mix.
    let first = &r.trace[1].targets;
    assert!(
        r.trace.iter().skip(2).any(|s| &s.targets != first),
        "UCP never changed its allocation"
    );
}
