//! Regression test: the telemetry producer path must not allocate.
//!
//! This file is its own test binary so it can install a counting global
//! allocator without affecting the rest of the suite. With a `NullSink`
//! installed, the steady-state access path (hits, misses, demotions,
//! evictions, periodic samples) must perform zero heap allocations — the
//! zero-cost claim behind shipping telemetry enabled-but-null.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vantage_repro::cache::{LineAddr, ZArray};
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{AccessRequest, Llc, PartitionId};
use vantage_repro::telemetry::{NullSink, Telemetry};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Deterministic xorshift so the measurement loop itself cannot allocate.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn nullsink_miss_path_is_allocation_free() {
    let mut llc = VantageLlc::try_new(
        Box::new(ZArray::new(8 * 1024, 4, 52, 11)),
        4,
        VantageConfig::default(),
        11,
    )
    .expect("valid Vantage config");
    llc.set_targets(&[2048; 4]);
    assert!(llc.set_telemetry(Telemetry::new(Box::new(NullSink), 0)));

    // Warm to steady state (2x capacity pressure: hits, demotions and
    // evictions all active) before counting.
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..200_000u64 {
        let r = xorshift(&mut state);
        let p = (r % 4) as usize;
        let base = ((p as u64) + 1) << 40;
        llc.access(AccessRequest::read(
            PartitionId::from_index(p),
            LineAddr(base + (r >> 8) % 1024),
        ));
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100_000u64 {
        let r = xorshift(&mut state);
        let p = (r % 4) as usize;
        let base = ((p as u64) + 1) << 40;
        llc.access(AccessRequest::read(
            PartitionId::from_index(p),
            LineAddr(base + (r >> 8) % 1024),
        ));
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state access path allocated {} times with a NullSink",
        after - before
    );
}
