//! Cross-crate isolation properties: the guarantees Vantage claims over
//! soft schemes, measured end to end.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_partitioning::PartitionId;
use vantage_repro::cache::ZArray;
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{
    AccessRequest, BaselineLlc, Llc, PippConfig, PippLlc, RankPolicy,
};

const LINES: usize = 8 * 1024;

/// Loads a quiet working set into partition 0, thrashes from partition 1,
/// then measures how many of partition 0's re-read accesses miss.
fn victim_misses(llc: &mut dyn Llc, ws: u64) -> u64 {
    for i in 0..ws {
        llc.access(AccessRequest::read(
            PartitionId::from_index(0),
            (0x10_0000u64 + i).into(),
        ));
    }
    for i in 0..ws {
        llc.access(AccessRequest::read(
            PartitionId::from_index(0),
            (0x10_0000u64 + i).into(),
        ));
    }
    for i in 0..600_000u64 {
        llc.access(AccessRequest::read(
            PartitionId::from_index(1),
            (0x99_0000_0000u64 + i).into(),
        ));
    }
    let before = llc.stats().misses[0];
    for i in 0..ws {
        llc.access(AccessRequest::read(
            PartitionId::from_index(0),
            (0x10_0000u64 + i).into(),
        ));
    }
    llc.stats().misses[0] - before
}

#[test]
fn vantage_protects_quiet_partitions_where_lru_does_not() {
    let ws = 2_000u64;

    let mut lru = BaselineLlc::try_new(Box::new(ZArray::new(LINES, 4, 52, 2)), 2, RankPolicy::Lru)
        .expect("valid baseline geometry");
    let lru_misses = victim_misses(&mut lru, ws);

    let mut vantage = VantageLlc::try_new(
        Box::new(ZArray::new(LINES, 4, 52, 2)),
        2,
        VantageConfig::default(),
        1,
    )
    .expect("valid Vantage config");
    vantage.set_targets(&[3_000, (LINES as u64) - 3_000]);
    let vantage_misses = victim_misses(&mut vantage, ws);

    assert!(
        lru_misses > ws * 9 / 10,
        "LRU should have flushed the quiet working set ({lru_misses}/{ws})"
    );
    assert!(
        vantage_misses < ws / 10,
        "Vantage failed to protect the quiet partition ({vantage_misses}/{ws})"
    );
}

#[test]
fn pipp_only_approximates_what_vantage_enforces() {
    // PIPP's pseudo-partitioning lets a churning partition exceed its share
    // at a quiet partner's expense; Vantage's bound is strict.
    let ws = 2_000u64;
    let mut pipp =
        PippLlc::try_new(LINES, 16, 2, PippConfig::default(), 3).expect("valid PIPP geometry");
    pipp.set_targets(&[(LINES / 2) as u64, (LINES / 2) as u64]);
    let pipp_misses = victim_misses(&mut pipp, ws);

    let mut vantage = VantageLlc::try_new(
        Box::new(ZArray::new(LINES, 4, 52, 3)),
        2,
        VantageConfig::default(),
        1,
    )
    .expect("valid Vantage config");
    vantage.set_targets(&[(LINES / 2) as u64, (LINES / 2) as u64]);
    let vantage_misses = victim_misses(&mut vantage, ws);

    assert!(
        vantage_misses <= pipp_misses,
        "Vantage ({vantage_misses}) should not leak more than PIPP ({pipp_misses})"
    );
    assert!(
        vantage_misses < ws / 10,
        "Vantage leak too large: {vantage_misses}/{ws}"
    );
}

#[test]
fn partitions_bound_sizes_even_with_32_uneven_partitions() {
    // Fine-grain scalability: 32 partitions with targets from 64 to ~1700
    // lines, all churning; every actual size lands within slack + MSS of
    // its target.
    let parts = 32;
    let mut llc = VantageLlc::try_new(
        Box::new(ZArray::new(LINES, 4, 52, 4)),
        parts,
        VantageConfig::default(),
        1,
    )
    .expect("valid Vantage config");
    // Targets 64..312 lines sum to 6016 ≤ capacity; the spare goes to the
    // last partition.
    let mut targets: Vec<u64> = (0..parts as u64).map(|p| 64 + p * 8).collect();
    let spare = LINES as u64 - targets.iter().sum::<u64>();
    targets[31] += spare;
    llc.set_targets(&targets);

    let mut rng = SmallRng::seed_from_u64(8);
    for i in 0..2_000_000u64 {
        let p = (i % parts as u64) as usize;
        let base = (p as u64 + 1) << 40;
        llc.access(AccessRequest::read(
            PartitionId::from_index(p),
            (base + rng.gen_range(0..50_000u64)).into(),
        ));
    }
    llc.invariants().expect("invariants hold");

    // MSS bound (Eq. 6): total borrowed ≈ 1/(A_max·R) of the cache.
    let mss_total = LINES as f64 / (0.5 * 52.0);
    for p in 0..parts {
        let t = llc.partition_target(PartitionId::from_index(p)) as f64;
        let s = llc.partition_size(PartitionId::from_index(p)) as f64;
        assert!(
            s <= t * 1.15 + mss_total,
            "partition {p}: size {s} vs target {t} (bound {})",
            t * 1.15 + mss_total
        );
    }
}
