//! Facade crate for the Vantage reproduction workspace.
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`cache`] — cache arrays (set-associative, skew, zcache), H3 hashing,
//!   and replacement-policy building blocks.
//! * [`core`] — the Vantage controller and the paper's analytical models.
//! * [`partitioning`] — the [`Llc`](partitioning::Llc) trait plus baseline
//!   schemes: unpartitioned LRU/RRIP, way-partitioning and PIPP.
//! * [`ucp`] — utility-based cache partitioning: UMON-DSS monitors and the
//!   Lookahead allocation algorithm.
//! * [`workloads`] — synthetic SPEC-CPU2006-like applications and
//!   multiprogrammed mix generation.
//! * [`sim`] — the CMP simulator (in-order cores, private L1s, shared
//!   partitioned L2, memory).
//! * [`telemetry`] — partition-dynamics observation: typed events, periodic
//!   per-partition samples, and swappable sinks (null, ring, CSV, JSON).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! # Quickstart
//!
//! ```
//! use vantage_repro::cache::ZArray;
//! use vantage_repro::core::{VantageConfig, VantageLlc};
//! use vantage_repro::partitioning::{AccessRequest, Llc, PartitionId};
//!
//! // A 4096-line Z4/52 zcache, partitioned in two with Vantage.
//! let array = ZArray::new(4096, 4, 52, 1);
//! let mut llc = VantageLlc::try_new(Box::new(array), 2, VantageConfig::default(), 1)
//!     .expect("valid Vantage config");
//! llc.set_targets(&[3000, 896]);
//! llc.access(AccessRequest::read(PartitionId::from_index(0), 0x100.into()));
//! ```

pub use vantage as core;
pub use vantage_cache as cache;
pub use vantage_partitioning as partitioning;
pub use vantage_sim as sim;
pub use vantage_snapshot as snapshot;
pub use vantage_telemetry as telemetry;
pub use vantage_ucp as ucp;
pub use vantage_workloads as workloads;
