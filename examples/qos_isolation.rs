//! QoS on a many-core CMP: one latency-critical service sharing a cache
//! with 31 batch thrashers — the scenario the paper's introduction
//! motivates. Without partitioning, the thrashers flush the service's
//! working set; with Vantage, one `set_targets` call pins its capacity.
//!
//! Run with: `cargo run --release --example qos_isolation`

use vantage_repro::sim::{ArrayKind, BaselineRank, CmpSim, SchemeKind, SystemConfig};
use vantage_repro::workloads::{spec_by_name, Category, Mix};

fn build_mix() -> Mix {
    // Core 0: the latency-critical service (cache-fitting: its working set
    // fits *if* it is protected). Cores 1-31: streaming batch jobs.
    let mut apps = vec![spec_by_name("omnetpp_like").expect("catalog app")];
    for i in 0..31 {
        let name = ["mcf_like", "milc_like", "GemsFDTD_like", "libquantum_like"][i % 4];
        apps.push(spec_by_name(name).expect("catalog app"));
    }
    Mix {
        name: "qos".into(),
        class: [
            Category::Fitting,
            Category::Streaming,
            Category::Streaming,
            Category::Streaming,
        ],
        apps,
    }
}

fn main() {
    let mut sys = SystemConfig::large_scale();
    sys.instructions = 4_000_000;
    let mix = build_mix();

    println!("32 cores, 8 MB shared L2; core 0 runs a 1.2 MB-working-set service,");
    println!("cores 1-31 stream. Comparing the service's L2 miss rate:\n");

    let report = |label: &str, kind: &SchemeKind| -> f64 {
        let r = CmpSim::new(sys.clone(), kind, &mix).run();
        let mr = r.l2_misses[0] as f64 / r.l2_accesses[0].max(1) as f64;
        println!(
            "  {label:<22} service miss rate {:>5.1}%   service IPC {:.3}   total tput {:.1}",
            100.0 * mr,
            r.ipc[0],
            r.throughput
        );
        mr
    };

    let unprotected = report(
        "unpartitioned LRU",
        &SchemeKind::Baseline {
            array: ArrayKind::SetAssoc { ways: 64 },
            rank: BaselineRank::Lru,
        },
    );
    let protected = report("Vantage (UCP)", &SchemeKind::vantage_paper());

    println!(
        "\nVantage cuts the service's miss rate by {:.0}% ({:.1}% -> {:.1}%).",
        100.0 * (1.0 - protected / unprotected),
        100.0 * unprotected,
        100.0 * protected
    );
    assert!(
        protected < 0.6 * unprotected,
        "partitioning should protect the service"
    );
    println!("OK: the service's working set survives 31 thrashers.");
}
