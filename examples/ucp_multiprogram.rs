//! A full multiprogrammed run: four SPEC-like applications on the paper's
//! 4-core machine, comparing every partitioning scheme under UCP — a
//! miniature of Fig. 6.
//!
//! Run with: `cargo run --release --example ucp_multiprogram`

use vantage_repro::sim::{ArrayKind, BaselineRank, CmpSim, SchemeKind, SystemConfig};
use vantage_repro::workloads::mixes;

fn main() {
    let mut sys = SystemConfig::small_scale();
    sys.instructions = 3_000_000;

    // One generated mix per class; pick a "sftn" class mix (stream +
    // friendly + fitting + insensitive): maximal diversity.
    let all = mixes(4, 1, 42);
    let mix = all
        .iter()
        .find(|m| m.name.starts_with("sftn"))
        .expect("class exists");
    println!(
        "mix {}: {}",
        mix.name,
        mix.apps
            .iter()
            .map(|a| a.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "machine: 4 cores, 2 MB shared L2, UCP repartitions every {} cycles\n",
        sys.repartition_interval
    );

    let baseline = SchemeKind::Baseline {
        array: ArrayKind::SetAssoc { ways: 16 },
        rank: BaselineRank::Lru,
    };
    let base_tp = CmpSim::new(sys.clone(), &baseline, mix).run().throughput;

    println!(
        "  {:<18} {:>10} {:>10}   per-core IPC",
        "scheme", "tput", "vs LRU"
    );
    for kind in [
        baseline.clone(),
        SchemeKind::WayPart,
        SchemeKind::Pipp,
        SchemeKind::vantage_paper(),
    ] {
        let r = CmpSim::new(sys.clone(), &kind, mix).run();
        let ipcs: Vec<String> = r.ipc.iter().map(|i| format!("{i:.3}")).collect();
        println!(
            "  {:<18} {:>10.3} {:>9.1}%   [{}]",
            r.label,
            r.throughput,
            100.0 * (r.throughput / base_tp - 1.0),
            ipcs.join(", ")
        );
    }
    println!("\n(Vantage partitions the 4-way zcache at line granularity; the");
    println!(" way-based schemes carve the 16-way cache into whole ways.)");
}
