//! Quickstart: partition a zcache with Vantage and watch it enforce
//! line-granularity allocations under pressure.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_repro::cache::ZArray;
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{AccessRequest, Llc, PartitionId};

fn main() {
    // A 2 MB last-level cache: 32768 64-byte lines, as a Z4/52 zcache
    // (4 ways, 52 replacement candidates — the paper's configuration).
    let array = ZArray::new(32 * 1024, 4, 52, 0xC0FFEE);
    let mut llc = VantageLlc::try_new(Box::new(array), 2, VantageConfig::default(), 1)
        .expect("valid Vantage config");

    // Fine-grain targets: 3/4 of the cache to partition 0, 1/4 to partition
    // 1 — Vantage takes these at cache-line granularity, not way counts.
    llc.set_targets(&[24 * 1024, 8 * 1024]);

    // Both partitions churn hard: working sets far larger than the cache.
    let mut rng = SmallRng::seed_from_u64(7);
    for i in 0..2_000_000u64 {
        let part = (i % 2) as usize;
        let base = (part as u64 + 1) << 40;
        llc.access(AccessRequest::read(
            PartitionId::from_index(part),
            (base + rng.gen_range(0..200_000u64)).into(),
        ));
    }

    println!("partition | target (lines) | actual (lines)");
    for p in 0..2 {
        println!(
            "    {p}     |     {:>6}     |     {:>6}",
            llc.partition_target(PartitionId::from_index(p)),
            llc.partition_size(PartitionId::from_index(p))
        );
    }
    let v = llc.vantage_stats();
    println!(
        "\ndemotions: {}, promotions: {}, unmanaged evictions: {}",
        v.demotions, v.promotions, v.unmanaged_evictions
    );
    println!(
        "forced managed evictions: {} ({:.2e} of evictions — the isolation metric)",
        v.forced_managed_evictions,
        v.managed_eviction_fraction()
    );
    println!(
        "unmanaged region: {} lines (target {})",
        llc.unmanaged_size(),
        llc.unmanaged_target()
    );

    assert!(
        llc.partition_size(PartitionId::from_index(0))
            > 2 * llc.partition_size(PartitionId::from_index(1)),
        "the 3:1 allocation should be visible in actual sizes"
    );
    println!("\nOK: sizes track the 3:1 fine-grain allocation.");
}
