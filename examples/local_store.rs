//! Software-managed local stores via partitioning (paper §1, citing
//! Chiou et al. and virtual local stores): a runtime pins an address range
//! by giving it a dedicated partition, getting scratchpad-like residency
//! guarantees from an ordinary cache — then releases it by deleting the
//! partition (target 0), which Vantage drains without flushing anything
//! else (§3.4, "partitions are cheap").
//!
//! Run with: `cargo run --release --example local_store`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_repro::cache::ZArray;
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{AccessRequest, Llc, PartitionId};

const LINES: usize = 16 * 1024; // 1 MB
const STORE_LINES: u64 = 3_000; // ~190 KB scratchpad

fn main() {
    // Partition 0 = regular traffic; partition 1 = the pinned local store.
    let array = ZArray::new(LINES, 4, 52, 5);
    let mut llc = VantageLlc::try_new(Box::new(array), 2, VantageConfig::default(), 1)
        .expect("valid Vantage config");
    let mut rng = SmallRng::seed_from_u64(11);

    // --- Phase 1: allocate the local store and load it. ---
    llc.set_targets(&[LINES as u64 - STORE_LINES - 512, STORE_LINES + 512]);
    for i in 0..STORE_LINES {
        llc.access(AccessRequest::read(
            PartitionId::from_index(1),
            (0x5_0000_0000u64 + i).into(),
        ));
    }
    println!(
        "local store loaded: {} lines resident",
        llc.partition_size(PartitionId::from_index(1))
    );

    // --- Phase 2: heavy regular traffic; the store must stay resident. ---
    for _ in 0..1_500_000u64 {
        llc.access(AccessRequest::read(
            PartitionId::from_index(0),
            (0x9_0000_0000u64 + rng.gen_range(0..100_000u64)).into(),
        ));
    }
    let misses_before = llc.stats().misses[1];
    for i in 0..STORE_LINES {
        llc.access(AccessRequest::read(
            PartitionId::from_index(1),
            (0x5_0000_0000u64 + i).into(),
        ));
    }
    let store_misses = llc.stats().misses[1] - misses_before;
    println!(
        "after 1.5M interfering accesses: store re-read misses {store_misses}/{STORE_LINES} \
         ({:.2}%)",
        100.0 * store_misses as f64 / STORE_LINES as f64
    );
    assert!(
        store_misses < STORE_LINES / 50,
        "pinned store lost {store_misses} of {STORE_LINES} lines"
    );

    // --- Phase 3: free the store (delete the partition). ---
    llc.set_targets(&[LINES as u64, 0]);
    for _ in 0..1_500_000u64 {
        llc.access(AccessRequest::read(
            PartitionId::from_index(0),
            (0x9_0000_0000u64 + rng.gen_range(0..100_000u64)).into(),
        ));
    }
    println!(
        "after release: store partition holds {} lines (drained), regular partition {}",
        llc.partition_size(PartitionId::from_index(1)),
        llc.partition_size(PartitionId::from_index(0))
    );
    assert!(
        llc.partition_size(PartitionId::from_index(1)) < STORE_LINES / 4,
        "deleted partition should drain"
    );
    println!("OK: scratchpad semantics from an ordinary cache, no flushes needed.");
}
