//! Cache timing side channels over *shared data*: a prime+probe attacker
//! (paper §1, citing Percival's attack) whose probe set the victim also
//! touches. Capacity partitioning closes the classic occupancy channel —
//! but when attacker and victim share lines, the ownership layer decides
//! whether a channel remains:
//!
//! * `adopt` (default) — a cross-partition hit re-tags the line to the
//!   accessor, so the victim drags the probe set into its own partition
//!   and evicts it there. Vantage still leaks ~1 bit per trial.
//! * `pin` — lines stay with their first owner; the victim's activity
//!   cannot displace the attacker's probe set. The channel collapses.
//! * `replicate` — each partition fills its own copy; same result.
//!
//! Pick the mode on the command line:
//! `cargo run --release --example side_channel -- pin`
//!
//! The probe signal is counted from `access_batch` outcomes (every probe
//! request reports hit/miss synchronously); per-partition sharing
//! pressure comes from the `observations()` lanes.

use vantage_repro::cache::{ShareMode, ZArray};
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{
    AccessOutcome, AccessRequest, BaselineLlc, Llc, PartitionId, RankPolicy,
};
use vantage_repro::workloads::{binary_channel_bits, count_misses, PrimeProbe};

const LINES: usize = 4 * 1024;
const TRIALS: u64 = 64;

/// Runs `TRIALS` prime+probe rounds and estimates the channel: bits per
/// trial of the (secret, probe-missed) mutual information.
fn leak_bits(llc: &mut dyn Llc, pp: &PrimeProbe) -> f64 {
    let mut reqs: Vec<AccessRequest> = Vec::new();
    let mut outs: Vec<AccessOutcome> = Vec::new();
    // n[secret][observed]: observed = "any probe line missed".
    let mut table = [0u64; 4];
    for trial in 0..TRIALS {
        reqs.clear();
        outs.clear();
        pp.prime(&mut reqs);
        llc.access_batch(&reqs, &mut outs);

        let secret = trial % 2 == 1;
        reqs.clear();
        pp.victim_act(secret, trial, &mut reqs);
        if !reqs.is_empty() {
            outs.clear();
            llc.access_batch(&reqs, &mut outs);
        }

        reqs.clear();
        outs.clear();
        pp.probe(&mut reqs);
        llc.access_batch(&reqs, &mut outs);
        let observed = count_misses(&outs) > 0;
        table[2 * usize::from(secret) + usize::from(observed)] += 1;
    }
    binary_channel_bits(table[0], table[1], table[2], table[3])
}

fn main() {
    let mode = std::env::args()
        .nth(1)
        .map(|s| ShareMode::parse(&s).unwrap_or_else(|| panic!("unknown share mode: {s}")))
        .unwrap_or_default();
    println!(
        "prime+probe over shared data on a {LINES}-line L2, share mode `{}`\n",
        mode.label()
    );

    // The shared geometry: attacker primes a probe set in the shared
    // region, the victim either touches it and thrashes (secret = 1) or
    // idles (secret = 0). The sweep wraps the whole cache so the
    // unpartitioned reference genuinely evicts the probe set.
    let mut pp = PrimeProbe::new(PartitionId::from_index(0), PartitionId::from_index(1), 9);
    pp.victim_accesses = 2 * LINES;

    let mut shared =
        BaselineLlc::try_new(Box::new(ZArray::new(LINES, 4, 52, 9)), 2, RankPolicy::Lru)
            .expect("valid baseline geometry");
    let leak_shared = leak_bits(&mut shared, &pp);
    println!("  unpartitioned LRU  : {leak_shared:.3} bits/trial");

    let mut vantage = VantageLlc::try_new(
        Box::new(ZArray::new(LINES, 4, 52, 9)),
        2,
        VantageConfig::default(),
        1,
    )
    .expect("valid Vantage config");
    vantage.set_targets(&[(LINES / 4) as u64; 2]);
    assert!(vantage.set_share_mode(mode));
    let leak_vantage = leak_bits(&mut vantage, &pp);
    let obs = vantage.observations();
    println!(
        "  Vantage ({:>9}) : {leak_vantage:.3} bits/trial",
        mode.label()
    );
    println!(
        "\nsharing pressure seen by the victim's partition: {} shared hits, {} adoptions",
        obs.shared_hits[1], obs.ownership_transfers[1]
    );

    assert!(
        leak_shared > 0.5,
        "the unpartitioned channel must be real ({leak_shared:.3} bits/trial)"
    );
    match mode {
        ShareMode::Adopt => {
            assert!(
                leak_vantage > 0.5,
                "adopt re-tags shared lines into the victim's partition; the \
                 ownership channel should stay open ({leak_vantage:.3} bits/trial)"
            );
            println!(
                "\npartitioning alone does NOT close a shared-data channel: \
                 re-run with `pin` or `replicate`."
            );
        }
        ShareMode::Pin | ShareMode::Replicate => {
            assert!(
                leak_vantage < 0.02,
                "{} should close the channel ({leak_vantage:.3} bits/trial)",
                mode.label()
            );
            assert_eq!(
                obs.ownership_transfers[1], 0,
                "only adopt transfers ownership"
            );
            println!(
                "\nOK: `{}` closes the shared-data prime+probe channel.",
                mode.label()
            );
        }
    }
}
