//! Cache timing side channels: a prime+probe attacker trying to observe a
//! victim's accesses through shared-cache evictions (paper §1, citing
//! Percival's attack). Partitioning closes the channel because the victim's
//! fills can no longer evict the attacker's primed lines.
//!
//! The "signal" measured here is the number of attacker probe misses caused
//! while the victim works: on an unpartitioned cache it is large (and
//! address-dependent — that is the leak); under Vantage it collapses to
//! (near) zero.
//!
//! Run with: `cargo run --release --example side_channel`

use vantage_repro::cache::ZArray;
use vantage_repro::core::{VantageConfig, VantageLlc};
use vantage_repro::partitioning::{AccessRequest, BaselineLlc, Llc, PartitionId, RankPolicy};

const LINES: usize = 8 * 1024;
const PRIME_LINES: u64 = 4 * 1024;

/// Primes the attacker's lines, lets the victim run, then probes and counts
/// attacker misses (the side-channel signal).
fn prime_probe(llc: &mut dyn Llc, victim_accesses: u64) -> u64 {
    let attacker = PartitionId::from_index(0);
    let victim = PartitionId::from_index(1);

    // Prime: load the attacker's monitoring set.
    for i in 0..PRIME_LINES {
        llc.access(AccessRequest::read(attacker, (0x1_0000_0000u64 + i).into()));
    }
    // Re-touch so every primed line is resident and warm.
    for i in 0..PRIME_LINES {
        llc.access(AccessRequest::read(attacker, (0x1_0000_0000u64 + i).into()));
    }

    // Victim activity: a secret-dependent walk over its own data.
    for i in 0..victim_accesses {
        let secret_stride = 3 + (i / 1000) % 5; // "key-dependent" pattern
        llc.access(AccessRequest::read(
            victim,
            (0x2_0000_0000u64 + (i * secret_stride) % 60_000).into(),
        ));
    }

    // Probe: attacker misses reveal victim-induced evictions.
    let before = llc.stats().misses[attacker.index()];
    for i in 0..PRIME_LINES {
        llc.access(AccessRequest::read(attacker, (0x1_0000_0000u64 + i).into()));
    }
    llc.stats().misses[attacker.index()] - before
}

fn main() {
    println!("prime+probe over a shared 512 KB L2 (8192 lines), victim makes 300k accesses\n");

    let mut shared =
        BaselineLlc::try_new(Box::new(ZArray::new(LINES, 4, 52, 9)), 2, RankPolicy::Lru)
            .expect("valid baseline geometry");
    let leak_shared = prime_probe(&mut shared, 300_000);
    println!(
        "  unpartitioned LRU : attacker observes {leak_shared} probe misses ({:.0}% of primed set)",
        100.0 * leak_shared as f64 / PRIME_LINES as f64
    );

    // Vantage with a strong-isolation configuration: a larger unmanaged
    // region drives the forced-eviction probability to ~1e-4 (§4.3).
    let cfg = VantageConfig::for_guarantees(52, 1e-4, 0.4, 0.1);
    let u = cfg.unmanaged_fraction;
    let mut vantage = VantageLlc::try_new(Box::new(ZArray::new(LINES, 4, 52, 9)), 2, cfg, 1)
        .expect("valid Vantage config");
    // Pin the attacker's partition with enough headroom that its primed set
    // fits its *managed* share (targets are scaled by 1-u onto the managed
    // region), with 15% slack margin on top.
    let attacker_target = ((PRIME_LINES as f64 * 1.15) / (1.0 - u)).ceil() as u64;
    vantage.set_targets(&[attacker_target, LINES as u64 - attacker_target]);
    let leak_vantage = prime_probe(&mut vantage, 300_000);
    println!(
        "  Vantage (P_ev=1e-4): attacker observes {leak_vantage} probe misses ({:.2}% of primed set)",
        100.0 * leak_vantage as f64 / PRIME_LINES as f64
    );

    println!(
        "\nchannel attenuation: {:.0}x fewer observable evictions",
        leak_shared.max(1) as f64 / leak_vantage.max(1) as f64
    );
    assert!(
        leak_vantage * 20 < leak_shared,
        "partitioning should collapse the side channel ({leak_vantage} vs {leak_shared})"
    );
    println!("OK: isolation closes the prime+probe channel.");
}
