//! LFOC-style clustered allocation for large churning populations.
//!
//! Fine-grain schemes like Vantage can *enforce* hundreds of partitions,
//! but giving every tenant its own distinct target makes the allocator
//! itself the bottleneck: each epoch recomputes and re-tiles one value
//! per tenant, and the scheme's setpoint controllers chase hundreds of
//! independent targets. LFOC (Xiang et al., ICPP 2019) observed that
//! tenants with similar miss pressure are happy with the *same* share,
//! so it groups them into a bounded number of clusters and sizes the
//! cluster, not the tenant.
//!
//! [`ClusteredPolicy`] reproduces that idea on top of the
//! [`AllocationPolicy`] seam:
//!
//! 1. Live tenants are ranked by accumulated miss pressure.
//! 2. The ranking is cut into at most `max_clusters` quantile buckets.
//! 3. Each tenant is guaranteed `min_lines`; the spare capacity is
//!    apportioned across clusters by aggregate demand, then evenly
//!    within a cluster.
//!
//! The result: however many tenants are live, the policy hands the
//! scheme at most `max_clusters` distinct target values (give or take
//! one line of largest-remainder rounding), bounding both allocator
//! work and enforcement churn.

use crate::alloc_policy::{apportion, AllocationPolicy, PolicyInput};

/// Errors constructing a [`ClusteredPolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// `max_clusters` was zero.
    NoClusters,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoClusters => f.write_str("max_clusters must be at least 1"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The clustered allocator; see the [module docs](self).
#[derive(Clone, Debug)]
pub struct ClusteredPolicy {
    max_clusters: usize,
    min_lines: u64,
    clusters_formed: u64,
}

impl ClusteredPolicy {
    /// Creates the policy: at most `max_clusters` distinct targets, with
    /// every live tenant guaranteed `min_lines` (scaled down
    /// proportionally if the population outgrows the cache).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoClusters`] when `max_clusters` is zero.
    pub fn try_new(max_clusters: usize, min_lines: u64) -> Result<Self, ClusterError> {
        if max_clusters == 0 {
            return Err(ClusterError::NoClusters);
        }
        Ok(Self {
            max_clusters,
            min_lines,
            clusters_formed: 0,
        })
    }

    /// The configured cluster bound.
    pub fn max_clusters(&self) -> usize {
        self.max_clusters
    }

    /// The per-tenant guaranteed floor, in lines.
    pub fn min_lines(&self) -> u64 {
        self.min_lines
    }

    /// Clusters formed by the most recent [`reallocate`] call
    /// (0 before the first call or when no tenant was live).
    ///
    /// [`reallocate`]: AllocationPolicy::reallocate
    pub fn clusters_formed(&self) -> u64 {
        self.clusters_formed
    }
}

impl vantage_snapshot::Snapshot for ClusteredPolicy {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64(self.clusters_formed);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        self.clusters_formed = dec.take_u64()?;
        Ok(())
    }
}

impl AllocationPolicy for ClusteredPolicy {
    fn name(&self) -> &'static str {
        "clustered"
    }

    fn reallocate(&mut self, input: &PolicyInput<'_>) -> Vec<u64> {
        let n = input.num_partitions();
        let live: Vec<usize> = (0..n).filter(|&p| input.is_live(p)).collect();
        let mut targets = vec![0u64; n];
        if live.is_empty() {
            self.clusters_formed = 0;
            return targets;
        }
        let floor_total = self.min_lines.saturating_mul(live.len() as u64);
        if floor_total > input.capacity {
            // Population outgrew the cache: degrade to an even split of
            // whatever is there — one cluster, uniform targets.
            let even = vec![1.0; live.len()];
            for (i, t) in apportion(input.capacity, &even).into_iter().enumerate() {
                targets[live[i]] = t;
            }
            self.clusters_formed = 1;
            return targets;
        }
        for &p in &live {
            targets[p] = self.min_lines;
        }
        let spare = input.capacity - floor_total;
        // Rank live tenants heaviest-missing first; ties by slot index
        // keep the cut deterministic.
        let mut ranked = live;
        ranked.sort_by_key(|&p| {
            (
                std::cmp::Reverse(input.misses.get(p).copied().unwrap_or(0)),
                p,
            )
        });
        let k = self.max_clusters.min(ranked.len());
        let bounds: Vec<usize> = (0..=k).map(|j| j * ranked.len() / k).collect();
        let clusters: Vec<&[usize]> = bounds.windows(2).map(|w| &ranked[w[0]..w[1]]).collect();
        let demand: Vec<f64> = clusters
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&p| input.misses.get(p).copied().unwrap_or(0) as f64 + 1.0)
                    .sum()
            })
            .collect();
        for (cluster, budget) in clusters.iter().zip(apportion(spare, &demand)) {
            let even = vec![1.0; cluster.len()];
            for (&p, share) in cluster.iter().zip(apportion(budget, &even)) {
                targets[p] += share;
            }
        }
        self.clusters_formed = k as u64;
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input<'a>(
        capacity: u64,
        misses: &'a [u64],
        zeros: &'a [u64],
        live: &'a [bool],
    ) -> PolicyInput<'a> {
        PolicyInput {
            capacity,
            actual: zeros,
            hits: zeros,
            misses,
            churn: zeros,
            insertions: zeros,
            shared_hits: &[],
            ownership_transfers: &[],
            live,
            arrived: &[],
            departed: &[],
        }
    }

    #[test]
    fn rejects_zero_clusters() {
        assert_eq!(
            ClusteredPolicy::try_new(0, 10).err(),
            Some(ClusterError::NoClusters)
        );
    }

    #[test]
    fn bounds_distinct_targets_to_cluster_count() {
        let mut pol = ClusteredPolicy::try_new(4, 8).expect("valid cluster config");
        let misses: Vec<u64> = (0..64).map(|p| p * 100).collect();
        let zeros = vec![0u64; 64];
        let inp = input(100_000, &misses, &zeros, &[]);
        let t = pol.reallocate(&inp);
        assert_eq!(t.iter().sum::<u64>(), 100_000);
        assert_eq!(pol.clusters_formed(), 4);
        assert!(t.iter().all(|&x| x >= 8), "floors hold: {t:?}");
        // Largest-remainder rounding smears each cluster's shared value
        // across at most two adjacent line counts.
        let mut distinct: Vec<u64> = t.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 8, "too many targets: {distinct:?}");
    }

    #[test]
    fn heavier_clusters_get_bigger_budgets() {
        let mut pol = ClusteredPolicy::try_new(2, 10).expect("valid cluster config");
        let misses = [1_000u64, 1_000, 1, 1];
        let zeros = [0u64; 4];
        let t = pol.reallocate(&input(10_000, &misses, &zeros, &[]));
        assert_eq!(t.iter().sum::<u64>(), 10_000);
        assert!(t[0] > t[2] && t[1] > t[3], "pressure ignored: {t:?}");
        assert_eq!(t[0], t[1], "same cluster, same share");
    }

    #[test]
    fn dead_slots_get_nothing() {
        let mut pol = ClusteredPolicy::try_new(3, 10).expect("valid cluster config");
        let misses = [50u64, 0, 50];
        let zeros = [0u64; 3];
        let live = [true, false, true];
        let t = pol.reallocate(&input(1_000, &misses, &zeros, &live));
        assert_eq!(t[1], 0);
        assert_eq!(t.iter().sum::<u64>(), 1_000);
    }

    #[test]
    fn overcrowded_population_degrades_to_even_split() {
        let mut pol = ClusteredPolicy::try_new(4, 100).expect("valid cluster config");
        let misses = [9u64, 5, 1];
        let zeros = [0u64; 3];
        // 3 tenants x 100-line floor > 120 lines of capacity.
        let t = pol.reallocate(&input(120, &misses, &zeros, &[]));
        assert_eq!(t, vec![40, 40, 40]);
        assert_eq!(pol.clusters_formed(), 1);
    }

    #[test]
    fn empty_population_returns_zeros() {
        let mut pol = ClusteredPolicy::try_new(4, 10).expect("valid cluster config");
        let zeros = [0u64; 2];
        let live = [false, false];
        assert_eq!(
            pol.reallocate(&input(500, &zeros, &zeros, &live)),
            vec![0, 0]
        );
        assert_eq!(pol.clusters_formed(), 0);
    }
}
