//! UMON-DSS: utility monitoring with dynamic set sampling.
//!
//! Each core gets a small auxiliary tag directory that behaves like a
//! `ways`-way LRU cache the core would own exclusively. Only a sampled
//! subset of sets is instrumented (the paper uses 64 sets), which dynamic
//! set sampling shows is enough to estimate the full cache's utility
//! curves. A hit at LRU stack distance `d` increments `hits[d]`; the miss
//! curve for `w` allocated ways is then
//! `misses(w) = misses + Σ_{d ≥ w} hits[d]`.

use vantage_cache::hash::mix_bucket;
use vantage_cache::LineAddr;

/// A per-core utility monitor.
///
/// # Example
///
/// ```
/// use vantage_ucp::Umon;
///
/// let mut umon = Umon::new(16, 64, 2048, 1);
/// for round in 0..10u64 {
///     for line in 0..3000u64 {
///         umon.access(vantage_cache::LineAddr(line * 64));
///     }
///     let _ = round;
/// }
/// let curve = umon.miss_curve();
/// assert_eq!(curve.len(), 17);
/// // More ways never hurt: the curve is non-increasing.
/// assert!(curve.windows(2).all(|w| w[1] <= w[0]));
/// ```
#[derive(Clone, Debug)]
pub struct Umon {
    ways: usize,
    /// Sampled sets, each an LRU stack of tags (MRU first).
    stacks: Vec<Vec<u64>>,
    /// `hits[d]`: hits observed at stack distance `d`.
    hits: Vec<u64>,
    misses: u64,
    /// Total sets of the cache being modeled; used as the sampling space.
    model_sets: u32,
    sample_seed: u64,
}

impl Umon {
    /// Creates a monitor with `ways` ways and `sampled_sets` sampled sets,
    /// modeling a cache of `model_sets` total sets. `seed` draws the
    /// sampling hash.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `sampled_sets > model_sets`.
    pub fn new(ways: usize, sampled_sets: usize, model_sets: u32, seed: u64) -> Self {
        assert!(ways > 0, "ways must be non-zero");
        assert!(
            sampled_sets > 0 && sampled_sets as u32 <= model_sets,
            "bad set sampling"
        );
        Self {
            ways,
            stacks: vec![Vec::with_capacity(ways); sampled_sets],
            hits: vec![0; ways],
            misses: 0,
            model_sets,
            sample_seed: seed ^ 0x0D5,
        }
    }

    /// The monitored associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Observes one LLC access by this monitor's core. Accesses mapping to
    /// non-sampled sets are ignored (that is the sampling).
    pub fn access(&mut self, addr: LineAddr) {
        let set = mix_bucket(addr.0, self.sample_seed, self.model_sets);
        if set as usize >= self.stacks.len() {
            return;
        }
        let stack = &mut self.stacks[set as usize];
        if let Some(pos) = stack.iter().position(|&t| t == addr.0) {
            self.hits[pos] += 1;
            let tag = stack.remove(pos);
            stack.insert(0, tag);
        } else {
            self.misses += 1;
            if stack.len() == self.ways {
                stack.pop();
            }
            stack.insert(0, addr.0);
        }
    }

    /// Hit counters by stack distance.
    pub fn hit_counters(&self) -> &[u64] {
        &self.hits
    }

    /// Misses observed (at full monitored associativity).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total sampled accesses.
    pub fn accesses(&self) -> u64 {
        self.misses + self.hits.iter().sum::<u64>()
    }

    /// The miss curve: element `w` is the number of (sampled) misses this
    /// core would suffer with `w` ways, for `w ∈ 0..=ways`.
    pub fn miss_curve(&self) -> Vec<u64> {
        let mut curve = Vec::with_capacity(self.ways + 1);
        let mut tail: u64 = self.hits.iter().sum::<u64>() + self.misses;
        curve.push(tail); // 0 ways: every access misses
        for d in 0..self.ways {
            tail -= self.hits[d];
            curve.push(tail);
        }
        curve
    }

    /// Halves all counters — the paper's inter-interval decay, letting the
    /// monitor adapt to phase changes while keeping history.
    pub fn decay(&mut self) {
        for h in &mut self.hits {
            *h /= 2;
        }
        self.misses /= 2;
    }

    /// Clears counters (but not the tag stacks).
    pub fn reset(&mut self) {
        self.hits.fill(0);
        self.misses = 0;
    }
}

impl vantage_snapshot::Snapshot for Umon {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64(self.stacks.len() as u64);
        for stack in &self.stacks {
            enc.put_u64_slice(stack);
        }
        enc.put_u64_slice(&self.hits);
        enc.put_u64(self.misses);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        if dec.take_u64()? != self.stacks.len() as u64 {
            return Err(dec.mismatch("sampled-set count differs"));
        }
        let mut stacks = Vec::with_capacity(self.stacks.len());
        for _ in 0..self.stacks.len() {
            let stack = dec.take_u64_vec()?;
            if stack.len() > self.ways {
                return Err(dec.invalid("LRU stack deeper than the monitored ways"));
            }
            stacks.push(stack);
        }
        let hits = dec.take_u64_vec()?;
        if hits.len() != self.ways {
            return Err(dec.mismatch("hit-counter length differs"));
        }
        self.misses = dec.take_u64()?;
        self.stacks = stacks;
        self.hits = hits;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_loop(umon: &mut Umon, lines: u64, rounds: u64) {
        for _ in 0..rounds {
            for i in 0..lines {
                umon.access(LineAddr(i * 64));
            }
        }
    }

    #[test]
    fn fitting_working_set_hits_after_warmup() {
        // 64 sampled sets × 16 ways = 1024 monitored lines; with full-cache
        // sampling every line is monitored.
        let mut umon = Umon::new(16, 64, 64, 1);
        drive_loop(&mut umon, 512, 20);
        let curve = umon.miss_curve();
        // With all 16 ways, a ~8-deep working set per set mostly fits.
        assert!(
            (curve[16] as f64) < 0.2 * umon.accesses() as f64,
            "misses at 16 ways: {} of {}",
            curve[16],
            umon.accesses()
        );
        // With 0 ways everything misses.
        assert_eq!(curve[0], umon.accesses());
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        let mut umon = Umon::new(16, 64, 2048, 2);
        // Mixed reuse pattern.
        for i in 0..200_000u64 {
            umon.access(LineAddr((i * i + i / 3) % 100_000));
        }
        let curve = umon.miss_curve();
        for w in curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn streaming_shows_no_utility() {
        let mut umon = Umon::new(16, 64, 2048, 3);
        for i in 0..500_000u64 {
            umon.access(LineAddr(i));
        }
        let curve = umon.miss_curve();
        // No reuse: the curve is flat — extra ways buy nothing.
        assert_eq!(curve[1], curve[16]);
    }

    #[test]
    fn sampling_estimates_match_full_monitoring() {
        // The DSS premise: a 64-of-2048-set sample estimates per-access miss
        // rates well for a homogeneous access stream.
        let mut sampled = Umon::new(8, 64, 2048, 4);
        let mut full = Umon::new(8, 2048, 2048, 4);
        let mut x: u64 = 0x12345;
        for _ in 0..400_000 {
            // xorshift over a working set with reuse
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = LineAddr(x % 30_000);
            sampled.access(addr);
            full.access(addr);
        }
        let mr_sampled = sampled.misses() as f64 / sampled.accesses() as f64;
        let mr_full = full.misses() as f64 / full.accesses() as f64;
        assert!(
            (mr_sampled - mr_full).abs() < 0.05,
            "sampled {mr_sampled:.3} vs full {mr_full:.3}"
        );
    }

    #[test]
    fn decay_halves_counters() {
        let mut umon = Umon::new(4, 16, 16, 5);
        drive_loop(&mut umon, 32, 4);
        let before = umon.accesses();
        umon.decay();
        assert!(umon.accesses() <= before / 2 + 5);
        umon.reset();
        assert_eq!(umon.accesses(), 0);
    }

    #[test]
    fn stack_depth_bounded_by_ways() {
        let mut umon = Umon::new(4, 8, 8, 6);
        drive_loop(&mut umon, 1000, 2);
        for stack in &umon.stacks {
            assert!(stack.len() <= 4);
        }
    }
}
