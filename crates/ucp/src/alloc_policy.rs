//! The allocation-policy abstraction: *how much* capacity each partition
//! should get, decoupled from *how* a partitioning scheme enforces it.
//!
//! The Vantage paper (§2, §6) treats the allocation policy (UCP in its
//! evaluation) and the partitioning scheme (Vantage, way-partitioning,
//! PIPP) as independent layers. [`AllocationPolicy`] is that seam: a
//! policy observes execution (either a sampled access stream, a
//! [`PolicyInput`] snapshot of per-partition statistics, or both) and at
//! every repartitioning epoch emits per-partition capacity targets in
//! lines that sum exactly to the managed budget.
//!
//! Implementations in this crate:
//!
//! * [`UcpPolicy`] — the paper's UCP/Lookahead allocator (stream-driven).
//! * [`MissRatioEqualizer`] — UCP monitors feeding
//!   [`equalize_miss_ratios`] ("communist" allocation; Hsu et al.).
//! * [`EqualShares`] — a static equal split, the natural baseline.
//! * [`QosGuarantee`] — per-partition minimums plus weighted shares of the
//!   spare capacity (LFOC/Memshare-style multi-tenant allocation).

use vantage_cache::{LineAddr, PartitionId};

use crate::policy::{AllocationGoal, UcpGranularity, UcpPolicy};

/// A per-epoch snapshot of partition state, assembled by the caller from
/// scheme statistics and handed to [`AllocationPolicy::reallocate`].
///
/// All slices have one entry per partition slot. Counters are cumulative
/// over the epoch that just ended unless noted otherwise.
#[derive(Clone, Copy, Debug)]
pub struct PolicyInput<'a> {
    /// Total capacity (in lines) the policy may distribute.
    pub capacity: u64,
    /// Lines each partition actually holds right now.
    pub actual: &'a [u64],
    /// Hits each partition has accumulated.
    pub hits: &'a [u64],
    /// Misses each partition has accumulated.
    pub misses: &'a [u64],
    /// Lines each partition lost (demotion or eviction) this epoch.
    pub churn: &'a [u64],
    /// Lines each partition installed this epoch.
    pub insertions: &'a [u64],
    /// Cross-partition hits per *accessing* partition this epoch — how
    /// often each tenant touched lines another tenant owns. An empty
    /// slice means the scheme does not meter sharing.
    pub shared_hits: &'a [u64],
    /// Ownership transfers per *adopting* partition this epoch (nonzero
    /// only under [`ShareMode::Adopt`](vantage_cache::ShareMode::Adopt)).
    /// An empty slice means the scheme does not meter sharing.
    pub ownership_transfers: &'a [u64],
    /// Whether each slot hosts a live partition. An empty slice means
    /// every slot is live (the static-population case). Policies must
    /// allocate zero lines to dead slots: the scheme forces their targets
    /// to zero anyway, so any capacity aimed at them silently inflates
    /// the unmanaged region instead of reaching a tenant.
    pub live: &'a [bool],
    /// Partitions created since the previous epoch (service-mode arrival
    /// deltas). Policies that warm per-tenant state can seed it here.
    pub arrived: &'a [PartitionId],
    /// Partitions destroyed since the previous epoch (departure deltas;
    /// the slot may still be draining).
    pub departed: &'a [PartitionId],
}

impl PolicyInput<'_> {
    /// Number of partition slots in the snapshot (live or not).
    pub fn num_partitions(&self) -> usize {
        self.actual.len()
    }

    /// Whether slot `p` hosts a live partition. Slots beyond the `live`
    /// lane (including every slot when the lane is empty) are live.
    pub fn is_live(&self, p: usize) -> bool {
        self.live.get(p).copied().unwrap_or(true)
    }

    /// Number of live partitions.
    pub fn live_partitions(&self) -> usize {
        if self.live.is_empty() {
            self.actual.len()
        } else {
            self.live.iter().filter(|&&l| l).count()
        }
    }
}

/// An allocation policy: decides per-partition capacity targets.
///
/// # Contract
///
/// * [`reallocate`](Self::reallocate) returns one target per partition
///   slot, in lines, summing to exactly `input.capacity`. Dead slots
///   (per [`PolicyInput::is_live`]) receive zero; if no slot is live the
///   result is all-zero and the scheme's unmanaged region absorbs the
///   capacity.
/// * Policies must be deterministic: the same observation sequence and
///   the same inputs produce the same targets.
/// * [`observe`](Self::observe) is on the simulation hot path; policies
///   that do not sample the access stream leave the default no-op and
///   return `false` from [`wants_access_stream`](Self::wants_access_stream)
///   so callers can skip the call entirely.
/// * Every policy is a [`vantage_snapshot::Snapshot`] (the supertrait
///   makes the compiler enforce it for trait objects): monitor state must
///   round-trip so a checkpointed simulation resumes bit-identically.
///   Stateless policies implement the two methods as no-ops.
pub trait AllocationPolicy: Send + vantage_snapshot::Snapshot {
    /// Short stable identifier (used in labels and telemetry).
    fn name(&self) -> &'static str;

    /// Whether the policy needs per-access [`observe`](Self::observe)
    /// calls. Snapshot-only policies return `false` (the default) and the
    /// caller may skip the hot-path call.
    fn wants_access_stream(&self) -> bool {
        false
    }

    /// Observes one LLC access by `part` (hits and misses alike).
    #[inline]
    fn observe(&mut self, part: usize, addr: LineAddr) {
        let _ = (part, addr);
    }

    /// Computes per-partition capacity targets in lines for the next
    /// epoch. The result has `input.num_partitions()` entries summing to
    /// exactly `input.capacity`.
    fn reallocate(&mut self, input: &PolicyInput<'_>) -> Vec<u64>;
}

impl AllocationPolicy for UcpPolicy {
    fn name(&self) -> &'static str {
        "ucp"
    }

    fn wants_access_stream(&self) -> bool {
        true
    }

    #[inline]
    fn observe(&mut self, part: usize, addr: LineAddr) {
        UcpPolicy::observe(self, part, addr);
    }

    /// UCP already models capacity via its UMONs; the snapshot is ignored
    /// so the trait path is bit-identical to calling
    /// [`UcpPolicy::reallocate`] directly.
    fn reallocate(&mut self, _input: &PolicyInput<'_>) -> Vec<u64> {
        UcpPolicy::reallocate(self)
    }
}

/// Splits capacity evenly across partitions, remainder to the lowest
/// partition indices. The static baseline every dynamic policy is
/// measured against.
#[derive(Clone, Copy, Debug, Default)]
pub struct EqualShares;

impl EqualShares {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl vantage_snapshot::Snapshot for EqualShares {
    /// Stateless: nothing to serialize.
    fn save_state(&self, _enc: &mut vantage_snapshot::Encoder) {}

    fn load_state(
        &mut self,
        _dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        Ok(())
    }
}

impl AllocationPolicy for EqualShares {
    fn name(&self) -> &'static str {
        "equal"
    }

    fn reallocate(&mut self, input: &PolicyInput<'_>) -> Vec<u64> {
        let n = input.num_partitions();
        let live = input.live_partitions() as u64;
        let mut out = vec![0u64; n];
        if live == 0 {
            return out;
        }
        let base = input.capacity / live;
        let rem = input.capacity % live;
        let mut rank = 0u64;
        for (p, t) in out.iter_mut().enumerate() {
            if input.is_live(p) {
                *t = base + u64::from(rank < rem);
                rank += 1;
            }
        }
        out
    }
}

/// Equalizes per-partition miss ratios using the same UMON machinery as
/// UCP but the [`equalize_miss_ratios`](crate::equalize_miss_ratios)
/// allocator instead of Lookahead.
#[derive(Clone, Debug)]
pub struct MissRatioEqualizer {
    inner: UcpPolicy,
}

impl MissRatioEqualizer {
    /// Creates the equalizer; parameters match [`UcpPolicy::new`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`UcpPolicy::new`].
    pub fn new(
        partitions: usize,
        umon_ways: usize,
        sampled_sets: usize,
        model_sets: u32,
        cache_lines: u64,
        granularity: UcpGranularity,
        seed: u64,
    ) -> Self {
        let mut inner = UcpPolicy::new(
            partitions,
            umon_ways,
            sampled_sets,
            model_sets,
            cache_lines,
            granularity,
            seed,
        );
        inner.set_goal(AllocationGoal::Fairness);
        Self { inner }
    }
}

impl vantage_snapshot::Snapshot for MissRatioEqualizer {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        self.inner.save_state(enc);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        self.inner.load_state(dec)
    }
}

impl AllocationPolicy for MissRatioEqualizer {
    fn name(&self) -> &'static str {
        "missratio"
    }

    fn wants_access_stream(&self) -> bool {
        true
    }

    #[inline]
    fn observe(&mut self, part: usize, addr: LineAddr) {
        self.inner.observe(part, addr);
    }

    fn reallocate(&mut self, _input: &PolicyInput<'_>) -> Vec<u64> {
        self.inner.reallocate()
    }
}

/// Errors constructing a [`QosGuarantee`] policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QosError {
    /// `mins` and `weights` have different or zero lengths.
    Shape,
    /// A weight is negative, NaN, or infinite.
    BadWeight,
    /// Every weight is zero, leaving spare capacity unassignable.
    AllZeroWeights,
}

impl std::fmt::Display for QosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Shape => write!(f, "mins and weights must be non-empty and equal length"),
            Self::BadWeight => write!(f, "weights must be finite and non-negative"),
            Self::AllZeroWeights => write!(f, "at least one weight must be positive"),
        }
    }
}

impl std::error::Error for QosError {}

/// How a [`QosGuarantee`] maps its contract onto the partition slots of
/// a given epoch.
#[derive(Clone, Debug)]
enum QosMode {
    /// A per-slot contract fixed at construction (static populations).
    Fixed { mins: Vec<u64>, weights: Vec<f64> },
    /// One contract applied uniformly to every *live* slot — the
    /// service-mode spelling, where the population churns and slots
    /// appear and disappear between epochs.
    Uniform { min: u64, weight: f64 },
}

/// QoS/share-driven allocation: each partition is guaranteed a minimum
/// number of lines, and the spare capacity is split by weighted demand —
/// `weight[p] * (misses[p] + 1)` — so heavier-missing tenants pull more of
/// the slack within their share (LFOC/Memshare-style).
///
/// If the minimums exceed the capacity they are scaled down
/// proportionally (the guarantee degrades gracefully instead of
/// overcommitting). Dead slots (per [`PolicyInput::is_live`]) get zero
/// floor, zero weight, and therefore zero lines.
#[derive(Clone, Debug)]
pub struct QosGuarantee {
    mode: QosMode,
}

impl QosGuarantee {
    /// Creates a fixed per-partition contract; `mins[p]` is partition
    /// `p`'s guaranteed lines and `weights[p]` its share of spare
    /// capacity.
    ///
    /// # Errors
    ///
    /// [`QosError::Shape`] for mismatched or empty vectors,
    /// [`QosError::BadWeight`] for non-finite or negative weights, and
    /// [`QosError::AllZeroWeights`] when no weight is positive.
    pub fn try_new(mins: Vec<u64>, weights: Vec<f64>) -> Result<Self, QosError> {
        if mins.is_empty() || mins.len() != weights.len() {
            return Err(QosError::Shape);
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(QosError::BadWeight);
        }
        if !weights.iter().any(|w| *w > 0.0) {
            return Err(QosError::AllZeroWeights);
        }
        Ok(Self {
            mode: QosMode::Fixed { mins, weights },
        })
    }

    /// Creates a uniform contract for churning populations: every live
    /// slot is guaranteed `min` lines and pulls spare capacity with the
    /// same `weight`, however many tenants happen to exist at each epoch.
    ///
    /// # Errors
    ///
    /// [`QosError::BadWeight`] for a non-finite or negative weight and
    /// [`QosError::AllZeroWeights`] for a zero weight.
    pub fn uniform(min: u64, weight: f64) -> Result<Self, QosError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(QosError::BadWeight);
        }
        if weight == 0.0 {
            return Err(QosError::AllZeroWeights);
        }
        Ok(Self {
            mode: QosMode::Uniform { min, weight },
        })
    }

    /// The guaranteed minimums, in lines (empty for a
    /// [uniform](Self::uniform) contract).
    pub fn mins(&self) -> &[u64] {
        match &self.mode {
            QosMode::Fixed { mins, .. } => mins,
            QosMode::Uniform { .. } => &[],
        }
    }

    /// The spare-capacity weights (empty for a [uniform](Self::uniform)
    /// contract).
    pub fn weights(&self) -> &[f64] {
        match &self.mode {
            QosMode::Fixed { weights, .. } => weights,
            QosMode::Uniform { .. } => &[],
        }
    }

    /// The guaranteed floor for slot `p`, in lines.
    pub fn floor_for(&self, p: usize) -> u64 {
        match &self.mode {
            QosMode::Fixed { mins, .. } => mins.get(p).copied().unwrap_or(0),
            QosMode::Uniform { min, .. } => *min,
        }
    }
}

impl vantage_snapshot::Snapshot for QosGuarantee {
    /// Minimums and weights are construction-time configuration, not run
    /// state; nothing varies over a run.
    fn save_state(&self, _enc: &mut vantage_snapshot::Encoder) {}

    fn load_state(
        &mut self,
        _dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        Ok(())
    }
}

impl AllocationPolicy for QosGuarantee {
    fn name(&self) -> &'static str {
        "qos"
    }

    fn reallocate(&mut self, input: &PolicyInput<'_>) -> Vec<u64> {
        let n = input.num_partitions();
        if let QosMode::Fixed { mins, .. } = &self.mode {
            debug_assert_eq!(mins.len(), n, "policy sized for machine");
        }
        if input.live_partitions() == 0 {
            // Nobody to serve: the unmanaged region absorbs everything.
            return vec![0; n];
        }
        // Project the contract onto this epoch's slots: dead slots get
        // zero floor and zero weight so no capacity can leak to them.
        let (mins, weights): (Vec<u64>, Vec<f64>) = (0..n)
            .map(|p| {
                if !input.is_live(p) {
                    return (0u64, 0.0);
                }
                match &self.mode {
                    QosMode::Fixed { mins, weights } => (
                        mins.get(p).copied().unwrap_or(0),
                        weights.get(p).copied().unwrap_or(0.0),
                    ),
                    QosMode::Uniform { min, weight } => (*min, *weight),
                }
            })
            .unzip();
        let floor_sum: u64 = mins.iter().sum();
        let mut targets = if floor_sum > input.capacity {
            // Overcommitted guarantees: scale the floors down
            // proportionally so the contract degrades uniformly.
            let scaled: Vec<f64> = mins.iter().map(|&m| m as f64).collect();
            apportion(input.capacity, &scaled)
        } else {
            mins
        };
        let spare = input.capacity - targets.iter().sum::<u64>();
        if spare > 0 {
            let mut demand: Vec<f64> = weights
                .iter()
                .enumerate()
                .map(|(p, &w)| w * (input.misses.get(p).copied().unwrap_or(0) as f64 + 1.0))
                .collect();
            if !demand.iter().any(|d| *d > 0.0) {
                // Every positively weighted tenant is dead: split the
                // spare among the live ones instead of letting
                // `apportion`'s all-zero fallback feed dead slots.
                demand = (0..n)
                    .map(|p| if input.is_live(p) { 1.0 } else { 0.0 })
                    .collect();
            }
            for (t, extra) in targets.iter_mut().zip(apportion(spare, &demand)) {
                *t += extra;
            }
        }
        targets
    }
}

/// Distributes `total` units across `weights` proportionally, exactly
/// (largest-remainder; ties broken by lowest index). All-zero weights
/// fall back to an even split.
pub fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let sum: f64 = weights.iter().sum();
    if !sum.is_finite() || sum <= 0.0 {
        let base = total / n as u64;
        let rem = total % n as u64;
        return (0..n as u64).map(|p| base + u64::from(p < rem)).collect();
    }
    let mut out = Vec::with_capacity(n);
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut assigned = 0u64;
    for (p, &w) in weights.iter().enumerate() {
        let exact = total as f64 * (w / sum);
        let whole = exact.floor().min(total as f64) as u64;
        out.push(whole);
        fracs.push((p, exact - whole as f64));
        assigned += whole;
    }
    // Ties broken by index so the result is deterministic across runs.
    fracs.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite fractions")
            .then(a.0.cmp(&b.0))
    });
    let mut left = total.saturating_sub(assigned);
    let mut i = 0;
    while left > 0 {
        out[fracs[i % n].0] += 1;
        left -= 1;
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input<'a>(
        capacity: u64,
        actual: &'a [u64],
        misses: &'a [u64],
        zeros: &'a [u64],
    ) -> PolicyInput<'a> {
        PolicyInput {
            capacity,
            actual,
            hits: zeros,
            misses,
            churn: zeros,
            insertions: zeros,
            shared_hits: &[],
            ownership_transfers: &[],
            live: &[],
            arrived: &[],
            departed: &[],
        }
    }

    #[test]
    fn equal_shares_splits_exactly() {
        let zeros = [0u64; 3];
        let inp = input(1_000, &zeros, &zeros, &zeros);
        let t = EqualShares::new().reallocate(&inp);
        assert_eq!(t, vec![334, 333, 333]);
        assert_eq!(t.iter().sum::<u64>(), 1_000);
    }

    #[test]
    fn ucp_via_trait_matches_inherent_reallocate() {
        let build = || {
            UcpPolicy::new(
                2,
                16,
                64,
                2048,
                32_768,
                UcpGranularity::Fine { blocks: 256 },
                7,
            )
        };
        let drive = |p: &mut UcpPolicy| {
            for i in 0..100_000u64 {
                AllocationPolicy::observe(p, 0, LineAddr(i % 6_000));
                AllocationPolicy::observe(p, 1, LineAddr((1 << 40) | i));
            }
        };
        let mut via_trait = build();
        drive(&mut via_trait);
        let zeros = [0u64; 2];
        let inp = input(32_768, &zeros, &zeros, &zeros);
        let t1 = AllocationPolicy::reallocate(&mut via_trait, &inp);

        let mut inherent = build();
        drive(&mut inherent);
        let t2 = UcpPolicy::reallocate(&mut inherent);
        assert_eq!(t1, t2);
        assert_eq!(t1.iter().sum::<u64>(), 32_768);
    }

    #[test]
    fn qos_honors_minimums_and_spends_spare_by_weight() {
        let mut qos = QosGuarantee::try_new(vec![100, 200, 50], vec![1.0, 1.0, 2.0])
            .expect("valid QoS shape");
        let zeros = [0u64; 3];
        let misses = [10u64, 10, 10];
        let inp = input(1_000, &zeros, &misses, &zeros);
        let t = qos.reallocate(&inp);
        assert_eq!(t.iter().sum::<u64>(), 1_000);
        assert!(t[0] >= 100 && t[1] >= 200 && t[2] >= 50, "minimums: {t:?}");
        // Equal misses, so partition 2's double weight wins the most spare.
        assert!(t[2] - 50 > t[0] - 100, "weights ignored: {t:?}");
    }

    #[test]
    fn qos_scales_overcommitted_minimums_down() {
        let mut qos =
            QosGuarantee::try_new(vec![800, 800], vec![1.0, 1.0]).expect("valid QoS shape");
        let zeros = [0u64; 2];
        let inp = input(1_000, &zeros, &zeros, &zeros);
        let t = qos.reallocate(&inp);
        assert_eq!(t.iter().sum::<u64>(), 1_000);
        assert_eq!(t, vec![500, 500]);
    }

    #[test]
    fn qos_rejects_malformed_configs() {
        assert_eq!(
            QosGuarantee::try_new(vec![1], vec![1.0, 2.0]).err(),
            Some(QosError::Shape)
        );
        assert_eq!(
            QosGuarantee::try_new(Vec::new(), Vec::new()).err(),
            Some(QosError::Shape)
        );
        assert_eq!(
            QosGuarantee::try_new(vec![1, 2], vec![1.0, f64::NAN]).err(),
            Some(QosError::BadWeight)
        );
        assert_eq!(
            QosGuarantee::try_new(vec![1, 2], vec![0.0, 0.0]).err(),
            Some(QosError::AllZeroWeights)
        );
    }

    #[test]
    fn equal_shares_skips_dead_slots() {
        let zeros = [0u64; 4];
        let mut inp = input(1_000, &zeros, &zeros, &zeros);
        let live = [true, false, true, false];
        inp.live = &live;
        let t = EqualShares::new().reallocate(&inp);
        assert_eq!(t, vec![500, 0, 500, 0]);
    }

    #[test]
    fn qos_uniform_contract_follows_the_population() {
        let mut qos = QosGuarantee::uniform(100, 1.0).expect("valid uniform contract");
        let zeros = [0u64; 3];
        let misses = [5u64, 50, 5];
        let mut inp = input(1_000, &zeros, &misses, &zeros);
        let live = [true, true, false];
        inp.live = &live;
        let t = qos.reallocate(&inp);
        assert_eq!(t.iter().sum::<u64>(), 1_000);
        assert_eq!(t[2], 0, "dead slot must not receive lines: {t:?}");
        assert!(t[0] >= 100 && t[1] >= 100, "floors: {t:?}");
        assert!(
            t[1] > t[0],
            "heavier-missing tenant pulls more spare: {t:?}"
        );
    }

    #[test]
    fn qos_with_no_live_tenants_returns_zeros() {
        let mut qos = QosGuarantee::uniform(100, 1.0).expect("valid uniform contract");
        let zeros = [0u64; 2];
        let mut inp = input(1_000, &zeros, &zeros, &zeros);
        let live = [false, false];
        inp.live = &live;
        assert_eq!(qos.reallocate(&inp), vec![0, 0]);
    }

    #[test]
    fn qos_uniform_rejects_bad_weights() {
        assert_eq!(
            QosGuarantee::uniform(1, -1.0).err(),
            Some(QosError::BadWeight)
        );
        assert_eq!(
            QosGuarantee::uniform(1, f64::INFINITY).err(),
            Some(QosError::BadWeight)
        );
        assert_eq!(
            QosGuarantee::uniform(1, 0.0).err(),
            Some(QosError::AllZeroWeights)
        );
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        for total in [0u64, 1, 7, 1_000, 32_768] {
            let w = [0.2, 0.2, 0.2, 0.4];
            let a = apportion(total, &w);
            assert_eq!(a.iter().sum::<u64>(), total);
            assert_eq!(a, apportion(total, &w));
        }
        assert_eq!(apportion(10, &[0.0, 0.0]), vec![5, 5]);
        assert_eq!(apportion(5, &[]), Vec::<u64>::new());
    }

    #[test]
    fn missratio_equalizer_sums_to_capacity() {
        let mut eq = MissRatioEqualizer::new(
            2,
            16,
            64,
            2048,
            32_768,
            UcpGranularity::Fine { blocks: 256 },
            9,
        );
        assert!(eq.wants_access_stream());
        for i in 0..200_000u64 {
            eq.observe(0, LineAddr(i % 3_000));
            eq.observe(1, LineAddr((1 << 40) | (i % 50_000)));
        }
        let zeros = [0u64; 2];
        let inp = input(32_768, &zeros, &zeros, &zeros);
        let t = eq.reallocate(&inp);
        assert_eq!(t.iter().sum::<u64>(), 32_768);
    }
}
