//! The Lookahead allocation algorithm (Qureshi & Patt, MICRO 2006) and the
//! curve interpolation that lets Vantage allocate at line granularity.
//!
//! Miss curves are generally not convex (cache-fitting applications have
//! knees), so greedy hill-climbing one block at a time can starve an
//! application whose utility only materializes after several blocks.
//! Lookahead fixes this by considering, for each partition, the *maximum
//! marginal utility per block* over every possible extension, and granting
//! the winning extension wholesale.

/// Computes a Lookahead allocation.
///
/// `curves[p][b]` is partition `p`'s miss count when allocated `b` blocks
/// (`b ∈ 0..=blocks`). Every partition is guaranteed at least `min_blocks`
/// blocks; the remainder is distributed by maximum marginal utility per
/// block. Returns per-partition block counts summing to exactly `blocks`.
///
/// # Panics
///
/// Panics if `curves` is empty, if any curve is shorter than `blocks + 1`,
/// or if `blocks < min_blocks * curves.len()`.
///
/// # Example
///
/// ```
/// use vantage_ucp::lookahead;
///
/// // Partition 0 stops benefiting after 2 blocks; partition 1 keeps
/// // benefiting. Lookahead gives the rest to partition 1.
/// let c0 = vec![100, 50, 10, 10, 10, 10, 10, 10, 10];
/// let c1 = vec![100, 90, 80, 70, 60, 50, 40, 30, 20];
/// let alloc = lookahead(&[c0, c1], 8, 1);
/// assert_eq!(alloc.iter().sum::<u32>(), 8);
/// assert!(alloc[1] >= 5);
/// assert!(alloc[0] >= 2);
/// ```
pub fn lookahead(curves: &[Vec<u64>], blocks: u32, min_blocks: u32) -> Vec<u32> {
    let n = curves.len();
    assert!(n > 0, "no partitions");
    assert!(
        curves.iter().all(|c| c.len() > blocks as usize),
        "curves must cover 0..=blocks"
    );
    assert!(
        blocks >= min_blocks * n as u32,
        "not enough blocks for the minimum"
    );

    let mut alloc = vec![min_blocks; n];
    let mut balance = blocks - min_blocks * n as u32;
    while balance > 0 {
        // For each partition, the best extension: max over k of
        // (misses[a] - misses[a+k]) / k.
        let mut best: Option<(f64, usize, u32)> = None; // (mu, part, k)
        for (p, curve) in curves.iter().enumerate() {
            let a = alloc[p] as usize;
            for k in 1..=balance {
                let gain = curve[a].saturating_sub(curve[a + k as usize]);
                let mu = gain as f64 / f64::from(k);
                let better = match best {
                    None => true,
                    Some((bmu, _, _)) => mu > bmu + 1e-12,
                };
                if better {
                    best = Some((mu, p, k));
                }
            }
        }
        let (mu, p, k) = best.expect("balance > 0 implies candidates exist");
        if mu <= 0.0 {
            // No one benefits: spread the remainder round-robin (the UCP
            // paper gives leftover blocks to the highest-miss apps; any
            // deterministic rule works since utility is zero).
            let mut p = 0;
            while balance > 0 {
                alloc[p % n] += 1;
                balance -= 1;
                p += 1;
            }
            break;
        }
        alloc[p] += k;
        balance -= k;
    }
    debug_assert_eq!(alloc.iter().sum::<u32>(), blocks);
    alloc
}

/// Linearly interpolates a `ways + 1`-point miss curve onto `blocks + 1`
/// points, scaling counts to `f64`-rounded `u64`s. This is how the paper
/// drives Lookahead at 256-point granularity for Vantage while the UMONs
/// only monitor `ways` positions (§5).
///
/// # Panics
///
/// Panics if `curve` has fewer than 2 points or `blocks == 0`.
pub fn interpolate_curve(curve: &[u64], blocks: u32) -> Vec<u64> {
    assert!(curve.len() >= 2, "need at least a 2-point curve");
    assert!(blocks > 0, "need at least one block");
    let ways = curve.len() - 1;
    (0..=blocks)
        .map(|b| {
            let x = f64::from(b) * ways as f64 / f64::from(blocks);
            let lo = x.floor() as usize;
            let hi = x.ceil() as usize;
            if lo == hi {
                curve[lo]
            } else {
                let frac = x - lo as f64;
                (curve[lo] as f64 * (1.0 - frac) + curve[hi] as f64 * frac).round() as u64
            }
        })
        .collect()
}

/// A fairness-oriented allocator ("communist" in Hsu et al.'s taxonomy,
/// which the paper cites as an alternative allocation policy): instead of
/// maximizing aggregate utility, repeatedly grants a block to the partition
/// with the worst projected miss ratio, provided the block actually helps
/// it. Streaming partitions (flat curves) are skipped once capacity stops
/// reducing their misses, so they cannot absorb the budget pointlessly.
///
/// `curves[p][b]` are miss counts at `b` blocks; `accesses[p]` normalizes
/// them into ratios. Returns block counts summing to `blocks`.
///
/// # Panics
///
/// Panics on shape mismatches or an infeasible minimum (see [`lookahead`]).
pub fn equalize_miss_ratios(
    curves: &[Vec<u64>],
    accesses: &[u64],
    blocks: u32,
    min_blocks: u32,
) -> Vec<u32> {
    let n = curves.len();
    assert!(n > 0, "no partitions");
    assert_eq!(accesses.len(), n, "one access count per partition");
    assert!(
        curves.iter().all(|c| c.len() > blocks as usize),
        "curves must cover 0..=blocks"
    );
    assert!(
        blocks >= min_blocks * n as u32,
        "not enough blocks for the minimum"
    );

    let ratio = |p: usize, b: usize| {
        if accesses[p] == 0 {
            0.0
        } else {
            curves[p][b] as f64 / accesses[p] as f64
        }
    };
    let mut alloc = vec![min_blocks; n];
    let mut balance = blocks - min_blocks * n as u32;
    while balance > 0 {
        // Worst-off partition that still benefits from one more block.
        let pick = (0..n)
            .filter(|&p| {
                let a = alloc[p] as usize;
                curves[p][a + 1] < curves[p][a]
            })
            .max_by(|&a, &b| {
                ratio(a, alloc[a] as usize)
                    .partial_cmp(&ratio(b, alloc[b] as usize))
                    .expect("finite ratios")
            });
        match pick {
            Some(p) => {
                alloc[p] += 1;
                balance -= 1;
            }
            None => {
                // Nobody benefits: spread the remainder deterministically.
                let mut p = 0;
                while balance > 0 {
                    alloc[p % n] += 1;
                    balance -= 1;
                    p += 1;
                }
            }
        }
    }
    debug_assert_eq!(alloc.iter().sum::<u32>(), blocks);
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_equalizes_instead_of_maximizing() {
        // Partition 0: huge utility (throughput policy would give it all).
        // Partition 1: worse miss ratio but modest gains. Fairness must
        // favor the worse-off partition 1 more than Lookahead does.
        let c0: Vec<u64> = (0..=16u64).map(|b| 800u64.saturating_sub(b * 50)).collect();
        let c1: Vec<u64> = (0..=16u64).map(|b| 900u64.saturating_sub(b * 20)).collect();
        let accesses = [1000u64, 1000];
        let fair = equalize_miss_ratios(&[c0.clone(), c1.clone()], &accesses, 16, 1);
        let tput = lookahead(&[c0, c1], 16, 1);
        assert_eq!(fair.iter().sum::<u32>(), 16);
        assert!(
            fair[1] > tput[1],
            "fairness should favor the worse-off partition: fair {fair:?} vs tput {tput:?}"
        );
    }

    #[test]
    fn fairness_does_not_feed_streamers() {
        let stream = vec![1000u64; 17]; // terrible ratio, zero utility
        let friendly: Vec<u64> = (0..=16u64).map(|b| 400u64.saturating_sub(b * 25)).collect();
        let alloc = equalize_miss_ratios(&[stream, friendly], &[1000, 1000], 16, 1);
        assert_eq!(
            alloc[0], 1,
            "flat-curve partition must not absorb blocks: {alloc:?}"
        );
    }

    #[test]
    fn fairness_conserves_blocks_with_idle_partitions() {
        let idle = vec![0u64; 17];
        let busy: Vec<u64> = (0..=16u64).map(|b| 500u64.saturating_sub(b * 30)).collect();
        let alloc = equalize_miss_ratios(&[idle, busy], &[0, 1000], 16, 1);
        assert_eq!(alloc.iter().sum::<u32>(), 16);
    }

    #[test]
    fn respects_minimum() {
        let flat = vec![vec![100u64; 17]; 4];
        let alloc = lookahead(&flat, 16, 1);
        assert_eq!(alloc.iter().sum::<u32>(), 16);
        assert!(alloc.iter().all(|&a| a >= 1));
    }

    #[test]
    fn knee_curves_are_not_starved() {
        // Partition 0: no gain until 6 blocks, then everything. A 1-block
        // greedy allocator would starve it; Lookahead must not.
        let mut knee = vec![1000u64; 17];
        for k in knee.iter_mut().skip(6) {
            *k = 10;
        }
        let gradual: Vec<u64> = (0..17u64).map(|b| 1000 - 40 * b).collect();
        let alloc = lookahead(&[knee, gradual], 16, 1);
        assert!(alloc[0] >= 6, "cache-fitting app starved: {alloc:?}");
    }

    #[test]
    fn streaming_gets_minimum_only() {
        let stream = vec![1000u64; 17]; // no utility at any size
        let friendly: Vec<u64> = (0..17u64).map(|b| 1000u64.saturating_sub(60 * b)).collect();
        let alloc = lookahead(&[stream.clone(), friendly], 16, 1);
        assert_eq!(alloc[0], 1, "streamer should get the minimum: {alloc:?}");
        assert_eq!(alloc[1], 15);
    }

    #[test]
    fn zero_utility_everywhere_still_allocates_all() {
        let flat = vec![vec![7u64; 9]; 3];
        let alloc = lookahead(&flat, 8, 1);
        assert_eq!(alloc.iter().sum::<u32>(), 8);
    }

    #[test]
    fn fine_grain_allocation_at_256_blocks() {
        let c0: Vec<u64> = (0..=16u64)
            .map(|w| 1000u64.saturating_sub(w * 55))
            .collect();
        let c1 = vec![500u64; 17];
        let f0 = interpolate_curve(&c0, 256);
        let f1 = interpolate_curve(&c1, 256);
        assert_eq!(f0.len(), 257);
        let alloc = lookahead(&[f0, f1], 256, 1);
        assert_eq!(alloc.iter().sum::<u32>(), 256);
        assert!(
            alloc[0] > 200,
            "useful partition should dominate: {alloc:?}"
        );
    }

    #[test]
    fn interpolation_preserves_endpoints_and_monotonicity() {
        let curve = vec![100u64, 80, 30, 28, 28];
        let fine = interpolate_curve(&curve, 64);
        assert_eq!(fine[0], 100);
        assert_eq!(fine[64], 28);
        for w in fine.windows(2) {
            assert!(w[1] <= w[0]);
        }
        // Original points are preserved at multiples of 16.
        assert_eq!(fine[16], 80);
        assert_eq!(fine[32], 30);
    }

    #[test]
    #[should_panic(expected = "not enough blocks")]
    fn too_small_budget_rejected() {
        lookahead(&[vec![1; 5], vec![1; 5]], 1, 1);
    }
}
