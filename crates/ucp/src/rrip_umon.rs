//! RRIP-ordered utility monitoring for Vantage-DRRIP (§6.2).
//!
//! The paper adapts UMON-DSS in two ways to drive Vantage with RRIP
//! replacement: (1) monitor sets maintain RRIP chains instead of LRU
//! stacks — hit positions are taken in RRPV order — and (2) half of the
//! sampled sets run SRRIP insertion while the other half run BRRIP, so that
//! at every repartitioning the better policy can be chosen per partition
//! (making Vantage-DRRIP automatically thread-aware).

use vantage_cache::hash::mix_bucket;
use vantage_cache::replacement::rrip::BasePolicy;
use vantage_cache::LineAddr;

/// A per-core RRIP utility monitor with built-in SRRIP/BRRIP dueling.
///
/// # Example
///
/// ```
/// use vantage_ucp::RripUmon;
/// use vantage_cache::LineAddr;
///
/// let mut umon = RripUmon::new(16, 64, 2048, 3, 1);
/// for i in 0..100_000u64 {
///     umon.access(LineAddr(i % 5000));
/// }
/// let curve = umon.miss_curve();
/// assert!(curve.windows(2).all(|w| w[1] <= w[0]));
/// let _policy = umon.best_policy();
/// ```
#[derive(Clone, Debug)]
pub struct RripUmon {
    ways: usize,
    max_rrpv: u8,
    tags: Vec<Vec<u64>>,
    rrpvs: Vec<Vec<u8>>,
    hits: Vec<u64>,
    misses: u64,
    /// Dueling counters: (accesses, misses) per insertion policy half.
    srrip_stats: (u64, u64),
    brrip_stats: (u64, u64),
    model_sets: u32,
    sample_seed: u64,
    /// Deterministic 1-in-32 counter for BRRIP's bimodal insertion.
    brrip_ctr: u32,
}

impl RripUmon {
    /// Creates a monitor of `ways` ways over `sampled_sets` sets (half
    /// SRRIP, half BRRIP), modeling `model_sets` total sets, with
    /// `rrpv_bits`-bit re-reference values.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes, `sampled_sets < 2`, or an invalid RRPV width.
    pub fn new(
        ways: usize,
        sampled_sets: usize,
        model_sets: u32,
        rrpv_bits: u8,
        seed: u64,
    ) -> Self {
        assert!(ways > 0, "ways must be non-zero");
        assert!(
            sampled_sets >= 2 && sampled_sets as u32 <= model_sets,
            "bad set sampling"
        );
        assert!((1..=7).contains(&rrpv_bits), "RRPV width must be 1..=7");
        Self {
            ways,
            max_rrpv: (1 << rrpv_bits) - 1,
            tags: vec![Vec::with_capacity(ways); sampled_sets],
            rrpvs: vec![Vec::with_capacity(ways); sampled_sets],
            hits: vec![0; ways],
            misses: 0,
            srrip_stats: (0, 0),
            brrip_stats: (0, 0),
            model_sets,
            sample_seed: seed ^ 0x5E7,
            brrip_ctr: 0,
        }
    }

    /// Observes one LLC access by this monitor's core.
    pub fn access(&mut self, addr: LineAddr) {
        let set = mix_bucket(addr.0, self.sample_seed, self.model_sets) as usize;
        if set >= self.tags.len() {
            return;
        }
        let use_srrip = set < self.tags.len() / 2;
        let stats = if use_srrip {
            &mut self.srrip_stats
        } else {
            &mut self.brrip_stats
        };
        stats.0 += 1;

        if let Some(pos) = self.tags[set].iter().position(|&t| t == addr.0) {
            // RRIP-ordered hit position: lines predicted to re-reference
            // sooner (lower RRPV) rank ahead; ties break by index.
            let my = self.rrpvs[set][pos];
            let order = self.rrpvs[set]
                .iter()
                .enumerate()
                .filter(|&(i, &r)| r < my || (r == my && i < pos))
                .count();
            self.hits[order] += 1;
            self.rrpvs[set][pos] = 0;
            return;
        }

        stats.1 += 1;
        self.misses += 1;
        // Victim: any max-RRPV line, aging the set until one exists.
        if self.tags[set].len() == self.ways {
            loop {
                if let Some(v) = self.rrpvs[set].iter().position(|&r| r == self.max_rrpv) {
                    self.tags[set].remove(v);
                    self.rrpvs[set].remove(v);
                    break;
                }
                for r in &mut self.rrpvs[set] {
                    *r += 1;
                }
            }
        }
        let insert_rrpv = if use_srrip {
            self.max_rrpv - 1
        } else {
            self.brrip_ctr = (self.brrip_ctr + 1) % 32;
            if self.brrip_ctr == 0 {
                self.max_rrpv - 1
            } else {
                self.max_rrpv
            }
        };
        self.tags[set].push(addr.0);
        self.rrpvs[set].push(insert_rrpv);
    }

    /// The miss curve by RRIP-order position (same shape as
    /// [`Umon::miss_curve`](crate::Umon::miss_curve)).
    pub fn miss_curve(&self) -> Vec<u64> {
        let mut curve = Vec::with_capacity(self.ways + 1);
        let mut tail: u64 = self.hits.iter().sum::<u64>() + self.misses;
        curve.push(tail);
        for d in 0..self.ways {
            tail -= self.hits[d];
            curve.push(tail);
        }
        curve
    }

    /// Total sampled accesses.
    pub fn accesses(&self) -> u64 {
        self.misses + self.hits.iter().sum::<u64>()
    }

    /// The insertion policy with the lower sampled miss rate this interval.
    pub fn best_policy(&self) -> BasePolicy {
        let rate = |(a, m): (u64, u64)| if a == 0 { 0.5 } else { m as f64 / a as f64 };
        if rate(self.brrip_stats) < rate(self.srrip_stats) {
            BasePolicy::Brrip
        } else {
            BasePolicy::Srrip
        }
    }

    /// Halves all counters between intervals.
    pub fn decay(&mut self) {
        for h in &mut self.hits {
            *h /= 2;
        }
        self.misses /= 2;
        self.srrip_stats = (self.srrip_stats.0 / 2, self.srrip_stats.1 / 2);
        self.brrip_stats = (self.brrip_stats.0 / 2, self.brrip_stats.1 / 2);
    }
}

impl vantage_snapshot::Snapshot for RripUmon {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64(self.tags.len() as u64);
        for (tags, rrpvs) in self.tags.iter().zip(&self.rrpvs) {
            enc.put_u64_slice(tags);
            enc.put_u8_slice(rrpvs);
        }
        enc.put_u64_slice(&self.hits);
        enc.put_u64(self.misses);
        enc.put_u64(self.srrip_stats.0);
        enc.put_u64(self.srrip_stats.1);
        enc.put_u64(self.brrip_stats.0);
        enc.put_u64(self.brrip_stats.1);
        enc.put_u32(self.brrip_ctr);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        if dec.take_u64()? != self.tags.len() as u64 {
            return Err(dec.mismatch("sampled-set count differs"));
        }
        let mut tags = Vec::with_capacity(self.tags.len());
        let mut rrpvs = Vec::with_capacity(self.tags.len());
        for _ in 0..self.tags.len() {
            let t = dec.take_u64_vec()?;
            let r = dec.take_u8_vec()?;
            if t.len() != r.len() || t.len() > self.ways {
                return Err(dec.invalid("monitor set shape out of range"));
            }
            if r.iter().any(|&v| v > self.max_rrpv) {
                return Err(dec.invalid("monitor RRPV exceeds the configured maximum"));
            }
            tags.push(t);
            rrpvs.push(r);
        }
        let hits = dec.take_u64_vec()?;
        if hits.len() != self.ways {
            return Err(dec.mismatch("hit-counter length differs"));
        }
        self.misses = dec.take_u64()?;
        self.srrip_stats = (dec.take_u64()?, dec.take_u64()?);
        self.brrip_stats = (dec.take_u64()?, dec.take_u64()?);
        let ctr = dec.take_u32()?;
        if ctr >= 32 {
            return Err(dec.invalid("bimodal counter out of range"));
        }
        self.brrip_ctr = ctr;
        self.tags = tags;
        self.rrpvs = rrpvs;
        self.hits = hits;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_monotone_under_mixed_traffic() {
        let mut u = RripUmon::new(16, 64, 2048, 3, 1);
        for i in 0..300_000u64 {
            u.access(LineAddr((i * 7 + i / 5) % 60_000));
        }
        let c = u.miss_curve();
        for w in c.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(c[0], u.accesses());
    }

    #[test]
    fn thrashing_pattern_prefers_brrip() {
        // A cyclic working set slightly over capacity: classic LRU/SRRIP
        // thrash case where bimodal insertion retains a useful fraction.
        let mut u = RripUmon::new(4, 64, 64, 3, 2);
        // 64 sets × 4 ways = 256 monitored lines; loop over ~1000 lines.
        for _ in 0..200 {
            for i in 0..1000u64 {
                u.access(LineAddr(i * 64));
            }
        }
        assert_eq!(u.best_policy(), BasePolicy::Brrip);
    }

    #[test]
    fn reuse_friendly_pattern_prefers_srrip() {
        // Working set fits: both policies hit, but SRRIP warms faster and
        // never parks useful lines at distant; it must not lose.
        let mut u = RripUmon::new(8, 64, 64, 3, 3);
        for _ in 0..200 {
            for i in 0..256u64 {
                u.access(LineAddr(i * 64));
            }
        }
        assert_eq!(u.best_policy(), BasePolicy::Srrip);
    }

    #[test]
    fn decay_halves_everything() {
        let mut u = RripUmon::new(4, 8, 8, 3, 4);
        for i in 0..1000u64 {
            u.access(LineAddr(i % 40));
        }
        let before = u.accesses();
        u.decay();
        assert!(u.accesses() <= before / 2 + 4);
    }
}
