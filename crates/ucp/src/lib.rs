//! Utility-based cache partitioning (Qureshi & Patt, MICRO 2006) — the
//! allocation policy used throughout the Vantage paper's evaluation (§5).
//!
//! UCP answers *how much* capacity each partition should get; the
//! partitioning schemes (`vantage`, `vantage-partitioning`) answer how to
//! enforce it. The pieces:
//!
//! * [`Umon`] — a utility monitor using dynamic set sampling (UMON-DSS):
//!   a small auxiliary tag directory that observes one core's LLC accesses
//!   on a sample of sets and derives the core's miss curve — misses as a
//!   function of hypothetically allocated ways — from LRU stack-distance
//!   hit counters.
//! * [`RripUmon`] — the RRIP-ordered UMON variant of §6.2, which
//!   additionally duels SRRIP vs BRRIP per partition (half of the sampled
//!   sets run each) for Vantage-DRRIP.
//! * [`lookahead`] — the Lookahead allocation algorithm, greedily granting
//!   blocks to the partition with the highest marginal utility per block.
//! * [`UcpPolicy`] — the periodic controller: observes accesses, and every
//!   repartitioning interval turns miss curves into line-granularity
//!   targets. For way-granularity schemes it allocates whole ways; for
//!   Vantage it linearly interpolates the UMON curves to 256 points (§5,
//!   "Allocation policy") to exploit fine-grain sizing.

pub mod alloc_policy;
pub mod cluster;
pub mod lookahead;
pub mod policy;
pub mod rrip_umon;
pub mod umon;

pub use alloc_policy::{
    apportion, AllocationPolicy, EqualShares, MissRatioEqualizer, PolicyInput, QosError,
    QosGuarantee,
};
pub use cluster::{ClusterError, ClusteredPolicy};
pub use lookahead::{equalize_miss_ratios, interpolate_curve, lookahead};
pub use policy::{AllocationGoal, UcpGranularity, UcpPolicy};
pub use rrip_umon::RripUmon;
pub use umon::Umon;
