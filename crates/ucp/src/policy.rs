//! The periodic UCP controller: monitors per-partition utility and emits
//! line-granularity capacity targets at each repartitioning interval.

use vantage_cache::LineAddr;

use crate::lookahead::{equalize_miss_ratios, interpolate_curve, lookahead};
use crate::umon::Umon;

/// What the allocator optimizes for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AllocationGoal {
    /// Maximize aggregate hits (the paper's UCP/Lookahead policy).
    #[default]
    Throughput,
    /// Equalize per-partition miss ratios ("communist" allocation; Hsu et
    /// al., cited by the paper as an alternative allocation policy).
    Fairness,
}

/// Allocation granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UcpGranularity {
    /// Whole ways — what way-partitioning and PIPP can enforce.
    Ways(u32),
    /// Fine-grain blocks (the paper interpolates UMON curves to 256 points
    /// for Vantage, §5).
    Fine {
        /// Number of allocation blocks the cache is divided into.
        blocks: u32,
    },
}

/// Utility-based cache partitioning: one [`Umon`] per partition plus the
/// Lookahead allocator.
///
/// # Example
///
/// ```
/// use vantage_cache::LineAddr;
/// use vantage_ucp::{UcpGranularity, UcpPolicy};
///
/// let mut ucp = UcpPolicy::new(2, 16, 64, 2048, 32_768, UcpGranularity::Fine { blocks: 256 }, 1);
/// // Partition 0 re-uses a working set; partition 1 streams.
/// for i in 0..200_000u64 {
///     ucp.observe(0, LineAddr(i % 10_000));
///     ucp.observe(1, LineAddr(1 << 32 | i));
/// }
/// let targets = ucp.reallocate();
/// assert_eq!(targets.iter().sum::<u64>(), 32_768);
/// assert!(targets[0] > targets[1]); // utility goes where it helps
/// ```
#[derive(Clone, Debug)]
pub struct UcpPolicy {
    umons: Vec<Umon>,
    granularity: UcpGranularity,
    cache_lines: u64,
    goal: AllocationGoal,
}

impl UcpPolicy {
    /// Creates the policy for `partitions` partitions over a cache of
    /// `cache_lines` lines.
    ///
    /// Each partition gets a UMON with `umon_ways` ways and `sampled_sets`
    /// sampled sets modeling `model_sets` total sets (the paper samples 64
    /// sets and matches `umon_ways` to the comparison schemes' way count).
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0` or the granularity cannot cover every
    /// partition with one block.
    pub fn new(
        partitions: usize,
        umon_ways: usize,
        sampled_sets: usize,
        model_sets: u32,
        cache_lines: u64,
        granularity: UcpGranularity,
        seed: u64,
    ) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let blocks = match granularity {
            UcpGranularity::Ways(w) => w,
            UcpGranularity::Fine { blocks } => blocks,
        };
        assert!(
            blocks as usize >= partitions,
            "fewer blocks than partitions"
        );
        let umons = (0..partitions)
            .map(|p| {
                Umon::new(
                    umon_ways,
                    sampled_sets,
                    model_sets,
                    seed.wrapping_add(p as u64),
                )
            })
            .collect();
        Self {
            umons,
            granularity,
            cache_lines,
            goal: AllocationGoal::default(),
        }
    }

    /// Switches the allocation goal (throughput vs fairness). Takes effect
    /// at the next [`reallocate`](Self::reallocate).
    pub fn set_goal(&mut self, goal: AllocationGoal) {
        self.goal = goal;
    }

    /// The current allocation goal.
    pub fn goal(&self) -> AllocationGoal {
        self.goal
    }

    /// Observes one LLC access by `part` (both hits and misses — the
    /// monitor models the partition owning the whole cache).
    #[inline]
    pub fn observe(&mut self, part: usize, addr: LineAddr) {
        self.umons[part].access(addr);
    }

    /// Direct access to a partition's monitor (e.g. for inspection).
    pub fn umon(&self, part: usize) -> &Umon {
        &self.umons[part]
    }

    /// Runs Lookahead on the current miss curves and returns per-partition
    /// targets in lines, summing to exactly the cache capacity. Counters
    /// are decayed afterwards so the next interval adapts to phase changes.
    pub fn reallocate(&mut self) -> Vec<u64> {
        let blocks = match self.granularity {
            UcpGranularity::Ways(w) => w,
            UcpGranularity::Fine { blocks } => blocks,
        };
        let curves: Vec<Vec<u64>> = self
            .umons
            .iter()
            .map(|u| {
                let base = u.miss_curve();
                match self.granularity {
                    UcpGranularity::Ways(_) => base,
                    UcpGranularity::Fine { blocks } => interpolate_curve(&base, blocks),
                }
            })
            .collect();
        let alloc = match self.goal {
            AllocationGoal::Throughput => lookahead(&curves, blocks, 1),
            AllocationGoal::Fairness => {
                let accesses: Vec<u64> = self.umons.iter().map(Umon::accesses).collect();
                equalize_miss_ratios(&curves, &accesses, blocks, 1)
            }
        };
        for u in &mut self.umons {
            u.decay();
        }
        // Blocks → lines, largest-remainder so the total is exact.
        let mut targets: Vec<u64> = Vec::with_capacity(alloc.len());
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(alloc.len());
        let mut assigned = 0u64;
        for (p, &b) in alloc.iter().enumerate() {
            let exact = u128::from(b) * u128::from(self.cache_lines);
            let lines = (exact / u128::from(blocks)) as u64;
            let frac = (exact % u128::from(blocks)) as f64 / f64::from(blocks);
            targets.push(lines);
            fracs.push((p, frac));
            assigned += lines;
        }
        fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fractions"));
        let mut left = self.cache_lines - assigned;
        let mut i = 0;
        while left > 0 {
            targets[fracs[i % fracs.len()].0] += 1;
            left -= 1;
            i += 1;
        }
        targets
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.umons.len()
    }
}

impl vantage_snapshot::Snapshot for UcpPolicy {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64(self.umons.len() as u64);
        for u in &self.umons {
            u.save_state(enc);
        }
        enc.put_u8(match self.goal {
            AllocationGoal::Throughput => 0,
            AllocationGoal::Fairness => 1,
        });
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        if dec.take_u64()? != self.umons.len() as u64 {
            return Err(dec.mismatch("partition count differs"));
        }
        for u in &mut self.umons {
            u.load_state(dec)?;
        }
        self.goal = match dec.take_u8()? {
            0 => AllocationGoal::Throughput,
            1 => AllocationGoal::Fairness,
            _ => return Err(dec.invalid("unknown allocation goal tag")),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(ucp: &mut UcpPolicy, part: usize, ws: u64, n: u64) {
        let base = (part as u64 + 1) << 40;
        for i in 0..n {
            ucp.observe(part, LineAddr(base + (i % ws)));
        }
    }

    #[test]
    fn targets_sum_to_capacity_exactly() {
        for granularity in [
            UcpGranularity::Ways(16),
            UcpGranularity::Fine { blocks: 256 },
        ] {
            let mut ucp = UcpPolicy::new(4, 16, 64, 2048, 32_768, granularity, 2);
            for p in 0..4 {
                stream(&mut ucp, p, 5_000 * (p as u64 + 1), 100_000);
            }
            let t = ucp.reallocate();
            assert_eq!(t.iter().sum::<u64>(), 32_768, "granularity {granularity:?}");
        }
    }

    #[test]
    fn cache_friendly_beats_streaming() {
        let mut ucp = UcpPolicy::new(
            2,
            16,
            64,
            2048,
            32_768,
            UcpGranularity::Fine { blocks: 256 },
            3,
        );
        stream(&mut ucp, 0, 20_000, 300_000); // heavy reuse
        for i in 0..300_000u64 {
            ucp.observe(1, LineAddr((2u64 << 40) + i)); // pure stream
        }
        let t = ucp.reallocate();
        assert!(t[0] > 4 * t[1], "friendly {} vs streaming {}", t[0], t[1]);
    }

    #[test]
    fn fairness_goal_narrows_the_allocation_gap() {
        let build = || {
            UcpPolicy::new(
                2,
                16,
                64,
                2048,
                32_768,
                UcpGranularity::Fine { blocks: 256 },
                6,
            )
        };
        let observe = |ucp: &mut UcpPolicy| {
            stream(ucp, 0, 4_000, 300_000); // modest working set, big gains
            stream(ucp, 1, 60_000, 300_000); // larger set, shallower gains
        };
        let mut tput = build();
        observe(&mut tput);
        let t = tput.reallocate();

        let mut fair = build();
        fair.set_goal(AllocationGoal::Fairness);
        assert_eq!(fair.goal(), AllocationGoal::Fairness);
        observe(&mut fair);
        let f = fair.reallocate();

        assert_eq!(f.iter().sum::<u64>(), 32_768);
        let gap = |v: &[u64]| v[0].abs_diff(v[1]);
        assert!(
            gap(&f) <= gap(&t),
            "fairness should not widen the gap: fair {f:?} vs tput {t:?}"
        );
    }

    #[test]
    fn way_targets_are_way_multiples_fine_targets_are_not_constrained() {
        let observe_all = |ucp: &mut UcpPolicy| {
            stream(ucp, 0, 2_000, 150_000);
            stream(ucp, 1, 40_000, 300_000);
        };
        let mut ways = UcpPolicy::new(2, 16, 64, 2048, 32_768, UcpGranularity::Ways(16), 4);
        observe_all(&mut ways);
        let tw = ways.reallocate();
        assert_eq!(tw.iter().sum::<u64>(), 32_768);
        for &t in &tw {
            assert_eq!(
                t % 2048,
                0,
                "way-granularity target not a way multiple: {tw:?}"
            );
            assert!(t >= 2048, "way granularity cannot allocate below one way");
        }

        let mut fine = UcpPolicy::new(
            2,
            16,
            64,
            2048,
            32_768,
            UcpGranularity::Fine { blocks: 256 },
            4,
        );
        observe_all(&mut fine);
        let tf = fine.reallocate();
        assert_eq!(tf.iter().sum::<u64>(), 32_768);
        // The fine allocator works on a 128-line quantum; both allocators
        // must agree on who the capacity-hungry partition is.
        assert!(tf[1] > tf[0] && tw[1] > tw[0]);
    }

    #[test]
    fn repartitioning_adapts_after_phase_change() {
        let mut ucp = UcpPolicy::new(
            2,
            16,
            64,
            2048,
            32_768,
            UcpGranularity::Fine { blocks: 256 },
            5,
        );
        // Phase 1: partition 0 is the reuser.
        stream(&mut ucp, 0, 20_000, 200_000);
        for i in 0..200_000u64 {
            ucp.observe(1, LineAddr((2u64 << 40) + i));
        }
        let t1 = ucp.reallocate();
        assert!(t1[0] > t1[1]);
        // Phase 2: roles swap; decay lets the new phase win within a couple
        // of intervals.
        for _ in 0..3 {
            stream(&mut ucp, 1, 20_000, 200_000);
            for i in 0..200_000u64 {
                ucp.observe(0, LineAddr((3u64 << 40) + i));
            }
            ucp.reallocate();
        }
        stream(&mut ucp, 1, 20_000, 200_000);
        for i in 0..200_000u64 {
            ucp.observe(0, LineAddr((4u64 << 40) + i));
        }
        let t2 = ucp.reallocate();
        assert!(t2[1] > t2[0], "policy failed to adapt: {t2:?}");
    }
}
