//! The paper's analytical models (§3).
//!
//! Vantage is "derived from statistical analysis, not empirical
//! observation": every guarantee it offers — associativity bounds, partition
//! size bounds, and the unmanaged-region sizing — comes from the closed-form
//! models in this module.
//!
//! * [`assoc`] — associativity distributions of candidate-based arrays
//!   under the uniformity assumption (`FA(x) = x^R`, Eq. 1 / Fig. 1).
//! * [`managed`] — associativity inside the managed region, for
//!   one-demotion-per-eviction (Eq. 2 / Fig. 2b) and demote-on-average
//!   (Eq. 3 / Fig. 2c) policies.
//! * [`sizing`] — aperture and stability math: per-partition apertures
//!   (Eq. 4), minimum stable sizes (Eq. 5-6), feedback outgrowth (Eq. 8-9)
//!   and the unmanaged-region sizing rule (§4.3 / Fig. 5).

pub mod assoc;
pub mod managed;
pub mod sizing;
