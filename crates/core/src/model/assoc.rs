//! Associativity distributions under the uniformity assumption (Eq. 1).
//!
//! Following the zcache analytical framework, every line is assigned a
//! uniformly distributed *eviction priority* `e ∈ [0, 1]` by the replacement
//! policy, and on each replacement the controller evicts the candidate with
//! the highest priority. The *associativity distribution* is the
//! distribution of the priorities of evicted lines; the more skewed towards
//! 1.0, the better the array approximates a fully-associative cache.
//!
//! If the array yields `R` independent, uniformly-distributed candidates,
//! the evicted priority is the maximum of `R` uniforms:
//!
//! ```text
//! FA(x) = Prob(A ≤ x) = x^R,  x ∈ [0, 1]          (Eq. 1)
//! ```

/// The associativity CDF `FA(x) = x^R` (Eq. 1).
///
/// # Panics
///
/// Panics if `r == 0` or `x` is not finite.
///
/// # Example
///
/// ```
/// use vantage::model::assoc::cdf;
///
/// // With R = 64 candidates, evicting a line in the bottom 80% of priorities
/// // is a one-in-a-million event (paper §3.2).
/// assert!(cdf(0.8, 64) < 1.1e-6);
/// ```
pub fn cdf(x: f64, r: u32) -> f64 {
    assert!(r > 0, "candidate count must be non-zero");
    assert!(x.is_finite(), "x must be finite");
    x.clamp(0.0, 1.0).powi(r as i32)
}

/// Inverse of [`cdf`]: the eviction priority below which a fraction `p` of
/// evictions fall.
///
/// # Panics
///
/// Panics if `r == 0` or `p` is outside `[0, 1]`.
pub fn quantile(p: f64, r: u32) -> f64 {
    assert!(r > 0, "candidate count must be non-zero");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    p.powf(1.0 / f64::from(r))
}

/// Mean evicted priority, `R / (R + 1)`.
pub fn mean(r: u32) -> f64 {
    assert!(r > 0, "candidate count must be non-zero");
    f64::from(r) / f64::from(r + 1)
}

/// Samples the CDF at `points + 1` evenly spaced priorities, producing the
/// series plotted in Fig. 1.
pub fn series(r: u32, points: usize) -> Vec<(f64, f64)> {
    assert!(points > 0, "need at least one interval");
    (0..=points)
        .map(|i| {
            let x = i as f64 / points as f64;
            (x, cdf(x, r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_bounded() {
        for r in [4u32, 8, 16, 64] {
            let s = series(r, 100);
            assert_eq!(s.first().unwrap().1, 0.0);
            assert_eq!(s.last().unwrap().1, 1.0);
            for w in s.windows(2) {
                assert!(w[1].1 >= w[0].1, "CDF must be monotone");
            }
        }
    }

    #[test]
    fn more_candidates_skew_towards_one() {
        // Higher R means lower probability of evicting low-priority lines.
        for x in [0.2, 0.5, 0.8, 0.95] {
            assert!(cdf(x, 64) < cdf(x, 16));
            assert!(cdf(x, 16) < cdf(x, 4));
        }
    }

    #[test]
    fn paper_reference_points() {
        // §3.2: "with R = 64, the probability of evicting a line with
        // eviction priority e < 0.8 is FA(0.8) = 1e-6".
        let p = cdf(0.8, 64);
        assert!(p > 1e-7 && p < 1e-5, "FA(0.8; 64) = {p}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        for r in [4u32, 16, 52] {
            for p in [0.01, 0.5, 0.99] {
                let x = quantile(p, r);
                assert!((cdf(x, r) - p).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mean_matches_closed_form() {
        assert!((mean(1) - 0.5).abs() < 1e-12);
        assert!((mean(63) - 63.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_clamps_out_of_range_x() {
        assert_eq!(cdf(-0.5, 8), 0.0);
        assert_eq!(cdf(1.5, 8), 1.0);
    }
}
