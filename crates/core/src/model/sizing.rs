//! Aperture, stability and unmanaged-region sizing math (Eqs. 4-9, §4.3).

/// Per-partition aperture for heterogeneous partitions (Eq. 4):
///
/// ```text
/// A_i = (C_i / ΣC) · (ΣS / S_i) · 1 / (R·m)
/// ```
///
/// where `C_i` is the partition's churn (insertions per unit time), `S_i`
/// its size, and sums run over all partitions. Partitions with above-average
/// churn or below-average size need larger apertures.
///
/// # Panics
///
/// Panics if any argument is non-positive where positivity is required.
pub fn aperture(churn: f64, size: f64, churn_sum: f64, size_sum: f64, r: u32, m: f64) -> f64 {
    assert!(r > 0, "candidate count must be non-zero");
    assert!(m > 0.0 && m <= 1.0, "managed fraction must be in (0, 1]");
    assert!(
        churn >= 0.0 && churn_sum > 0.0,
        "churns must be non-negative, sum positive"
    );
    assert!(size > 0.0 && size_sum > 0.0, "sizes must be positive");
    (churn / churn_sum) * (size_sum / size) / (f64::from(r) * m)
}

/// Minimum stable size of a high-churn partition (Eq. 5): the size at which
/// its churn/size ratio can be handled with aperture `a_max`, as a fraction
/// of total cache size.
///
/// ```text
/// MSS_j = (C_j / ΣC) · ΣS / (A_max · R · m)
/// ```
pub fn min_stable_size(
    churn: f64,
    churn_sum: f64,
    size_sum: f64,
    a_max: f64,
    r: u32,
    m: f64,
) -> f64 {
    assert!(a_max > 0.0 && a_max <= 1.0, "A_max must be in (0, 1]");
    assert!(r > 0 && m > 0.0, "bad geometry");
    (churn / churn_sum) * size_sum / (a_max * f64::from(r) * m)
}

/// Worst-case total space borrowed from the unmanaged region by partitions
/// sitting at their minimum stable sizes (Eq. 6): `≈ 1 / (A_max · R)` of the
/// cache, independent of the number of partitions.
pub fn total_borrowed_approx(a_max: f64, r: u32) -> f64 {
    assert!(a_max > 0.0 && a_max <= 1.0 && r > 0, "bad parameters");
    1.0 / (a_max * f64::from(r))
}

/// Exact form of Eq. 6's derivation: `1 / (A_max·R − 1/m)`.
///
/// For any reasonable `A_max`, `R`, `m`, this differs negligibly from
/// [`total_borrowed_approx`] (the paper's point).
///
/// # Panics
///
/// Panics if `A_max·R ≤ 1/m` (no stable configuration exists).
pub fn total_borrowed_exact(a_max: f64, r: u32, m: f64) -> f64 {
    assert!(m > 0.0 && m <= 1.0, "managed fraction must be in (0, 1]");
    let denom = a_max * f64::from(r) - 1.0 / m;
    assert!(denom > 0.0, "A_max·R must exceed 1/m for stability");
    1.0 / denom
}

/// Aggregate steady-state outgrowth of all partitions under feedback-based
/// aperture control (Eq. 9): `Σ ΔS_i = slack / (A_max · R)` of the cache.
pub fn feedback_outgrowth(slack: f64, a_max: f64, r: u32) -> f64 {
    assert!(slack >= 0.0, "slack must be non-negative");
    assert!(a_max > 0.0 && a_max <= 1.0 && r > 0, "bad parameters");
    slack / (a_max * f64::from(r))
}

/// Worst-case probability of a forced eviction from the managed region when
/// a fraction `u` of the cache is unmanaged: `P_ev = (1-u)^R` (§4.3).
pub fn forced_eviction_prob(u: f64, r: u32) -> f64 {
    assert!((0.0..=1.0).contains(&u), "u must be a fraction");
    assert!(r > 0, "candidate count must be non-zero");
    (1.0 - u).powi(r as i32)
}

/// The §4.3 unmanaged-region sizing rule:
///
/// ```text
/// u = 1 − P_ev^(1/R) + (1 + slack) / (A_max · R)
/// ```
///
/// combining the eviction-absorption term with the space needed for minimum
/// stable sizes and feedback outgrowth. This is the quantity plotted in
/// Fig. 5.
///
/// # Panics
///
/// Panics if parameters are out of their domains.
pub fn unmanaged_fraction(r: u32, p_ev: f64, a_max: f64, slack: f64) -> f64 {
    assert!(r > 0, "candidate count must be non-zero");
    assert!(p_ev > 0.0 && p_ev <= 1.0, "P_ev must be in (0, 1]");
    assert!(a_max > 0.0 && a_max <= 1.0, "A_max must be in (0, 1]");
    assert!(slack >= 0.0, "slack must be non-negative");
    1.0 - p_ev.powf(1.0 / f64::from(r)) + (1.0 + slack) / (a_max * f64::from(r))
}

/// Inverts the §4.3 sizing rule: given a *total* unmanaged fraction `u`,
/// the worst-case probability of a forced managed eviction once the
/// MSS and slack reserves (`(1+slack)/(A_max·R)`) are carved out:
///
/// ```text
/// P_ev = (1 − (u − (1+slack)/(A_max·R)))^R
/// ```
///
/// Returns 1.0 if the reserves consume the whole unmanaged region (no
/// eviction-absorption margin left). This is the model marker plotted on
/// Fig. 9b.
pub fn worst_case_pev(u: f64, r: u32, a_max: f64, slack: f64) -> f64 {
    assert!((0.0..=1.0).contains(&u), "u must be a fraction");
    assert!(a_max > 0.0 && a_max <= 1.0 && r > 0, "bad parameters");
    assert!(slack >= 0.0, "slack must be non-negative");
    let margin = u - (1.0 + slack) / (a_max * f64::from(r));
    if margin <= 0.0 {
        1.0
    } else {
        (1.0 - margin).powi(r as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_pev_inverts_sizing() {
        // unmanaged_fraction and worst_case_pev are inverses.
        for pev in [1e-2, 1e-3, 1e-4] {
            let u = unmanaged_fraction(52, pev, 0.4, 0.1);
            let back = worst_case_pev(u, 52, 0.4, 0.1);
            assert!(
                (back.log10() - pev.log10()).abs() < 0.05,
                "{pev} -> {u} -> {back}"
            );
        }
        // No margin: probability 1.
        assert_eq!(worst_case_pev(0.01, 52, 0.4, 0.1), 1.0);
    }

    #[test]
    fn paper_worked_example_section_3_4() {
        // 4 equal partitions, partition 1 with twice the churn; R = 16,
        // m = 0.625. Expected apertures: 16% and 8%.
        let sizes = [1.0, 1.0, 1.0, 1.0];
        let churns = [2.0, 1.0, 1.0, 1.0];
        let churn_sum: f64 = churns.iter().sum();
        let size_sum: f64 = sizes.iter().sum();
        let a1 = aperture(churns[0], sizes[0], churn_sum, size_sum, 16, 0.625);
        let a2 = aperture(churns[1], sizes[1], churn_sum, size_sum, 16, 0.625);
        assert!((a1 - 0.16).abs() < 1e-12, "A_1 = {a1}");
        assert!((a2 - 0.08).abs() < 1e-12, "A_2 = {a2}");
    }

    #[test]
    fn paper_mss_example_section_3_4() {
        // §3.4: R = 52 candidates, A_max = 0.4 → extra 1/(0.4·52) = 4.8%.
        let b = total_borrowed_approx(0.4, 52);
        assert!((b - 0.0481).abs() < 1e-3, "borrowed = {b}");
    }

    #[test]
    fn exact_and_approx_borrowed_agree() {
        let approx = total_borrowed_approx(0.4, 52);
        let exact = total_borrowed_exact(0.4, 52, 0.85);
        assert!((approx - exact).abs() / exact < 0.07, "{approx} vs {exact}");
    }

    #[test]
    fn paper_outgrowth_example_section_4_1() {
        // R = 52, slack = 0.1, A_max = 0.4 → Σ ΔS_i = 0.48% of cache.
        let g = feedback_outgrowth(0.1, 0.4, 52);
        assert!((g - 0.0048).abs() < 1e-4, "outgrowth = {g}");
    }

    #[test]
    fn paper_unmanaged_sizing_section_4_3() {
        // "with 52 candidates, A_max = 0.4 requires 13% of the cache to be
        // unmanaged for P_ev = 1e-2, while going down to P_ev = 1e-4 would
        // require 21%".
        let u2 = unmanaged_fraction(52, 1e-2, 0.4, 0.1);
        let u4 = unmanaged_fraction(52, 1e-4, 0.4, 0.1);
        assert!((u2 - 0.13).abs() < 0.015, "u(P_ev=1e-2) = {u2}");
        assert!((u4 - 0.21).abs() < 0.015, "u(P_ev=1e-4) = {u4}");
    }

    #[test]
    fn forced_eviction_prob_matches_cdf() {
        // (1-u)^R is exactly FA(m): the chance all R candidates are managed.
        let p = forced_eviction_prob(0.3, 16);
        assert!((p - 0.7f64.powi(16)).abs() < 1e-15);
        // Fig. 2a's setup: u = 0.3, R = 16 gives ~1e-3.
        assert!(p > 1e-4 && p < 1e-2);
    }

    #[test]
    fn unmanaged_fraction_monotonicity() {
        // Stricter isolation (smaller P_ev) needs a larger unmanaged region;
        // more candidates need a smaller one.
        assert!(unmanaged_fraction(52, 1e-4, 0.4, 0.1) > unmanaged_fraction(52, 1e-2, 0.4, 0.1));
        assert!(unmanaged_fraction(16, 1e-2, 0.4, 0.1) > unmanaged_fraction(52, 1e-2, 0.4, 0.1));
        // Larger max aperture shrinks the MSS reserve.
        assert!(unmanaged_fraction(52, 1e-2, 0.2, 0.1) > unmanaged_fraction(52, 1e-2, 0.6, 0.1));
    }

    #[test]
    fn mss_scales_with_churn_share() {
        let a = min_stable_size(1.0, 2.0, 1.0, 0.4, 52, 0.85);
        let b = min_stable_size(2.0, 2.0, 1.0, 0.4, 52, 0.85);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn unstable_configuration_rejected() {
        total_borrowed_exact(0.05, 4, 0.9); // A_max·R = 0.2 < 1/m
    }
}
