//! Associativity inside the managed region (Eqs. 2-3, Fig. 2).
//!
//! With the cache split into a managed fraction `m = 1 - u` and an
//! unmanaged fraction `u`, demotions (the managed region's equivalent of
//! evictions) can be performed two ways:
//!
//! * **Exactly one demotion per eviction** (Eq. 2): the controller must
//!   demote the best candidate it finds among however many of the `R`
//!   candidates happen to fall in the managed region — a binomial lottery
//!   that sometimes forces demoting young lines.
//! * **One demotion per eviction on average** (Eq. 3): the controller picks
//!   an *aperture* `A` and demotes every candidate in the top `A` fraction
//!   of eviction priorities; sizes are maintained because `R·m·A = 1` on
//!   average. Demoted priorities are then uniform on `[1-A, 1]`, a large
//!   associativity win (compare Fig. 2b and 2c).

/// Binomial probability `B(i, R) = C(R,i) (1-u)^i u^(R-i)` that exactly `i`
/// of `R` candidates fall in the managed region.
///
/// # Panics
///
/// Panics if `i > r` or `u` is outside `[0, 1]`.
pub fn binom_managed(i: u32, r: u32, u: f64) -> f64 {
    assert!(i <= r, "i must be at most R");
    assert!((0.0..=1.0).contains(&u), "u must be a fraction");
    // C(R, i) via a multiplicative loop; R ≤ a few hundred, so f64 is exact
    // enough (exact through R = 64 for the configurations we use).
    let mut c = 1.0f64;
    for k in 0..i {
        c = c * f64::from(r - k) / f64::from(k + 1);
    }
    c * (1.0 - u).powi(i as i32) * u.powi((r - i) as i32)
}

/// Managed-region associativity CDF when demoting *exactly one* line per
/// eviction (Eq. 2):
///
/// ```text
/// FM(x) ≈ Σ_{i=1}^{R-1} B(i, R) · x^i
/// ```
///
/// (the negligible `i = 0` and `i = R` cases are ignored, as in the paper).
///
/// # Panics
///
/// Panics if `r < 2` or arguments are out of range.
pub fn one_demotion_cdf(x: f64, r: u32, u: f64) -> f64 {
    assert!(r >= 2, "need at least 2 candidates");
    assert!((0.0..=1.0).contains(&u), "u must be a fraction");
    let x = x.clamp(0.0, 1.0);
    let mut acc = 0.0;
    for i in 1..r {
        acc += binom_managed(i, r, u) * x.powi(i as i32);
    }
    // Normalize over the included cases so FM(1) = 1 exactly.
    let mass: f64 = (1..r).map(|i| binom_managed(i, r, u)).sum();
    acc / mass
}

/// Managed-region associativity CDF when demoting on *average* with
/// aperture `a` (Eq. 3): demoted priorities are uniform on `[1-a, 1]`.
///
/// # Panics
///
/// Panics if `a` is not in `(0, 1]`.
pub fn average_demotion_cdf(x: f64, a: f64) -> f64 {
    assert!(a > 0.0 && a <= 1.0, "aperture must be in (0, 1]");
    if x < 1.0 - a {
        0.0
    } else if x >= 1.0 {
        1.0
    } else {
        (x - (1.0 - a)) / a
    }
}

/// The balanced aperture `A = 1 / (R·m)` that demotes one line per eviction
/// on average when all partitions behave alike (§3.3).
///
/// # Panics
///
/// Panics if `r == 0` or `m` is not in `(0, 1]`.
pub fn balanced_aperture(r: u32, m: f64) -> f64 {
    assert!(r > 0, "candidate count must be non-zero");
    assert!(m > 0.0 && m <= 1.0, "managed fraction must be in (0, 1]");
    1.0 / (f64::from(r) * m)
}

/// Samples [`one_demotion_cdf`] (Fig. 2b series).
pub fn one_demotion_series(r: u32, u: f64, points: usize) -> Vec<(f64, f64)> {
    (0..=points)
        .map(|i| {
            let x = i as f64 / points as f64;
            (x, one_demotion_cdf(x, r, u))
        })
        .collect()
}

/// Samples [`average_demotion_cdf`] with the balanced aperture for
/// `(r, m = 1-u)` (Fig. 2c series).
pub fn average_demotion_series(r: u32, u: f64, points: usize) -> Vec<(f64, f64)> {
    let a = balanced_aperture(r, 1.0 - u).min(1.0);
    (0..=points)
        .map(|i| {
            let x = i as f64 / points as f64;
            (x, average_demotion_cdf(x, a))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_sums_to_one() {
        for (r, u) in [(16u32, 0.3), (52, 0.05), (64, 0.15)] {
            let total: f64 = (0..=r).map(|i| binom_managed(i, r, u)).sum();
            assert!((total - 1.0).abs() < 1e-9, "Σ B(i,R) = {total}");
        }
    }

    #[test]
    fn one_demotion_cdf_is_a_cdf() {
        for (r, u) in [(16u32, 0.3), (32, 0.3), (64, 0.3)] {
            assert!(one_demotion_cdf(0.0, r, u).abs() < 1e-12);
            assert!((one_demotion_cdf(1.0, r, u) - 1.0).abs() < 1e-9);
            let mut prev = 0.0;
            for i in 0..=100 {
                let v = one_demotion_cdf(i as f64 / 100.0, r, u);
                assert!(v >= prev - 1e-12);
                prev = v;
            }
        }
    }

    #[test]
    fn average_beats_exactly_one() {
        // Fig. 2b vs 2c: with R = 16 and u = 0.3, demoting on average only
        // touches lines with e > 0.9, while exactly-one demotes ~60% of its
        // lines below e = 0.9.
        let r = 16;
        let u = 0.3;
        let a = balanced_aperture(r, 1.0 - u);
        assert!((a - 1.0 / (16.0 * 0.7)).abs() < 1e-12);
        assert_eq!(
            average_demotion_cdf(0.9, a),
            0.0,
            "average never demotes e < 1-A"
        );
        // Eq. 2 puts a substantial fraction (~31% here; E[x^i] with
        // i ~ Binomial(16, 0.7)) of exactly-one demotions below e = 0.9,
        // versus exactly zero for demote-on-average.
        let exact = one_demotion_cdf(0.9, r, u);
        assert!(exact > 0.25, "exactly-one demotes {exact} below 0.9");
    }

    #[test]
    fn average_cdf_shape() {
        let a = 0.1;
        assert_eq!(average_demotion_cdf(0.0, a), 0.0);
        assert_eq!(average_demotion_cdf(0.89, a), 0.0);
        assert!((average_demotion_cdf(0.95, a) - 0.5).abs() < 1e-9);
        assert_eq!(average_demotion_cdf(1.0, a), 1.0);
    }

    #[test]
    fn series_lengths() {
        assert_eq!(one_demotion_series(16, 0.3, 50).len(), 51);
        assert_eq!(average_demotion_series(16, 0.3, 50).len(), 51);
    }

    #[test]
    fn paper_aperture_example() {
        // §3.3: R = 16, m = 0.625 → R·m = 10 candidates in the managed
        // region per eviction, aperture 1/10.
        let a = balanced_aperture(16, 0.625);
        assert!((a - 0.1).abs() < 1e-12);
    }
}
