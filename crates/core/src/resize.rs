//! Progressive repartitioning (§3.4, "Transient behavior").
//!
//! When targets change abruptly, upsized partitions can acquire capacity
//! faster than downsized ones release it, transiently squeezing the
//! unmanaged region. The paper's advice for high-frequency resizers is to
//! "control the upsizing and downsizing of partitions progressively and in
//! multiple steps" — [`TargetRamp`] implements exactly that: a linear
//! interpolation between two allocations whose every intermediate step
//! sums to the same total.

/// An iterator-style ramp from one target vector to another.
///
/// # Example
///
/// ```
/// use vantage::resize::TargetRamp;
///
/// let mut ramp = TargetRamp::new(vec![800, 200], vec![200, 800], 3);
/// assert_eq!(ramp.step(), Some(vec![600, 400]));
/// assert_eq!(ramp.step(), Some(vec![400, 600]));
/// assert_eq!(ramp.step(), Some(vec![200, 800]));
/// assert_eq!(ramp.step(), None);
/// ```
#[derive(Clone, Debug)]
pub struct TargetRamp {
    from: Vec<u64>,
    to: Vec<u64>,
    steps: u32,
    taken: u32,
}

impl TargetRamp {
    /// Creates a ramp from `from` to `to` over `steps` steps (the final
    /// step yields `to` exactly).
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, `steps == 0`, or the totals
    /// differ (a ramp conserves capacity).
    pub fn new(from: Vec<u64>, to: Vec<u64>, steps: u32) -> Self {
        assert_eq!(from.len(), to.len(), "allocations must have equal arity");
        assert!(steps > 0, "need at least one step");
        assert_eq!(
            from.iter().sum::<u64>(),
            to.iter().sum::<u64>(),
            "a ramp conserves total capacity"
        );
        Self {
            from,
            to,
            steps,
            taken: 0,
        }
    }

    /// Whether the ramp has delivered its final allocation.
    pub fn is_done(&self) -> bool {
        self.taken >= self.steps
    }

    /// Produces the next intermediate allocation, or `None` when done.
    /// Every step's total equals the endpoints' total exactly.
    pub fn step(&mut self) -> Option<Vec<u64>> {
        if self.is_done() {
            return None;
        }
        self.taken += 1;
        if self.taken == self.steps {
            return Some(self.to.clone());
        }
        let t = self.taken as u128;
        let s = self.steps as u128;
        let mut out: Vec<u64> = Vec::with_capacity(self.from.len());
        let mut fracs: Vec<(usize, u128)> = Vec::with_capacity(self.from.len());
        let mut total = 0u64;
        for (i, (&f, &g)) in self.from.iter().zip(&self.to).enumerate() {
            // f + (g - f) * t / s in integer arithmetic, tracking remainders
            // for largest-remainder correction.
            let num = u128::from(f) * (s - t) + u128::from(g) * t;
            out.push((num / s) as u64);
            fracs.push((i, num % s));
            total += (num / s) as u64;
        }
        let want: u64 = self.from.iter().sum();
        fracs.sort_by_key(|&(_, rem)| std::cmp::Reverse(rem));
        let mut short = want - total;
        let mut k = 0;
        while short > 0 {
            out[fracs[k % fracs.len()].0] += 1;
            short -= 1;
            k += 1;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_conserves_totals_every_step() {
        let mut ramp = TargetRamp::new(vec![1000, 1, 23, 476], vec![1, 999, 400, 100], 7);
        let want: u64 = 1500;
        let mut steps = 0;
        while let Some(t) = ramp.step() {
            assert_eq!(t.iter().sum::<u64>(), want, "step {steps}");
            steps += 1;
        }
        assert_eq!(steps, 7);
    }

    #[test]
    fn ramp_is_monotone_per_partition() {
        let mut ramp = TargetRamp::new(vec![800, 200], vec![100, 900], 10);
        let mut prev = vec![800u64, 200];
        while let Some(t) = ramp.step() {
            assert!(t[0] <= prev[0] + 1, "shrinking partition must not grow");
            assert!(t[1] + 1 >= prev[1], "growing partition must not shrink");
            prev = t;
        }
        assert_eq!(prev, vec![100, 900]);
    }

    #[test]
    fn single_step_jumps_directly() {
        let mut ramp = TargetRamp::new(vec![5, 5], vec![2, 8], 1);
        assert_eq!(ramp.step(), Some(vec![2, 8]));
        assert!(ramp.is_done());
        assert_eq!(ramp.step(), None);
    }

    #[test]
    #[should_panic(expected = "conserves total")]
    fn mismatched_totals_rejected() {
        TargetRamp::new(vec![10], vec![20], 2);
    }
}
