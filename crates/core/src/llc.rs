//! The Vantage last-level cache: the practical controller of §4 bound to a
//! cache array.
//!
//! Lines from all partitions share the array; capacity is enforced purely at
//! replacement time. Each tag carries a partition ID (with one extra ID for
//! the unmanaged region) and an 8-bit timestamp (or RRPV). On each miss the
//! controller:
//!
//! 1. checks every replacement candidate for *demotion* — a managed line
//!    over its partition's target whose stamp falls outside the partition's
//!    keep window is re-tagged into the unmanaged region (setpoint-based
//!    demotions, §4.2);
//! 2. evicts the unmanaged candidate with the oldest timestamp, falling back
//!    to a just-demoted candidate, and only if neither exists forcing an
//!    eviction from the managed region (counted, since its probability is
//!    the paper's isolation metric, Fig. 9b);
//! 3. inserts the incoming line into its partition.
//!
//! Per-partition setpoints are steered by negative feedback every
//! `c = 256` candidates using the demotion thresholds lookup table
//! (feedback-based aperture control, §4.1), so apertures are never computed
//! explicitly at run time.

use vantage_cache::replacement::rrip::BasePolicy;
use vantage_cache::{
    CacheArray, Frame, LineAddr, Ownership, PartitionId, RripConfig, RripMode, RripPolicy,
    ShareMode, TagMeta, TsLru, Walk, MAX_PROBE_WAYS, TAG_UNMANAGED,
};
use vantage_partitioning::{
    AccessOutcome, AccessRequest, HasInvariants, HasPartitionPolicy, InvariantViolation,
    LifecycleError, Llc, LlcStats, PartitionObservations, PartitionSpec, TsHistogram,
};
use vantage_telemetry::{PartitionSample, Telemetry, TelemetryEvent};

use crate::config::{DemotionMode, RankMode, VantageConfig};
use crate::controller::{Feedback, PartitionState};
use crate::error::VantageError;
use crate::fault::{Fault, FaultPlan};

/// The partition ID tagging unmanaged lines (and, in the SoA tag store,
/// never-filled frames — see [`TagMeta`]).
pub const UNMANAGED: u16 = TAG_UNMANAGED;

/// One demotion's empirical priority sample:
/// `(access sequence number, partition, priority in [0, 1])`.
pub type PrioritySample = (u64, u16, f32);

/// Vantage-specific event counters (beyond hit/miss bookkeeping).
#[derive(Clone, Debug, Default)]
pub struct VantageStats {
    /// Managed lines demoted to the unmanaged region.
    pub demotions: u64,
    /// Unmanaged lines promoted back on a hit.
    pub promotions: u64,
    /// Evictions served from the unmanaged region (including just-demoted
    /// candidates).
    pub unmanaged_evictions: u64,
    /// Forced evictions from the managed region (no unmanaged or demoted
    /// candidate available) — the isolation-violation count.
    pub forced_managed_evictions: u64,
    /// Fills into empty frames (warm-up only).
    pub empty_fills: u64,
    /// Setpoint adjustments performed.
    pub setpoint_adjustments: u64,
    /// Insertions diverted to the unmanaged region by churn throttling.
    pub throttled_insertions: u64,
    /// Accesses that met a tag with an out-of-range partition ID (fault
    /// injection / soft errors) and fell back to unmanaged-region handling.
    pub corrupted_pid_fallbacks: u64,
    /// Scrub passes performed (manual or periodic).
    pub scrubs: u64,
}

impl VantageStats {
    /// Fraction of evictions that had to come from the managed region —
    /// the empirical counterpart of the model's `P_ev` (Fig. 9b).
    pub fn managed_eviction_fraction(&self) -> f64 {
        let total = self.unmanaged_evictions + self.forced_managed_evictions;
        if total == 0 {
            0.0
        } else {
            self.forced_managed_evictions as f64 / total as f64
        }
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// The demotion rule for one miss walk, resolved once per walk so the
/// candidate loop dispatches on a single enum instead of re-matching
/// `DemotionMode` × `RankMode` for every one of the (up to 52) candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DemoteRule {
    /// Practical controller, LRU ranks: demote outside the keep window.
    SetpointLru,
    /// Practical controller, RRIP ranks: demote at/above the setpoint RRPV.
    SetpointRrip,
    /// Idealized controller: demote by exact rank against the aperture.
    PerfectAperture,
    /// Fig. 2b strawman: at most one demotion per walk, picked after the
    /// scan.
    ExactlyOne,
}

/// Lifecycle state of one partition slot (service mode).
///
/// The slot table only ever grows; destroyed slots are recycled. A slot's
/// state gates what the controller does with it:
///
/// * `Active` slots serve accesses and hold a capacity target;
/// * `Draining` slots were destroyed while still holding lines — their
///   target is zero (so the aperture saturates at `A_max` and ordinary
///   setpoint demotions evict everything stale) and they become `Free`
///   once the last line leaves;
/// * `Free` slots are fully drained.
///
/// [`Llc::create_partition`] reuses the lowest non-`Active` slot — drained
/// or not — so slot assignment depends only on the lifecycle call
/// sequence, never on drain progress (which differs across the banks of a
/// banked cache). Recycling a `Draining` slot hands its leftover lines to
/// the new tenant, as reassigning a partition ID does in hardware.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SlotState {
    /// Live: serving accesses and holding a capacity target.
    #[default]
    Active,
    /// Destroyed but not yet empty; drains via ordinary demotion.
    Draining,
    /// Fully drained; dead until recycled by the next create.
    Free,
}

/// One partition's keep window (`CurrentTS`, `CurrentTS - SetpointTS`),
/// snapshotted once per miss walk. A mid-walk setpoint adjustment thus
/// takes effect from the next walk — adjustments happen at most once per
/// `c = 256` candidates, well inside the feedback loop's time constant.
#[derive(Clone, Copy, Debug, Default)]
struct KeepWin {
    current: u8,
    window: u8,
    /// Draining slot: every resident line counts as stale. A destroyed
    /// partition's coarse clock never advances again (only its own
    /// accesses tick it), so without this its freshest lines would read
    /// age 0 forever and the drain would stall short of empty.
    draining: bool,
}

/// A Vantage-partitioned last-level cache over any [`CacheArray`].
///
/// # Example
///
/// ```
/// use vantage::{VantageConfig, VantageLlc};
/// use vantage_cache::ZArray;
/// use vantage_partitioning::{AccessRequest, Llc, PartitionId};
///
/// let array = ZArray::new(4096, 4, 52, 1); // Z4/52
/// let mut llc = VantageLlc::try_new(Box::new(array), 2, VantageConfig::default(), 1).expect("valid Vantage config");
/// llc.set_targets(&[3072, 1024]);
/// llc.access(AccessRequest::read(PartitionId::from_index(0), 0x1000.into()));
/// assert_eq!(llc.stats().misses[0], 1);
/// ```
pub struct VantageLlc {
    array: Box<dyn CacheArray>,
    /// Per-frame tags as dense SoA lanes (partition IDs + stamps, Fig. 4);
    /// never-filled frames carry the [`UNMANAGED`] sentinel.
    meta: TagMeta,
    /// How cross-partition sharing is resolved (the [`ShareMode`] knob)
    /// plus the per-partition sharing counters it produces.
    own: Ownership,
    parts: Vec<PartitionState>,
    /// Per-slot lifecycle state, parallel to `parts` (service mode).
    slot_state: Vec<SlotState>,
    /// Partitions created since the last [`Llc::observations`] snapshot.
    pending_arrived: Vec<PartitionId>,
    /// Partitions destroyed since the last [`Llc::observations`] snapshot.
    pending_departed: Vec<PartitionId>,
    /// Unmanaged-region timestamp domain (advanced per demotion).
    um_lru: TsLru,
    um_size: u64,
    um_target: u64,
    cfg: VantageConfig,
    max_rrpv: u8,
    rrip: Option<RripPolicy>,
    /// Per-partition timestamp histograms (LRU mode): used for the
    /// perfect-aperture controller and priority instrumentation.
    hists: Vec<TsHistogram>,
    um_hist: TsHistogram,
    /// Whether the timestamp histograms are maintained on the access path.
    /// Opt-in: only the idealized perfect-aperture controller and the
    /// Fig. 8 priority probe read them, so the practical-controller hot
    /// path skips the per-hit/per-demotion/per-eviction bookkeeping
    /// entirely (real hardware keeps no such structure).
    hist_track: bool,
    stats: LlcStats,
    vstats: VantageStats,
    walk: Walk,
    moves: Vec<(Frame, Frame)>,
    /// Per-walk keep-window snapshots (SetpointLru rule), reused across
    /// misses to stay allocation-free.
    win: Vec<KeepWin>,
    /// Candidate-scan scratch lanes (SetpointLru fast path): the walk's
    /// tag metadata gathered once into contiguous lanes, plus the
    /// branchless stale mask evaluated over them. Persistent so the miss
    /// path never allocates.
    scan_part: Vec<u16>,
    scan_ts: Vec<u8>,
    scan_stale: Vec<u8>,
    probe: bool,
    samples: Vec<PrioritySample>,
    /// Cumulative lines lost per partition (demotion or eviction) — the
    /// churn meter behind [`PartitionObservations`] and telemetry samples.
    lost: Vec<u64>,
    /// Cumulative managed installs per partition.
    filled: Vec<u64>,
    /// Cumulative unmanaged-region evictions (the region's churn meter).
    um_lost: u64,
    /// `lost`/`um_lost` values at the previous telemetry sample, so each
    /// sample reports churn since the one before.
    sample_lost: Vec<u64>,
    sample_um_lost: u64,
    /// `lost`/`filled` values at the previous [`Llc::observations`]
    /// snapshot, so each snapshot reports epoch-relative dynamics.
    obs_lost: Vec<u64>,
    obs_filled: Vec<u64>,
    accesses: u64,
    /// Run [`Self::scrub`] automatically every this many accesses.
    scrub_period: Option<u64>,
    /// Attached fault schedule, polled once per access (`None` by default;
    /// the disabled case costs one branch).
    fault_plan: Option<FaultPlan>,
    /// Dynamics telemetry (events + periodic samples); disabled by default.
    tele: Telemetry,
}

/// What one [`VantageLlc::scrub`] pass found and repaired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Tags with out-of-range partition IDs re-tagged as [`UNMANAGED`].
    pub repaired_tags: u64,
    /// Size registers (per-partition `ActualSize` or the unmanaged size)
    /// rewritten from the tag scan.
    pub size_corrections: u64,
    /// Candidate meters reset because they were outside their period.
    pub meters_reset: u64,
    /// Setpoints re-centered because the keep window was wedged fully
    /// closed (0) or fully open (255).
    pub setpoints_recentered: u64,
}

impl ScrubReport {
    /// Whether the pass found anything to repair.
    pub fn clean(&self) -> bool {
        *self == Self::default()
    }
}

impl VantageLlc {
    /// Creates a Vantage cache over `array` with `partitions` partitions,
    /// initially splitting capacity evenly.
    ///
    /// # Errors
    ///
    /// Returns a [`VantageError`] if `cfg` is out of domain, `partitions`
    /// is 0 or would collide with the reserved unmanaged ID, or the
    /// idealized perfect-aperture controller is combined with RRIP ranking.
    pub fn try_new(
        array: Box<dyn CacheArray>,
        partitions: usize,
        cfg: VantageConfig,
        seed: u64,
    ) -> Result<Self, VantageError> {
        cfg.try_validate()?;
        if partitions == 0 || partitions >= UNMANAGED as usize {
            return Err(VantageError::PartitionCount(partitions));
        }
        let (max_rrpv, rrip) = match cfg.rank {
            RankMode::Lru => (0u8, None),
            RankMode::Rrip { bits } => {
                if cfg.demotion_mode != DemotionMode::Setpoint {
                    return Err(VantageError::PerfectApertureNeedsLru);
                }
                let mut rcfg = RripConfig::paper(RripMode::PerPartition, partitions, seed);
                rcfg.bits = bits;
                ((1u8 << bits) - 1, Some(RripPolicy::new(rcfg)))
            }
        };
        let frames = array.num_frames();
        let hist_track =
            matches!(cfg.rank, RankMode::Lru) && cfg.demotion_mode == DemotionMode::PerfectAperture;
        let parts = (0..partitions)
            .map(|_| {
                PartitionState::new(
                    0,
                    cfg.slack,
                    cfg.a_max,
                    cfg.cands_period,
                    cfg.table_entries,
                    max_rrpv,
                )
            })
            .collect();
        let mut llc = Self {
            array,
            meta: TagMeta::new(frames),
            own: Ownership::new(ShareMode::Adopt, partitions),
            parts,
            slot_state: vec![SlotState::Active; partitions],
            pending_arrived: Vec::new(),
            pending_departed: Vec::new(),
            um_lru: TsLru::for_size(16),
            um_size: 0,
            um_target: 0,
            cfg,
            max_rrpv,
            rrip,
            hists: (0..partitions).map(|_| TsHistogram::new()).collect(),
            um_hist: TsHistogram::new(),
            hist_track,
            stats: LlcStats::new(partitions),
            vstats: VantageStats::default(),
            walk: Walk::with_capacity(64),
            moves: Vec::with_capacity(8),
            win: Vec::with_capacity(partitions),
            scan_part: Vec::with_capacity(64),
            scan_ts: Vec::with_capacity(64),
            scan_stale: Vec::with_capacity(64),
            probe: false,
            samples: Vec::new(),
            lost: vec![0; partitions],
            filled: vec![0; partitions],
            um_lost: 0,
            sample_lost: vec![0; partitions],
            sample_um_lost: 0,
            obs_lost: vec![0; partitions],
            obs_filled: vec![0; partitions],
            accesses: 0,
            scrub_period: None,
            fault_plan: None,
            tele: Telemetry::disabled(),
        };
        let even = vec![(frames / partitions) as u64; partitions];
        llc.try_set_targets(&even).expect("even split always fits");
        Ok(llc)
    }

    /// Vantage-specific counters.
    pub fn vantage_stats(&self) -> &VantageStats {
        &self.vstats
    }

    /// Takes the Vantage-specific counters, leaving zeroed ones — the
    /// per-interval companion of [`Llc::take_stats`].
    pub fn take_vantage_stats(&mut self) -> VantageStats {
        std::mem::take(&mut self.vstats)
    }

    /// Current number of lines in the unmanaged region.
    pub fn unmanaged_size(&self) -> u64 {
        self.um_size
    }

    /// The unmanaged region's target size in lines.
    pub fn unmanaged_target(&self) -> u64 {
        self.um_target
    }

    /// Partition `part`'s (scaled) target size in lines.
    pub fn partition_target(&self, part: PartitionId) -> u64 {
        self.parts[part.index()].target
    }

    /// Lifecycle state of slot `part` (service mode; slots of a cache that
    /// never created or destroyed partitions are all
    /// [`SlotState::Active`]).
    pub fn slot_state(&self, part: PartitionId) -> SlotState {
        self.slot_state[part.index()]
    }

    /// Number of live ([`SlotState::Active`]) partitions.
    pub fn live_partitions(&self) -> usize {
        self.slot_state
            .iter()
            .filter(|s| **s == SlotState::Active)
            .count()
    }

    /// Enables Fig. 8-style demotion-priority sampling (LRU ranking only).
    ///
    /// Histogram maintenance is opt-in (the practical controller never
    /// reads it), so enabling the probe mid-run rebuilds the histograms
    /// from the tag array before turning tracking on.
    ///
    /// # Panics
    ///
    /// Panics under RRIP ranking, where timestamp ranks are undefined.
    pub fn enable_priority_probe(&mut self) {
        assert!(
            matches!(self.cfg.rank, RankMode::Lru),
            "probe requires LRU ranking"
        );
        self.probe = true;
        if !self.hist_track {
            self.hist_track = true;
            self.rebuild_hists();
        }
    }

    /// Whether the timestamp histograms are being maintained (idealized
    /// controller or an enabled priority probe).
    pub fn histograms_tracked(&self) -> bool {
        self.hist_track
    }

    /// Rebuilds the instrumentation histograms from a full tag scan.
    fn rebuild_hists(&mut self) {
        for h in &mut self.hists {
            *h = TsHistogram::new();
        }
        self.um_hist = TsHistogram::new();
        for f in 0..self.meta.len() {
            if self.array.occupant(f as Frame).is_none() {
                continue;
            }
            let (part, ts) = (self.meta.part(f), self.meta.ts(f));
            if part == UNMANAGED {
                self.um_hist.add(ts);
            } else if (part as usize) < self.hists.len() {
                self.hists[part as usize].add(ts);
            }
        }
    }

    /// Drains accumulated demotion-priority samples.
    pub fn drain_priority_samples(&mut self) -> Vec<PrioritySample> {
        std::mem::take(&mut self.samples)
    }

    /// Sets the base policy (SRRIP/BRRIP) for one partition; only meaningful
    /// with RRIP ranking, where the allocation policy picks per-partition
    /// policies at each repartitioning (Vantage-DRRIP, §6.2).
    pub fn set_partition_policy(&mut self, part: usize, policy: BasePolicy) {
        if let Some(rr) = &mut self.rrip {
            rr.set_partition_policy(part, policy);
        }
    }

    /// Read-only view of the underlying array.
    pub fn array(&self) -> &dyn CacheArray {
        self.array.as_ref()
    }

    /// The `(partition, stamp)` tag of the resident line holding `addr`,
    /// or `None` when it is not resident. The partition is [`UNMANAGED`]
    /// for lines in the unmanaged region. Instrumentation/test hook; the
    /// access paths never call it.
    pub fn tag_of(&self, addr: LineAddr) -> Option<(u16, u8)> {
        let f = self.array.lookup(addr)? as usize;
        Some((self.meta.part(f), self.meta.ts(f)))
    }

    /// Installs targets with typed errors instead of panics (the
    /// [`Llc::set_targets`] trait method wraps this; see it for the
    /// managed-region scaling semantics).
    ///
    /// # Errors
    ///
    /// Returns [`VantageError::TargetsLength`] on a length mismatch and
    /// [`VantageError::TargetsExceedCapacity`] when the targets sum past
    /// the array's line count. On error the cache is left unchanged.
    pub fn try_set_targets(&mut self, targets: &[u64]) -> Result<(), VantageError> {
        if targets.len() != self.parts.len() {
            return Err(VantageError::TargetsLength {
                expected: self.parts.len(),
                got: targets.len(),
            });
        }
        let cap = self.meta.len() as u64;
        let total: u64 = targets.iter().sum();
        if total > cap {
            return Err(VantageError::TargetsExceedCapacity {
                total,
                capacity: cap,
            });
        }
        let m = 1.0 - self.cfg.unmanaged_fraction;
        let mut managed_total = 0u64;
        for (p, (st, &t)) in self.parts.iter_mut().zip(targets).enumerate() {
            // Dead slots (destroyed or draining) hold no capacity: whatever
            // a policy hands them funds the unmanaged region instead, and
            // the zero target keeps their aperture saturated so draining
            // slots keep shedding lines.
            let scaled = if self.slot_state[p] == SlotState::Active {
                (t as f64 * m).floor() as u64
            } else {
                0
            };
            st.set_target(
                scaled,
                self.cfg.slack,
                self.cfg.a_max,
                self.cfg.cands_period,
                self.cfg.table_entries,
            );
            managed_total += scaled;
        }
        self.um_target = cap - managed_total;
        // Seed the unmanaged clock from the region's actual size when it is
        // populated — the clock keeps tracking `um_size` at every tick (see
        // `um_stamp`) — and from the target only as a cold-start estimate.
        let clock_size = if self.um_size > 0 {
            self.um_size
        } else {
            self.um_target
        };
        self.um_lru.set_period_for_size(clock_size.max(16));
        if self.tele.enabled() {
            for p in 0..self.parts.len() {
                if self.slot_state[p] != SlotState::Active {
                    continue;
                }
                let st = &self.parts[p];
                let aperture = st.table.aperture(st.actual) as f32;
                self.tele.event(TelemetryEvent::ApertureUpdate {
                    access: self.accesses,
                    part: PartitionId::from_index(p),
                    aperture,
                });
            }
        }
        Ok(())
    }

    /// Checks every internal accounting invariant, returning the first
    /// violation instead of panicking — usable inside fault-injection
    /// experiments, where a violation is data rather than a bug, as well
    /// as in tests (`.expect()` it there). O(frames).
    ///
    /// Checked invariants:
    ///
    /// * every tag's partition ID is in range (or [`UNMANAGED`]);
    /// * each partition's `ActualSize` register matches a full scan of the
    ///   tags, and the unmanaged size register likewise;
    /// * the sum of all size registers equals the array occupancy (and so
    ///   never exceeds the line count);
    /// * candidate meters are mid-period: `cands_demoted <= cands_seen < c`;
    /// * the unmanaged target leaves the configured unmanaged fraction
    ///   available: `um_target >= u · capacity` (floor) and the managed
    ///   targets plus `um_target` exactly tile the capacity.
    ///
    /// # Errors
    ///
    /// Returns [`VantageError::Invariant`] describing the first violation.
    pub fn invariants(&self) -> Result<(), VantageError> {
        let viol = |what: String| Err(VantageError::Invariant(what));
        let mut sizes = vec![0u64; self.parts.len()];
        let mut um = 0u64;
        let mut occupied = 0u64;
        for f in 0..self.meta.len() {
            if self.array.occupant(f as Frame).is_none() {
                continue;
            }
            occupied += 1;
            let part = self.meta.part(f);
            if part == UNMANAGED {
                um += 1;
            } else if (part as usize) < self.parts.len() {
                sizes[part as usize] += 1;
            } else {
                return viol(format!(
                    "frame {f} tagged with out-of-range partition {part}"
                ));
            }
        }
        if um != self.um_size {
            return viol(format!(
                "unmanaged size accounting drift: register {} vs scan {um}",
                self.um_size
            ));
        }
        for (p, st) in self.parts.iter().enumerate() {
            if sizes[p] != st.actual {
                return viol(format!(
                    "partition {p} size accounting drift: register {} vs scan {}",
                    st.actual, sizes[p]
                ));
            }
        }
        let total: u64 = self.parts.iter().map(|st| st.actual).sum::<u64>() + self.um_size;
        if total != occupied {
            return viol(format!(
                "size registers sum to {total} but {occupied} frames are occupied"
            ));
        }
        for (p, st) in self.parts.iter().enumerate() {
            if st.cands_seen >= self.cfg.cands_period {
                return viol(format!(
                    "partition {p} candidate meter at {} (period {})",
                    st.cands_seen, self.cfg.cands_period
                ));
            }
            if st.cands_demoted > st.cands_seen {
                return viol(format!(
                    "partition {p} demoted meter {} exceeds seen meter {}",
                    st.cands_demoted, st.cands_seen
                ));
            }
        }
        let cap = self.meta.len() as u64;
        let managed_total: u64 = self.parts.iter().map(|st| st.target).sum();
        if managed_total + self.um_target != cap {
            return viol(format!(
                "targets do not tile the cache: {managed_total} managed + {} unmanaged != {cap}",
                self.um_target
            ));
        }
        let floor = (self.cfg.unmanaged_fraction * cap as f64).floor() as u64;
        if self.um_target < floor {
            return viol(format!(
                "unmanaged target {} below the configured fraction's floor {floor}",
                self.um_target
            ));
        }
        Ok(())
    }

    /// Enables (or disables, with `None`) an automatic [`Self::scrub`]
    /// pass every `period` accesses — the recovery half of a
    /// fault-tolerance loop. A zero period disables scrubbing.
    pub fn set_scrub_period(&mut self, period: Option<u64>) {
        self.scrub_period = period.filter(|&p| p > 0);
    }

    /// Attaches (or detaches, with `None`) a seeded [`FaultPlan`]: the plan
    /// is polled on every access and due faults are injected in-line via
    /// [`Self::inject`]. Pair with [`Self::set_scrub_period`] for a closed
    /// inject/recover loop. Returns the previously attached plan, whose
    /// [`log`](FaultPlan::log) records everything it injected.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) -> Option<FaultPlan> {
        std::mem::replace(&mut self.fault_plan, plan)
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Applies one [`Fault`] to live state, deliberately leaving dependent
    /// registers stale — that staleness is what the recovery paths exist to
    /// absorb. Returns `false` for faults that do not apply (workload-level
    /// [`ChurnBurst`](Fault::ChurnBurst) descriptors, or tag faults when
    /// the array is empty).
    ///
    /// The per-partition timestamp histograms are simulator instrumentation
    /// (real hardware keeps no such structure), so tag faults update them
    /// coherently with the corrupted tag; everything architectural — size
    /// registers, setpoints, meters — is left for [`Self::scrub`] and the
    /// access-path fallbacks to repair.
    pub fn inject(&mut self, fault: &Fault) -> bool {
        let lru = self.is_lru();
        let track = self.hist_track;
        let nparts = self.parts.len();
        match *fault {
            Fault::TagPartFlip { frame_sel, bit } => {
                let Some(f) = self.pick_occupied(frame_sel) else {
                    return false;
                };
                let (old_part, old_ts) = (self.meta.part(f), self.meta.ts(f));
                let new_part = old_part ^ (1 << (bit % 16));
                if track {
                    self.hist_remove(old_part, old_ts);
                    self.hist_add(new_part, old_ts);
                }
                self.meta.set_part(f, new_part);
            }
            Fault::TagTsFlip { frame_sel, bit } => {
                let Some(f) = self.pick_occupied(frame_sel) else {
                    return false;
                };
                let (old_part, old_ts) = (self.meta.part(f), self.meta.ts(f));
                let new_ts = old_ts ^ (1 << (bit % 8));
                if track {
                    self.hist_remove(old_part, old_ts);
                    self.hist_add(old_part, new_ts);
                }
                self.meta.set_ts(f, new_ts);
            }
            Fault::ActualSizeCorrupt { part_sel, bit } => {
                let p = (part_sel % nparts as u64) as usize;
                self.parts[p].actual ^= 1u64 << (bit % 20);
            }
            Fault::SetpointCorrupt { part_sel, value } => {
                let p = (part_sel % nparts as u64) as usize;
                self.parts[p].setpoint = value;
                if !lru {
                    // In RRIP mode the setpoint register holds an RRPV; a
                    // glitch can push it past max_rrpv + 1 ("demote
                    // nothing"), which scrub clamps back.
                    self.parts[p].setpoint_rrpv = value;
                }
            }
            Fault::MeterCorrupt {
                part_sel,
                seen,
                demoted,
            } => {
                let p = (part_sel % nparts as u64) as usize;
                self.parts[p].cands_seen = seen;
                self.parts[p].cands_demoted = demoted;
            }
            Fault::ChurnBurst { .. } => return false,
        }
        true
    }

    /// One recovery pass over all soft state, O(frames) — the software
    /// analogue of a periodic tag-array scrubber:
    ///
    /// * tags with out-of-range partition IDs are re-tagged [`UNMANAGED`]
    ///   (the line stays resident and is evicted or promoted normally);
    /// * every size register (`ActualSize`, unmanaged size) is recomputed
    ///   from the tag scan, and the instrumentation histograms (when
    ///   tracked, see [`Self::histograms_tracked`]) are rebuilt;
    /// * candidate meters outside `demoted <= seen < c` are reset to 0;
    /// * setpoints whose keep window is wedged fully closed (0) or fully
    ///   open (255) are re-centered to the constructor's half-window, and
    ///   RRIP setpoints are clamped to `max_rrpv + 1` — the feedback loop
    ///   then re-converges in a few adjustment periods instead of having to
    ///   ratchet one step per period across the whole timestamp space.
    pub fn scrub(&mut self) -> ScrubReport {
        let lru = self.is_lru();
        let mut report = ScrubReport::default();
        let mut sizes = vec![0u64; self.parts.len()];
        let mut um = 0u64;
        for f in 0..self.meta.len() {
            if self.array.occupant(f as Frame).is_none() {
                // A never-filled (or restored-from-v1) frame must carry the
                // sentinel so size audits cannot confuse it with a
                // partition-0 line; anything else is a stale tag.
                if self.meta.part(f) != UNMANAGED || self.meta.ts(f) != 0 {
                    self.meta.set(f, UNMANAGED, 0);
                    report.repaired_tags += 1;
                }
                continue;
            }
            let part = self.meta.part(f);
            if part != UNMANAGED && (part as usize) >= self.parts.len() {
                self.meta.set_part(f, UNMANAGED);
                report.repaired_tags += 1;
            }
            let part = self.meta.part(f);
            if part == UNMANAGED {
                um += 1;
            } else {
                sizes[part as usize] += 1;
            }
        }
        if um != self.um_size {
            self.um_size = um;
            report.size_corrections += 1;
        }
        for (st, &scanned) in self.parts.iter_mut().zip(&sizes) {
            if st.actual != scanned {
                st.actual = scanned;
                report.size_corrections += 1;
            }
        }
        if self.hist_track {
            // Only rebuilt when something reads them (idealized controller
            // or an enabled probe); the practical controller keeps none.
            self.rebuild_hists();
        }
        for st in &mut self.parts {
            if st.cands_seen >= self.cfg.cands_period || st.cands_demoted > st.cands_seen {
                st.cands_seen = 0;
                st.cands_demoted = 0;
                report.meters_reset += 1;
            }
            let window = st.keep_window();
            if window == 0 || window == u8::MAX {
                st.setpoint = st.lru.current().wrapping_sub(128);
                report.setpoints_recentered += 1;
            }
            if !lru && st.setpoint_rrpv > self.max_rrpv + 1 {
                st.setpoint_rrpv = self.max_rrpv + 1;
                report.setpoints_recentered += 1;
            }
        }
        self.vstats.scrubs += 1;
        if self.tele.enabled() {
            let repairs = report.repaired_tags
                + report.size_corrections
                + report.meters_reset
                + report.setpoints_recentered;
            self.tele.event(TelemetryEvent::Scrub {
                access: self.accesses,
                repairs,
            });
        }
        report
    }

    /// Lazily retires drained slots: a [`SlotState::Draining`] slot whose
    /// last line has left becomes [`SlotState::Free`]. Run at the
    /// lifecycle/observation boundaries rather than on the access path —
    /// nothing on the hot path reads the distinction.
    fn retire_drained_slots(&mut self) {
        for (st, slot) in self.parts.iter().zip(&mut self.slot_state) {
            if *slot == SlotState::Draining && st.actual == 0 {
                *slot = SlotState::Free;
            }
        }
    }

    /// Resizes every per-slot table to `n` slots (snapshot restore of a
    /// cache whose population moved since construction). New slots start
    /// zeroed and [`SlotState::Free`]; the caller overwrites each slot's
    /// state from the payload.
    fn resize_slot_tables(&mut self, n: usize) {
        self.parts.resize_with(n, || {
            PartitionState::new(
                0,
                self.cfg.slack,
                self.cfg.a_max,
                self.cfg.cands_period,
                self.cfg.table_entries,
                self.max_rrpv,
            )
        });
        self.slot_state.resize(n, SlotState::Free);
        self.hists.resize_with(n, TsHistogram::new);
        self.stats.resize(n);
        self.lost.resize(n, 0);
        self.filled.resize(n, 0);
        self.sample_lost.resize(n, 0);
        self.obs_lost.resize(n, 0);
        self.obs_filled.resize(n, 0);
        self.tele.bind(n);
    }

    /// Maps a raw frame selector to an occupied frame, uniformly: the
    /// selector is reduced modulo the occupancy and the k-th occupied
    /// frame (in frame order) is chosen, so every resident line is
    /// equally likely. (Reducing modulo the frame count and scanning
    /// forward to the next occupied slot would over-sample frames that
    /// follow runs of empties.) Counts by scanning rather than trusting
    /// the size registers, which fault injection may have corrupted.
    fn pick_occupied(&self, frame_sel: u64) -> Option<usize> {
        let occupied = (0..self.meta.len())
            .filter(|&f| self.array.occupant(f as Frame).is_some())
            .count();
        if occupied == 0 {
            return None;
        }
        let k = (frame_sel % occupied as u64) as usize;
        (0..self.meta.len())
            .filter(|&f| self.array.occupant(f as Frame).is_some())
            .nth(k)
    }

    /// The unmanaged region's current timestamp period, in demotions per
    /// tick (instrumentation: asserts which size the region's clock
    /// tracks).
    pub fn unmanaged_ts_period(&self) -> u32 {
        self.um_lru.period()
    }

    /// Stamps one line into the unmanaged region's timestamp domain and
    /// returns the timestamp to tag it with.
    ///
    /// The period follows the region's *actual* size (the `size/16` rule
    /// applied to `um_size`, matching how partitions derive theirs from
    /// `ActualSize`), re-derived only when the timestamp advances — the
    /// per-demotion path carries no division and the clock tracks what
    /// the region really holds rather than its target.
    fn um_stamp(&mut self) -> u8 {
        if self.um_lru.on_access() {
            self.um_lru.set_period_for_size(self.um_size.max(16));
        }
        self.um_lru.current()
    }

    /// Pins partition `part`'s aliasing stamps right after its coarse
    /// clock ticked to `t`, before any line is stamped with the new value.
    ///
    /// Without this, a line untouched for a full 256 ticks reads as age 0
    /// again — back inside the keep window — and dodges demotion for
    /// another epoch (and every epoch after). Pinning rewrites those
    /// stamps to `t + 1` (age 255 under the new clock), so genuinely
    /// stale lines stay the oldest; each later tick re-pins them.
    ///
    /// `except` names a frame whose histogram entry the caller already
    /// retired (the hit frame being restamped, or the landing frame still
    /// carrying its evicted victim's tag): its lane may be pinned like
    /// any other, but the tracked histograms must not be compensated for
    /// it.
    fn clamp_aliasing(&mut self, part: usize, t: u8, except: Option<usize>) {
        let excluded =
            except.is_some_and(|f| self.meta.part(f) == part as u16 && self.meta.ts(f) == t);
        let pinned = self.meta.clamp_stale(part as u16, t);
        if self.hist_track {
            let h = &mut self.hists[part];
            for _ in 0..pinned - usize::from(excluded) {
                h.remove(t);
                h.add(t.wrapping_add(1));
            }
        }
    }

    fn hist_remove(&mut self, part: u16, ts: u8) {
        if part == UNMANAGED {
            self.um_hist.remove(ts);
        } else if (part as usize) < self.hists.len() {
            self.hists[part as usize].remove(ts);
        }
        // Out-of-range PIDs own no histogram entry: their line was dropped
        // from the instrumentation when the PID was corrupted.
    }

    fn hist_add(&mut self, part: u16, ts: u8) {
        if part == UNMANAGED {
            self.um_hist.add(ts);
        } else if (part as usize) < self.hists.len() {
            self.hists[part as usize].add(ts);
        }
    }

    fn is_lru(&self) -> bool {
        matches!(self.cfg.rank, RankMode::Lru)
    }

    fn hit(&mut self, part: usize, frame: Frame) {
        let f = frame as usize;
        let (tag_part, tag_ts) = (self.meta.part(f), self.meta.ts(f));
        let lru = self.is_lru();
        let track = self.hist_track;
        if tag_part == UNMANAGED {
            // Promotion: the line rejoins the accessing partition. The
            // saturating decrement tolerates a corrupted unmanaged-size
            // register (scrub recomputes the true value).
            self.vstats.promotions += 1;
            self.tele.event(TelemetryEvent::Promotion {
                access: self.accesses,
                part: PartitionId::from_index(part),
            });
            self.um_size = self.um_size.saturating_sub(1);
            if track {
                self.um_hist.remove(tag_ts);
            }
            self.parts[part].actual += 1;
        } else if (tag_part as usize) >= self.parts.len() {
            // Corrupted partition ID (fault injection / soft error): adopt
            // the line into the accessing partition. The original owner's
            // size register still counts it; that drift is repaired by the
            // next scrub.
            self.vstats.corrupted_pid_fallbacks += 1;
            self.parts[part].actual += 1;
        } else {
            let q = tag_part as usize;
            if q != part {
                // Cross-partition hit: the ownership layer decides whether
                // the line migrates to its latest user (Adopt) or stays with
                // its first owner (Pin). Under Replicate the per-partition
                // address salt keeps lookups disjoint, so this branch is
                // unreachable in that mode.
                self.tele.event(TelemetryEvent::SharedHit {
                    access: self.accesses,
                    part: PartitionId::from_index(part),
                    owner: PartitionId::from_index(q),
                });
                if !self.own.on_shared_hit(part as u16) {
                    // Pin: refresh the line's recency under the *owner's*
                    // clock without advancing it (the owner did not access);
                    // the accessor's coarse clock still ticks for this
                    // access. Ownership, size registers and the owner's
                    // demotion exposure are all untouched.
                    let ts = if lru {
                        let (t, advanced) = self.parts[part].on_access_advanced();
                        if advanced {
                            // The pinned frame keeps the owner's tag, so no
                            // frame needs shielding from the clamp.
                            self.clamp_aliasing(part, t, None);
                        }
                        let owner_ts = self.parts[q].lru.current();
                        if track {
                            self.hists[q].remove(tag_ts);
                            self.hists[q].add(owner_ts);
                        }
                        owner_ts
                    } else {
                        0 // RRIP hit promotion, under the owner's ID
                    };
                    self.meta.set(f, q as u16, ts);
                    return;
                }
                self.tele.event(TelemetryEvent::OwnershipTransfer {
                    access: self.accesses,
                    part: PartitionId::from_index(part),
                    from: PartitionId::from_index(q),
                });
                if track {
                    self.hists[q].remove(tag_ts);
                }
                // Adopt: the shared line migrates to its latest user.
                self.parts[q].actual = self.parts[q].actual.saturating_sub(1);
                self.parts[part].actual += 1;
            } else if track {
                self.hists[q].remove(tag_ts);
            }
        }
        let ts = if lru {
            let (t, advanced) = self.parts[part].on_access_advanced();
            if advanced {
                self.clamp_aliasing(part, t, Some(f));
            }
            if track {
                self.hists[part].add(t);
            }
            t
        } else {
            0 // RRIP hit promotion: near-immediate re-reference
        };
        self.meta.set(f, part as u16, ts);
    }

    /// Demotes the line in frame `f` (bookkeeping shared by the
    /// per-candidate and exactly-one paths).
    fn demote_candidate(&mut self, f: usize, lru: bool) {
        let (tag_part, tag_ts) = (self.meta.part(f), self.meta.ts(f));
        let q = tag_part as usize;
        self.vstats.demotions += 1;
        self.tele.event(TelemetryEvent::Demotion {
            access: self.accesses,
            part: PartitionId::from_raw(tag_part),
        });
        if self.probe {
            let pr = self.hists[q].rank(tag_ts, self.parts[q].lru.current());
            self.samples.push((self.accesses, q as u16, pr as f32));
        }
        if self.hist_track {
            self.hists[q].remove(tag_ts);
        }
        self.parts[q].actual = self.parts[q].actual.saturating_sub(1);
        self.lost[q] += 1;
        self.um_size += 1;
        let um_ts = if lru {
            let t = self.um_stamp();
            if self.hist_track {
                self.um_hist.add(t);
            }
            t
        } else {
            tag_ts
        };
        self.meta.set(f, UNMANAGED, um_ts);
    }

    /// Emits the telemetry for one setpoint adjustment: the adjusted keep
    /// window plus the implied Eq. 7 aperture at the current size. Cold by
    /// construction — at most once per `c = 256` candidates, and only
    /// reached with telemetry enabled.
    #[cold]
    fn note_adjustment(&mut self, part: usize, fb: Feedback) {
        let st = &self.parts[part];
        let direction = match fb {
            Feedback::TooMany => 1i8,
            Feedback::TooFew => -1,
            Feedback::OnTarget => 0,
        };
        let window = st.keep_window();
        let aperture = st.table.aperture(st.actual) as f32;
        self.tele.event(TelemetryEvent::SetpointAdjust {
            access: self.accesses,
            part: PartitionId::from_index(part),
            direction,
            window,
        });
        self.tele.event(TelemetryEvent::ApertureUpdate {
            access: self.accesses,
            part: PartitionId::from_index(part),
            aperture,
        });
    }

    /// Emits one periodic sample per partition plus one for the unmanaged
    /// region. Cold: reached once per telemetry sampling period.
    #[cold]
    fn emit_samples(&mut self) {
        for p in 0..self.parts.len() {
            if self.slot_state[p] == SlotState::Free {
                self.sample_lost[p] = self.lost[p];
                continue;
            }
            let st = &self.parts[p];
            let s = PartitionSample {
                access: self.accesses,
                part: PartitionId::from_index(p),
                actual: st.actual,
                target: st.target,
                aperture: st.table.aperture(st.actual) as f32,
                window: st.keep_window(),
                churn: self.lost[p] - self.sample_lost[p],
                shared: self.own.shared_hits()[p],
                transfers: self.own.transfers()[p],
            };
            self.sample_lost[p] = self.lost[p];
            self.tele.sample(s);
        }
        self.tele.sample(PartitionSample {
            access: self.accesses,
            part: PartitionId::UNMANAGED,
            actual: self.um_size,
            target: self.um_target,
            aperture: 0.0,
            window: 0,
            churn: self.um_lost - self.sample_um_lost,
            shared: 0,
            transfers: 0,
        });
        self.sample_um_lost = self.um_lost;
    }

    fn miss(&mut self, part: usize, addr: LineAddr) {
        if let Some(rr) = &mut self.rrip {
            rr.note_miss(part, addr);
        }
        // The walk buffer is moved out of `self` for the duration of the
        // miss: the candidate loop below then borrows it immutably while
        // mutating the rest of the controller, which also lets the compiler
        // keep its pointer in a register across those mutations.
        let mut walk = std::mem::take(&mut self.walk);
        self.array.walk(addr, &mut walk);
        let lru = self.is_lru();

        // --- Demotion pass over all candidates (§4.3, "Misses"). ---
        // Per-candidate invariants are hoisted out of the loop: the
        // `DemotionMode` × `RankMode` dispatch collapses to a [`DemoteRule`],
        // the feedback constants become locals, and (SetpointLru) each
        // partition's keep window is snapshotted once per walk.
        let rule = match (self.cfg.demotion_mode, self.cfg.rank) {
            (DemotionMode::Setpoint, RankMode::Lru) => DemoteRule::SetpointLru,
            (DemotionMode::Setpoint, RankMode::Rrip { .. }) => DemoteRule::SetpointRrip,
            (DemotionMode::PerfectAperture, _) => DemoteRule::PerfectAperture,
            (DemotionMode::ExactlyOne, _) => DemoteRule::ExactlyOne,
        };
        let cands_period = self.cfg.cands_period;
        let max_rrpv = self.max_rrpv;
        // Snapshotting every keep window per miss is O(partitions) — fine
        // for a handful of cores, ruinous at service-mode populations
        // (thousands of tenants). Past the broadcast width the stale mask
        // reads each candidate's own partition instead, so the snapshot is
        // skipped entirely; both reads happen before any per-walk state
        // mutation, so the two paths stay bit-identical.
        let broadcast = self.parts.len() <= 8;
        if rule == DemoteRule::SetpointLru && broadcast {
            self.win.clear();
            self.win.extend(
                self.parts
                    .iter()
                    .zip(self.slot_state.iter())
                    .map(|(st, slot)| KeepWin {
                        current: st.lru.current(),
                        window: st.keep_window(),
                        draining: *slot == SlotState::Draining,
                    }),
            );
        }
        let mut empty: Option<usize> = None;
        let mut best_um: Option<(usize, u8)> = None; // (walk idx, age/rrpv)
        let mut first_demoted: Option<usize> = None;
        let mut best_managed: Option<(usize, u8)> = None; // exactly-one pick
        if rule == DemoteRule::SetpointLru {
            // Fast path for the practical controller: the walk's tags are
            // gathered once into contiguous scratch lanes, the stale test
            // (the only per-candidate predicate that depends solely on the
            // per-walk keep-window snapshot) is evaluated branchlessly over
            // whole lanes, and a serial resolution pass then applies the
            // walk-order-dependent state updates. Bit-identical to the
            // generic loop below: candidate frames are deduplicated, so no
            // mid-walk demotion can change another candidate's tag, and
            // everything order-sensitive — the live `actual > target`
            // check, the candidate meters, unmanaged ages against the
            // advancing unmanaged clock — stays in walk order.
            //
            // The old per-candidate loop interleaved two dependent random
            // loads (partition lane, stamp lane) with controller updates;
            // splitting the gather lets those loads issue back to back
            // (full memory-level parallelism) and the mask pass
            // autovectorize.
            let n = walk.nodes.len();
            let occ = walk
                .nodes
                .iter()
                .position(|nd| !nd.is_occupied())
                .unwrap_or(n);
            if occ < n {
                empty = Some(occ); // the scan stops at the first empty frame
            }
            self.scan_part.clear();
            self.scan_ts.clear();
            for node in &walk.nodes[..occ] {
                let f = node.frame as usize;
                self.scan_part.push(self.meta.part(f));
                self.scan_ts.push(self.meta.ts(f));
            }
            self.scan_stale.clear();
            self.scan_stale.resize(occ, 0);
            if broadcast {
                // Gather-free: broadcast each partition's window over the
                // candidate lanes (few partitions — the common case).
                for (q, w) in self.win.iter().enumerate() {
                    let q16 = q as u16;
                    for i in 0..occ {
                        let hit = u8::from(self.scan_part[i] == q16)
                            & (u8::from(w.current.wrapping_sub(self.scan_ts[i]) > w.window)
                                | u8::from(w.draining));
                        self.scan_stale[i] |= hit;
                    }
                }
            } else {
                // Many partitions: one window lookup per candidate beats
                // npart passes over the lanes (and no per-miss snapshot of
                // every partition's window is ever built). Reading the live
                // state here is safe: no setpoint or clock moves until the
                // resolution loop below.
                for i in 0..occ {
                    let q = self.scan_part[i] as usize;
                    if let Some(st) = self.parts.get(q) {
                        self.scan_stale[i] =
                            u8::from(
                                st.lru.current().wrapping_sub(self.scan_ts[i]) > st.keep_window(),
                            ) | u8::from(self.slot_state[q] == SlotState::Draining);
                    }
                }
            }
            for i in 0..occ {
                let (tag_part, tag_ts) = (self.scan_part[i], self.scan_ts[i]);
                if tag_part == UNMANAGED {
                    let age = self.um_lru.age(tag_ts);
                    if best_um.is_none_or(|(_, a)| age > a) {
                        best_um = Some((i, age));
                    }
                    continue;
                }
                let q = tag_part as usize;
                if q >= self.parts.len() {
                    // Corrupted partition ID: treat the line as the oldest
                    // possible unmanaged candidate so it is evicted (and
                    // the corruption flushed) at the first opportunity.
                    self.vstats.corrupted_pid_fallbacks += 1;
                    best_um = Some((i, u8::MAX));
                    continue;
                }
                // The over-target check stays live so one walk never
                // demotes a partition below its target; combined with the
                // precomputed stale mask without short-circuiting, as in
                // `should_demote_ts`.
                let st = &self.parts[q];
                let demote = (st.actual > st.target) & (self.scan_stale[i] != 0);
                if let Some(fb) = self.parts[q].note_candidate(demote, cands_period, max_rrpv) {
                    self.vstats.setpoint_adjustments += 1;
                    if self.tele.enabled() {
                        self.note_adjustment(q, fb);
                    }
                }
                if demote {
                    first_demoted.get_or_insert(i);
                    self.demote_candidate(walk.nodes[i].frame as usize, lru);
                }
            }
        }
        if rule != DemoteRule::SetpointLru {
            for (i, node) in walk.nodes.iter().enumerate() {
                if !node.is_occupied() {
                    empty = Some(i);
                    break; // walks end at the first empty frame
                }
                let f = node.frame as usize;
                let (tag_part, tag_ts) = (self.meta.part(f), self.meta.ts(f));
                if tag_part == UNMANAGED {
                    let age = if lru { self.um_lru.age(tag_ts) } else { tag_ts };
                    if best_um.is_none_or(|(_, a)| age > a) {
                        best_um = Some((i, age));
                    }
                    continue;
                }
                let q = tag_part as usize;
                if q >= self.parts.len() {
                    // Corrupted partition ID: treat the line as the oldest
                    // possible unmanaged candidate so it is evicted (and the
                    // corruption flushed) at the first opportunity.
                    self.vstats.corrupted_pid_fallbacks += 1;
                    best_um = Some((i, u8::MAX));
                    continue;
                }
                let demote = match rule {
                    DemoteRule::SetpointLru => unreachable!("handled by the lane fast path"),
                    DemoteRule::SetpointRrip => self.parts[q].should_demote_rrpv(tag_ts),
                    DemoteRule::PerfectAperture => {
                        let st = &self.parts[q];
                        st.actual > st.target && {
                            let aperture = st.table.aperture(st.actual);
                            aperture > 0.0
                                && self.hists[q].rank(tag_ts, st.lru.current()) > 1.0 - aperture
                        }
                    }
                    DemoteRule::ExactlyOne => {
                        // Fig. 2b policy: remember the oldest over-target
                        // candidate and demote exactly that one after the
                        // scan.
                        let st = &self.parts[q];
                        if st.actual > st.target {
                            let age = if lru { st.lru.age(tag_ts) } else { tag_ts };
                            if best_managed.is_none_or(|(_, a)| age > a) {
                                best_managed = Some((i, age));
                            }
                        }
                        continue;
                    }
                };
                if let Some(fb) = self.parts[q].note_candidate(demote, cands_period, max_rrpv) {
                    self.vstats.setpoint_adjustments += 1;
                    if self.tele.enabled() {
                        self.note_adjustment(q, fb);
                    }
                }
                if demote {
                    first_demoted.get_or_insert(i);
                    self.demote_candidate(f, lru);
                } else if !lru {
                    // RRIP aging: candidates of over-target partitions drift
                    // towards "distant" so demotion pressure can build
                    // (under-target partitions are never aged, §6.2).
                    let st = &self.parts[q];
                    if st.actual > st.target && tag_ts < max_rrpv {
                        self.meta.set_ts(f, tag_ts + 1);
                    }
                }
            }
        }
        if rule == DemoteRule::ExactlyOne && empty.is_none() {
            if let Some((i, _)) = best_managed {
                first_demoted = Some(i);
                self.demote_candidate(walk.nodes[i].frame as usize, lru);
            }
        }

        // --- Victim selection. ---
        let mut forced = false;
        let victim = if let Some(e) = empty {
            self.vstats.empty_fills += 1;
            e
        } else if let Some((i, _)) = best_um {
            self.vstats.unmanaged_evictions += 1;
            i
        } else if let Some(i) = first_demoted {
            self.vstats.unmanaged_evictions += 1;
            i
        } else {
            // Forced eviction from the managed region. The paper leaves the
            // choice arbitrary; we pick the oldest candidate, preferring
            // partitions that are over their targets so transients do not
            // bleed quiet, under-target partitions.
            self.vstats.forced_managed_evictions += 1;
            forced = true;
            let mut best = 0usize;
            let mut best_key = (false, 0u16);
            for (i, node) in walk.nodes.iter().enumerate() {
                let f = node.frame as usize;
                let (tag_part, tag_ts) = (self.meta.part(f), self.meta.ts(f));
                let q = tag_part as usize;
                // A corrupted-PID line (tolerated above) is always the best
                // forced victim: no healthy partition loses a line.
                let key = if q >= self.parts.len() {
                    (true, u16::MAX)
                } else {
                    let age = if lru {
                        u16::from(self.parts[q].lru.age(tag_ts))
                    } else {
                        u16::from(tag_ts)
                    };
                    (self.parts[q].actual > self.parts[q].target, age)
                };
                if key >= best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        };

        // --- Retire the victim's tag. ---
        let vnode = walk.nodes[victim];
        if vnode.is_occupied() {
            self.stats.evictions += 1;
            let vf = vnode.frame as usize;
            let (tag_part, tag_ts) = (self.meta.part(vf), self.meta.ts(vf));
            self.tele.event(TelemetryEvent::Eviction {
                access: self.accesses,
                part: PartitionId::from_raw(tag_part),
                forced,
            });
            if tag_part == UNMANAGED {
                self.um_size = self.um_size.saturating_sub(1);
                self.um_lost += 1;
                if self.hist_track {
                    self.um_hist.remove(tag_ts);
                }
            } else if (tag_part as usize) < self.parts.len() {
                let q = tag_part as usize;
                self.parts[q].actual = self.parts[q].actual.saturating_sub(1);
                self.lost[q] += 1;
                if self.hist_track {
                    self.hists[q].remove(tag_ts);
                }
            }
            // Out-of-range PIDs: no register ever counted this line under a
            // valid owner, so there is nothing to decrement; the stale
            // original-owner register is repaired by the next scrub.
        }

        // --- Install the incoming line. ---
        self.moves.clear();
        let landing = self.array.install(addr, &walk, victim, &mut self.moves);
        self.walk = walk;
        for &(from, to) in &self.moves {
            self.meta.copy(from, to);
        }
        // Churn throttling (§3.4 option 2): a partition whose aperture is
        // pinned at A_max cannot shed lines fast enough; divert its fills
        // to the unmanaged region instead of growing it further.
        let st = &self.parts[part];
        if self.cfg.churn_throttling
            && st.table.aperture(st.actual.saturating_add(1)) >= self.cfg.a_max
        {
            self.vstats.throttled_insertions += 1;
            self.um_size += 1;
            let ts = if lru {
                let t = self.um_stamp();
                if self.hist_track {
                    self.um_hist.add(t);
                }
                t
            } else {
                self.rrip
                    .as_mut()
                    .expect("RRIP mode has a policy")
                    .insertion_rrpv(part, addr)
            };
            self.meta.set(landing as usize, UNMANAGED, ts);
            return;
        }
        self.parts[part].actual += 1;
        self.filled[part] += 1;
        if self.own.mode() == ShareMode::Replicate {
            // Every managed install under Replicate carries the partition's
            // address salt, so it is a private copy by construction.
            self.own.on_replica_fill(part as u16);
            self.tele.event(TelemetryEvent::Replica {
                access: self.accesses,
                part: PartitionId::from_index(part),
            });
        }
        let ts = if lru {
            let (t, advanced) = self.parts[part].on_access_advanced();
            if advanced {
                // The landing frame still carries the evicted line's tag
                // until the stamp below; its histogram entry is gone.
                self.clamp_aliasing(part, t, Some(landing as usize));
            }
            if self.hist_track {
                self.hists[part].add(t);
            }
            t
        } else {
            self.rrip
                .as_mut()
                .expect("RRIP mode has a policy")
                .insertion_rrpv(part, addr)
        };
        self.meta.set(landing as usize, part as u16, ts);
    }
}

impl VantageLlc {
    /// [`Llc::access`] taking an optional probe hint: when `probe` holds
    /// the frames a prior [`CacheArray::prefetch`] of this address
    /// returned, the lookup reuses them via
    /// [`CacheArray::lookup_prefetched`] instead of rehashing. Observable
    /// behavior is identical either way; the batched path passes its
    /// pipeline's stage-1 frames here.
    fn access_probed(&mut self, req: AccessRequest, probe: &[Frame]) -> AccessOutcome {
        let AccessRequest { part, addr, .. } = req;
        let part = part.index();
        // Under Replicate the lookup address carries a per-partition salt,
        // so each partition fills (and hits) a private copy of shared lines.
        // Identity in every other mode.
        let addr = self.own.effective_addr(part as u16, addr);
        self.accesses += 1;
        if let Some(fault) = self.fault_plan.as_mut().and_then(|p| p.poll(self.accesses)) {
            self.inject(&fault);
        }
        if let Some(period) = self.scrub_period {
            if self.accesses.is_multiple_of(period) {
                self.scrub();
            }
        }
        if self.tele.sample_due(self.accesses) {
            self.emit_samples();
        }
        let found = if probe.is_empty() {
            self.array.lookup(addr)
        } else {
            self.array.lookup_prefetched(addr, probe)
        };
        if let Some(frame) = found {
            self.stats.hits[part] += 1;
            self.hit(part, frame);
            AccessOutcome::Hit
        } else {
            self.stats.misses[part] += 1;
            self.miss(part, addr);
            AccessOutcome::Miss
        }
    }
}

impl Llc for VantageLlc {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        self.access_probed(req, &[])
    }

    /// The serial loop with a two-stage software-prefetch pipeline. At
    /// working sets beyond the host LLC, each access is otherwise a chain
    /// of dependent random loads: `ways` line probes on every request, and
    /// on a miss the replacement walk's BFS over the candidate frames
    /// (each level's positions are read from the previous level's rows).
    /// The pipeline mirrors that dependence structure across requests:
    ///
    /// * at `i + D1`, warm request `i + D1`'s depth-0 probe rows
    ///   ([`CacheArray::prefetch`]);
    /// * at `i + D2`, once those rows are resident, predict the outcome
    ///   from them and — for predicted misses only — expand one walk level
    ///   and warm the depth-1 candidates
    ///   ([`CacheArray::prefetch_expand`]).
    ///
    /// Per-frame ranking tags (`meta`) are warmed alongside each stage.
    /// (A third stage warming the walk's final level was tried — both the
    /// full expansion and a leaf-only variant — and *hurt*: the ~70-110
    /// extra prefetches per miss oversubscribe the fill buffers.)
    ///
    /// At serve time the request's probe frames — computed at stage 1 and
    /// guaranteed current because the array's hash functions are fixed at
    /// construction — are handed back to the lookup
    /// ([`CacheArray::lookup_prefetched`]), sparing the rehash.
    /// Replacement decisions are untouched — prefetches are hints and the
    /// serve path is exactly [`Llc::access`] — so outcomes and statistics
    /// are identical to the one-at-a-time path.
    fn access_batch(&mut self, reqs: &[AccessRequest], out: &mut Vec<AccessOutcome>) {
        /// Prefetch distances (in requests ahead of the serving position)
        /// of the two stages: far enough apart that stage 2's reads were
        /// prefetched by stage 1, near enough that lines survive in cache
        /// until their turn.
        const D1: usize = 48;
        const D2: usize = 16;
        /// One slot more than the pipeline depth, so request `i`'s slot is
        /// still intact when it is served at iteration `i` (stage 1 of
        /// iteration `i` recycles a different slot).
        const RING: usize = D1 + 1;

        /// In-flight prefetch state for one request: its depth-0 probe
        /// frames and the walk candidates expanded from them.
        #[derive(Clone)]
        struct Slot {
            l0: [Frame; MAX_PROBE_WAYS],
            n: usize,
            l1: Vec<Frame>,
        }

        out.reserve(reqs.len());
        let mut ring: Vec<Slot> = vec![
            Slot {
                l0: [vantage_cache::INVALID_FRAME; MAX_PROBE_WAYS],
                n: 0,
                l1: Vec::with_capacity(16),
            };
            RING
        ];
        for (i, &req) in reqs.iter().enumerate() {
            if let Some(ahead) = reqs.get(i + D1) {
                let slot = &mut ring[(i + D1) % RING];
                // Prefetch what the serve path will actually look up: the
                // ownership layer may salt the address per partition.
                let a = self
                    .own
                    .effective_addr(ahead.part.index() as u16, ahead.addr);
                slot.n = self.array.prefetch(a, &mut slot.l0);
                slot.l1.clear();
                for &f in &slot.l0[..slot.n] {
                    // The hit path reads both tag lanes; warm them
                    // alongside the array's own probe state.
                    self.meta.prefetch(f as usize);
                }
            }
            if let Some(ahead) = reqs.get(i + D2) {
                let slot = &mut ring[(i + D2) % RING];
                // Only a miss walks; its probe rows are warm by now, so
                // predict the outcome and skip the (much wider) expansion
                // for hits. A mispredict — the line moving between now and
                // serve time — only costs or spares some prefetches.
                let a = self
                    .own
                    .effective_addr(ahead.part.index() as u16, ahead.addr);
                let hit = slot.l0[..slot.n]
                    .iter()
                    .any(|&f| self.array.occupant(f) == Some(a));
                if !hit {
                    self.array.prefetch_expand(&slot.l0[..slot.n], &mut slot.l1);
                    for &f in &slot.l1 {
                        // The replacement process ranks every candidate.
                        self.meta.prefetch(f as usize);
                    }
                }
            }
            let (l0, n) = {
                let slot = &ring[i % RING];
                (slot.l0, slot.n)
            };
            out.push(self.access_probed(req, &l0[..n]));
        }
    }

    fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    fn capacity(&self) -> usize {
        self.meta.len()
    }

    /// Installs targets, scaling them onto the managed region: a partition
    /// granted `t` lines of the cache receives `t·(1-u)` managed lines, and
    /// the remainder funds the unmanaged region (§3.3).
    ///
    /// This is [`VantageLlc::try_set_targets`] panicking on invalid target
    /// vectors (trait compatibility).
    fn set_targets(&mut self, targets: &[u64]) {
        if let Err(e) = self.try_set_targets(targets) {
            panic!("{e}");
        }
    }

    fn partition_size(&self, part: PartitionId) -> u64 {
        self.parts[part.index()].actual
    }

    /// Real dynamics metering: reports the (scaled) managed targets and
    /// drains the epoch-relative churn/insertion counters maintained on the
    /// demotion/eviction/install paths, plus the lifecycle deltas (slots
    /// created/destroyed since the previous snapshot).
    ///
    /// Dead slots (destroyed or still draining) report `live = false` with
    /// zeroed churn/insertion rows — their meters are frozen leftovers of
    /// the departed tenant, not dynamics a policy should ingest.
    fn observations(&mut self) -> PartitionObservations {
        self.retire_drained_slots();
        let n = self.parts.len();
        let mut obs = PartitionObservations::new(n);
        for (p, st) in self.parts.iter().enumerate() {
            let live = self.slot_state[p] == SlotState::Active;
            obs.live[p] = live;
            obs.actual[p] = st.actual;
            obs.targets[p] = st.target;
            if live {
                obs.churn[p] = self.lost[p] - self.obs_lost[p];
                obs.insertions[p] = self.filled[p] - self.obs_filled[p];
            }
        }
        obs.hits.copy_from_slice(&self.stats.hits);
        obs.misses.copy_from_slice(&self.stats.misses);
        obs.shared_hits.copy_from_slice(self.own.shared_hits());
        obs.ownership_transfers
            .copy_from_slice(self.own.transfers());
        self.own.reset_counters();
        self.obs_lost.copy_from_slice(&self.lost);
        self.obs_filled.copy_from_slice(&self.filled);
        obs.arrived = std::mem::take(&mut self.pending_arrived);
        obs.departed = std::mem::take(&mut self.pending_departed);
        obs
    }

    /// Creates a partition at runtime: reuses the lowest dead slot, or
    /// grows the slot table by one. The grant is carved from the unmanaged
    /// region's spare target (everything above the configured unmanaged
    /// fraction's floor), so targets keep tiling the cache and the Vantage
    /// guarantees hold throughout; a short grant is trued up by the next
    /// repartitioning epoch.
    ///
    /// Any dead slot qualifies, drained or not: slot choice must be a pure
    /// function of the lifecycle call sequence, never of drain progress,
    /// so that the banks of a [`BankedLlc`] — which drain at different
    /// rates — always assign the same slot. A still-draining slot's
    /// leftover lines are inherited by the new tenant, exactly as recycling
    /// a partition ID does in hardware; they demote through the ordinary
    /// machinery whenever they push the tenant over target.
    ///
    /// [`BankedLlc`]: vantage_partitioning::BankedLlc
    fn create_partition(&mut self, spec: PartitionSpec) -> Result<PartitionId, LifecycleError> {
        if self.rrip.is_some() {
            // The RRIP policy's per-partition state is sized at
            // construction; Vantage-DRRIP keeps a fixed population.
            return Err(LifecycleError::Unsupported);
        }
        self.retire_drained_slots();
        let p = match self.slot_state.iter().position(|s| *s != SlotState::Active) {
            Some(p) => {
                // Recycled slot: fresh controller and meters, so the new
                // tenant's SLA accounting starts from zero. Inherited lines
                // (if the slot was still draining) stay counted in `actual`.
                let actual = self.parts[p].actual;
                debug_assert!(
                    self.slot_state[p] == SlotState::Draining || actual == 0,
                    "free slot still holds lines"
                );
                self.parts[p] = PartitionState::new(
                    0,
                    self.cfg.slack,
                    self.cfg.a_max,
                    self.cfg.cands_period,
                    self.cfg.table_entries,
                    self.max_rrpv,
                );
                self.parts[p].actual = actual;
                self.stats.hits[p] = 0;
                self.stats.misses[p] = 0;
                self.lost[p] = 0;
                self.filled[p] = 0;
                self.sample_lost[p] = 0;
                self.obs_lost[p] = 0;
                self.obs_filled[p] = 0;
                p
            }
            None => {
                let p = self.parts.len();
                if p >= UNMANAGED as usize {
                    return Err(LifecycleError::Exhausted);
                }
                self.parts.push(PartitionState::new(
                    0,
                    self.cfg.slack,
                    self.cfg.a_max,
                    self.cfg.cands_period,
                    self.cfg.table_entries,
                    self.max_rrpv,
                ));
                self.slot_state.push(SlotState::Free);
                self.hists.push(TsHistogram::new());
                self.stats.resize(p + 1);
                self.lost.push(0);
                self.filled.push(0);
                self.sample_lost.push(0);
                self.obs_lost.push(0);
                self.obs_filled.push(0);
                self.own.ensure_partitions(p + 1);
                self.tele.bind(p + 1);
                p
            }
        };
        let cap = self.meta.len() as u64;
        let m = 1.0 - self.cfg.unmanaged_fraction;
        let want = (spec.target as f64 * m).floor() as u64;
        let floor = (self.cfg.unmanaged_fraction * cap as f64).floor() as u64;
        let grant = want.min(self.um_target.saturating_sub(floor));
        self.um_target -= grant;
        self.parts[p].set_target(
            grant,
            self.cfg.slack,
            self.cfg.a_max,
            self.cfg.cands_period,
            self.cfg.table_entries,
        );
        self.slot_state[p] = SlotState::Active;
        let id = PartitionId::from_index(p);
        self.pending_arrived.push(id);
        if self.tele.enabled() {
            self.tele.event(TelemetryEvent::PartitionCreated {
                access: self.accesses,
                part: id,
                target: grant,
            });
        }
        Ok(id)
    }

    /// Destroys a live partition without flushing: its target funds the
    /// unmanaged region again and the zero target saturates its aperture,
    /// so resident lines drain through ordinary setpoint demotions as
    /// other tenants miss. The slot is dead immediately and reusable by
    /// the next create, drained or not.
    fn destroy_partition(&mut self, part: PartitionId) -> Result<(), LifecycleError> {
        if self.rrip.is_some() {
            return Err(LifecycleError::Unsupported);
        }
        let p = part.index();
        if part.is_unmanaged() || p >= self.parts.len() {
            return Err(LifecycleError::OutOfRange(part));
        }
        if self.slot_state[p] != SlotState::Active {
            return Err(LifecycleError::NotLive(part));
        }
        self.um_target += self.parts[p].target;
        self.parts[p].set_target(
            0,
            self.cfg.slack,
            self.cfg.a_max,
            self.cfg.cands_period,
            self.cfg.table_entries,
        );
        self.slot_state[p] = if self.parts[p].actual == 0 {
            SlotState::Free
        } else {
            SlotState::Draining
        };
        self.pending_departed.push(part);
        if self.tele.enabled() {
            self.tele.event(TelemetryEvent::PartitionDestroyed {
                access: self.accesses,
                part,
            });
        }
        Ok(())
    }

    fn stats(&self) -> &LlcStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut LlcStats {
        &mut self.stats
    }

    fn set_share_mode(&mut self, mode: ShareMode) -> bool {
        self.own.set_mode(mode);
        true
    }

    fn share_mode(&self) -> ShareMode {
        self.own.mode()
    }

    fn set_telemetry(&mut self, mut telemetry: Telemetry) -> bool {
        telemetry.bind(self.parts.len());
        self.tele = telemetry;
        true
    }

    fn take_telemetry(&mut self) -> Option<Telemetry> {
        if self.tele.enabled() {
            Some(std::mem::take(&mut self.tele))
        } else {
            None
        }
    }

    fn name(&self) -> &str {
        match (self.cfg.demotion_mode, self.cfg.rank) {
            (DemotionMode::Setpoint, RankMode::Lru) => "Vantage",
            (DemotionMode::Setpoint, RankMode::Rrip { .. }) => "Vantage-RRIP",
            (DemotionMode::PerfectAperture, _) => "Vantage-Ideal",
            (DemotionMode::ExactlyOne, _) => "Vantage-ExactlyOne",
        }
    }
}

impl HasPartitionPolicy for VantageLlc {
    fn set_partition_policy(&mut self, part: usize, policy: BasePolicy) {
        VantageLlc::set_partition_policy(self, part, policy);
    }
}

impl HasInvariants for VantageLlc {
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.invariants()
            .map_err(|e| InvariantViolation(e.to_string()))
    }

    fn repair(&mut self) -> u64 {
        let r = self.scrub();
        r.repaired_tags + r.size_corrections + r.meters_reset + r.setpoints_recentered
    }

    fn scrubs(&self) -> u64 {
        self.vstats.scrubs
    }

    fn corruption_fallbacks(&self) -> u64 {
        self.vstats.corrupted_pid_fallbacks
    }
}

impl vantage_snapshot::Snapshot for VantageLlc {
    /// Serializes every architectural register plus the simulator-side
    /// meters: tags, per-partition controller state, the unmanaged clock,
    /// RRIP policy state, statistics, churn meters, the fault schedule and
    /// the telemetry schedule, with the cache array last. Derived
    /// structures (threshold tables, instrumentation histograms, walk
    /// scratch) are rebuilt on load rather than stored.
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64(self.accesses);
        // The SoA lanes serialize directly; the byte layout is identical to
        // the v1 (AoS) format, which gathered the same two slices from the
        // per-frame structs.
        enc.put_u16_slice(self.meta.parts());
        enc.put_u8_slice(self.meta.ts_lane());
        enc.put_u64(self.parts.len() as u64);
        for st in &self.parts {
            enc.put_u64(st.target);
            enc.put_u64(st.actual);
            enc.put_u8(st.setpoint);
            enc.put_u8(st.setpoint_rrpv);
            enc.put_u32(st.cands_seen);
            enc.put_u32(st.cands_demoted);
            st.lru.save_state(enc);
        }
        self.um_lru.save_state(enc);
        enc.put_u64(self.um_size);
        enc.put_u64(self.um_target);
        enc.put_bool(self.rrip.is_some());
        if let Some(rr) = &self.rrip {
            rr.save_state(enc);
        }
        self.stats.save_state(enc);
        enc.put_u64(self.vstats.demotions);
        enc.put_u64(self.vstats.promotions);
        enc.put_u64(self.vstats.unmanaged_evictions);
        enc.put_u64(self.vstats.forced_managed_evictions);
        enc.put_u64(self.vstats.empty_fills);
        enc.put_u64(self.vstats.setpoint_adjustments);
        enc.put_u64(self.vstats.throttled_insertions);
        enc.put_u64(self.vstats.corrupted_pid_fallbacks);
        enc.put_u64(self.vstats.scrubs);
        enc.put_bool(self.probe);
        enc.put_u64(self.samples.len() as u64);
        for &(access, part, pr) in &self.samples {
            enc.put_u64(access);
            enc.put_u16(part);
            enc.put_u32(pr.to_bits());
        }
        enc.put_u64_slice(&self.lost);
        enc.put_u64_slice(&self.filled);
        enc.put_u64(self.um_lost);
        enc.put_u64_slice(&self.sample_lost);
        enc.put_u64(self.sample_um_lost);
        enc.put_u64_slice(&self.obs_lost);
        enc.put_u64_slice(&self.obs_filled);
        enc.put_opt_u64(self.scrub_period);
        enc.put_bool(self.fault_plan.is_some());
        if let Some(plan) = &self.fault_plan {
            plan.save_state(enc);
        }
        self.tele.save_state(enc);
        self.array.save_state(enc);
        // v3 lifecycle tail, after everything a v2 reader consumes: the
        // slot-state lane plus the pending arrival/departure queues. v2
        // payloads simply end here, which is how `load_state` detects them.
        let lane: Vec<u8> = self
            .slot_state
            .iter()
            .map(|s| match s {
                SlotState::Active => 0u8,
                SlotState::Draining => 1,
                SlotState::Free => 2,
            })
            .collect();
        enc.put_u8_slice(&lane);
        let arrived: Vec<u16> = self.pending_arrived.iter().map(|p| p.raw()).collect();
        let departed: Vec<u16> = self.pending_departed.iter().map(|p| p.raw()).collect();
        enc.put_u16_slice(&arrived);
        enc.put_u16_slice(&departed);
        // v5 ownership tail, after the lifecycle tail: the share mode plus
        // the per-partition sharing counters. v3/v4 payloads end at the
        // queues above, which is how `load_state` detects their absence.
        self.own.save_state(enc);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let frames = self.meta.len();
        let accesses = dec.take_u64()?;
        let parts_tags = dec.take_u16_vec()?;
        let ts_tags = dec.take_u8_vec()?;
        if parts_tags.len() != frames || ts_tags.len() != frames {
            return Err(dec.mismatch("tag array length differs from cache geometry"));
        }
        // Tag PIDs are deliberately NOT range-checked: out-of-range IDs are
        // legal live state under fault injection, and the access paths and
        // scrub already tolerate them.
        let npart = dec.take_u64()? as usize;
        if npart == 0 || npart >= UNMANAGED as usize {
            return Err(dec.invalid("partition count out of range"));
        }
        if npart != self.parts.len() {
            // Service mode: the saved cache created/destroyed partitions
            // after construction, so the slot table is sized by the
            // snapshot, not the constructor. RRIP state cannot resize.
            if self.rrip.is_some() {
                return Err(dec.mismatch("partition count differs under RRIP ranking"));
            }
            self.resize_slot_tables(npart);
        }
        let mut managed_total = 0u64;
        for p in 0..npart {
            let target = dec.take_u64()?;
            let actual = dec.take_u64()?;
            let setpoint = dec.take_u8()?;
            let setpoint_rrpv = dec.take_u8()?;
            let cands_seen = dec.take_u32()?;
            let cands_demoted = dec.take_u32()?;
            let st = &mut self.parts[p];
            st.set_target(
                target,
                self.cfg.slack,
                self.cfg.a_max,
                self.cfg.cands_period,
                self.cfg.table_entries,
            );
            st.actual = actual;
            st.setpoint = setpoint;
            st.setpoint_rrpv = setpoint_rrpv;
            st.cands_seen = cands_seen;
            st.cands_demoted = cands_demoted;
            st.lru.load_state(dec)?;
            managed_total += target;
        }
        self.um_lru.load_state(dec)?;
        let um_size = dec.take_u64()?;
        let um_target = dec.take_u64()?;
        if managed_total + um_target != frames as u64 {
            return Err(dec.invalid("targets do not tile the cache"));
        }
        let has_rrip = dec.take_bool()?;
        if has_rrip != self.rrip.is_some() {
            return Err(dec.mismatch("ranking mode differs (LRU vs RRIP)"));
        }
        if let Some(rr) = &mut self.rrip {
            rr.load_state(dec)?;
        }
        self.stats.load_state(dec)?;
        let vstats = VantageStats {
            demotions: dec.take_u64()?,
            promotions: dec.take_u64()?,
            unmanaged_evictions: dec.take_u64()?,
            forced_managed_evictions: dec.take_u64()?,
            empty_fills: dec.take_u64()?,
            setpoint_adjustments: dec.take_u64()?,
            throttled_insertions: dec.take_u64()?,
            corrupted_pid_fallbacks: dec.take_u64()?,
            scrubs: dec.take_u64()?,
        };
        let probe = dec.take_bool()?;
        if probe && !self.is_lru() {
            return Err(dec.mismatch("priority probe requires LRU ranking"));
        }
        let nsamples = dec.take_len()?;
        // Each sample is 8 + 2 + 4 bytes in the stream.
        if nsamples > dec.remaining() / 14 {
            return Err(dec.invalid("priority-sample count exceeds payload"));
        }
        let mut samples = Vec::with_capacity(nsamples);
        for _ in 0..nsamples {
            let access = dec.take_u64()?;
            let part = dec.take_u16()?;
            let pr = f32::from_bits(dec.take_u32()?);
            samples.push((access, part, pr));
        }
        let lost = dec.take_u64_vec()?;
        let filled = dec.take_u64_vec()?;
        let um_lost = dec.take_u64()?;
        let sample_lost = dec.take_u64_vec()?;
        let sample_um_lost = dec.take_u64()?;
        let obs_lost = dec.take_u64_vec()?;
        let obs_filled = dec.take_u64_vec()?;
        for v in [&lost, &filled, &sample_lost, &obs_lost, &obs_filled] {
            if v.len() != npart {
                return Err(dec.mismatch("churn meter length differs"));
            }
        }
        let scrub_period = dec.take_opt_u64()?;
        if scrub_period == Some(0) {
            return Err(dec.invalid("zero scrub period"));
        }
        let has_plan = dec.take_bool()?;
        let fault_plan = if has_plan {
            // Load fully overwrites the plan, so the pre-restore plan (or a
            // never-firing placeholder) is just a landing slot.
            let mut plan = self
                .fault_plan
                .take()
                .unwrap_or_else(|| FaultPlan::new(0, 0, &[]));
            plan.load_state(dec)?;
            Some(plan)
        } else {
            None
        };
        self.tele.load_state(dec)?;
        self.array.load_state(dec)?;
        // v3 lifecycle tail; a v2 payload ends exactly at the array, so any
        // remaining bytes are the slot-state lane + pending queues.
        let (slot_state, pending_arrived, pending_departed) = if dec.remaining() > 0 {
            let lane = dec.take_u8_vec()?;
            if lane.len() != npart {
                return Err(dec.mismatch("slot-state lane length differs"));
            }
            let mut slots = Vec::with_capacity(npart);
            for b in lane {
                slots.push(match b {
                    0 => SlotState::Active,
                    1 => SlotState::Draining,
                    2 => SlotState::Free,
                    _ => return Err(dec.invalid("unknown slot state")),
                });
            }
            let take_queue = |dec: &mut vantage_snapshot::Decoder<'_>|
             -> vantage_snapshot::Result<Vec<PartitionId>> {
                let raw = dec.take_u16_vec()?;
                let mut ids = Vec::with_capacity(raw.len());
                for r in raw {
                    let id = PartitionId::from_raw(r);
                    if id.is_unmanaged() || id.index() >= npart {
                        return Err(dec.invalid("lifecycle queue names an out-of-range slot"));
                    }
                    ids.push(id);
                }
                Ok(ids)
            };
            let arrived = take_queue(dec)?;
            let departed = take_queue(dec)?;
            (slots, arrived, departed)
        } else {
            // v1/v2: a fixed population, every slot live.
            (vec![SlotState::Active; npart], Vec::new(), Vec::new())
        };
        // v5 ownership tail. Older payloads end at the lifecycle queues:
        // they were recorded under the implicit Adopt-equivalent behavior,
        // so the host's configured mode is kept and the counters start
        // from zero.
        if self.own.partitions() != npart {
            self.own = Ownership::new(self.own.mode(), npart);
        } else {
            self.own.reset_counters();
        }
        if dec.remaining() > 0 {
            self.own.load_state(dec)?;
        }
        for (p, s) in slot_state.iter().enumerate() {
            if *s != SlotState::Active && self.parts[p].target != 0 {
                return Err(dec.invalid("dead slot carries a capacity target"));
            }
        }

        self.accesses = accesses;
        self.slot_state = slot_state;
        self.pending_arrived = pending_arrived;
        self.pending_departed = pending_departed;
        self.meta.load_lanes(parts_tags, ts_tags);
        // Normalize never-filled frames to the sentinel: v1 (AoS) snapshots
        // stored their `Tag::default()` junk (`part = 0`), which the SoA
        // store must not mistake for partition-0 lines. Harmless for v2
        // snapshots, which already carry the sentinel.
        for f in 0..frames {
            if self.array.occupant(f as Frame).is_none() {
                self.meta.set(f, UNMANAGED, 0);
            }
        }
        self.um_size = um_size;
        self.um_target = um_target;
        self.vstats = vstats;
        self.probe = probe;
        self.samples = samples;
        self.lost = lost;
        self.filled = filled;
        self.um_lost = um_lost;
        self.sample_lost = sample_lost;
        self.sample_um_lost = sample_um_lost;
        self.obs_lost = obs_lost;
        self.obs_filled = obs_filled;
        self.scrub_period = scrub_period;
        self.fault_plan = fault_plan;
        // Derived state: the probe forces histogram tracking on (matching
        // `enable_priority_probe`), and tracked histograms are rebuilt from
        // the restored tags rather than stored.
        if self.probe {
            self.hist_track = true;
        }
        if self.hist_track {
            self.rebuild_hists();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use vantage_cache::ZArray;

    fn z52(frames: usize) -> Box<dyn CacheArray> {
        Box::new(ZArray::new(frames, 4, 52, 0xA11CE))
    }

    fn default_llc(frames: usize, partitions: usize) -> VantageLlc {
        VantageLlc::try_new(z52(frames), partitions, VantageConfig::default(), 7)
            .expect("valid Vantage config")
    }

    /// Drives `n` accesses of uniform random lines over `working_set`
    /// distinct addresses, tagged per partition.
    fn drive(llc: &mut VantageLlc, part: usize, working_set: u64, n: u64, rng: &mut SmallRng) {
        let base = (part as u64 + 1) << 40;
        for _ in 0..n {
            llc.access(AccessRequest::read(
                PartitionId::from_index(part),
                LineAddr(base + rng.gen_range(0..working_set)),
            ));
        }
    }

    #[test]
    fn attached_fault_plan_injects_and_scrub_recovers() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut llc = default_llc(2048, 2);
        llc.set_fault_plan(Some(FaultPlan::new(0xBAD, 500, &FaultKind::INJECTABLE)));
        llc.set_scrub_period(Some(2_000));
        let mut rng = SmallRng::seed_from_u64(9);
        drive(&mut llc, 0, 10_000, 20_000, &mut rng);
        drive(&mut llc, 1, 10_000, 20_000, &mut rng);
        let plan = llc.fault_plan().expect("plan stays attached");
        assert!(
            plan.log().len() >= 50,
            "plan fired {} times",
            plan.log().len()
        );
        // The interleaved scrubs kept the controller coherent despite the
        // injected corruption.
        llc.scrub();
        llc.invariants().expect("scrub repairs injected damage");
        let detached = llc.set_fault_plan(None);
        assert!(detached.is_some() && llc.fault_plan().is_none());
    }

    #[test]
    fn scrub_restores_sentinel_on_partially_filled_array() {
        // With only a fraction of the array filled, never-filled frames
        // must read as (UNMANAGED, 0) — the reset tag — or a stale
        // partition ID left on an empty frame would be counted into that
        // partition's recomputed size. Corrupt both occupied and
        // never-filled frames and check one scrub pass repairs everything.
        let mut llc = default_llc(1024, 2);
        llc.set_targets(&[512, 512]);
        let mut rng = SmallRng::seed_from_u64(11);
        // A tiny working set leaves most of the array never filled.
        drive(&mut llc, 0, 48, 2_000, &mut rng);
        let empties: Vec<usize> = (0..llc.meta.len())
            .filter(|&f| llc.array.occupant(f as Frame).is_none())
            .collect();
        let occupied: Vec<usize> = (0..llc.meta.len())
            .filter(|&f| llc.array.occupant(f as Frame).is_some())
            .collect();
        assert!(empties.len() >= 3, "array unexpectedly full");
        assert!(!occupied.is_empty(), "array unexpectedly empty");
        for f in &empties {
            assert_eq!(
                (llc.meta.part(*f), llc.meta.ts(*f)),
                (UNMANAGED, 0),
                "never-filled frame {f} must carry the reset tag"
            );
        }
        // A never-filled frame claiming a partition-0 line, one with a
        // stale stamp, and an occupied frame with an out-of-range owner.
        llc.meta.set(empties[0], 0, 7);
        llc.meta.set_ts(empties[1], 200);
        llc.meta.set_part(occupied[0], 999);
        let report = llc.scrub();
        assert!(
            report.repaired_tags >= 3,
            "expected all 3 corruptions retagged, repaired {}",
            report.repaired_tags
        );
        for f in &empties {
            assert_eq!(
                (llc.meta.part(*f), llc.meta.ts(*f)),
                (UNMANAGED, 0),
                "scrub must reset never-filled frame {f}"
            );
        }
        assert_eq!(llc.meta.part(occupied[0]), UNMANAGED);
        // Recomputed sizes count exactly the occupied frames.
        let total = llc.partition_size(PartitionId::from_index(0))
            + llc.partition_size(PartitionId::from_index(1))
            + llc.unmanaged_size();
        assert_eq!(total as usize, occupied.len());
        llc.invariants().expect("scrub leaves a coherent cache");
    }

    #[test]
    fn sizes_converge_to_asymmetric_targets() {
        let mut llc = default_llc(4096, 2);
        llc.set_targets(&[3072, 1024]);
        let mut rng = SmallRng::seed_from_u64(1);
        // Both partitions churn heavily (working sets far over capacity).
        for _ in 0..40 {
            drive(&mut llc, 0, 100_000, 5_000, &mut rng);
            drive(&mut llc, 1, 100_000, 5_000, &mut rng);
        }
        llc.invariants().expect("invariants hold");
        let (t0, t1) = (
            llc.partition_target(PartitionId::from_index(0)) as f64,
            llc.partition_target(PartitionId::from_index(1)) as f64,
        );
        let (s0, s1) = (
            llc.partition_size(PartitionId::from_index(0)) as f64,
            llc.partition_size(PartitionId::from_index(1)) as f64,
        );
        // Sizes track scaled targets within the feedback slack plus a small
        // margin for in-flight drift.
        assert!(s0 >= t0 * 0.92 && s0 <= t0 * 1.2, "s0 = {s0}, t0 = {t0}");
        assert!(s1 >= t1 * 0.92 && s1 <= t1 * 1.2, "s1 = {s1}, t1 = {t1}");
    }

    #[test]
    fn thrasher_cannot_displace_quiet_partition() {
        let mut llc = default_llc(4096, 2);
        llc.set_targets(&[2048, 2048]);
        let mut rng = SmallRng::seed_from_u64(2);
        // Partition 0 loads a working set that fits comfortably, then goes
        // quiet while partition 1 streams.
        drive(&mut llc, 0, 1500, 60_000, &mut rng);
        let resident_before = llc.partition_size(PartitionId::from_index(0));
        assert!(resident_before > 1200, "warmup failed ({resident_before})");
        for i in 0..400_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index(1),
                LineAddr((2u64 << 40) + i),
            ));
        }
        llc.invariants().expect("invariants hold");
        // The quiet partition keeps (almost) all its lines: only forced
        // managed evictions could remove them, and those are rare.
        let resident_after = llc.partition_size(PartitionId::from_index(0));
        assert!(
            resident_after as f64 > resident_before as f64 * 0.97,
            "quiet partition lost {} of {} lines",
            resident_before - resident_after,
            resident_before
        );
        // And the streamer is bounded near its own target.
        let t1 = llc.partition_target(PartitionId::from_index(1)) as f64;
        assert!((llc.partition_size(PartitionId::from_index(1)) as f64) < t1 * 1.2);
    }

    #[test]
    fn forced_managed_evictions_are_rare() {
        let cfg = VantageConfig {
            unmanaged_fraction: 0.15,
            ..VantageConfig::default()
        };
        let mut llc = VantageLlc::try_new(z52(4096), 4, cfg, 3).expect("valid Vantage config");
        llc.set_targets(&[1024, 1024, 1024, 1024]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            for p in 0..4 {
                drive(&mut llc, p, 50_000, 10_000, &mut rng);
            }
        }
        let frac = llc.vantage_stats().managed_eviction_fraction();
        // Model worst case for u = 0.15, R = 52 is ~2e-4; give slack for
        // warmup and walk truncation.
        assert!(frac < 0.01, "managed eviction fraction {frac}");
        llc.invariants().expect("invariants hold");
    }

    #[test]
    fn promotion_rescues_unmanaged_lines() {
        let mut llc = default_llc(1024, 2);
        llc.set_targets(&[512, 512]);
        let mut rng = SmallRng::seed_from_u64(4);
        // Create churn so partition 0's lines get demoted...
        drive(&mut llc, 0, 5_000, 30_000, &mut rng);
        assert!(llc.vantage_stats().demotions > 0);
        // ...then re-touch a recent window; some hits will be promotions.
        let before = llc.vantage_stats().promotions;
        drive(&mut llc, 0, 5_000, 30_000, &mut rng);
        assert!(
            llc.vantage_stats().promotions > before,
            "no promotions happened"
        );
        llc.invariants().expect("invariants hold");
    }

    #[test]
    fn zero_target_drains_partition() {
        let mut llc = default_llc(2048, 2);
        llc.set_targets(&[1024, 1024]);
        let mut rng = SmallRng::seed_from_u64(5);
        drive(&mut llc, 0, 50_000, 30_000, &mut rng);
        drive(&mut llc, 1, 50_000, 30_000, &mut rng);
        let s0 = llc.partition_size(PartitionId::from_index(0));
        assert!(s0 > 700);
        // Delete partition 0: target 0; its lines drain as partition 1
        // churns.
        llc.set_targets(&[0, 2048]);
        drive(&mut llc, 1, 50_000, 120_000, &mut rng);
        llc.invariants().expect("invariants hold");
        let drained = llc.partition_size(PartitionId::from_index(0));
        assert!(
            drained < s0 / 4,
            "partition retained {drained} of {s0} lines"
        );
    }

    #[test]
    fn small_partition_respects_minimum_stable_size() {
        // A 1-line-target partition with high churn grows to its MSS but no
        // further: MSS ≈ ΣS/(A_max·R·m) of the managed region (Eq. 5 with
        // all churn in one partition). The partition's size oscillates
        // around that equilibrium (the setpoint feedback hunts with an
        // amplitude of a few tens of percent), so a single end-of-run
        // sample is phase-sensitive; bound the mean over the churn tail
        // instead, with 2× headroom over the ideal MSS.
        let mut llc = default_llc(4096, 2);
        llc.set_targets(&[16, 4080]);
        let mut rng = SmallRng::seed_from_u64(6);
        // Partition 1 fills and stays quiet; partition 0 churns hard.
        drive(&mut llc, 1, 3400, 60_000, &mut rng);
        let (mut sum, mut samples) = (0u64, 0u64);
        for i in 0..300_000u64 {
            llc.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
            if i >= 100_000 && i % 1_000 == 0 {
                sum += llc.partition_size(PartitionId::from_index(0));
                samples += 1;
            }
        }
        llc.invariants().expect("invariants hold");
        let mss_bound = (4096.0 / (0.5 * 52.0)) * 2.0; // 1/(A_max·R) + 2× headroom
        let s0 = sum as f64 / samples as f64;
        assert!(
            s0 < mss_bound,
            "runaway partition: mean {s0} lines > bound {mss_bound}"
        );
    }

    #[test]
    fn downsize_converges_quickly() {
        let mut llc = default_llc(4096, 2);
        llc.set_targets(&[3584, 512]);
        let mut rng = SmallRng::seed_from_u64(7);
        drive(&mut llc, 0, 100_000, 60_000, &mut rng);
        drive(&mut llc, 1, 100_000, 20_000, &mut rng);
        assert!(llc.partition_size(PartitionId::from_index(0)) > 2500);
        // Swap the allocations; both partitions keep churning.
        llc.set_targets(&[512, 3584]);
        for _ in 0..20 {
            drive(&mut llc, 0, 100_000, 2_000, &mut rng);
            drive(&mut llc, 1, 100_000, 2_000, &mut rng);
        }
        llc.invariants().expect("invariants hold");
        let t0 = llc.partition_target(PartitionId::from_index(0)) as f64;
        assert!(
            (llc.partition_size(PartitionId::from_index(0)) as f64) < t0 * 1.3,
            "downsized partition stuck at {}",
            llc.partition_size(PartitionId::from_index(0))
        );
    }

    #[test]
    fn perfect_aperture_mode_matches_setpoint_mode() {
        let mk = |mode| {
            let cfg = VantageConfig {
                demotion_mode: mode,
                ..VantageConfig::default()
            };
            VantageLlc::try_new(z52(2048), 2, cfg, 9).expect("valid Vantage config")
        };
        let mut practical = mk(DemotionMode::Setpoint);
        let mut ideal = mk(DemotionMode::PerfectAperture);
        for llc in [&mut practical, &mut ideal] {
            llc.set_targets(&[1536, 512]);
            let mut rng = SmallRng::seed_from_u64(10);
            for _ in 0..20 {
                drive(llc, 0, 50_000, 4_000, &mut rng);
                drive(llc, 1, 50_000, 4_000, &mut rng);
            }
            llc.invariants().expect("invariants hold");
        }
        // §6.2: both designs perform essentially identically; sizes must
        // agree within a few percent of capacity.
        for p in 0..2 {
            let a = practical.partition_size(PartitionId::from_index(p)) as f64;
            let b = ideal.partition_size(PartitionId::from_index(p)) as f64;
            assert!((a - b).abs() / 2048.0 < 0.06, "partition {p}: {a} vs {b}");
        }
        assert_eq!(ideal.name(), "Vantage-Ideal");
    }

    #[test]
    fn rrip_mode_runs_and_sizes_track() {
        let cfg = VantageConfig {
            rank: RankMode::Rrip { bits: 3 },
            ..VantageConfig::default()
        };
        let mut llc = VantageLlc::try_new(z52(2048), 2, cfg, 11).expect("valid Vantage config");
        llc.set_targets(&[1536, 512]);
        llc.set_partition_policy(0, BasePolicy::Srrip);
        llc.set_partition_policy(1, BasePolicy::Brrip);
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..30 {
            drive(&mut llc, 0, 50_000, 4_000, &mut rng);
            drive(&mut llc, 1, 50_000, 4_000, &mut rng);
        }
        llc.invariants().expect("invariants hold");
        assert_eq!(llc.name(), "Vantage-RRIP");
        let (s0, s1) = (
            llc.partition_size(PartitionId::from_index(0)) as f64,
            llc.partition_size(PartitionId::from_index(1)) as f64,
        );
        let (t0, t1) = (
            llc.partition_target(PartitionId::from_index(0)) as f64,
            llc.partition_target(PartitionId::from_index(1)) as f64,
        );
        assert!(s0 > t0 * 0.8 && s0 < t0 * 1.3, "s0 = {s0} vs t0 = {t0}");
        assert!(s1 > t1 * 0.8 && s1 < t1 * 1.3, "s1 = {s1} vs t1 = {t1}");
    }

    #[test]
    fn probe_samples_concentrate_near_one_for_low_churn() {
        let mut llc = default_llc(2048, 2);
        llc.enable_priority_probe();
        llc.set_targets(&[1024, 1024]);
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..30 {
            drive(&mut llc, 0, 20_000, 3_000, &mut rng);
            drive(&mut llc, 1, 20_000, 3_000, &mut rng);
        }
        let samples = llc.drain_priority_samples();
        assert!(samples.len() > 100, "expected many demotion samples");
        let mean: f64 =
            samples.iter().map(|(_, _, p)| f64::from(*p)).sum::<f64>() / samples.len() as f64;
        // Balanced partitions demote from a small aperture: mean priority
        // must sit well above 0.5 (Fig. 8's dark band near 1.0).
        assert!(mean > 0.75, "mean demotion priority {mean}");
    }

    #[test]
    fn exactly_one_mode_holds_sizes_but_demotes_younger_lines() {
        // Fig. 2b vs 2c on the real cache: exactly-one demotion maintains
        // partition sizes, but its demotion priorities are spread far below
        // the demote-on-average controller's.
        let run = |mode: DemotionMode| {
            let cfg = VantageConfig {
                demotion_mode: mode,
                ..VantageConfig::default()
            };
            let mut llc = VantageLlc::try_new(z52(2048), 2, cfg, 31).expect("valid Vantage config");
            llc.enable_priority_probe();
            llc.set_targets(&[1024, 1024]);
            let mut rng = SmallRng::seed_from_u64(32);
            for _ in 0..30 {
                drive(&mut llc, 0, 20_000, 3_000, &mut rng);
                drive(&mut llc, 1, 20_000, 3_000, &mut rng);
            }
            llc.invariants().expect("invariants hold");
            let samples = llc.drain_priority_samples();
            // The Eq. 2-vs-Eq. 3 difference is in the low-priority tail:
            // demote-on-average never reaches below 1 - A, exactly-one does
            // whenever few of a partition's lines appear among candidates.
            let tail = samples.iter().filter(|(_, _, p)| *p < 0.8).count() as f64
                / samples.len().max(1) as f64;
            (llc.partition_size(PartitionId::from_index(0)), tail)
        };
        let (size_avg, tail_avg) = run(DemotionMode::PerfectAperture);
        let (size_one, tail_one) = run(DemotionMode::ExactlyOne);
        // Both hold sizes near the (scaled) target...
        for s in [size_avg, size_one] {
            assert!(s > 850 && s < 1150, "size {s} off target");
        }
        // ...but exactly-one demotes soft-pinned (low-priority) lines that
        // the aperture-based controller never touches.
        assert!(
            tail_one > 2.0 * tail_avg + 0.005,
            "exactly-one tail {tail_one:.4} vs demote-on-average tail {tail_avg:.4}"
        );
    }

    #[test]
    fn churn_throttling_caps_runaway_partitions() {
        // Without throttling a tiny-target churner grows to its minimum
        // stable size; with throttling its fills divert to the unmanaged
        // region and it stays pinned near the target.
        let run = |throttle: bool| {
            let cfg = VantageConfig {
                churn_throttling: throttle,
                ..VantageConfig::default()
            };
            let mut llc = VantageLlc::try_new(z52(4096), 2, cfg, 21).expect("valid Vantage config");
            llc.set_targets(&[64, 4032]);
            let mut rng = SmallRng::seed_from_u64(22);
            drive(&mut llc, 1, 3_000, 50_000, &mut rng);
            for i in 0..200_000u64 {
                llc.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
            }
            llc.invariants().expect("invariants hold");
            (
                llc.partition_size(PartitionId::from_index(0)),
                llc.vantage_stats().throttled_insertions,
            )
        };
        let (unthrottled, t0) = run(false);
        let (throttled, t1) = run(true);
        assert_eq!(t0, 0, "throttling off must divert nothing");
        assert!(t1 > 10_000, "throttling should divert the churner's fills");
        assert!(
            throttled < unthrottled / 2,
            "throttled churner at {throttled} vs {unthrottled} lines"
        );
        assert!(throttled < 200, "throttled partition should hug its target");
    }

    #[test]
    fn targets_exceeding_capacity_rejected() {
        let mut llc = default_llc(1024, 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            llc.set_targets(&[1024, 1024]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn pick_occupied_samples_uniformly() {
        let mut llc = default_llc(1024, 2);
        llc.set_targets(&[512, 512]);
        let mut rng = SmallRng::seed_from_u64(40);
        // Partial fill (~25% occupancy) leaves long runs of empty frames —
        // exactly the layout where scanning forward from a random frame to
        // the next occupied slot over-samples frames behind empty runs.
        for _ in 0..256 {
            llc.access(AccessRequest::read(
                PartitionId::from_index(0),
                LineAddr(rng.gen_range(0..100_000u64)),
            ));
        }
        let occupied: Vec<usize> = (0..1024usize)
            .filter(|&f| llc.array.occupant(f as Frame).is_some())
            .collect();
        let k = occupied.len();
        assert!(k >= 64, "fill too small ({k})");
        let n = 100 * k;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let f = llc.pick_occupied(rng.gen::<u64>()).expect("array nonempty");
            assert!(
                llc.array.occupant(f as Frame).is_some(),
                "picked empty frame {f}"
            );
            *counts.entry(f).or_insert(0u64) += 1;
        }
        // Chi-square goodness of fit against the uniform distribution over
        // occupied frames: the statistic concentrates around its dof
        // (k - 1); 6 sigma of slack makes the test deterministic-friendly.
        // The pre-fix next-occupied scan weights each frame by the empty
        // run preceding it and blows this up by orders of magnitude.
        let e = n as f64 / k as f64;
        let chi2: f64 = occupied
            .iter()
            .map(|f| {
                let o = *counts.get(f).unwrap_or(&0) as f64;
                (o - e) * (o - e) / e
            })
            .sum();
        let dof = (k - 1) as f64;
        let bound = dof + 6.0 * (2.0 * dof).sqrt();
        assert!(chi2 < bound, "chi2 {chi2:.1} vs bound {bound:.1}");
    }

    #[test]
    fn unmanaged_clock_tracks_actual_size_not_target() {
        let mut llc = default_llc(4096, 2);
        llc.set_targets(&[2048, 2048]);
        // Cold start (empty region): seeded from the target.
        let target = llc.unmanaged_target();
        assert_eq!(
            u64::from(llc.unmanaged_ts_period()),
            (target.max(16) / 16).max(1)
        );
        // Once the region holds far more than its target, stamping through
        // one full period must re-derive the period from the actual size.
        llc.um_size = 4 * target;
        for _ in 0..=llc.unmanaged_ts_period() {
            llc.um_stamp();
        }
        assert_eq!(
            u64::from(llc.unmanaged_ts_period()),
            (llc.um_size.max(16) / 16).max(1),
            "period still tracking the target, not the actual size"
        );
        // And retargeting a populated region seeds from the actual size.
        llc.um_size = 32;
        llc.set_targets(&[2048, 2048]);
        assert_eq!(llc.unmanaged_ts_period(), 2);
    }

    #[test]
    fn telemetry_captures_partition_dynamics() {
        use vantage_telemetry::{RingSink, TelemetryRecord};
        let mut llc = default_llc(2048, 2);
        let (sink, reader) = RingSink::with_capacity(1 << 19);
        assert!(llc.set_telemetry(Telemetry::new(Box::new(sink), 1024)));
        llc.set_targets(&[1536, 512]);
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..10 {
            drive(&mut llc, 0, 50_000, 4_000, &mut rng);
            drive(&mut llc, 1, 50_000, 4_000, &mut rng);
        }
        llc.scrub();
        let recs = reader.records();
        let mut demotions = 0u64;
        let mut promotions = 0u64;
        let mut adjustments = 0u64;
        let mut apertures = 0u64;
        let mut scrubs = 0u64;
        let mut um_samples = 0u64;
        let mut part_samples = 0u64;
        for r in &recs {
            match r {
                TelemetryRecord::Event(TelemetryEvent::Demotion { .. }) => demotions += 1,
                TelemetryRecord::Event(TelemetryEvent::Promotion { .. }) => promotions += 1,
                TelemetryRecord::Event(TelemetryEvent::SetpointAdjust { .. }) => adjustments += 1,
                TelemetryRecord::Event(TelemetryEvent::ApertureUpdate { .. }) => apertures += 1,
                TelemetryRecord::Event(TelemetryEvent::Scrub { .. }) => scrubs += 1,
                TelemetryRecord::Sample(s) if s.part.is_unmanaged() => um_samples += 1,
                TelemetryRecord::Sample(_) => part_samples += 1,
                _ => {}
            }
        }
        // The ring is sized to hold everything: event counts line up with
        // the architectural counters (the ring also saw pre-drop records).
        assert_eq!(reader.overwritten(), 0, "ring sized too small for test");
        assert!(demotions > 0 && promotions > 0, "dynamics events present");
        assert!(adjustments > 0, "feedback adjustments present");
        assert!(apertures >= adjustments, "each adjustment logs an aperture");
        assert_eq!(scrubs, 1);
        assert!(um_samples > 10, "unmanaged region sampled");
        assert_eq!(part_samples, 2 * um_samples, "one sample per partition");
        // Samples carry real targets (scaled onto the managed region).
        let t0 = llc.partition_target(PartitionId::from_index(0));
        assert!(recs.iter().any(
            |r| matches!(r, TelemetryRecord::Sample(s) if s.part.index() == 0 && s.target == t0)
        ));
        // take_telemetry removes the handle and stops the stream.
        let before = reader.len();
        assert!(llc.take_telemetry().is_some());
        drive(&mut llc, 0, 50_000, 2_000, &mut rng);
        assert_eq!(reader.len(), before, "stream must stop after take");
    }

    #[test]
    fn take_vantage_stats_resets_counters() {
        let mut llc = default_llc(1024, 2);
        let mut rng = SmallRng::seed_from_u64(99);
        drive(&mut llc, 0, 10_000, 20_000, &mut rng);
        let taken = llc.take_vantage_stats();
        assert!(taken.demotions > 0);
        assert_eq!(llc.vantage_stats().demotions, 0);
    }

    #[test]
    fn unmanaged_region_size_hovers_near_its_target() {
        let mut llc = default_llc(4096, 4);
        llc.set_targets(&[1024, 1024, 1024, 1024]);
        let mut rng = SmallRng::seed_from_u64(14);
        for _ in 0..25 {
            for p in 0..4 {
                drive(&mut llc, p, 50_000, 3_000, &mut rng);
            }
        }
        llc.invariants().expect("invariants hold");
        let um = llc.unmanaged_size() as f64;
        let target = llc.unmanaged_target() as f64;
        assert!(
            um > target * 0.3 && um < target * 2.5,
            "unmanaged {um} vs target {target}"
        );
    }

    /// Regression for the 8-bit keep-window aliasing bug: a line whose
    /// partition clock advances 256+ times between touches used to alias
    /// back to age 0 (`current.wrapping_sub(ts)` wraps), re-entering the
    /// keep window and dodging demotion for a whole further epoch. The
    /// clamp pins such stamps to age 255 at every tick instead.
    #[test]
    fn aliased_stale_lines_stay_demotable_after_clock_wrap() {
        use vantage_cache::SetAssocArray;
        // Modulo indexing: `set = addr % 4`, so traffic is steerable
        // per set. 4 sets x 16 ways.
        let array = Box::new(SetAssocArray::modulo(64, 16));
        let mut llc = VantageLlc::try_new(array, 1, VantageConfig::default(), 5)
            .expect("valid Vantage config");
        llc.set_targets(&[32]);
        // Phase A: park victim lines in set 0, never touched again.
        let victims: Vec<LineAddr> = (0..8u64).map(|v| LineAddr(v * 4)).collect();
        for &v in &victims {
            llc.access(AccessRequest::read(PartitionId::from_index(0), v));
        }
        let parked: Vec<u8> = victims.iter().map(|&v| llc.tag_of(v).unwrap().1).collect();
        // Phase B: stream fresh lines through sets 1-3 only, so set 0 is
        // never walked while partition 0's coarse clock wraps (300 ticks
        // observed > the 256 of one full epoch).
        let mut cur = *parked.last().unwrap();
        let mut ticks = 0u32;
        let mut k = 0u64;
        while ticks < 300 {
            k += 1;
            assert!(k < 1_000_000, "clock failed to wrap");
            let addr = LineAddr(4 * k + 1 + (k % 3));
            llc.access(AccessRequest::read(PartitionId::from_index(0), addr));
            // A managed install is stamped with the partition's current
            // timestamp; watch it to count ticks (throttled fills land
            // unmanaged and are skipped).
            if let Some((0, stamp)) = llc.tag_of(addr) {
                if stamp != cur {
                    ticks += 1;
                    cur = stamp;
                }
            }
        }
        // Every parked line must have been pinned one tick behind the
        // clock (age 255). Without the clamp they would still carry
        // their phase-A stamps and read as freshly young.
        for &v in &victims {
            let (p, ts) = llc.tag_of(v).expect("set 0 was never walked");
            assert_eq!(p, 0, "victims stay managed until set 0 is walked");
            assert_eq!(ts, cur.wrapping_add(1), "stale stamp pinned to age 255");
        }
        // Phase C: the first walk of set 0 must demote the stale lines
        // immediately (plenty of headroom over the shrunken target).
        llc.set_targets(&[16]);
        llc.access(AccessRequest::read(
            PartitionId::from_index(0),
            LineAddr(4 * 2_000_000),
        ));
        for &v in &victims {
            if let Some((p, _)) = llc.tag_of(v) {
                assert_eq!(
                    p, UNMANAGED,
                    "stale line must be demoted at first candidacy"
                );
            }
        }
        llc.invariants().expect("invariants hold");
    }
}
