//! The per-partition controller state of Fig. 4: target/actual sizes,
//! coarse timestamps, setpoints, candidate meters and the demotion
//! thresholds lookup table.

use vantage_cache::TsLru;

use crate::error::ConfigError;

/// The demotion thresholds lookup table (Fig. 3c).
///
/// Built once per resize, it discretizes the linear aperture transfer
/// function (Eq. 7) into `n` size ranges between the target `T` and
/// `(1 + slack)·T`; range `i` maps to a demotion count threshold
/// `c · A_max · (i+1)/n` per `c` candidates. Sizes at or below the target
/// map to no entry (aperture 0); sizes beyond the last range saturate at
/// `A_max`.
///
/// # Example
///
/// The paper's worked example — `T = 1000` lines, 10% slack,
/// `A_max = 0.5`, `c = 256`, 4 entries — produces thresholds
/// 32/64/96/128 over ranges 1000-1033 / 1034-1066 / 1067-1100 / 1101+:
///
/// ```
/// use vantage::controller::ThresholdTable;
///
/// let t = ThresholdTable::try_new(1000, 0.1, 0.5, 256, 4).expect("valid controller parameters");
/// assert_eq!(t.threshold(1000), None);      // at target: aperture 0
/// assert_eq!(t.threshold(1020), Some(32));
/// assert_eq!(t.threshold(1050), Some(64));
/// assert_eq!(t.threshold(1090), Some(96));
/// assert_eq!(t.threshold(1500), Some(128)); // saturates at c·A_max
/// ```
#[derive(Clone, Debug)]
pub struct ThresholdTable {
    target: u64,
    /// Width of each size range in lines (at least 1).
    width: u64,
    /// Demotion count thresholds, one per range.
    dems: Vec<u32>,
    a_max: f64,
    slack: f64,
}

impl ThresholdTable {
    /// Builds the table for a partition with `target` lines.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] identifying the first out-of-domain
    /// parameter.
    pub fn try_new(
        target: u64,
        slack: f64,
        a_max: f64,
        c: u32,
        entries: usize,
    ) -> Result<Self, ConfigError> {
        if slack.is_nan() || slack <= 0.0 {
            return Err(ConfigError::Slack(slack));
        }
        if a_max.is_nan() || a_max <= 0.0 || a_max > 1.0 {
            return Err(ConfigError::AMax(a_max));
        }
        if c == 0 {
            return Err(ConfigError::CandsPeriod(c));
        }
        if entries == 0 {
            return Err(ConfigError::TableEntries(entries));
        }
        // Fig. 3c geometry: the slack span is split into `entries - 1`
        // ranges, with the last entry covering everything beyond
        // `(1 + slack)·T` at the saturated `A_max` threshold.
        let span = (slack * target as f64).round() as u64;
        let width = (span / (entries as u64 - 1).max(1)).max(1);
        let dems = (0..entries)
            .map(|i| (f64::from(c) * a_max * (i + 1) as f64 / entries as f64).round() as u32)
            .collect();
        Ok(Self {
            target,
            width,
            dems,
            a_max,
            slack,
        })
    }

    /// The demotion count threshold (per `c` candidates) for a partition of
    /// `actual` lines, or `None` when at or below target (aperture 0).
    pub fn threshold(&self, actual: u64) -> Option<u32> {
        if actual <= self.target {
            return None;
        }
        let idx = (((actual - self.target - 1) / self.width) as usize).min(self.dems.len() - 1);
        Some(self.dems[idx])
    }

    /// The continuous aperture of Eq. 7 at `actual` lines — what the
    /// idealized (perfect-knowledge) controller uses directly.
    pub fn aperture(&self, actual: u64) -> f64 {
        if actual <= self.target {
            return 0.0;
        }
        if self.target == 0 {
            // Draining partition: demote everything allowed.
            return self.a_max;
        }
        let overshoot = (actual - self.target) as f64 / (self.slack * self.target as f64);
        (self.a_max * overshoot).min(self.a_max)
    }

    /// The target this table was built for.
    pub fn target(&self) -> u64 {
        self.target
    }
}

/// What the candidate meter says about the last `c` candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feedback {
    /// More demotions than the table threshold: open the keep window.
    TooMany,
    /// Fewer demotions than the threshold: tighten the keep window.
    TooFew,
    /// Exactly on the threshold, or the partition is at/below target.
    OnTarget,
}

/// Per-partition controller registers (Fig. 4).
///
/// Mirrors the hardware state: `TargetSize`, `ActualSize`, `CurrentTS` +
/// `AccessCounter` (inside [`TsLru`]), `SetpointTS`, `CandsSeen`,
/// `CandsDemoted` and the thresholds table. The RRIP variant reuses the
/// setpoint register as a setpoint RRPV.
#[derive(Clone, Debug)]
pub struct PartitionState {
    /// Target size in lines (`TargetSize`).
    pub target: u64,
    /// Current size in lines (`ActualSize`).
    pub actual: u64,
    /// `CurrentTS` and `AccessCounter`.
    pub lru: TsLru,
    /// `SetpointTS` — lines stamped outside `(setpoint, current]` are
    /// demotion candidates (Fig. 3b).
    pub setpoint: u8,
    /// Setpoint RRPV for [`RankMode::Rrip`](crate::RankMode::Rrip): lines
    /// with RRPV at or above it are demotion candidates.
    pub setpoint_rrpv: u8,
    /// Candidates seen since the last adjustment (`CandsSeen`).
    pub cands_seen: u32,
    /// Of those, how many were demoted (`CandsDemoted`).
    pub cands_demoted: u32,
    /// The demotion thresholds lookup table.
    pub table: ThresholdTable,
}

impl PartitionState {
    /// Creates the state for a partition with the given `target`.
    pub fn new(target: u64, slack: f64, a_max: f64, c: u32, entries: usize, max_rrpv: u8) -> Self {
        Self {
            target,
            actual: 0,
            lru: TsLru::for_size(target.max(16)),
            // Start mid-window: keep the newest half of timestamps.
            setpoint: 0u8.wrapping_sub(128),
            setpoint_rrpv: max_rrpv, // initially demote only "distant" lines
            cands_seen: 0,
            cands_demoted: 0,
            table: ThresholdTable::try_new(target, slack, a_max, c, entries)
                .expect("valid controller parameters"),
        }
    }

    /// Installs a new target, rebuilding the thresholds table.
    pub fn set_target(&mut self, target: u64, slack: f64, a_max: f64, c: u32, entries: usize) {
        self.target = target;
        self.table = ThresholdTable::try_new(target, slack, a_max, c, entries)
            .expect("valid controller parameters");
    }

    /// The keep window in timestamp units: `CurrentTS - SetpointTS`
    /// (modulo 256). Lines older than this are demotion candidates.
    #[inline]
    pub fn keep_window(&self) -> u8 {
        self.lru.current().wrapping_sub(self.setpoint)
    }

    /// Whether a managed line of this partition stamped `ts` should be
    /// demoted under setpoint-based demotions (LRU ranking).
    ///
    /// Evaluated without short-circuiting (`&`, not `&&`): at equilibrium
    /// `actual` hovers right at `target`, so a branch on that comparison
    /// alone is data-dependent noise, while the combined demote outcome
    /// (a few per walk) predicts well.
    #[inline]
    pub fn should_demote_ts(&self, ts: u8) -> bool {
        (self.actual > self.target) & (self.lru.age(ts) > self.keep_window())
    }

    /// Whether a managed line with re-reference value `rrpv` should be
    /// demoted under setpoint-based demotions (RRIP ranking); evaluated
    /// without short-circuiting for the same reason as
    /// [`Self::should_demote_ts`].
    #[inline]
    pub fn should_demote_rrpv(&self, rrpv: u8) -> bool {
        (self.actual > self.target) & (rrpv >= self.setpoint_rrpv)
    }

    /// Records one access (hit or insertion): advances the setpoint in
    /// lockstep when the current timestamp advances, keeping the window
    /// constant, and re-derives the timestamp period from the actual size.
    /// Returns the timestamp to stamp the line with.
    ///
    /// The period is only re-derived at timestamp advances (once per
    /// `period` accesses) rather than on every access: the `size/16` rule
    /// then lags a size change by at most one tick, which is within the
    /// coarse-timestamp scheme's own resolution, and the access hot path
    /// sheds a division.
    pub fn on_access(&mut self) -> u8 {
        self.on_access_advanced().0
    }

    /// Like [`Self::on_access`], but also reports whether the coarse
    /// clock ticked on this access. The tick is the moment resident lines
    /// stamped a full 256 ticks ago start aliasing into age 0; callers
    /// must pin those stamps (see `TagMeta::clamp_stale`) before any line
    /// is stamped with the new current value, or stale lines re-enter the
    /// keep window and dodge demotion indefinitely.
    pub fn on_access_advanced(&mut self) -> (u8, bool) {
        let advanced = self.lru.on_access();
        if advanced {
            self.setpoint = self.setpoint.wrapping_add(1);
            self.lru.set_period_for_size(self.actual.max(16));
        }
        (self.lru.current(), advanced)
    }

    /// Meters one candidate seen (`demoted` says whether it was demoted).
    /// Every `c` candidates, compares the demotion count against the
    /// thresholds table and returns the feedback that was applied to the
    /// setpoint; returns `None` between adjustment points.
    ///
    /// Split into an inlinable counting fast path and a [cold] adjustment
    /// path: the fast path (two increments and a compare) runs once per
    /// replacement candidate — the single hottest call site in the
    /// controller — while the feedback fires once per `c = 256` candidates.
    #[inline]
    pub fn note_candidate(&mut self, demoted: bool, c: u32, max_rrpv: u8) -> Option<Feedback> {
        self.cands_seen += 1;
        self.cands_demoted += u32::from(demoted);
        if self.cands_seen < c {
            return None;
        }
        Some(self.adjust_setpoint(max_rrpv))
    }

    /// The every-`c`-candidates feedback step of [`Self::note_candidate`]:
    /// compares the metered demotion count against the thresholds table,
    /// nudges the setpoint, and resets the meters.
    #[cold]
    fn adjust_setpoint(&mut self, max_rrpv: u8) -> Feedback {
        // At or below target the aperture is 0, so the threshold is 0: any
        // demotions counted while transiently over target are "too many".
        // Keeping the comparison symmetric here is what stops the keep
        // window from ratcheting tight on partitions whose equilibrium
        // demotion rate is below the smallest table step.
        let thr = self.table.threshold(self.actual).unwrap_or(0);
        let fb = if self.cands_demoted > thr {
            Feedback::TooMany
        } else if self.cands_demoted < thr {
            Feedback::TooFew
        } else {
            Feedback::OnTarget
        };
        match fb {
            Feedback::TooMany => {
                // Widen the keep window (move the setpoint back), demoting
                // less; the RRIP setpoint instead moves up.
                if self.keep_window() < u8::MAX {
                    self.setpoint = self.setpoint.wrapping_sub(1);
                }
                if self.setpoint_rrpv <= max_rrpv {
                    self.setpoint_rrpv += 1; // max+1 demotes nothing
                }
            }
            Feedback::TooFew => {
                if self.keep_window() > 0 {
                    self.setpoint = self.setpoint.wrapping_add(1);
                }
                self.setpoint_rrpv = self.setpoint_rrpv.saturating_sub(1);
            }
            Feedback::OnTarget => {}
        }
        self.cands_seen = 0;
        self.cands_demoted = 0;
        fb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(target: u64) -> PartitionState {
        PartitionState::new(target, 0.1, 0.5, 256, 8, 7)
    }

    #[test]
    fn paper_fig3c_table() {
        let t =
            ThresholdTable::try_new(1000, 0.1, 0.5, 256, 4).expect("valid controller parameters");
        // Range boundaries from Fig. 3c (1-line shifts from rounding the
        // 33.3-line width are acceptable; check interior points).
        assert_eq!(t.threshold(999), None);
        assert_eq!(t.threshold(1010), Some(32));
        assert_eq!(t.threshold(1040), Some(64));
        assert_eq!(t.threshold(1070), Some(96));
        assert_eq!(t.threshold(1101), Some(128));
        assert_eq!(t.threshold(9999), Some(128));
    }

    #[test]
    fn aperture_transfer_function() {
        let t =
            ThresholdTable::try_new(1000, 0.1, 0.5, 256, 8).expect("valid controller parameters");
        assert_eq!(t.aperture(900), 0.0);
        assert_eq!(t.aperture(1000), 0.0);
        let mid = t.aperture(1050);
        assert!((mid - 0.25).abs() < 1e-9, "midpoint aperture {mid}");
        assert_eq!(t.aperture(1100), 0.5);
        assert_eq!(t.aperture(5000), 0.5, "saturates at A_max");
    }

    #[test]
    fn zero_target_drains_at_max_aperture() {
        let t = ThresholdTable::try_new(0, 0.1, 0.5, 256, 8).expect("valid controller parameters");
        assert_eq!(t.aperture(1), 0.5);
        // With a zero target the ranges are 1 line wide: any size beyond the
        // table saturates at the c·A_max threshold.
        assert_eq!(t.threshold(9), t.threshold(u64::MAX));
        assert_eq!(t.threshold(u64::MAX), Some(128));
    }

    #[test]
    fn demote_only_when_over_target() {
        let mut s = state(100);
        s.actual = 100;
        // At target: never demote, regardless of age.
        assert!(!s.should_demote_ts(s.lru.current().wrapping_sub(200)));
        s.actual = 101;
        // Over target: demote lines older than the keep window (128).
        assert!(s.should_demote_ts(s.lru.current().wrapping_sub(200)));
        assert!(!s.should_demote_ts(s.lru.current()));
    }

    #[test]
    fn setpoint_tracks_timestamp_advances() {
        let mut s = state(64);
        s.actual = 64;
        let w0 = s.keep_window();
        // 16-line period for a 64-line partition is 4 accesses... drive
        // enough accesses to advance the timestamp several times.
        for _ in 0..64 {
            s.on_access();
        }
        assert_eq!(
            s.keep_window(),
            w0,
            "window must stay constant across TS advances"
        );
    }

    #[test]
    fn feedback_widens_on_too_many() {
        let mut s = state(100);
        s.actual = 150; // far over target: threshold = 128 of 256
        let w0 = s.keep_window();
        // Demote every candidate: way over any threshold.
        let mut fb = None;
        for _ in 0..256 {
            fb = s.note_candidate(true, 256, 7);
        }
        assert_eq!(fb, Some(Feedback::TooMany));
        assert_eq!(s.keep_window(), w0 + 1, "keep window must widen");
        assert_eq!((s.cands_seen, s.cands_demoted), (0, 0), "meters reset");
    }

    #[test]
    fn feedback_tightens_on_too_few() {
        let mut s = state(100);
        s.actual = 150;
        let w0 = s.keep_window();
        let mut fb = None;
        for _ in 0..256 {
            fb = s.note_candidate(false, 256, 7);
        }
        assert_eq!(fb, Some(Feedback::TooFew));
        assert_eq!(s.keep_window(), w0 - 1);
    }

    #[test]
    fn feedback_idle_below_target() {
        let mut s = state(100);
        s.actual = 50;
        let w0 = s.keep_window();
        let mut fb = None;
        for _ in 0..256 {
            fb = s.note_candidate(false, 256, 7);
        }
        assert_eq!(fb, Some(Feedback::OnTarget));
        assert_eq!(s.keep_window(), w0);
    }

    #[test]
    fn rrpv_setpoint_moves_oppositely() {
        let mut s = state(100);
        s.actual = 150;
        let r0 = s.setpoint_rrpv;
        for _ in 0..256 {
            s.note_candidate(true, 256, 7);
        }
        assert_eq!(
            s.setpoint_rrpv,
            r0 + 1,
            "too many demotions raise the RRPV bar"
        );
        for _ in 0..512 {
            s.note_candidate(false, 256, 7);
        }
        assert!(s.setpoint_rrpv < r0 + 1);
    }

    #[test]
    fn window_saturates() {
        let mut s = state(100);
        s.actual = 200;
        // Tighten for a long time: window must stop at 0, not wrap.
        for _ in 0..(300 * 256) {
            s.note_candidate(false, 256, 7);
        }
        assert_eq!(s.keep_window(), 0);
        // Widen for a long time: window stops at 255.
        for _ in 0..(300 * 256) {
            s.note_candidate(true, 256, 7);
        }
        assert_eq!(s.keep_window(), 255);
    }
}
