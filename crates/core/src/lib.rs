//! Vantage: scalable and efficient fine-grain cache partitioning.
//!
//! A faithful reimplementation of the partitioning scheme from
//! *Sanchez & Kozyrakis, "Vantage: Scalable and Efficient Fine-Grain Cache
//! Partitioning", ISCA 2011*:
//!
//! * [`model`] — the paper's analytical models (associativity CDFs,
//!   managed-region distributions, aperture/stability math and the
//!   unmanaged-region sizing rule; Eqs. 1-9, Figs. 1, 2 and 5).
//! * [`controller`] — the per-partition controller state of Fig. 4:
//!   feedback-based aperture control and setpoint-based demotions, driven by
//!   the demotion thresholds lookup table (Fig. 3).
//! * [`llc`] — [`VantageLlc`], the full cache: managed/unmanaged region
//!   division, churn-based management, promotion/demotion flows and victim
//!   selection over any `vantage-cache` array (zcache, skew-associative,
//!   hashed set-associative, or the idealized random-candidates array).
//!
//! # How Vantage works, in five sentences
//!
//! Highly-associative arrays with good hashing yield replacement candidates
//! that look like a uniform random sample of the cache, so the probability
//! of evicting a line the replacement policy ranks in the bottom `x` of its
//! partition is `x^R` — negligible for real `R`. Vantage therefore does not
//! restrict placement at all: it tags each line with a partition ID and
//! keeps each partition's size constant by matching its demotion rate to its
//! insertion rate (churn). Demotions move lines into a small *unmanaged
//! region* that absorbs (nearly) all evictions, so partitions borrow from it
//! rather than from each other, eliminating inter-partition interference.
//! The demotion rate is set by a per-partition *aperture* that a negative
//! feedback loop steers from the partition's size overshoot, and is applied
//! without tracking eviction priorities by comparing each candidate's coarse
//! timestamp against a *setpoint*. All of it costs ~6 extra tag bits and
//! ~256 bits of state per partition.
//!
//! # Example
//!
//! ```
//! use vantage::{VantageConfig, VantageLlc};
//! use vantage_cache::ZArray;
//! use vantage_partitioning::{AccessRequest, Llc, PartitionId};
//!
//! // A Z4/52 zcache with 32 fine-grain partitions — the paper's
//! // large-scale configuration (needs only 4 ways).
//! let array = ZArray::new(32 * 1024, 4, 52, 0xBEEF);
//! let mut llc = VantageLlc::try_new(Box::new(array), 32, VantageConfig::default(), 1).expect("valid Vantage config");
//!
//! // Line-granularity targets.
//! let mut targets: Vec<u64> = (0..32).map(|i| 512 + i * 32).collect();
//! let spare = 32 * 1024 - targets.iter().sum::<u64>();
//! targets[0] += spare;
//! llc.set_targets(&targets);
//!
//! llc.access(AccessRequest::read(PartitionId::from_index(5), 0xABC.into()));
//! assert_eq!(llc.stats().misses[5], 1);
//! ```

pub mod config;
pub mod controller;
pub mod engine;
pub mod error;
pub mod fault;
pub mod llc;
pub mod model;
pub mod overhead;
pub mod resize;

pub use config::{DemotionMode, RankMode, VantageConfig};
pub use controller::{PartitionState, ThresholdTable};
pub use engine::{Engine, EngineKind};
pub use error::{ConfigError, VantageError};
pub use fault::{Fault, FaultKind, FaultPlan};
pub use llc::{PrioritySample, ScrubReport, VantageLlc, VantageStats, UNMANAGED};
pub use overhead::{state_overhead, StateOverhead};
pub use resize::TargetRamp;
pub use vantage_telemetry as telemetry;
