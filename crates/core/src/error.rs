//! Typed errors for configuration and cache construction.
//!
//! Everything user-supplied — controller parameters, partition counts,
//! target vectors — is validated through `try_*` constructors returning
//! these types; the original panicking entry points remain as thin wrappers
//! for callers with trusted inputs (tests, fixed experiment configs). The
//! `Display` messages deliberately contain the same key phrases the old
//! asserts used, so `#[should_panic(expected = ...)]` tests and log
//! scrapers keep working.

use std::error::Error;
use std::fmt;

/// An out-of-domain [`VantageConfig`](crate::VantageConfig) or
/// [`ThresholdTable`](crate::ThresholdTable) parameter.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `u` outside `(0, 1)`.
    UnmanagedFraction(f64),
    /// `A_max` outside `(0, 1]`.
    AMax(f64),
    /// Non-positive feedback slack.
    Slack(f64),
    /// Thresholds table entry count outside `1..=64`.
    TableEntries(usize),
    /// Candidate metering period too small (`c < 8`).
    CandsPeriod(u32),
    /// RRPV width outside `1..=7`.
    RrpvBits(u8),
    /// Zero replacement candidates (`R == 0`) in the sizing rule.
    CandidateCount(u32),
    /// Managed-eviction probability outside `(0, 1]` in the sizing rule.
    EvictionProbability(f64),
    /// The §4.3 sizing rule asks for the whole cache (or more) to be
    /// unmanaged: the isolation requirements cannot be met on this array.
    NoManagedSpace {
        /// The unmanaged fraction the sizing rule produced (`>= 1`).
        unmanaged_fraction: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnmanagedFraction(u) => {
                write!(f, "unmanaged fraction must be in (0, 1), got {u}")
            }
            Self::AMax(a) => write!(f, "A_max must be in (0, 1], got {a}"),
            Self::Slack(s) => write!(f, "slack must be positive, got {s}"),
            Self::TableEntries(n) => write!(f, "1..=64 table entries, got {n}"),
            Self::CandsPeriod(c) => {
                write!(
                    f,
                    "candidate period too small to meter (c = {c}, need >= 8)"
                )
            }
            Self::RrpvBits(b) => write!(f, "RRPV width must be 1..=7, got {b}"),
            Self::CandidateCount(r) => write!(f, "candidate count must be non-zero, got {r}"),
            Self::EvictionProbability(p) => write!(f, "P_ev must be in (0, 1], got {p}"),
            Self::NoManagedSpace { unmanaged_fraction } => {
                write!(
                    f,
                    "requirements leave no managed space (u = {unmanaged_fraction})"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// A [`VantageLlc`](crate::VantageLlc) construction, retargeting or
/// accounting failure.
#[derive(Clone, Debug, PartialEq)]
pub enum VantageError {
    /// An invalid controller configuration.
    Config(ConfigError),
    /// Partition count outside `1..u16::MAX` (one ID is reserved for the
    /// unmanaged region).
    PartitionCount(usize),
    /// The idealized perfect-aperture controller combined with RRIP
    /// ranking (it is defined for LRU priorities only).
    PerfectApertureNeedsLru,
    /// A target vector whose length does not match the partition count.
    TargetsLength {
        /// Partitions in the cache.
        expected: usize,
        /// Targets supplied.
        got: usize,
    },
    /// Targets summing to more lines than the array has.
    TargetsExceedCapacity {
        /// Sum of the requested targets.
        total: u64,
        /// Array capacity in lines.
        capacity: u64,
    },
    /// An internal accounting invariant does not hold (see
    /// [`VantageLlc::invariants`](crate::VantageLlc::invariants)).
    Invariant(String),
}

impl fmt::Display for VantageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => e.fmt(f),
            Self::PartitionCount(n) => {
                write!(
                    f,
                    "bad partition count: {n} (need 1..65535, one ID is reserved)"
                )
            }
            Self::PerfectApertureNeedsLru => {
                f.write_str("perfect-aperture mode requires LRU ranking")
            }
            Self::TargetsLength { expected, got } => {
                write!(
                    f,
                    "one target per partition: have {expected} partitions, got {got} targets"
                )
            }
            Self::TargetsExceedCapacity { total, capacity } => {
                write!(f, "targets ({total}) exceed capacity ({capacity})")
            }
            Self::Invariant(what) => write!(f, "invariant violated: {what}"),
        }
    }
}

impl Error for VantageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for VantageError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_assert_phrases() {
        // These substrings are load-bearing: `#[should_panic(expected)]`
        // tests and downstream log matching rely on them.
        assert!(ConfigError::UnmanagedFraction(1.5)
            .to_string()
            .contains("unmanaged fraction"));
        assert!(ConfigError::AMax(0.0).to_string().contains("A_max"));
        assert!(ConfigError::NoManagedSpace {
            unmanaged_fraction: 1.2
        }
        .to_string()
        .contains("no managed space"));
        assert!(VantageError::TargetsExceedCapacity {
            total: 10,
            capacity: 5
        }
        .to_string()
        .contains("exceed capacity"));
        assert!(VantageError::PartitionCount(0)
            .to_string()
            .contains("bad partition count"));
    }

    #[test]
    fn config_errors_nest_as_source() {
        let e = VantageError::from(ConfigError::Slack(-1.0));
        assert!(e.source().is_some());
        assert_eq!(e.to_string(), ConfigError::Slack(-1.0).to_string());
    }
}
