//! Hardware state-overhead accounting (Fig. 4, §4.3 "Implementation
//! costs").
//!
//! Vantage's cost is a few tag bits plus per-partition registers:
//!
//! * **Tag state**: a partition ID per line (`⌈log2(P+1)⌉` bits — one extra
//!   ID for the unmanaged region) and the 8-bit coarse timestamp the
//!   baseline zcache already carries for LRU.
//! * **Per-partition state**: the Fig. 4 register file — `CurrentTS`,
//!   `SetpointTS`, `AccessCounter`, `ActualSize`, `TargetSize`,
//!   `CandsSeen`, `CandsDemoted` and the 8-entry demotion thresholds table
//!   — 256 bits per partition.
//!
//! The paper's headline: on an 8 MB cache with 32 partitions, about 1.5%
//! state overhead overall.

/// Size-and-overhead breakdown for a Vantage deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct StateOverhead {
    /// Cache lines.
    pub lines: u64,
    /// Partitions supported.
    pub partitions: u32,
    /// Partition-ID bits per tag (includes the unmanaged-region ID).
    pub partition_id_bits: u32,
    /// Timestamp bits per tag (present in the LRU baseline too).
    pub timestamp_bits: u32,
    /// Added tag bits across the cache (partition IDs only).
    pub added_tag_bits: u64,
    /// Controller register bits across all partitions.
    pub controller_bits: u64,
    /// Total added bits.
    pub total_added_bits: u64,
    /// Baseline state: data + nominal tags (+ timestamp) per line.
    pub baseline_bits: u64,
    /// `total_added_bits / baseline_bits`.
    pub overhead_fraction: f64,
}

/// Per-partition controller state in bits, per Fig. 4:
/// `CurrentTS(8) + SetpointTS(8) + AccessCounter(16) + ActualSize(16) +
/// TargetSize(16) + CandsSeen(8) + CandsDemoted(8) + 8×(ThrSize(16) +
/// ThrDems(8)) = 272` — the paper rounds to "about 256 bits".
pub const PARTITION_STATE_BITS: u64 = 8 + 8 + 16 + 16 + 16 + 8 + 8 + 8 * (16 + 8);

/// Computes the Vantage state overhead for a cache of `lines` 64-byte
/// lines supporting `partitions` partitions, assuming `tag_bits`-bit
/// nominal tags (the paper uses 64).
///
/// # Panics
///
/// Panics if `lines` or `partitions` is zero.
///
/// # Example
///
/// The paper's headline configuration — 8 MB, 32 partitions:
///
/// ```
/// use vantage::overhead::state_overhead;
///
/// let o = state_overhead(128 * 1024, 32, 64);
/// assert_eq!(o.partition_id_bits, 6); // 33 IDs
/// // "around 1.5% state overhead overall"
/// assert!(o.overhead_fraction > 0.010 && o.overhead_fraction < 0.020);
/// ```
pub fn state_overhead(lines: u64, partitions: u32, tag_bits: u32) -> StateOverhead {
    assert!(lines > 0, "cache must have lines");
    assert!(partitions > 0, "need at least one partition");
    // IDs 0..=partitions (one extra for the unmanaged region): the widest
    // value is `partitions` itself, so its bit length suffices.
    let partition_id_bits = u32::BITS - partitions.leading_zeros();
    let timestamp_bits = 8u32;
    let added_tag_bits = lines * u64::from(partition_id_bits);
    let controller_bits = u64::from(partitions) * PARTITION_STATE_BITS;
    let total_added_bits = added_tag_bits + controller_bits;
    // Baseline per line: 512 data bits + tag + coherence/valid (~4) + the
    // 8-bit timestamp the LRU zcache already has.
    let baseline_bits = lines * (512 + u64::from(tag_bits) + 4 + u64::from(timestamp_bits));
    StateOverhead {
        lines,
        partitions,
        partition_id_bits,
        timestamp_bits,
        added_tag_bits,
        controller_bits,
        total_added_bits,
        baseline_bits,
        overhead_fraction: total_added_bits as f64 / baseline_bits as f64,
    }
}

impl std::fmt::Display for StateOverhead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} lines, {} partitions: {}b partition IDs/tag, {} controller bits/partition",
            self.lines, self.partitions, self.partition_id_bits, PARTITION_STATE_BITS
        )?;
        write!(
            f,
            "added {} KB over a {} KB baseline = {:.2}% overhead",
            self.total_added_bits / 8 / 1024,
            self.baseline_bits / 8 / 1024,
            100.0 * self.overhead_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_configuration() {
        // 8 MB / 64 B = 131072 lines, 32 partitions, 64-bit nominal tags.
        let o = state_overhead(128 * 1024, 32, 64);
        assert_eq!(o.partition_id_bits, 6, "33 identifiers need 6 bits");
        // §4.3: tag adder is "a 1.01% increase"; total "around 1.5%"
        // counting 4 banks' register files — we land in the same band.
        assert!(
            o.overhead_fraction > 0.009 && o.overhead_fraction < 0.02,
            "overall overhead {:.3}%",
            100.0 * o.overhead_fraction
        );
        // Controller state is tiny: 32 × 272b ≈ 1.1 KB per bank.
        assert!(o.controller_bits / 8 <= 2 * 1024);
    }

    #[test]
    fn id_bits_scale_with_partitions() {
        assert_eq!(state_overhead(1024, 1, 64).partition_id_bits, 1); // 2 IDs
        assert_eq!(state_overhead(1024, 3, 64).partition_id_bits, 2); // 4 IDs
        assert_eq!(state_overhead(1024, 7, 64).partition_id_bits, 3); // 8 IDs
        assert_eq!(state_overhead(1024, 8, 64).partition_id_bits, 4); // 9 IDs
        assert_eq!(state_overhead(1024, 63, 64).partition_id_bits, 6);
        assert_eq!(state_overhead(1024, 64, 64).partition_id_bits, 7);
    }

    #[test]
    fn overhead_independent_of_cache_size_for_tags() {
        // Tag overhead is per line, so the fraction is ~constant in size;
        // controller state amortizes away on big caches.
        let small = state_overhead(32 * 1024, 32, 64);
        let big = state_overhead(1024 * 1024, 32, 64);
        assert!(big.overhead_fraction <= small.overhead_fraction);
        assert!((big.overhead_fraction - small.overhead_fraction).abs() < 0.002);
    }

    #[test]
    fn display_is_informative() {
        let s = state_overhead(128 * 1024, 32, 64).to_string();
        assert!(s.contains("overhead"));
        assert!(s.contains("32 partitions"));
    }
}
