//! Deterministic fault injection for the Vantage stack.
//!
//! Vantage's correctness story rests on a small amount of state: ~6 tag bits
//! per line and ~256 bits of controller registers per partition (Fig. 4).
//! This module models what happens when that state is corrupted — by soft
//! errors in tag arrays, stuck register bits, or adversarial workloads — so
//! the recovery paths ([`VantageLlc::scrub`](crate::VantageLlc::scrub), the
//! corrupted-PID fallbacks in the hit/miss paths and the
//! [`invariants`](crate::VantageLlc::invariants) checker) can be exercised
//! reproducibly.
//!
//! A [`FaultPlan`] is a seeded schedule: polled with the cache's access
//! count, it periodically emits a [`Fault`] drawn from the enabled classes.
//! Faults carry raw random payloads (frame/partition selectors, bit
//! indices); [`VantageLlc::inject`](crate::VantageLlc::inject) maps them
//! onto live state, so plans are independent of any particular cache
//! geometry and a given seed always produces the same fault sequence.
//!
//! ```
//! use vantage::fault::{Fault, FaultKind, FaultPlan};
//!
//! let mut plan = FaultPlan::new(42, 1000, &[FaultKind::TagPart]);
//! assert_eq!(plan.poll(999), None);
//! let fault = plan.poll(1000).expect("due");
//! assert!(matches!(fault, Fault::TagPartFlip { .. }));
//! // Deterministic: an identical plan produces the identical fault.
//! let mut again = FaultPlan::new(42, 1000, &[FaultKind::TagPart]);
//! assert_eq!(again.poll(1234), Some(fault));
//! ```

/// One concrete fault. Selector fields (`frame_sel`, `part_sel`) are raw
/// random words that the injection point reduces onto live state (modulo the
/// frame/partition count), so a `Fault` is meaningful for any cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Flip one bit of an occupied frame's partition-ID tag. Low bits
    /// migrate the line between valid partitions; high bits usually produce
    /// an out-of-range PID that the access paths must tolerate.
    TagPartFlip {
        /// Raw frame selector (reduced modulo the frame count, then scanned
        /// forward to the next occupied frame).
        frame_sel: u64,
        /// Bit index into the 16-bit PID (taken modulo 16).
        bit: u8,
    },
    /// Flip one bit of an occupied frame's coarse timestamp (or RRPV),
    /// making the line appear older or younger than it is.
    TagTsFlip {
        /// Raw frame selector.
        frame_sel: u64,
        /// Bit index into the 8-bit stamp (taken modulo 8).
        bit: u8,
    },
    /// Flip one bit of a partition's `ActualSize` register. The feedback
    /// controller then steers against a fictitious size until a scrub
    /// recomputes the register from the tag array.
    ActualSizeCorrupt {
        /// Raw partition selector (reduced modulo the partition count).
        part_sel: u64,
        /// Bit index into the size register (taken modulo 20, so the
        /// corruption stays within plausible cache-size magnitudes).
        bit: u8,
    },
    /// Overwrite a partition's `SetpointTS` (and setpoint RRPV) with an
    /// arbitrary value — modelling a stuck or glitched setpoint register.
    /// The keep window may wedge fully open or fully closed.
    SetpointCorrupt {
        /// Raw partition selector.
        part_sel: u64,
        /// The value forced into the setpoint register.
        value: u8,
    },
    /// Overwrite a partition's candidate meters (`CandsSeen`,
    /// `CandsDemoted`) with arbitrary values, desynchronizing the feedback
    /// period.
    MeterCorrupt {
        /// Raw partition selector.
        part_sel: u64,
        /// Forced `CandsSeen` value.
        seen: u32,
        /// Forced `CandsDemoted` value.
        demoted: u32,
    },
    /// An adversarial churn burst: the workload harness should stream
    /// `accesses` distinct lines through the selected partition. This is a
    /// workload-level fault —
    /// [`VantageLlc::inject`](crate::VantageLlc::inject) ignores it (and
    /// returns `false`); drivers are expected to synthesize the burst.
    ChurnBurst {
        /// Raw partition selector.
        part_sel: u64,
        /// Length of the burst in accesses.
        accesses: u64,
    },
}

impl Fault {
    /// The class this fault belongs to.
    pub fn kind(&self) -> FaultKind {
        match self {
            Fault::TagPartFlip { .. } => FaultKind::TagPart,
            Fault::TagTsFlip { .. } => FaultKind::TagTs,
            Fault::ActualSizeCorrupt { .. } => FaultKind::ActualSize,
            Fault::SetpointCorrupt { .. } => FaultKind::Setpoint,
            Fault::MeterCorrupt { .. } => FaultKind::Meters,
            Fault::ChurnBurst { .. } => FaultKind::ChurnBurst,
        }
    }
}

/// A fault class a [`FaultPlan`] can draw from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Partition-ID tag bit flips.
    TagPart,
    /// Coarse-timestamp tag bit flips.
    TagTs,
    /// `ActualSize` register corruption.
    ActualSize,
    /// `SetpointTS` register corruption.
    Setpoint,
    /// Candidate-meter corruption.
    Meters,
    /// Adversarial churn bursts (workload-level).
    ChurnBurst,
}

impl FaultKind {
    /// Every fault class.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TagPart,
        FaultKind::TagTs,
        FaultKind::ActualSize,
        FaultKind::Setpoint,
        FaultKind::Meters,
        FaultKind::ChurnBurst,
    ];

    /// The classes that corrupt state [`VantageLlc::inject`](crate::VantageLlc::inject)
    /// can apply directly (everything except workload-level churn bursts).
    pub const INJECTABLE: [FaultKind; 5] = [
        FaultKind::TagPart,
        FaultKind::TagTs,
        FaultKind::ActualSize,
        FaultKind::Setpoint,
        FaultKind::Meters,
    ];
}

/// SplitMix64: a tiny, self-contained generator so fault schedules do not
/// depend on (and cannot drift with) the workload RNG streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seeded fault schedule.
///
/// The plan fires one fault every `period` accesses (the first at access
/// `period`), cycling its RNG once per fault, so the sequence of faults is a
/// pure function of `(seed, enabled kinds)` regardless of when or how often
/// [`poll`](Self::poll) is called.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rng: u64,
    period: u64,
    next_at: u64,
    kinds: Vec<FaultKind>,
    log: Vec<(u64, Fault)>,
}

impl FaultPlan {
    /// Creates a plan injecting one fault from `kinds` every `period`
    /// accesses. An empty `kinds` slice or a zero `period` yields a plan
    /// that never fires.
    pub fn new(seed: u64, period: u64, kinds: &[FaultKind]) -> Self {
        Self {
            rng: seed,
            period,
            next_at: period,
            kinds: kinds.to_vec(),
            log: Vec::new(),
        }
    }

    /// Polls the schedule with the cache's current access count; returns
    /// the due fault, if any. At most one fault is emitted per call (missed
    /// slots collapse into one), and every emitted fault is recorded in
    /// [`log`](Self::log).
    pub fn poll(&mut self, accesses: u64) -> Option<Fault> {
        if self.period == 0 || self.kinds.is_empty() || accesses < self.next_at {
            return None;
        }
        while self.next_at <= accesses {
            self.next_at += self.period;
        }
        let fault = self.draw();
        self.log.push((accesses, fault));
        Some(fault)
    }

    /// Every fault emitted so far, with the access count it fired at.
    pub fn log(&self) -> &[(u64, Fault)] {
        &self.log
    }

    fn draw(&mut self) -> Fault {
        let kind = self.kinds[(splitmix64(&mut self.rng) % self.kinds.len() as u64) as usize];
        let a = splitmix64(&mut self.rng);
        let b = splitmix64(&mut self.rng);
        match kind {
            FaultKind::TagPart => Fault::TagPartFlip {
                frame_sel: a,
                bit: (b % 16) as u8,
            },
            FaultKind::TagTs => Fault::TagTsFlip {
                frame_sel: a,
                bit: (b % 8) as u8,
            },
            FaultKind::ActualSize => Fault::ActualSizeCorrupt {
                part_sel: a,
                bit: (b % 20) as u8,
            },
            FaultKind::Setpoint => Fault::SetpointCorrupt {
                part_sel: a,
                value: b as u8,
            },
            FaultKind::Meters => Fault::MeterCorrupt {
                part_sel: a,
                seen: (b as u32) & 0xFFFF,
                demoted: ((b >> 32) as u32) & 0xFFFF,
            },
            FaultKind::ChurnBurst => Fault::ChurnBurst {
                part_sel: a,
                accesses: 1_000 + b % 9_000,
            },
        }
    }
}

/// Numeric tags for [`FaultKind`] in the snapshot encoding.
fn kind_tag(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::TagPart => 0,
        FaultKind::TagTs => 1,
        FaultKind::ActualSize => 2,
        FaultKind::Setpoint => 3,
        FaultKind::Meters => 4,
        FaultKind::ChurnBurst => 5,
    }
}

fn kind_from_tag(tag: u8) -> Option<FaultKind> {
    FaultKind::ALL.get(tag as usize).copied()
}

impl vantage_snapshot::Snapshot for FaultPlan {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64(self.rng);
        enc.put_u64(self.period);
        enc.put_u64(self.next_at);
        enc.put_u64(self.kinds.len() as u64);
        for &k in &self.kinds {
            enc.put_u8(kind_tag(k));
        }
        enc.put_u64(self.log.len() as u64);
        for &(at, fault) in &self.log {
            enc.put_u64(at);
            enc.put_u8(kind_tag(fault.kind()));
            match fault {
                Fault::TagPartFlip { frame_sel, bit } | Fault::TagTsFlip { frame_sel, bit } => {
                    enc.put_u64(frame_sel);
                    enc.put_u8(bit);
                }
                Fault::ActualSizeCorrupt { part_sel, bit } => {
                    enc.put_u64(part_sel);
                    enc.put_u8(bit);
                }
                Fault::SetpointCorrupt { part_sel, value } => {
                    enc.put_u64(part_sel);
                    enc.put_u8(value);
                }
                Fault::MeterCorrupt {
                    part_sel,
                    seen,
                    demoted,
                } => {
                    enc.put_u64(part_sel);
                    enc.put_u32(seen);
                    enc.put_u32(demoted);
                }
                Fault::ChurnBurst { part_sel, accesses } => {
                    enc.put_u64(part_sel);
                    enc.put_u64(accesses);
                }
            }
        }
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let rng = dec.take_u64()?;
        let period = dec.take_u64()?;
        let next_at = dec.take_u64()?;
        let nkinds = dec.take_len()?;
        let mut kinds = Vec::with_capacity(nkinds);
        for _ in 0..nkinds {
            let Some(k) = kind_from_tag(dec.take_u8()?) else {
                return Err(dec.invalid("unknown fault kind tag"));
            };
            kinds.push(k);
        }
        let nlog = dec.take_len()?;
        // Each log entry occupies at least 8 + 1 + 8 + 1 bytes.
        if nlog > dec.remaining() / 18 {
            return Err(dec.invalid("fault-log length exceeds payload"));
        }
        let mut log = Vec::with_capacity(nlog);
        for _ in 0..nlog {
            let at = dec.take_u64()?;
            let Some(kind) = kind_from_tag(dec.take_u8()?) else {
                return Err(dec.invalid("unknown fault kind tag in log"));
            };
            let fault = match kind {
                FaultKind::TagPart => Fault::TagPartFlip {
                    frame_sel: dec.take_u64()?,
                    bit: dec.take_u8()?,
                },
                FaultKind::TagTs => Fault::TagTsFlip {
                    frame_sel: dec.take_u64()?,
                    bit: dec.take_u8()?,
                },
                FaultKind::ActualSize => Fault::ActualSizeCorrupt {
                    part_sel: dec.take_u64()?,
                    bit: dec.take_u8()?,
                },
                FaultKind::Setpoint => Fault::SetpointCorrupt {
                    part_sel: dec.take_u64()?,
                    value: dec.take_u8()?,
                },
                FaultKind::Meters => Fault::MeterCorrupt {
                    part_sel: dec.take_u64()?,
                    seen: dec.take_u32()?,
                    demoted: dec.take_u32()?,
                },
                FaultKind::ChurnBurst => Fault::ChurnBurst {
                    part_sel: dec.take_u64()?,
                    accesses: dec.take_u64()?,
                },
            };
            log.push((at, fault));
        }
        self.rng = rng;
        self.period = period;
        self.next_at = next_at;
        self.kinds = kinds;
        self.log = log;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        let mk = || FaultPlan::new(0xDEAD, 500, &FaultKind::ALL);
        let (mut a, mut b) = (mk(), mk());
        for acc in (0..20_000u64).step_by(137) {
            assert_eq!(a.poll(acc), b.poll(acc));
        }
        assert_eq!(a.log(), b.log());
        assert!(!a.log().is_empty(), "plan never fired");
    }

    #[test]
    fn fires_once_per_period() {
        let mut plan = FaultPlan::new(7, 100, &[FaultKind::Setpoint]);
        let fired: Vec<u64> = (0..=1000u64)
            .filter(|&acc| plan.poll(acc).is_some())
            .collect();
        assert_eq!(
            fired,
            vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
        );
    }

    #[test]
    fn missed_slots_collapse() {
        // Polling sparsely must not queue up a backlog of faults.
        let mut plan = FaultPlan::new(7, 100, &[FaultKind::Meters]);
        assert!(plan.poll(950).is_some());
        assert!(plan.poll(999).is_none(), "next slot is 1000");
        assert!(plan.poll(1000).is_some());
    }

    #[test]
    fn disabled_plans_never_fire() {
        let mut empty = FaultPlan::new(7, 100, &[]);
        let mut zero = FaultPlan::new(7, 0, &FaultKind::ALL);
        for acc in 0..10_000 {
            assert_eq!(empty.poll(acc), None);
            assert_eq!(zero.poll(acc), None);
        }
    }

    #[test]
    fn draws_cover_all_enabled_kinds() {
        let mut plan = FaultPlan::new(3, 1, &FaultKind::ALL);
        let mut seen = [false; 6];
        for acc in 1..=200u64 {
            if let Some(f) = plan.poll(acc) {
                seen[FaultKind::ALL.iter().position(|&k| k == f.kind()).unwrap()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "kinds drawn: {seen:?}");
    }

    #[test]
    fn payload_bit_indices_are_in_range() {
        let mut plan = FaultPlan::new(11, 1, &FaultKind::INJECTABLE);
        for acc in 1..=500u64 {
            match plan.poll(acc) {
                Some(Fault::TagPartFlip { bit, .. }) => assert!(bit < 16),
                Some(Fault::TagTsFlip { bit, .. }) => assert!(bit < 8),
                Some(Fault::ActualSizeCorrupt { bit, .. }) => assert!(bit < 20),
                _ => {}
            }
        }
    }
}
