//! Execution engines: one API over the serial, batched and pipelined ways
//! of driving an [`Llc`] through a request stream.
//!
//! The repository grew three drive styles organically:
//!
//! * **Serial** — one [`Llc::access`] call per request; the timing-faithful
//!   style the cycle-level simulator needs (each outcome feeds back into
//!   core timing before the next request exists).
//! * **Batched** — [`Llc::access_batch`] over fixed driver chunks; banked
//!   caches regroup each chunk by bank and amortize tag walks with
//!   prefetch pipelining.
//! * **Pipelined** — [`PipelinedBankedLlc`]: requests stream into per-bank
//!   ring buffers and are consumed in long bank-major runs, with the only
//!   true barrier at the epoch boundary.
//!
//! [`EngineKind`] names the style (config files, `--engine` flags);
//! [`Engine`] borrows a cache and drives windows of requests through the
//! chosen style behind one `drive`/`barrier` surface, so harnesses and
//! simulators select an engine at runtime without forking their loops. All
//! three engines produce bit-identical outcomes, statistics and partition
//! sizes on the same trace — the engine choice is a throughput/fidelity
//! trade, never a simulation-results change.

use std::fmt;

use vantage_partitioning::{AccessOutcome, AccessRequest, Llc, PipelinedBankedLlc};

/// Names an execution engine; the unit of selection for config knobs and
/// `--engine` command-line flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// One `access` call per request (timing-faithful; the simulator's
    /// event loop interleaves core timing between requests).
    Serial,
    /// `access_batch` over fixed driver chunks (the established
    /// throughput path for banked caches).
    #[default]
    Batched,
    /// Ring-buffered producer/consumer with bank-major drains
    /// ([`PipelinedBankedLlc`]); barriers only at epoch boundaries.
    Pipelined,
}

impl EngineKind {
    /// Every engine, in documentation order.
    pub const ALL: [EngineKind; 3] = [Self::Serial, Self::Batched, Self::Pipelined];

    /// The flag/config spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::Serial => "serial",
            Self::Batched => "batched",
            Self::Pipelined => "pipelined",
        }
    }

    /// Parses a flag/config spelling (case-sensitive, as listed by
    /// [`EngineKind::ALL`]).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A borrowed cache plus the chosen way of driving requests through it.
///
/// `drive` appends outcomes in request order for every engine, so callers
/// digest or inspect them uniformly; `barrier` quiesces engines that queue
/// work (a no-op for serial/batched). Construct one per window or hold one
/// across a run — the engine owns no simulation state.
///
/// # Example
///
/// ```
/// use vantage::engine::{Engine, EngineKind};
/// use vantage_cache::SetAssocArray;
/// use vantage_partitioning::{AccessRequest, BaselineLlc, Llc, PartitionId, RankPolicy};
///
/// let mut llc = BaselineLlc::try_new(
///     Box::new(SetAssocArray::hashed(1024, 16, 1)),
///     1,
///     RankPolicy::Lru,
/// ).expect("valid baseline geometry");
/// let reqs: Vec<AccessRequest> = (0..100)
///     .map(|i| AccessRequest::read(PartitionId::from_index(0), vantage_cache::LineAddr(i)))
///     .collect();
/// let mut out = Vec::new();
/// let mut eng = Engine::Batched { llc: &mut llc, chunk: 32 };
/// eng.drive(&reqs, &mut out);
/// eng.barrier();
/// assert_eq!(out.len(), 100);
/// assert_eq!(eng.kind(), EngineKind::Batched);
/// ```
pub enum Engine<'a> {
    /// Per-access serial drive over any cache.
    Serial(&'a mut dyn Llc),
    /// Chunked `access_batch` drive over any cache (`chunk` = 0 serves the
    /// whole window in one call).
    Batched {
        /// The driven cache.
        llc: &'a mut dyn Llc,
        /// Requests per `access_batch` call (0 = whole window).
        chunk: usize,
    },
    /// Ring-buffered drive over the pipelined banked engine.
    Pipelined(&'a mut PipelinedBankedLlc),
}

impl Engine<'_> {
    /// Which engine this is.
    pub fn kind(&self) -> EngineKind {
        match self {
            Self::Serial(_) => EngineKind::Serial,
            Self::Batched { .. } => EngineKind::Batched,
            Self::Pipelined(_) => EngineKind::Pipelined,
        }
    }

    /// Serves a window of requests through the engine's native path,
    /// appending outcomes to `out` in request order.
    pub fn drive(&mut self, reqs: &[AccessRequest], out: &mut Vec<AccessOutcome>) {
        match self {
            Self::Serial(llc) => {
                out.reserve(reqs.len());
                for &r in reqs {
                    out.push(llc.access(r));
                }
            }
            Self::Batched { llc, chunk } => {
                if *chunk == 0 {
                    llc.access_batch(reqs, out);
                } else {
                    for c in reqs.chunks(*chunk) {
                        llc.access_batch(c, out);
                    }
                }
            }
            Self::Pipelined(llc) => llc.access_batch(reqs, out),
        }
    }

    /// Quiesces the engine: after this, every driven request has been
    /// served and is visible to stats, snapshots and repartitioning. A
    /// no-op for engines that never queue (serial, batched).
    pub fn barrier(&mut self) {
        if let Self::Pipelined(llc) = self {
            llc.barrier();
        }
    }

    /// The driven cache, as the common trait object.
    pub fn llc_mut(&mut self) -> &mut dyn Llc {
        match self {
            Self::Serial(llc) => *llc,
            Self::Batched { llc, .. } => *llc,
            Self::Pipelined(llc) => *llc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_cache::{LineAddr, PartitionId, ZArray};
    use vantage_partitioning::{BankedLlc, BaselineLlc, RankPolicy};

    fn banks(n: usize) -> Vec<Box<dyn Llc>> {
        (0..n as u64)
            .map(|b| {
                Box::new(
                    BaselineLlc::try_new(Box::new(ZArray::new(256, 4, 16, b)), 2, RankPolicy::Lru)
                        .expect("valid baseline geometry"),
                ) as Box<dyn Llc>
            })
            .collect()
    }

    fn reqs(n: u64) -> Vec<AccessRequest> {
        (0..n)
            .map(|i| {
                AccessRequest::read(
                    PartitionId::from_index((i % 2) as usize),
                    LineAddr((i * 2654435761) % 1500),
                )
            })
            .collect()
    }

    #[test]
    fn kinds_parse_and_display_round_trip() {
        for k in EngineKind::ALL {
            assert_eq!(EngineKind::parse(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(EngineKind::parse("warp-drive"), None);
        assert_eq!(EngineKind::default(), EngineKind::Batched);
    }

    #[test]
    fn all_engines_agree_on_outcomes_and_stats() {
        let trace = reqs(10_000);
        let mut outs = Vec::new();
        let mut all_stats = Vec::new();
        for kind in EngineKind::ALL {
            let mut serial_llc;
            let mut batched_llc;
            let mut pipe_llc;
            let mut eng = match kind {
                EngineKind::Serial => {
                    serial_llc = BankedLlc::try_new(banks(4), 7).expect("valid bank set");
                    Engine::Serial(&mut serial_llc)
                }
                EngineKind::Batched => {
                    batched_llc = BankedLlc::try_new(banks(4), 7).expect("valid bank set");
                    Engine::Batched {
                        llc: &mut batched_llc,
                        chunk: 777,
                    }
                }
                EngineKind::Pipelined => {
                    pipe_llc = vantage_partitioning::PipelinedBankedLlc::try_new(banks(4), 7, 2)
                        .expect("valid bank set");
                    Engine::Pipelined(&mut pipe_llc)
                }
            };
            assert_eq!(eng.kind(), kind);
            let mut out = Vec::new();
            for window in trace.chunks(3001) {
                eng.drive(window, &mut out);
            }
            eng.barrier();
            let s = eng.llc_mut().stats_mut();
            all_stats.push((s.hits.clone(), s.misses.clone(), s.evictions));
            outs.push(out);
        }
        assert_eq!(outs[0], outs[1], "serial vs batched");
        assert_eq!(outs[0], outs[2], "serial vs pipelined");
        assert_eq!(all_stats[0], all_stats[1]);
        assert_eq!(all_stats[0], all_stats[2]);
    }

    #[test]
    fn batched_chunk_zero_serves_whole_window() {
        let trace = reqs(500);
        let mut llc = BankedLlc::try_new(banks(2), 3).expect("valid bank set");
        let mut eng = Engine::Batched {
            llc: &mut llc,
            chunk: 0,
        };
        let mut out = Vec::new();
        eng.drive(&trace, &mut out);
        assert_eq!(out.len(), 500);
    }
}
