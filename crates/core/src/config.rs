//! Vantage configuration.

use crate::error::ConfigError;
use crate::model::sizing;

/// How demotion decisions are made on each replacement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemotionMode {
    /// The practical controller (§4.2): a per-partition setpoint timestamp,
    /// adjusted every `cands_period` candidates against the demotion
    /// thresholds lookup table. This is real-hardware Vantage.
    Setpoint,
    /// The idealized controller the paper uses to validate its models
    /// (§6.2): feedback-based apertures (Eq. 7) applied with perfect
    /// knowledge of every candidate's eviction priority.
    PerfectAperture,
    /// The strawman of Fig. 2b: demote *exactly one* line per eviction —
    /// the oldest candidate among over-target partitions — instead of
    /// demoting on average. Sizes still hold, but demotions hit much
    /// younger lines (worse associativity); implemented as an ablation.
    ExactlyOne,
}

/// The base replacement policy ranking lines within partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankMode {
    /// Coarse-timestamp LRU with 8-bit per-partition timestamps (§4.2).
    Lru,
    /// RRIP re-reference prediction values; the per-partition setpoint
    /// becomes a setpoint RRPV (§6.2, "Vantage-DRRIP"). `bits` is the RRPV
    /// width (the paper uses 3).
    Rrip {
        /// RRPV width in bits.
        bits: u8,
    },
}

/// Configuration of a [`VantageLlc`](crate::VantageLlc).
///
/// The defaults are the configuration used for all of the paper's
/// throughput results (§6.1): `u = 5%`, `A_max = 0.5`, `slack = 10%`,
/// LRU ranking, setpoint-based demotions with `c = 256` candidates, and an
/// 8-entry demotion thresholds table.
#[derive(Clone, Debug)]
pub struct VantageConfig {
    /// Fraction of the cache kept unmanaged (`u`).
    pub unmanaged_fraction: f64,
    /// Maximum aperture (`A_max`).
    pub a_max: f64,
    /// Feedback slack: apertures ramp from 0 to `A_max` as a partition grows
    /// from its target to `(1 + slack)` times it (Eq. 7).
    pub slack: f64,
    /// Demotion decision mechanism.
    pub demotion_mode: DemotionMode,
    /// Base replacement policy.
    pub rank: RankMode,
    /// Entries in the demotion thresholds lookup table.
    pub table_entries: usize,
    /// Candidates seen from a partition between setpoint adjustments (`c`).
    pub cands_period: u32,
    /// Churn throttling (§3.4, stability option 2): when a partition's
    /// aperture is saturated at `A_max`, insert its incoming lines directly
    /// into the unmanaged region instead of letting it outgrow its target.
    /// The paper's chosen design leaves this off (partitions borrow from
    /// the unmanaged region up to their minimum stable sizes); enabling it
    /// trades some hit rate in high-churn partitions for tighter sizing.
    pub churn_throttling: bool,
}

impl Default for VantageConfig {
    fn default() -> Self {
        Self {
            unmanaged_fraction: 0.05,
            a_max: 0.5,
            slack: 0.1,
            demotion_mode: DemotionMode::Setpoint,
            rank: RankMode::Lru,
            table_entries: 8,
            cands_period: 256,
            churn_throttling: false,
        }
    }
}

impl VantageConfig {
    /// Derives a configuration from isolation requirements using the §4.3
    /// sizing rule: given the array's candidate count `r` and a worst-case
    /// managed-eviction probability `p_ev`, computes the unmanaged fraction
    /// analytically.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are outside their domains (see
    /// [`sizing::unmanaged_fraction`]) or would leave no managed space.
    ///
    /// # Example
    ///
    /// ```
    /// use vantage::VantageConfig;
    ///
    /// // Strong isolation on a Z4/52: ~21% unmanaged (paper §4.3).
    /// let cfg = VantageConfig::for_guarantees(52, 1e-4, 0.4, 0.1);
    /// assert!(cfg.unmanaged_fraction > 0.19 && cfg.unmanaged_fraction < 0.23);
    /// ```
    pub fn for_guarantees(r: u32, p_ev: f64, a_max: f64, slack: f64) -> Self {
        match Self::try_for_guarantees(r, p_ev, a_max, slack) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::for_guarantees`] with typed errors instead of panics: the
    /// sizing-rule inputs are validated, and infeasible requirements (the
    /// rule asking for `u >= 1`) surface as
    /// [`ConfigError::NoManagedSpace`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first out-of-domain
    /// parameter, or `NoManagedSpace` when the requirements are infeasible.
    pub fn try_for_guarantees(
        r: u32,
        p_ev: f64,
        a_max: f64,
        slack: f64,
    ) -> Result<Self, ConfigError> {
        if r == 0 {
            return Err(ConfigError::CandidateCount(r));
        }
        if !(p_ev > 0.0 && p_ev <= 1.0) {
            return Err(ConfigError::EvictionProbability(p_ev));
        }
        if !(a_max > 0.0 && a_max <= 1.0) {
            return Err(ConfigError::AMax(a_max));
        }
        if slack <= 0.0 {
            return Err(ConfigError::Slack(slack));
        }
        let u = sizing::unmanaged_fraction(r, p_ev, a_max, slack);
        if u >= 1.0 {
            return Err(ConfigError::NoManagedSpace {
                unmanaged_fraction: u,
            });
        }
        Ok(Self {
            unmanaged_fraction: u,
            a_max,
            slack,
            ..Self::default()
        })
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if any field is out of range.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// [`Self::validate`] with a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] identifying the first out-of-range field.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if !(self.unmanaged_fraction > 0.0 && self.unmanaged_fraction < 1.0) {
            return Err(ConfigError::UnmanagedFraction(self.unmanaged_fraction));
        }
        if !(self.a_max > 0.0 && self.a_max <= 1.0) {
            return Err(ConfigError::AMax(self.a_max));
        }
        if self.slack <= 0.0 {
            return Err(ConfigError::Slack(self.slack));
        }
        if !(1..=64).contains(&self.table_entries) {
            return Err(ConfigError::TableEntries(self.table_entries));
        }
        if self.cands_period < 8 {
            return Err(ConfigError::CandsPeriod(self.cands_period));
        }
        if let RankMode::Rrip { bits } = self.rank {
            if !(1..=7).contains(&bits) {
                return Err(ConfigError::RrpvBits(bits));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_evaluation() {
        let c = VantageConfig::default();
        assert_eq!(c.unmanaged_fraction, 0.05);
        assert_eq!(c.a_max, 0.5);
        assert_eq!(c.slack, 0.1);
        assert_eq!(c.demotion_mode, DemotionMode::Setpoint);
        assert_eq!(c.rank, RankMode::Lru);
        assert_eq!(c.table_entries, 8);
        assert_eq!(c.cands_period, 256);
        assert!(
            !c.churn_throttling,
            "the paper's design lets partitions borrow"
        );
        c.validate();
    }

    #[test]
    fn guarantees_constructor_moderate_isolation() {
        // Moderate isolation (P_ev = 1e-2) on Z4/52: ~13%.
        let cfg = VantageConfig::for_guarantees(52, 1e-2, 0.4, 0.1);
        assert!(cfg.unmanaged_fraction > 0.11 && cfg.unmanaged_fraction < 0.15);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "no managed space")]
    fn too_few_candidates_cannot_meet_guarantees() {
        // The flip side of "associativity depends on candidates": a plain
        // 4-way skew-associative cache (R = 4) cannot host Vantage with
        // meaningful isolation — the sizing rule demands more than the
        // whole cache be unmanaged. This is why the paper pairs Vantage
        // with zcaches (R = 16/52) rather than raw skew caches.
        VantageConfig::for_guarantees(4, 1e-2, 0.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "A_max")]
    fn invalid_a_max_rejected() {
        let cfg = VantageConfig {
            a_max: 0.0,
            ..VantageConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "unmanaged fraction")]
    fn invalid_u_rejected() {
        let cfg = VantageConfig {
            unmanaged_fraction: 1.0,
            ..VantageConfig::default()
        };
        cfg.validate();
    }
}
