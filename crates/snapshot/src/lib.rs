//! Crash-safe checkpoint/restore for the Vantage simulator.
//!
//! This crate defines the on-disk snapshot format and the [`Snapshot`]
//! capability trait the rest of the workspace implements. The format is
//! deliberately paranoid about torn and hostile input:
//!
//! * a fixed magic + format-version header,
//! * length-prefixed named sections, each carrying a CRC-32 of its
//!   payload,
//! * a section count in the header so truncation is detected even when
//!   a whole trailing section is missing,
//! * atomic writes (temp file + fsync + rename) so a crash mid-write
//!   never leaves a half-written checkpoint under the real name.
//!
//! Every failure mode maps to a typed [`SnapshotError`]; restoring from
//! a corrupt file must never panic and never leave the target object
//! partially updated (implementors decode into locals first, then
//! commit).
//!
//! # Format
//!
//! ```text
//! [magic  8B = "VNTGSNAP"]
//! [version u32 LE]
//! [section count u32 LE]
//! repeated per section:
//!   [name length u16 LE][name bytes (UTF-8)]
//!   [payload length u64 LE][payload bytes]
//!   [CRC-32 (IEEE) of payload, u32 LE]
//! ```
//!
//! Versioning rule: writers emit [`FORMAT_VERSION`]; readers accept the
//! closed range [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`]. Any
//! change to section payload encodings bumps the version; files newer
//! than this build are rejected with [`SnapshotError::UnsupportedVersion`]
//! rather than misread, while older supported versions are migrated on
//! load (consumers query [`SnapshotReader::version`] when they care).
//! Version history:
//!
//! * **v1** — original format. Per-frame partition tags use owner 0 for
//!   never-filled frames.
//! * **v2** — tag metadata is stored as dense SoA lanes; never-filled
//!   frames carry the explicit unmanaged sentinel (`u16::MAX`) in the
//!   partition lane. Payload bytes are otherwise identical to v1, and
//!   v1 files restore by normalizing unoccupied frames on load.
//! * **v3** — partition tables are dynamic (service-mode lifecycle): the
//!   Vantage LLC payload appends a slot-state lane plus the pending
//!   arrival/departure queues, and controller payloads may carry more or
//!   fewer partitions than the restoring object was built with (readers
//!   resize). v1/v2 files restore by treating every build-time partition
//!   as live.
//! * **v4** — reserved for an interim ownership-counter encoding that was
//!   superseded before release; no writer ever emitted it. Readers treat
//!   a v4 header exactly like v3.
//! * **v5** — line-ownership tail: every scheme payload appends the
//!   [`ShareMode`](../vantage_cache/enum.ShareMode.html) byte plus the
//!   per-partition sharing counters (shared hits, ownership transfers,
//!   replica fills) after the v3 lifecycle tail. v1–v4 payloads end
//!   before the tail and restore with the host's configured mode and
//!   zeroed counters; a present tail whose mode differs from the host's
//!   is rejected (lines were placed under the recorded mode).
//!
//! Unknown *extra* sections in a current-version file are ignored, so
//! writers may add sections without a version bump as long as existing
//! payloads are unchanged.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"VNTGSNAP";

/// The format version this build writes.
pub const FORMAT_VERSION: u32 = 5;

/// The oldest format version this build still reads (older payloads are
/// migrated on load — see the module-level version history).
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Hard ceiling on a single section payload (1 GiB). A hostile length
/// prefix larger than this is reported as malformed instead of being
/// allowed to drive a huge allocation.
const MAX_SECTION_LEN: u64 = 1 << 30;

/// Hard ceiling on decoded container lengths (number of elements). The
/// simulator's largest vectors are a few million entries; a hostile
/// length beyond this is certainly corrupt.
const MAX_SEQ_LEN: u64 = 1 << 28;

/// Everything that can go wrong writing or (far more often) reading a
/// snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file's format version is outside
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The file (or a section payload) ended before its declared length.
    Truncated {
        /// What was being read when the data ran out.
        context: String,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// Name of the damaged section.
        section: String,
    },
    /// A section the restore path requires is absent.
    MissingSection {
        /// Name of the absent section.
        section: String,
    },
    /// The same section name appears twice.
    DuplicateSection {
        /// Name of the repeated section.
        section: String,
    },
    /// Structurally invalid data: bad lengths, non-UTF-8 names,
    /// impossible enum discriminants, trailing bytes, and the like.
    Malformed {
        /// What was malformed.
        context: String,
    },
    /// The snapshot is internally valid but does not match the object
    /// being restored into (different geometry, partition count, …).
    Mismatch {
        /// What disagreed.
        context: String,
    },
    /// The component has no snapshot support.
    Unsupported {
        /// The component that cannot be snapshotted.
        what: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O error: {e}"),
            Self::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            Self::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            Self::ChecksumMismatch { section } => {
                write!(f, "snapshot section '{section}' failed its checksum")
            }
            Self::MissingSection { section } => {
                write!(f, "snapshot is missing required section '{section}'")
            }
            Self::DuplicateSection { section } => {
                write!(f, "snapshot contains duplicate section '{section}'")
            }
            Self::Malformed { context } => write!(f, "malformed snapshot data: {context}"),
            Self::Mismatch { context } => {
                write!(f, "snapshot does not match this configuration: {context}")
            }
            Self::Unsupported { what } => {
                write!(f, "{what} does not support checkpoint/restore")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Shorthand for `Result<T, SnapshotError>`.
pub type Result<T> = std::result::Result<T, SnapshotError>;

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `data`.
///
/// Hand-rolled nibble-table implementation so the crate stays
/// dependency-free; speed is irrelevant next to simulation time.
pub fn crc32(data: &[u8]) -> u32 {
    // Nibble lookup table for the reflected polynomial 0xEDB88320.
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1DB7_1064,
        0x3B6E_20C8,
        0x26D9_30AC,
        0x76DC_4190,
        0x6B6B_51F4,
        0x4DB2_6158,
        0x5005_713C,
        0xEDB8_8320,
        0xF00F_9344,
        0xD6D6_A3E8,
        0xCB61_B38C,
        0x9B64_C2B0,
        0x86D3_D2D4,
        0xA00A_E278,
        0xBDBD_F21C,
    ];
    let mut crc: u32 = !0;
    for &b in data {
        crc = (crc >> 4) ^ TABLE[((crc ^ b as u32) & 0xF) as usize];
        crc = (crc >> 4) ^ TABLE[((crc ^ (b as u32 >> 4)) & 0xF) as usize];
    }
    !crc
}

/// A little-endian append-only byte encoder for section payloads.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed `u8` slice (alias of [`put_bytes`](Self::put_bytes)).
    pub fn put_u8_slice(&mut self, v: &[u8]) {
        self.put_bytes(v);
    }

    /// Appends a length-prefixed `u16` slice.
    pub fn put_u16_slice(&mut self, v: &[u16]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u16(x);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends a length-prefixed `i32` slice.
    pub fn put_i32_slice(&mut self, v: &[i32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x as u32);
        }
    }

    /// Appends `Some(v)` as `1` + value bytes, `None` as `0`.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }
}

/// A bounds-checked little-endian decoder over a section payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'a str,
}

impl<'a> Decoder<'a> {
    /// Wraps `buf`; `context` names the section for error messages.
    pub fn new(buf: &'a [u8], context: &'a str) -> Self {
        Self {
            buf,
            pos: 0,
            context,
        }
    }

    fn truncated(&self) -> SnapshotError {
        SnapshotError::Truncated {
            context: self.context.to_string(),
        }
    }

    fn malformed(&self, what: &str) -> SnapshotError {
        SnapshotError::Malformed {
            context: format!("{}: {what}", self.context),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.truncated());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.malformed(&format!("bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn take_usize(&mut self) -> Result<usize> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| self.malformed("usize overflow"))
    }

    /// Reads a sequence-length prefix, rejecting values over
    /// [`MAX_SEQ_LEN`] or provably longer than the remaining payload —
    /// the first line of defense against hostile length prefixes when a
    /// composite decoder is about to loop or allocate.
    pub fn take_len(&mut self) -> Result<usize> {
        let n = self.take_u64()?;
        if n > MAX_SEQ_LEN || n as usize > self.remaining() {
            // Either absurd or provably longer than the data left: a
            // hostile or torn length prefix.
            return Err(self.truncated());
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.take_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes).map_err(|_| self.malformed("non-UTF-8 string"))
    }

    /// Reads a length-prefixed `u8` vector.
    pub fn take_u8_vec(&mut self) -> Result<Vec<u8>> {
        self.take_bytes()
    }

    /// Reads a length-prefixed `u16` vector.
    pub fn take_u16_vec(&mut self) -> Result<Vec<u16>> {
        let n = self.take_len()?;
        let mut v = Vec::with_capacity(n.min(self.remaining() / 2 + 1));
        for _ in 0..n {
            v.push(self.take_u16()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn take_u32_vec(&mut self) -> Result<Vec<u32>> {
        let n = self.take_len()?;
        let mut v = Vec::with_capacity(n.min(self.remaining() / 4 + 1));
        for _ in 0..n {
            v.push(self.take_u32()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn take_u64_vec(&mut self) -> Result<Vec<u64>> {
        let n = self.take_len()?;
        let mut v = Vec::with_capacity(n.min(self.remaining() / 8 + 1));
        for _ in 0..n {
            v.push(self.take_u64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `i32` vector.
    pub fn take_i32_vec(&mut self) -> Result<Vec<i32>> {
        let n = self.take_len()?;
        let mut v = Vec::with_capacity(n.min(self.remaining() / 4 + 1));
        for _ in 0..n {
            v.push(self.take_u32()? as i32);
        }
        Ok(v)
    }

    /// Reads an optional `u64` written by [`Encoder::put_opt_u64`].
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u64()?)),
            b => Err(self.malformed(&format!("option tag {b}"))),
        }
    }

    /// Asserts every byte was consumed; trailing garbage is malformed.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed {
                context: format!("{}: {} trailing bytes", self.context, self.remaining()),
            });
        }
        Ok(())
    }

    /// Builds a [`SnapshotError::Mismatch`] scoped to this decoder's
    /// section, for implementors to report shape disagreements.
    pub fn mismatch(&self, what: &str) -> SnapshotError {
        SnapshotError::Mismatch {
            context: format!("{}: {what}", self.context),
        }
    }

    /// Builds a [`SnapshotError::Malformed`] scoped to this decoder's
    /// section, for implementors to report impossible values.
    pub fn invalid(&self, what: &str) -> SnapshotError {
        self.malformed(what)
    }
}

/// A component that can serialize its mutable state into an [`Encoder`]
/// and later restore it from a [`Decoder`].
///
/// The contract: `load_state` is called on an object **freshly built
/// from the same configuration** that produced the save. Derived or
/// seed-dependent structures (hash tables, threshold curves) are
/// rebuilt, not stored. On any error the target must be left either
/// untouched or fully overwritten by a subsequent successful load —
/// implementors decode into locals first and commit at the end.
pub trait Snapshot {
    /// Serializes all state needed for bit-identical resume.
    fn save_state(&self, enc: &mut Encoder);

    /// Restores state captured by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] on torn, hostile, or mismatched input.
    fn load_state(&mut self, dec: &mut Decoder<'_>) -> Result<()>;
}

/// An in-memory snapshot under construction: named sections that
/// [`write_atomic`](Self::write_atomic) serializes to disk.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named section with the encoder's payload.
    pub fn add(&mut self, name: &str, enc: Encoder) {
        self.sections.push((name.to_string(), enc.into_bytes()));
    }

    /// Adds a section by running `f` over a fresh encoder.
    pub fn add_with(&mut self, name: &str, f: impl FnOnce(&mut Encoder)) {
        let mut enc = Encoder::new();
        f(&mut enc);
        self.add(name, enc);
    }

    /// Serializes the snapshot to bytes (header + sections).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        out
    }

    /// Writes the snapshot to `path` atomically: the bytes go to a
    /// sibling temp file which is fsynced and then renamed over the
    /// target, so a crash at any point leaves either the old file or
    /// the new one — never a torn mix.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on any filesystem failure.
    pub fn write_atomic(&self, path: &Path) -> Result<()> {
        let bytes = self.to_bytes();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Best-effort directory fsync so the rename itself is durable.
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    }
}

/// A fully validated snapshot read back from disk (or bytes).
///
/// Construction verifies the header, every section's length, and every
/// section's CRC before any payload is handed out, so a
/// `SnapshotReader` that exists at all is structurally sound.
#[derive(Debug)]
pub struct SnapshotReader {
    version: u32,
    sections: BTreeMap<String, Vec<u8>>,
}

impl SnapshotReader {
    /// Parses and fully validates `bytes`.
    ///
    /// # Errors
    ///
    /// Every hostile-input failure mode maps to its own
    /// [`SnapshotError`] variant; this function never panics on
    /// arbitrary input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(bytes, "snapshot header");
        let magic = d.take(8).map_err(|_| SnapshotError::Truncated {
            context: "file header".into(),
        })?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = d.take_u32().map_err(|_| SnapshotError::Truncated {
            context: "file header".into(),
        })?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = d.take_u32().map_err(|_| SnapshotError::Truncated {
            context: "file header".into(),
        })?;
        let mut sections = BTreeMap::new();
        for i in 0..count {
            let name_len = d.take_u16().map_err(|_| SnapshotError::Truncated {
                context: format!("section {i} name length"),
            })? as usize;
            let name_bytes = d.take(name_len).map_err(|_| SnapshotError::Truncated {
                context: format!("section {i} name"),
            })?;
            let name = std::str::from_utf8(name_bytes).map_err(|_| SnapshotError::Malformed {
                context: format!("section {i} name is not UTF-8"),
            })?;
            let payload_len = d.take_u64().map_err(|_| SnapshotError::Truncated {
                context: format!("section '{name}' length"),
            })?;
            if payload_len > MAX_SECTION_LEN {
                return Err(SnapshotError::Malformed {
                    context: format!("section '{name}' declares absurd length {payload_len}"),
                });
            }
            let payload = d
                .take(payload_len as usize)
                .map_err(|_| SnapshotError::Truncated {
                    context: format!("section '{name}' payload"),
                })?;
            let stored_crc = d.take_u32().map_err(|_| SnapshotError::Truncated {
                context: format!("section '{name}' checksum"),
            })?;
            if crc32(payload) != stored_crc {
                return Err(SnapshotError::ChecksumMismatch {
                    section: name.to_string(),
                });
            }
            if sections
                .insert(name.to_string(), payload.to_vec())
                .is_some()
            {
                return Err(SnapshotError::DuplicateSection {
                    section: name.to_string(),
                });
            }
        }
        if d.remaining() != 0 {
            return Err(SnapshotError::Malformed {
                context: format!("{} bytes of trailing garbage after sections", d.remaining()),
            });
        }
        Ok(Self { version, sections })
    }

    /// The format version the file was written with (within
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`], or the reader
    /// would not exist).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Reads and validates the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure, otherwise as
    /// [`from_bytes`](Self::from_bytes).
    pub fn read(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Names of all sections present, sorted.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }

    /// Whether section `name` exists.
    pub fn has(&self, name: &str) -> bool {
        self.sections.contains_key(name)
    }

    /// A decoder over section `name`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] when absent.
    pub fn section<'a>(&'a self, name: &'a str) -> Result<Decoder<'a>> {
        match self.sections.get(name) {
            Some(payload) => Ok(Decoder::new(payload, name)),
            None => Err(SnapshotError::MissingSection {
                section: name.to_string(),
            }),
        }
    }

    /// Restores `target` from section `name`, requiring the section's
    /// payload to be fully consumed.
    ///
    /// # Errors
    ///
    /// Propagates the target's [`Snapshot::load_state`] errors plus
    /// [`SnapshotError::MissingSection`] / trailing-garbage checks.
    pub fn restore(&self, name: &str, target: &mut dyn Snapshot) -> Result<()> {
        let mut dec = self.section(name)?;
        target.load_state(&mut dec)?;
        dec.finish()
    }
}

/// Saves `source` into writer section `name`.
pub fn save_section(w: &mut SnapshotWriter, name: &str, source: &dyn Snapshot) {
    let mut enc = Encoder::new();
    source.save_state(&mut enc);
    w.add(name, enc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_sections() {
        let mut w = SnapshotWriter::new();
        w.add_with("alpha", |e| {
            e.put_u64(42);
            e.put_str("hello");
            e.put_u64_slice(&[1, 2, 3]);
        });
        w.add_with("beta", |e| e.put_f64(1.5));
        let bytes = w.to_bytes();
        let r = SnapshotReader::from_bytes(&bytes).unwrap();
        assert!(r.has("alpha") && r.has("beta"));
        let mut d = r.section("alpha").unwrap();
        assert_eq!(d.take_u64().unwrap(), 42);
        assert_eq!(d.take_str().unwrap(), "hello");
        assert_eq!(d.take_u64_vec().unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
        let mut d = r.section("beta").unwrap();
        assert_eq!(d.take_f64().unwrap(), 1.5);
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = SnapshotReader::from_bytes(b"NOTASNAPxxxx").unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic));
    }

    #[test]
    fn version_bump_is_rejected() {
        let mut bytes = SnapshotWriter::new().to_bytes();
        bytes[8] = 99; // version LE low byte
        let err = SnapshotReader::from_bytes(&bytes).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::UnsupportedVersion { found: 99, .. }
        ));
    }

    #[test]
    fn supported_version_range_is_read_and_reported() {
        // The writer emits the current version...
        let bytes = SnapshotWriter::new().to_bytes();
        let r = SnapshotReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.version(), FORMAT_VERSION);
        // ...and every still-supported older version parses too, with
        // the actual file version surfaced for load-time migration.
        for v in MIN_FORMAT_VERSION..FORMAT_VERSION {
            let mut old = bytes.clone();
            old[8..12].copy_from_slice(&v.to_le_bytes());
            let r = SnapshotReader::from_bytes(&old).unwrap();
            assert_eq!(r.version(), v);
        }
        // Version 0 predates the format and stays rejected.
        let mut zero = bytes.clone();
        zero[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            SnapshotReader::from_bytes(&zero).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 0, .. }
        ));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let mut w = SnapshotWriter::new();
        w.add_with("s", |e| e.put_u64_slice(&[7; 100]));
        let bytes = w.to_bytes();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught_or_harmless() {
        let mut w = SnapshotWriter::new();
        w.add_with("s", |e| {
            e.put_u64(0xDEAD_BEEF);
            e.put_u64_slice(&[1, 2, 3, 4]);
        });
        let bytes = w.to_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[byte] ^= 1 << bit;
                // Must either parse (flip hit a name char making a
                // different valid section name is impossible here since
                // CRC covers only payload — but a name flip changes
                // the name, still structurally valid) or fail typed.
                // The essential guarantee: no panic, and payload
                // corruption is always caught by the CRC.
                if let Ok(r) = SnapshotReader::from_bytes(&m) {
                    // Structure survived: the flip hit the name (or
                    // count byte that still parses). Payload bytes
                    // must be intact for any surviving section.
                    for name in r.section_names() {
                        let _ = r.section(name).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn payload_bit_flips_always_fail_checksum() {
        let mut w = SnapshotWriter::new();
        w.add_with("s", |e| e.put_u64_slice(&[9; 32]));
        let bytes = w.to_bytes();
        // Payload starts after magic(8)+version(4)+count(4)+namelen(2)+
        // name(1)+payloadlen(8) = 27, and runs for 8+32*8 bytes.
        let payload_start = 27;
        let payload_end = payload_start + 8 + 32 * 8;
        for byte in payload_start..payload_end {
            let mut m = bytes.clone();
            m[byte] ^= 0x10;
            let err = SnapshotReader::from_bytes(&m).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::ChecksumMismatch { .. } | SnapshotError::Truncated { .. }
                ),
                "payload flip at {byte} gave {err:?}"
            );
        }
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("vsnap-test-{}", std::process::id()));
        let path = dir.join("t.ckpt");
        let mut w = SnapshotWriter::new();
        w.add_with("x", |e| e.put_u64(5));
        w.write_atomic(&path).unwrap();
        let r = SnapshotReader::read(&path).unwrap();
        assert_eq!(r.section("x").unwrap().take_u64().unwrap(), 5);
        // No temp file left behind.
        assert!(!path.with_extension("ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decoder_rejects_hostile_lengths() {
        let mut e = Encoder::new();
        e.put_u64(u64::MAX); // absurd length prefix
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "test");
        assert!(matches!(
            d.take_u64_vec().unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn missing_and_duplicate_sections_are_typed() {
        let w = SnapshotWriter::new();
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        assert!(matches!(
            r.section("nope").unwrap_err(),
            SnapshotError::MissingSection { .. }
        ));

        let mut w = SnapshotWriter::new();
        w.add_with("dup", |e| e.put_u8(1));
        w.add_with("dup", |e| e.put_u8(2));
        assert!(matches!(
            SnapshotReader::from_bytes(&w.to_bytes()).unwrap_err(),
            SnapshotError::DuplicateSection { .. }
        ));
    }
}
