//! Telemetry for partition dynamics: typed events, periodic samples, and
//! pluggable sinks.
//!
//! Vantage's argument is about *dynamics* — aperture feedback (Eq. 7),
//! setpoint adjustment every `c = 256` candidates, the unmanaged region
//! absorbing churn. This crate gives every
//! [`Llc`](../vantage_partitioning/trait.Llc.html) implementation a uniform,
//! low-overhead way to expose those trajectories:
//!
//! * [`TelemetryEvent`] — one discrete controller action (demotion,
//!   promotion, eviction, setpoint adjustment, aperture update, scrub).
//! * [`PartitionSample`] — one periodic per-partition snapshot (actual and
//!   target size, aperture, setpoint window, churn since the last sample);
//!   the unmanaged region reports as partition [`UNMANAGED_PART`].
//! * [`TelemetrySink`] — where records go: [`NullSink`] (drops everything;
//!   the zero-cost stand-in for "instrumentation wired but off"),
//!   [`RingSink`] (bounded in-memory ring with a shared [`RingReader`]),
//!   [`CsvSink`] and [`JsonSink`] (line-oriented file/stream backends).
//! * [`Telemetry`] — the producer-side handle a cache embeds: it owns the
//!   sink, decides when samples are due, and meters per-partition churn so
//!   producers only report raw events.
//!
//! # Hot-path contract
//!
//! A cache with no telemetry installed ([`Telemetry::disabled`]) pays one
//! predictable null-check per instrumentation site and allocates nothing.
//! With a [`NullSink`] installed the cost adds one virtual call to an empty
//! body per *event* (events fire on misses, not per candidate), which the
//! `perf` harness pins to within 2% of the uninstrumented throughput. No
//! sink may allocate per record on the producer's path; [`RingSink`] uses a
//! preallocated ring and [`CsvSink`]/[`JsonSink`] buffer through
//! [`std::io::BufWriter`].
//!
//! # Example
//!
//! ```
//! use vantage_telemetry::{PartitionId, PartitionSample, RingSink, Telemetry, TelemetryEvent, TelemetryRecord};
//!
//! let (sink, reader) = RingSink::with_capacity(64);
//! let mut tele = Telemetry::new(Box::new(sink), 1024);
//! tele.bind(2);
//! tele.event(TelemetryEvent::Demotion { access: 7, part: PartitionId::from_index(1) });
//! assert_eq!(reader.len(), 1);
//! match reader.records()[0] {
//!     TelemetryRecord::Event(TelemetryEvent::Demotion { part, .. }) => assert_eq!(part.index(), 1),
//!     _ => unreachable!(),
//! }
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

pub use vantage_cache::PartitionId;

/// The partition ID telemetry uses for the unmanaged region (matches
/// `vantage::UNMANAGED`).
pub const UNMANAGED_PART: PartitionId = PartitionId::UNMANAGED;

/// One discrete controller action.
///
/// `access` is the producing cache's access sequence number, the natural
/// time base for dynamics traces (simulated cycles are a simulator concept;
/// the cache sees accesses).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TelemetryEvent {
    /// A managed line left `part` for the unmanaged region
    /// (setpoint-based demotion, §4.2).
    Demotion {
        /// Access sequence number.
        access: u64,
        /// The partition that lost the line.
        part: PartitionId,
    },
    /// An unmanaged line rejoined `part` on a hit.
    Promotion {
        /// Access sequence number.
        access: u64,
        /// The partition that regained the line.
        part: PartitionId,
    },
    /// A resident line was evicted. `part` is the owner at eviction time
    /// ([`UNMANAGED_PART`] for the unmanaged region); `forced` marks an
    /// eviction taken from the managed region because no unmanaged or
    /// just-demoted candidate existed (the isolation-violation case).
    Eviction {
        /// Access sequence number.
        access: u64,
        /// Owning partition of the evicted line.
        part: PartitionId,
        /// Whether the eviction was forced from the managed region.
        forced: bool,
    },
    /// The feedback loop nudged `part`'s setpoint (once per `c`
    /// candidates). `direction` is +1 when the keep window widened (too
    /// many demotions), -1 when it tightened, 0 when on target; `window`
    /// is the keep window after the adjustment, in timestamp units.
    SetpointAdjust {
        /// Access sequence number.
        access: u64,
        /// The adjusted partition.
        part: PartitionId,
        /// +1 widened, -1 tightened, 0 unchanged.
        direction: i8,
        /// Keep window after the adjustment.
        window: u8,
    },
    /// `part`'s (implied) aperture changed — emitted alongside setpoint
    /// adjustments and on retargeting, with the Eq. 7 aperture at the
    /// partition's current size.
    ApertureUpdate {
        /// Access sequence number.
        access: u64,
        /// The partition whose aperture moved.
        part: PartitionId,
        /// The continuous aperture of Eq. 7 at the current actual size.
        aperture: f32,
    },
    /// A scrub pass ran; `repairs` is the total number of repairs it made
    /// (0 for a clean pass).
    Scrub {
        /// Access sequence number.
        access: u64,
        /// Repairs performed (tags + size registers + meters + setpoints).
        repairs: u64,
    },
    /// A partition came live (service-mode `create_partition`).
    PartitionCreated {
        /// Access sequence number.
        access: u64,
        /// The new partition's slot.
        part: PartitionId,
        /// The managed-region target it was granted, in lines.
        target: u64,
    },
    /// A partition was retired (service-mode `destroy_partition`); its
    /// lines drain into the unmanaged region via ordinary demotions, so no
    /// bulk-eviction events accompany this.
    PartitionDestroyed {
        /// Access sequence number.
        access: u64,
        /// The retired partition's slot.
        part: PartitionId,
    },
    /// `part` hit a line owned by another partition (the ownership layer's
    /// cross-partition sharing observation; never fires under
    /// `ShareMode::Replicate`, whose per-partition address salting keeps
    /// lookups disjoint).
    SharedHit {
        /// Access sequence number.
        access: u64,
        /// The accessing partition.
        part: PartitionId,
        /// The partition that owned the line at the time of the hit.
        owner: PartitionId,
    },
    /// A cross-partition hit transferred the line's ownership to the
    /// accessor (`ShareMode::Adopt` only). Always paired with a
    /// [`TelemetryEvent::SharedHit`] at the same access.
    OwnershipTransfer {
        /// Access sequence number.
        access: u64,
        /// The adopting partition (the line's new owner).
        part: PartitionId,
        /// The previous owner.
        from: PartitionId,
    },
    /// `part` installed a per-partition replica of a shared line
    /// (`ShareMode::Replicate` only).
    Replica {
        /// Access sequence number.
        access: u64,
        /// The partition that filled the replica.
        part: PartitionId,
    },
}

impl TelemetryEvent {
    /// The access sequence number the event was produced at.
    pub fn access(&self) -> u64 {
        match *self {
            Self::Demotion { access, .. }
            | Self::Promotion { access, .. }
            | Self::Eviction { access, .. }
            | Self::SetpointAdjust { access, .. }
            | Self::ApertureUpdate { access, .. }
            | Self::Scrub { access, .. }
            | Self::PartitionCreated { access, .. }
            | Self::PartitionDestroyed { access, .. }
            | Self::SharedHit { access, .. }
            | Self::OwnershipTransfer { access, .. }
            | Self::Replica { access, .. } => access,
        }
    }

    /// The partition the event concerns ([`UNMANAGED_PART`] where that is
    /// the unmanaged region; `None` for cache-wide events like scrubs).
    pub fn part(&self) -> Option<PartitionId> {
        match *self {
            Self::Demotion { part, .. }
            | Self::Promotion { part, .. }
            | Self::Eviction { part, .. }
            | Self::SetpointAdjust { part, .. }
            | Self::ApertureUpdate { part, .. }
            | Self::PartitionCreated { part, .. }
            | Self::PartitionDestroyed { part, .. }
            | Self::SharedHit { part, .. }
            | Self::OwnershipTransfer { part, .. }
            | Self::Replica { part, .. } => Some(part),
            Self::Scrub { .. } => None,
        }
    }
}

/// One periodic per-partition snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionSample {
    /// Access sequence number of the sampling point.
    pub access: u64,
    /// Partition ID ([`UNMANAGED_PART`] for the unmanaged region).
    pub part: PartitionId,
    /// Lines the partition currently holds.
    pub actual: u64,
    /// The partition's target in lines (0 when the scheme keeps none).
    pub target: u64,
    /// The continuous Eq. 7 aperture at `actual` (0 for schemes without
    /// apertures).
    pub aperture: f32,
    /// The setpoint keep window in timestamp units (0 for schemes without
    /// setpoints).
    pub window: u8,
    /// Lines the partition lost (demotion or eviction) since the previous
    /// sample — the empirical churn rate over one sampling period.
    pub churn: u64,
    /// Cross-partition hits made by this partition at the sampling point
    /// (the ownership layer's counter, which resets when stats are
    /// drained; 0 for non-sharing workloads). Rendered into the structured
    /// detail column only when nonzero, so zero-sharing traces are
    /// byte-identical to pre-ownership-layer ones.
    pub shared: u64,
    /// Ownership transfers to this partition at the sampling point
    /// (nonzero only under `ShareMode::Adopt`; same reset and rendering
    /// rules as `shared`).
    pub transfers: u64,
}

/// A record: either a discrete event or a periodic sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TelemetryRecord {
    /// A discrete controller action.
    Event(TelemetryEvent),
    /// A periodic per-partition snapshot.
    Sample(PartitionSample),
}

impl TelemetryRecord {
    /// The record's access sequence number.
    pub fn access(&self) -> u64 {
        match self {
            Self::Event(e) => e.access(),
            Self::Sample(s) => s.access,
        }
    }
}

/// A destination for telemetry records.
///
/// Sinks must not allocate per record on `record_*` (the producer may sit on
/// a cache's miss path); buffered backends allocate at construction and on
/// `flush`.
pub trait TelemetrySink: Send {
    /// Records one discrete event.
    fn record_event(&mut self, ev: &TelemetryEvent);
    /// Records one periodic sample.
    fn record_sample(&mut self, s: &PartitionSample);
    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
    /// The first I/O error this sink has absorbed, if any.
    ///
    /// File sinks cannot propagate errors from the record path (it may sit
    /// on a cache's miss path), so they record the first failure here
    /// instead of silently dropping it; callers check after [`flush`]
    /// (Self::flush) to learn whether the trace on disk is complete.
    /// In-memory sinks never error.
    fn io_error(&self) -> Option<String> {
        None
    }
    /// Tags subsequently recorded records as coming from bank `bank` of a
    /// multi-banked cache (`None` clears the tag).
    ///
    /// Default is a no-op: in-memory sinks keep records untagged so traces
    /// from a sharded run compare record-for-record with a serial run.
    /// File sinks append the tag as an extra field their parsers tolerate
    /// ([`CsvSink`] in the `detail` column, [`JsonSink`] as a `"bank"` key).
    fn set_bank(&mut self, _bank: Option<u16>) {}
}

/// A cloneable sink wrapper that serializes several producers into one
/// underlying sink.
///
/// A banked cache hands each bank a [`SharedSink::with_bank`] clone; every
/// record funnels through one mutex into the shared backend, tagged with the
/// recording bank via [`TelemetrySink::set_bank`] (taken under the same lock,
/// so tags cannot interleave). Record order *across* banks follows execution
/// order, which a parallel engine does not make deterministic — consumers
/// comparing sharded against serial traces should compare multisets, or
/// group by the bank tag.
pub struct SharedSink {
    inner: Arc<Mutex<Box<dyn TelemetrySink>>>,
    bank: Option<u16>,
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSink")
            .field("bank", &self.bank)
            .field("handles", &Arc::strong_count(&self.inner))
            .finish()
    }
}

impl SharedSink {
    /// Wraps `inner` for sharing. The wrapper itself records untagged;
    /// producers get tagged handles from [`SharedSink::with_bank`].
    pub fn new(inner: Box<dyn TelemetrySink>) -> Self {
        Self {
            inner: Arc::new(Mutex::new(inner)),
            bank: None,
        }
    }

    /// A handle onto the same backend whose records are tagged `bank`.
    pub fn with_bank(&self, bank: u16) -> Self {
        Self {
            inner: self.inner.clone(),
            bank: Some(bank),
        }
    }

    /// Recovers the wrapped sink once every clone has been dropped.
    ///
    /// # Errors
    ///
    /// Returns `self` unchanged while other handles are still alive.
    pub fn try_unwrap(self) -> Result<Box<dyn TelemetrySink>, Self> {
        let bank = self.bank;
        match Arc::try_unwrap(self.inner) {
            Ok(m) => Ok(m
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)),
            Err(inner) => Err(Self { inner, bank }),
        }
    }

    fn with_lock(&self, f: impl FnOnce(&mut Box<dyn TelemetrySink>)) {
        // A producer that panicked mid-record leaves a poisoned (but
        // structurally sound) sink; keep collecting from the others.
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.set_bank(self.bank);
        f(&mut g);
    }
}

impl TelemetrySink for SharedSink {
    fn record_event(&mut self, ev: &TelemetryEvent) {
        self.with_lock(|s| s.record_event(ev));
    }
    fn record_sample(&mut self, s: &PartitionSample) {
        self.with_lock(|sink| sink.record_sample(s));
    }
    fn flush(&mut self) {
        self.with_lock(|s| s.flush());
    }
    fn io_error(&self) -> Option<String> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .io_error()
    }
    fn set_bank(&mut self, bank: Option<u16>) {
        self.bank = bank;
    }
}

/// The zero-cost sink: drops everything. Installing it exercises the whole
/// instrumentation path (the `perf` harness's overhead guard) without
/// retaining records.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    #[inline]
    fn record_event(&mut self, _ev: &TelemetryEvent) {}
    #[inline]
    fn record_sample(&mut self, _s: &PartitionSample) {}
}

/// Shared ring storage behind [`RingSink`]/[`RingReader`].
#[derive(Debug)]
struct Ring {
    buf: VecDeque<TelemetryRecord>,
    cap: usize,
    /// Records dropped from the front after the ring filled.
    overwritten: u64,
}

/// A bounded in-memory sink: keeps the most recent `capacity` records,
/// overwriting the oldest. Reads go through the [`RingReader`] handle
/// returned by [`RingSink::with_capacity`], which stays usable after the
/// sink has been moved into a cache.
#[derive(Debug)]
pub struct RingSink {
    ring: Arc<Mutex<Ring>>,
}

/// A read handle onto a [`RingSink`]'s storage.
#[derive(Clone, Debug)]
pub struct RingReader {
    ring: Arc<Mutex<Ring>>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records (at least 1) and
    /// its read handle.
    pub fn with_capacity(capacity: usize) -> (Self, RingReader) {
        let cap = capacity.max(1);
        let ring = Arc::new(Mutex::new(Ring {
            buf: VecDeque::with_capacity(cap),
            cap,
            overwritten: 0,
        }));
        (Self { ring: ring.clone() }, RingReader { ring })
    }

    fn push(&self, rec: TelemetryRecord) {
        // The mutex is uncontended in the single-producer case; a poisoned
        // lock (reader panicked mid-inspection) still accepts records.
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.overwritten += 1;
        }
        ring.buf.push_back(rec);
    }
}

impl TelemetrySink for RingSink {
    fn record_event(&mut self, ev: &TelemetryEvent) {
        self.push(TelemetryRecord::Event(*ev));
    }
    fn record_sample(&mut self, s: &PartitionSample) {
        self.push(TelemetryRecord::Sample(*s));
    }
}

impl RingReader {
    /// A snapshot of the retained records, oldest first.
    pub fn records(&self) -> Vec<TelemetryRecord> {
        let ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.buf.iter().copied().collect()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .buf
            .len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped from the front since creation (0 until the ring
    /// first fills).
    pub fn overwritten(&self) -> u64 {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .overwritten
    }
}

/// The CSV header written by [`CsvSink`] (one fixed schema covering events
/// and samples; unused columns are empty).
pub const CSV_HEADER: &str = "record,access,part,actual,target,aperture,window,churn,detail";

fn part_str(part: PartitionId) -> String {
    // `PartitionId`'s Display spells the sentinel "unmanaged" already.
    part.to_string()
}

fn parse_part(s: &str) -> Option<PartitionId> {
    if s == "unmanaged" {
        Some(UNMANAGED_PART)
    } else {
        s.parse::<u16>().ok().map(PartitionId::from_raw)
    }
}

/// Renders one record as a CSV row under [`CSV_HEADER`] (no newline).
pub fn to_csv_row(rec: &TelemetryRecord) -> String {
    let mut s = String::with_capacity(64);
    match rec {
        TelemetryRecord::Sample(p) => {
            let _ = write!(
                s,
                "sample,{},{},{},{},{:.6},{},{},",
                p.access,
                part_str(p.part),
                p.actual,
                p.target,
                p.aperture,
                p.window,
                p.churn
            );
            // Sharing counters ride in the structured detail column, and
            // only when nonzero: zero-sharing traces stay byte-identical
            // to pre-ownership-layer output (golden-digest contract).
            if p.shared != 0 || p.transfers != 0 {
                let _ = write!(s, "shared={};transfers={}", p.shared, p.transfers);
            }
        }
        TelemetryRecord::Event(ev) => {
            let (kind, part, detail): (&str, Option<PartitionId>, String) = match *ev {
                TelemetryEvent::Demotion { part, .. } => ("demotion", Some(part), String::new()),
                TelemetryEvent::Promotion { part, .. } => ("promotion", Some(part), String::new()),
                TelemetryEvent::Eviction { part, forced, .. } => {
                    ("eviction", Some(part), format!("forced={forced}"))
                }
                TelemetryEvent::SetpointAdjust {
                    part,
                    direction,
                    window,
                    ..
                } => (
                    "setpoint",
                    Some(part),
                    format!("direction={direction};window={window}"),
                ),
                TelemetryEvent::ApertureUpdate { part, aperture, .. } => {
                    ("aperture", Some(part), format!("aperture={aperture:.6}"))
                }
                TelemetryEvent::Scrub { repairs, .. } => {
                    ("scrub", None, format!("repairs={repairs}"))
                }
                TelemetryEvent::PartitionCreated { part, target, .. } => {
                    ("created", Some(part), format!("target={target}"))
                }
                TelemetryEvent::PartitionDestroyed { part, .. } => {
                    ("destroyed", Some(part), String::new())
                }
                TelemetryEvent::SharedHit { part, owner, .. } => (
                    "shared_hit",
                    Some(part),
                    format!("owner={}", part_str(owner)),
                ),
                TelemetryEvent::OwnershipTransfer { part, from, .. } => {
                    ("transfer", Some(part), format!("from={}", part_str(from)))
                }
                TelemetryEvent::Replica { part, .. } => ("replica", Some(part), String::new()),
            };
            let _ = write!(
                s,
                "{kind},{},{},,,,,,{detail}",
                ev.access(),
                part.map(part_str).unwrap_or_default()
            );
        }
    }
    s
}

/// Parses one CSV row produced by [`to_csv_row`]; `None` for the header or
/// malformed rows.
pub fn from_csv_row(row: &str) -> Option<TelemetryRecord> {
    let cols: Vec<&str> = row.trim_end().split(',').collect();
    if cols.len() != 9 {
        return None;
    }
    let access: u64 = cols[1].parse().ok()?;
    let detail: std::collections::HashMap<&str, &str> = cols[8]
        .split(';')
        .filter_map(|kv| kv.split_once('='))
        .collect();
    match cols[0] {
        "sample" => Some(TelemetryRecord::Sample(PartitionSample {
            access,
            part: parse_part(cols[2])?,
            actual: cols[3].parse().ok()?,
            target: cols[4].parse().ok()?,
            aperture: cols[5].parse().ok()?,
            window: cols[6].parse().ok()?,
            churn: cols[7].parse().ok()?,
            // Absent in zero-sharing rows and in pre-ownership traces.
            shared: detail
                .get("shared")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            transfers: detail
                .get("transfers")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        })),
        "demotion" => Some(TelemetryRecord::Event(TelemetryEvent::Demotion {
            access,
            part: parse_part(cols[2])?,
        })),
        "promotion" => Some(TelemetryRecord::Event(TelemetryEvent::Promotion {
            access,
            part: parse_part(cols[2])?,
        })),
        "eviction" => Some(TelemetryRecord::Event(TelemetryEvent::Eviction {
            access,
            part: parse_part(cols[2])?,
            forced: detail.get("forced")?.parse().ok()?,
        })),
        "setpoint" => Some(TelemetryRecord::Event(TelemetryEvent::SetpointAdjust {
            access,
            part: parse_part(cols[2])?,
            direction: detail.get("direction")?.parse().ok()?,
            window: detail.get("window")?.parse().ok()?,
        })),
        "aperture" => Some(TelemetryRecord::Event(TelemetryEvent::ApertureUpdate {
            access,
            part: parse_part(cols[2])?,
            aperture: detail.get("aperture")?.parse().ok()?,
        })),
        "scrub" => Some(TelemetryRecord::Event(TelemetryEvent::Scrub {
            access,
            repairs: detail.get("repairs")?.parse().ok()?,
        })),
        "created" => Some(TelemetryRecord::Event(TelemetryEvent::PartitionCreated {
            access,
            part: parse_part(cols[2])?,
            target: detail.get("target")?.parse().ok()?,
        })),
        "destroyed" => Some(TelemetryRecord::Event(TelemetryEvent::PartitionDestroyed {
            access,
            part: parse_part(cols[2])?,
        })),
        "shared_hit" => Some(TelemetryRecord::Event(TelemetryEvent::SharedHit {
            access,
            part: parse_part(cols[2])?,
            owner: parse_part(detail.get("owner")?)?,
        })),
        "transfer" => Some(TelemetryRecord::Event(TelemetryEvent::OwnershipTransfer {
            access,
            part: parse_part(cols[2])?,
            from: parse_part(detail.get("from")?)?,
        })),
        "replica" => Some(TelemetryRecord::Event(TelemetryEvent::Replica {
            access,
            part: parse_part(cols[2])?,
        })),
        _ => None,
    }
}

/// Renders one record as a JSON object on a single line (JSON Lines; the
/// workspace is offline and vendors no serde, so the schema is flat
/// key-value with string and number values only).
pub fn to_json_line(rec: &TelemetryRecord) -> String {
    let mut s = String::with_capacity(96);
    match rec {
        TelemetryRecord::Sample(p) => {
            let _ = write!(
                s,
                "{{\"record\":\"sample\",\"access\":{},\"part\":{},\"actual\":{},\"target\":{},\"aperture\":{:.6},\"window\":{},\"churn\":{}",
                p.access,
                p.part.raw(),
                p.actual,
                p.target,
                p.aperture,
                p.window,
                p.churn
            );
            // Same rule as the CSV renderer: sharing keys only when
            // nonzero, so zero-sharing traces are byte-identical to
            // pre-ownership-layer output.
            if p.shared != 0 || p.transfers != 0 {
                let _ = write!(s, ",\"shared\":{},\"transfers\":{}", p.shared, p.transfers);
            }
            s.push('}');
        }
        TelemetryRecord::Event(ev) => match *ev {
            TelemetryEvent::Demotion { access, part } => {
                let part = part.raw();
                let _ = write!(
                    s,
                    "{{\"record\":\"demotion\",\"access\":{access},\"part\":{part}}}"
                );
            }
            TelemetryEvent::Promotion { access, part } => {
                let part = part.raw();
                let _ = write!(
                    s,
                    "{{\"record\":\"promotion\",\"access\":{access},\"part\":{part}}}"
                );
            }
            TelemetryEvent::Eviction {
                access,
                part,
                forced,
            } => {
                let part = part.raw();
                let _ = write!(
                    s,
                    "{{\"record\":\"eviction\",\"access\":{access},\"part\":{part},\"forced\":{forced}}}"
                );
            }
            TelemetryEvent::SetpointAdjust {
                access,
                part,
                direction,
                window,
            } => {
                let part = part.raw();
                let _ = write!(
                    s,
                    "{{\"record\":\"setpoint\",\"access\":{access},\"part\":{part},\"direction\":{direction},\"window\":{window}}}"
                );
            }
            TelemetryEvent::ApertureUpdate {
                access,
                part,
                aperture,
            } => {
                let part = part.raw();
                let _ = write!(
                    s,
                    "{{\"record\":\"aperture\",\"access\":{access},\"part\":{part},\"aperture\":{aperture:.6}}}"
                );
            }
            TelemetryEvent::Scrub { access, repairs } => {
                let _ = write!(
                    s,
                    "{{\"record\":\"scrub\",\"access\":{access},\"repairs\":{repairs}}}"
                );
            }
            TelemetryEvent::PartitionCreated {
                access,
                part,
                target,
            } => {
                let part = part.raw();
                let _ = write!(
                    s,
                    "{{\"record\":\"created\",\"access\":{access},\"part\":{part},\"target\":{target}}}"
                );
            }
            TelemetryEvent::PartitionDestroyed { access, part } => {
                let part = part.raw();
                let _ = write!(
                    s,
                    "{{\"record\":\"destroyed\",\"access\":{access},\"part\":{part}}}"
                );
            }
            TelemetryEvent::SharedHit {
                access,
                part,
                owner,
            } => {
                let (part, owner) = (part.raw(), owner.raw());
                let _ = write!(
                    s,
                    "{{\"record\":\"shared_hit\",\"access\":{access},\"part\":{part},\"owner\":{owner}}}"
                );
            }
            TelemetryEvent::OwnershipTransfer { access, part, from } => {
                let (part, from) = (part.raw(), from.raw());
                let _ = write!(
                    s,
                    "{{\"record\":\"transfer\",\"access\":{access},\"part\":{part},\"from\":{from}}}"
                );
            }
            TelemetryEvent::Replica { access, part } => {
                let part = part.raw();
                let _ = write!(
                    s,
                    "{{\"record\":\"replica\",\"access\":{access},\"part\":{part}}}"
                );
            }
        },
    }
    s
}

/// Parses one flat JSON object (as produced by [`to_json_line`]) back into
/// a record; `None` on malformed input.
pub fn from_json_line(line: &str) -> Option<TelemetryRecord> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = std::collections::HashMap::new();
    for kv in body.split(',') {
        let (k, v) = kv.split_once(':')?;
        let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        let v = v.trim().trim_matches('"');
        fields.insert(k, v);
    }
    let access: u64 = fields.get("access")?.parse().ok()?;
    let part = |fields: &std::collections::HashMap<&str, &str>| -> Option<PartitionId> {
        fields
            .get("part")?
            .parse::<u16>()
            .ok()
            .map(PartitionId::from_raw)
    };
    match *fields.get("record")? {
        "sample" => Some(TelemetryRecord::Sample(PartitionSample {
            access,
            part: part(&fields)?,
            actual: fields.get("actual")?.parse().ok()?,
            target: fields.get("target")?.parse().ok()?,
            aperture: fields.get("aperture")?.parse().ok()?,
            window: fields.get("window")?.parse().ok()?,
            churn: fields.get("churn")?.parse().ok()?,
            // Absent keys mean a zero-sharing sample (or an old trace).
            shared: fields
                .get("shared")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            transfers: fields
                .get("transfers")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        })),
        "demotion" => Some(TelemetryRecord::Event(TelemetryEvent::Demotion {
            access,
            part: part(&fields)?,
        })),
        "promotion" => Some(TelemetryRecord::Event(TelemetryEvent::Promotion {
            access,
            part: part(&fields)?,
        })),
        "eviction" => Some(TelemetryRecord::Event(TelemetryEvent::Eviction {
            access,
            part: part(&fields)?,
            forced: fields.get("forced")?.parse().ok()?,
        })),
        "setpoint" => Some(TelemetryRecord::Event(TelemetryEvent::SetpointAdjust {
            access,
            part: part(&fields)?,
            direction: fields.get("direction")?.parse().ok()?,
            window: fields.get("window")?.parse().ok()?,
        })),
        "aperture" => Some(TelemetryRecord::Event(TelemetryEvent::ApertureUpdate {
            access,
            part: part(&fields)?,
            aperture: fields.get("aperture")?.parse().ok()?,
        })),
        "scrub" => Some(TelemetryRecord::Event(TelemetryEvent::Scrub {
            access,
            repairs: fields.get("repairs")?.parse().ok()?,
        })),
        "created" => Some(TelemetryRecord::Event(TelemetryEvent::PartitionCreated {
            access,
            part: part(&fields)?,
            target: fields.get("target")?.parse().ok()?,
        })),
        "destroyed" => Some(TelemetryRecord::Event(TelemetryEvent::PartitionDestroyed {
            access,
            part: part(&fields)?,
        })),
        "shared_hit" => Some(TelemetryRecord::Event(TelemetryEvent::SharedHit {
            access,
            part: part(&fields)?,
            owner: fields
                .get("owner")?
                .parse::<u16>()
                .ok()
                .map(PartitionId::from_raw)?,
        })),
        "transfer" => Some(TelemetryRecord::Event(TelemetryEvent::OwnershipTransfer {
            access,
            part: part(&fields)?,
            from: fields
                .get("from")?
                .parse::<u16>()
                .ok()
                .map(PartitionId::from_raw)?,
        })),
        "replica" => Some(TelemetryRecord::Event(TelemetryEvent::Replica {
            access,
            part: part(&fields)?,
        })),
        _ => None,
    }
}

/// A line-oriented CSV sink over any writer. The first row is
/// [`CSV_HEADER`].
pub struct CsvSink<W: Write + Send> {
    w: W,
    wrote_header: bool,
    bank: Option<u16>,
    err: Option<std::io::Error>,
}

impl CsvSink<BufWriter<File>> {
    /// Creates (truncating) a CSV trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> CsvSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        Self {
            w,
            wrote_header: false,
            bank: None,
            err: None,
        }
    }

    /// Remembers the first I/O failure (later ones are usually cascades).
    fn note(&mut self, r: std::io::Result<()>) {
        if let (Err(e), None) = (r, &self.err) {
            self.err = Some(e);
        }
    }

    fn write_row(&mut self, rec: &TelemetryRecord) {
        // Telemetry is observability, not ground truth: I/O errors drop the
        // record rather than unwinding into the cache's miss path — but the
        // first one is kept so `io_error` can report the trace incomplete.
        if !self.wrote_header {
            self.wrote_header = true;
            let r = writeln!(self.w, "{CSV_HEADER}");
            self.note(r);
        }
        let mut row = to_csv_row(rec);
        if let Some(b) = self.bank {
            // The detail column is last and `k=v;k=v`-structured; an extra
            // key round-trips through `from_csv_row` untouched.
            if !row.ends_with(',') {
                row.push(';');
            }
            let _ = write!(row, "bank={b}");
        }
        let r = writeln!(self.w, "{row}");
        self.note(r);
    }
}

impl<W: Write + Send> TelemetrySink for CsvSink<W> {
    fn record_event(&mut self, ev: &TelemetryEvent) {
        self.write_row(&TelemetryRecord::Event(*ev));
    }
    fn record_sample(&mut self, s: &PartitionSample) {
        self.write_row(&TelemetryRecord::Sample(*s));
    }
    fn flush(&mut self) {
        let r = self.w.flush();
        self.note(r);
    }
    fn io_error(&self) -> Option<String> {
        self.err.as_ref().map(|e| e.to_string())
    }
    fn set_bank(&mut self, bank: Option<u16>) {
        self.bank = bank;
    }
}

impl<W: Write + Send> Drop for CsvSink<W> {
    fn drop(&mut self) {
        // `BufWriter`'s own drop flushes but swallows the error; flush
        // explicitly and say so when the trace lost data.
        let r = self.w.flush();
        self.note(r);
        if let Some(e) = &self.err {
            eprintln!("telemetry: CSV trace lost data: {e}");
        }
    }
}

/// A JSON Lines sink over any writer: one flat object per record.
pub struct JsonSink<W: Write + Send> {
    w: W,
    bank: Option<u16>,
    err: Option<std::io::Error>,
}

impl JsonSink<BufWriter<File>> {
    /// Creates (truncating) a JSON Lines trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        Self {
            w,
            bank: None,
            err: None,
        }
    }

    /// Remembers the first I/O failure (later ones are usually cascades).
    fn note(&mut self, r: std::io::Result<()>) {
        if let (Err(e), None) = (r, &self.err) {
            self.err = Some(e);
        }
    }

    fn write_line(&mut self, rec: &TelemetryRecord) {
        let mut line = to_json_line(rec);
        if let Some(b) = self.bank {
            // Extra keys pass through `from_json_line` untouched.
            line.pop();
            let _ = write!(line, ",\"bank\":{b}}}");
        }
        let r = writeln!(self.w, "{line}");
        self.note(r);
    }
}

impl<W: Write + Send> TelemetrySink for JsonSink<W> {
    fn record_event(&mut self, ev: &TelemetryEvent) {
        self.write_line(&TelemetryRecord::Event(*ev));
    }
    fn record_sample(&mut self, s: &PartitionSample) {
        self.write_line(&TelemetryRecord::Sample(*s));
    }
    fn flush(&mut self) {
        let r = self.w.flush();
        self.note(r);
    }
    fn io_error(&self) -> Option<String> {
        self.err.as_ref().map(|e| e.to_string())
    }
    fn set_bank(&mut self, bank: Option<u16>) {
        self.bank = bank;
    }
}

impl<W: Write + Send> Drop for JsonSink<W> {
    fn drop(&mut self) {
        // `BufWriter`'s own drop flushes but swallows the error; flush
        // explicitly and say so when the trace lost data.
        let r = self.w.flush();
        self.note(r);
        if let Some(e) = &self.err {
            eprintln!("telemetry: JSON trace lost data: {e}");
        }
    }
}

/// Default sampling period (accesses between per-partition snapshots).
pub const DEFAULT_SAMPLE_PERIOD: u64 = 4096;

/// The producer-side telemetry handle a cache embeds.
///
/// Owns the sink, schedules periodic samples, and meters per-partition
/// churn from the event stream so producers report raw events only. All
/// hot-path entry points reduce to one predictable branch when disabled.
pub struct Telemetry {
    sink: Option<Box<dyn TelemetrySink>>,
    sample_period: u64,
    next_sample: u64,
    /// Lines lost per partition since the last sample; index
    /// `num_partitions` holds the unmanaged region.
    churn: Vec<u64>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.sink.is_some())
            .field("sample_period", &self.sample_period)
            .finish()
    }
}

impl Telemetry {
    /// No sink: every entry point is a single null-check.
    pub fn disabled() -> Self {
        Self {
            sink: None,
            sample_period: DEFAULT_SAMPLE_PERIOD,
            next_sample: u64::MAX,
            churn: Vec::new(),
        }
    }

    /// Wraps `sink`, emitting samples every `sample_period` accesses (0
    /// falls back to [`DEFAULT_SAMPLE_PERIOD`]).
    pub fn new(sink: Box<dyn TelemetrySink>, sample_period: u64) -> Self {
        let period = if sample_period == 0 {
            DEFAULT_SAMPLE_PERIOD
        } else {
            sample_period
        };
        Self {
            sink: Some(sink),
            sample_period: period,
            next_sample: period,
            churn: Vec::new(),
        }
    }

    /// Sizes the churn meters for `partitions` partitions (+1 slot for the
    /// unmanaged region, always the last index). Caches call this at
    /// installation and again when `create_partition` grows the slot table;
    /// rebinding is grow-only and keeps accumulated meters (the unmanaged
    /// slot migrates to the new tail), so mid-period lifecycle changes do
    /// not lose churn. Events for out-of-range partitions are still
    /// recorded, just not churn-metered.
    pub fn bind(&mut self, partitions: usize) {
        let want = partitions + 1;
        if self.churn.is_empty() {
            self.churn = vec![0; want];
        } else if want > self.churn.len() {
            let um = self.churn.pop().unwrap_or(0);
            self.churn.resize(want - 1, 0);
            self.churn.push(um);
        }
    }

    /// Whether a sink is installed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The first I/O error the sink has absorbed, if any (see
    /// [`TelemetrySink::io_error`]). Check after [`Self::flush`] to learn
    /// whether the trace on disk is complete.
    pub fn io_error(&self) -> Option<String> {
        self.sink.as_ref().and_then(|s| s.io_error())
    }

    /// The sampling period in accesses.
    pub fn sample_period(&self) -> u64 {
        self.sample_period
    }

    /// Records one event, metering demotions and evictions into the
    /// per-partition churn counters.
    #[inline]
    pub fn event(&mut self, ev: TelemetryEvent) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        match ev {
            TelemetryEvent::Demotion { part, .. } | TelemetryEvent::Eviction { part, .. } => {
                let idx = if part.is_unmanaged() {
                    self.churn.len().saturating_sub(1)
                } else {
                    part.index()
                };
                if let Some(c) = self.churn.get_mut(idx) {
                    *c += 1;
                }
            }
            _ => {}
        }
        sink.record_event(&ev);
    }

    /// Whether a sampling point has been reached at `access`. When it
    /// returns `true` the producer must emit one [`PartitionSample`] per
    /// partition (via [`Self::sample`]) — the schedule advances here.
    #[inline]
    pub fn sample_due(&mut self, access: u64) -> bool {
        match self.sink {
            None => false,
            Some(_) => {
                if access < self.next_sample {
                    return false;
                }
                // Skip missed points rather than bursting to catch up.
                let periods = access / self.sample_period + 1;
                self.next_sample = periods * self.sample_period;
                true
            }
        }
    }

    /// Records one sample. The caller fills everything but `churn`, which
    /// is taken (and reset) from the event-derived meter for `part`.
    pub fn sample(&mut self, mut s: PartitionSample) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let idx = if s.part.is_unmanaged() {
            self.churn.len().saturating_sub(1)
        } else {
            s.part.index()
        };
        if let Some(c) = self.churn.get_mut(idx) {
            s.churn = *c;
            *c = 0;
        }
        sink.record_sample(&s);
    }

    /// Flushes the sink's buffered output.
    pub fn flush(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            sink.flush();
        }
    }

    /// Splits the handle into its sink (if any) and sample period, e.g. so
    /// a banked cache can wrap the sink in a [`SharedSink`] and rebuild one
    /// `Telemetry` per bank with the same period. No flush happens here; the
    /// sink keeps its buffered state.
    pub fn into_parts(mut self) -> (Option<Box<dyn TelemetrySink>>, u64) {
        (self.sink.take(), self.sample_period)
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.flush();
    }
}

impl vantage_snapshot::Snapshot for Telemetry {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        // The sink itself (file handles, rings) cannot be serialized; what
        // makes a resumed trace bit-identical is the sampling schedule and
        // the churn meters, which carry across a checkpoint boundary.
        enc.put_bool(self.sink.is_some());
        enc.put_u64(self.sample_period);
        enc.put_u64(self.next_sample);
        enc.put_u64_slice(&self.churn);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let was_enabled = dec.take_bool()?;
        let period = dec.take_u64()?;
        let next = dec.take_u64()?;
        let churn = dec.take_u64_vec()?;
        if period == 0 {
            return Err(dec.invalid("zero telemetry sample period"));
        }
        // The restored schedule only applies if the resuming run installed a
        // sink again (the sink is reinstalled out-of-band, before restore);
        // a disabled handle stays inert regardless of what the saver had.
        if self.sink.is_some() && was_enabled {
            self.sample_period = period;
            self.next_sample = next;
            self.churn = churn;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(access: u64, part: PartitionId) -> PartitionSample {
        PartitionSample {
            access,
            part,
            actual: 100 + u64::from(part.raw()),
            target: 128,
            aperture: 0.25,
            window: 90,
            churn: 0,
            shared: 0,
            transfers: 0,
        }
    }

    fn representative_records() -> Vec<TelemetryRecord> {
        vec![
            TelemetryRecord::Sample(sample(4096, PartitionId::from_index(0))),
            TelemetryRecord::Sample(sample(4096, UNMANAGED_PART)),
            TelemetryRecord::Event(TelemetryEvent::Demotion {
                access: 1,
                part: PartitionId::from_index(3),
            }),
            TelemetryRecord::Event(TelemetryEvent::Promotion {
                access: 2,
                part: PartitionId::from_index(0),
            }),
            TelemetryRecord::Event(TelemetryEvent::Eviction {
                access: 3,
                part: UNMANAGED_PART,
                forced: false,
            }),
            TelemetryRecord::Event(TelemetryEvent::Eviction {
                access: 4,
                part: PartitionId::from_index(1),
                forced: true,
            }),
            TelemetryRecord::Event(TelemetryEvent::SetpointAdjust {
                access: 5,
                part: PartitionId::from_index(2),
                direction: -1,
                window: 127,
            }),
            TelemetryRecord::Event(TelemetryEvent::ApertureUpdate {
                access: 6,
                part: PartitionId::from_index(2),
                aperture: 0.5,
            }),
            TelemetryRecord::Event(TelemetryEvent::Scrub {
                access: 7,
                repairs: 9,
            }),
            TelemetryRecord::Event(TelemetryEvent::PartitionCreated {
                access: 8,
                part: PartitionId::from_index(40),
                target: 2048,
            }),
            TelemetryRecord::Event(TelemetryEvent::PartitionDestroyed {
                access: 9,
                part: PartitionId::from_index(40),
            }),
            TelemetryRecord::Event(TelemetryEvent::SharedHit {
                access: 10,
                part: PartitionId::from_index(1),
                owner: PartitionId::from_index(2),
            }),
            TelemetryRecord::Event(TelemetryEvent::OwnershipTransfer {
                access: 10,
                part: PartitionId::from_index(1),
                from: PartitionId::from_index(2),
            }),
            TelemetryRecord::Event(TelemetryEvent::Replica {
                access: 11,
                part: PartitionId::from_index(3),
            }),
            TelemetryRecord::Sample(PartitionSample {
                shared: 17,
                transfers: 4,
                ..sample(8192, PartitionId::from_index(1))
            }),
        ]
    }

    #[test]
    fn ring_wraps_and_counts_overwrites() {
        let (mut sink, reader) = RingSink::with_capacity(4);
        for i in 0..10u64 {
            sink.record_event(&TelemetryEvent::Demotion {
                access: i,
                part: PartitionId::from_index(0),
            });
        }
        assert_eq!(reader.len(), 4);
        assert_eq!(reader.overwritten(), 6);
        let recs = reader.records();
        // Oldest-first: accesses 6..10 survive.
        let accesses: Vec<u64> = recs.iter().map(TelemetryRecord::access).collect();
        assert_eq!(accesses, vec![6, 7, 8, 9]);
        assert!(!reader.is_empty());
    }

    #[test]
    fn csv_round_trips_every_record_kind() {
        for rec in representative_records() {
            let row = to_csv_row(&rec);
            assert_eq!(row.split(',').count(), 9, "schema width: {row}");
            let back = from_csv_row(&row).unwrap_or_else(|| panic!("parse {row}"));
            assert_eq!(back, rec, "round trip of {row}");
        }
        assert_eq!(from_csv_row(CSV_HEADER), None, "header is not a record");
        assert_eq!(from_csv_row("garbage"), None);
    }

    #[test]
    fn json_round_trips_every_record_kind() {
        for rec in representative_records() {
            let line = to_json_line(&rec);
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            let back = from_json_line(&line).unwrap_or_else(|| panic!("parse {line}"));
            assert_eq!(back, rec, "round trip of {line}");
        }
        assert_eq!(from_json_line("not json"), None);
        assert_eq!(from_json_line("{\"record\":\"bogus\",\"access\":1}"), None);
    }

    #[test]
    fn csv_sink_writes_header_then_rows() {
        let mut sink = CsvSink::new(Vec::new());
        sink.record_event(&TelemetryEvent::Demotion {
            access: 1,
            part: PartitionId::from_index(0),
        });
        sink.record_sample(&sample(2, PartitionId::from_index(1)));
        sink.flush();
        let text = String::from_utf8(sink.w.clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(from_csv_row(lines[1]).is_some());
        assert!(from_csv_row(lines[2]).is_some());
    }

    /// A writer that fails every operation (for the error-surfacing tests).
    struct BrokenPipe;

    impl Write for BrokenPipe {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe closed",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe closed",
            ))
        }
    }

    #[test]
    fn file_sinks_surface_io_errors_instead_of_swallowing_them() {
        let mut sink = CsvSink::new(BrokenPipe);
        assert_eq!(sink.io_error(), None);
        sink.record_event(&TelemetryEvent::Demotion {
            access: 1,
            part: PartitionId::from_index(0),
        });
        let err = sink.io_error().expect("write failure surfaced");
        assert!(err.contains("pipe closed"), "{err}");

        let mut sink = JsonSink::new(BrokenPipe);
        sink.flush();
        assert!(sink
            .io_error()
            .expect("flush failure surfaced")
            .contains("pipe closed"));

        // The producer handle forwards the sink's sticky error.
        let mut tele = Telemetry::new(Box::new(CsvSink::new(BrokenPipe)), 0);
        tele.event(TelemetryEvent::Scrub {
            access: 1,
            repairs: 0,
        });
        tele.flush();
        assert!(tele.io_error().is_some());

        // A shared (banked) wrapper forwards it too.
        let shared = SharedSink::new(Box::new(JsonSink::new(BrokenPipe)));
        let mut tagged = shared.with_bank(3);
        tagged.record_event(&TelemetryEvent::Demotion {
            access: 2,
            part: PartitionId::from_index(1),
        });
        assert!(tagged.io_error().is_some());

        // In-memory sinks never error.
        let (ring, _reader) = RingSink::with_capacity(4);
        assert_eq!(ring.io_error(), None);
    }

    #[test]
    fn json_sink_emits_one_object_per_line() {
        let mut sink = JsonSink::new(Vec::new());
        for rec in representative_records() {
            match rec {
                TelemetryRecord::Event(ev) => sink.record_event(&ev),
                TelemetryRecord::Sample(s) => sink.record_sample(&s),
            }
        }
        sink.flush();
        let text = String::from_utf8(sink.w.clone()).unwrap();
        let parsed: Vec<TelemetryRecord> = text.lines().filter_map(from_json_line).collect();
        assert_eq!(parsed, representative_records());
    }

    #[test]
    fn telemetry_meters_churn_per_partition() {
        let (sink, reader) = RingSink::with_capacity(64);
        let mut tele = Telemetry::new(Box::new(sink), 8);
        tele.bind(2);
        assert!(tele.enabled());
        tele.event(TelemetryEvent::Demotion {
            access: 1,
            part: PartitionId::from_index(0),
        });
        tele.event(TelemetryEvent::Demotion {
            access: 2,
            part: PartitionId::from_index(0),
        });
        tele.event(TelemetryEvent::Eviction {
            access: 3,
            part: UNMANAGED_PART,
            forced: false,
        });
        tele.event(TelemetryEvent::Promotion {
            access: 4,
            part: PartitionId::from_index(0),
        }); // not churn
        assert!(!tele.sample_due(7));
        assert!(tele.sample_due(8));
        tele.sample(sample(8, PartitionId::from_index(0)));
        tele.sample(sample(8, PartitionId::from_index(1)));
        tele.sample(sample(8, UNMANAGED_PART));
        let churns: Vec<(PartitionId, u64)> = reader
            .records()
            .iter()
            .filter_map(|r| match r {
                TelemetryRecord::Sample(s) => Some((s.part, s.churn)),
                _ => None,
            })
            .collect();
        assert_eq!(
            churns,
            vec![
                (PartitionId::from_index(0), 2),
                (PartitionId::from_index(1), 0),
                (UNMANAGED_PART, 1)
            ]
        );
        // Meters reset after sampling.
        assert!(tele.sample_due(16));
        tele.sample(sample(16, PartitionId::from_index(0)));
        let last = reader.records();
        match last.last().unwrap() {
            TelemetryRecord::Sample(s) => assert_eq!(s.churn, 0),
            _ => panic!("expected sample"),
        }
    }

    #[test]
    fn sampling_schedule_skips_missed_points() {
        let (sink, _reader) = RingSink::with_capacity(4);
        let mut tele = Telemetry::new(Box::new(sink), 100);
        assert!(!tele.sample_due(99));
        assert!(tele.sample_due(100));
        // A long gap schedules the next period after `access`, not a burst.
        assert!(!tele.sample_due(150));
        assert!(tele.sample_due(750));
        assert!(!tele.sample_due(799));
        assert!(tele.sample_due(800));
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let mut tele = Telemetry::disabled();
        assert!(!tele.enabled());
        tele.bind(4);
        tele.event(TelemetryEvent::Demotion {
            access: 1,
            part: PartitionId::from_index(0),
        });
        assert!(!tele.sample_due(u64::MAX - 1));
        tele.sample(sample(1, PartitionId::from_index(0)));
        tele.flush();
    }

    #[test]
    fn shared_sink_clones_funnel_into_one_backend() {
        let (ring, reader) = RingSink::with_capacity(8);
        let shared = SharedSink::new(Box::new(ring));
        let mut bank0 = shared.with_bank(0);
        let mut bank1 = shared.with_bank(1);
        bank0.record_event(&TelemetryEvent::Demotion {
            access: 1,
            part: PartitionId::from_index(2),
        });
        bank1.record_event(&TelemetryEvent::Promotion {
            access: 2,
            part: PartitionId::from_index(0),
        });
        bank0.record_sample(&sample(3, PartitionId::from_index(0)));
        assert_eq!(reader.len(), 3, "all clones reach the shared backend");
    }

    #[test]
    fn csv_bank_tags_round_trip_and_are_ignored_by_parser() {
        let mut sink = CsvSink::new(Vec::new());
        sink.set_bank(Some(3));
        sink.record_event(&TelemetryEvent::Demotion {
            access: 1,
            part: PartitionId::from_index(2),
        });
        sink.record_event(&TelemetryEvent::Eviction {
            access: 2,
            part: PartitionId::from_index(0),
            forced: true,
        });
        sink.record_sample(&sample(3, PartitionId::from_index(1)));
        sink.set_bank(None);
        sink.record_event(&TelemetryEvent::Promotion {
            access: 4,
            part: PartitionId::from_index(0),
        });
        sink.flush();
        let text = String::from_utf8(sink.w.clone()).unwrap();
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert!(lines[0].ends_with("bank=3"), "{}", lines[0]);
        assert!(lines[1].contains("forced=true;bank=3"), "{}", lines[1]);
        assert!(lines[2].ends_with("bank=3"), "{}", lines[2]);
        assert!(!lines[3].contains("bank="), "tag cleared: {}", lines[3]);
        // The tag is transparent to the parser: records decode unchanged.
        assert_eq!(
            from_csv_row(lines[0]),
            Some(TelemetryRecord::Event(TelemetryEvent::Demotion {
                access: 1,
                part: PartitionId::from_index(2)
            }))
        );
        assert_eq!(
            from_csv_row(lines[2]),
            Some(TelemetryRecord::Sample(sample(
                3,
                PartitionId::from_index(1)
            )))
        );
    }

    #[test]
    fn json_bank_tags_round_trip_and_are_ignored_by_parser() {
        let mut sink = JsonSink::new(Vec::new());
        sink.set_bank(Some(7));
        sink.record_event(&TelemetryEvent::Scrub {
            access: 9,
            repairs: 0,
        });
        sink.record_sample(&sample(10, PartitionId::from_index(0)));
        sink.flush();
        let text = String::from_utf8(sink.w.clone()).unwrap();
        for line in text.lines() {
            assert!(line.ends_with(",\"bank\":7}"), "{line}");
        }
        let parsed: Vec<TelemetryRecord> = text.lines().filter_map(from_json_line).collect();
        assert_eq!(
            parsed,
            vec![
                TelemetryRecord::Event(TelemetryEvent::Scrub {
                    access: 9,
                    repairs: 0
                }),
                TelemetryRecord::Sample(sample(10, PartitionId::from_index(0))),
            ]
        );
    }

    #[test]
    fn shared_sink_try_unwrap_requires_sole_ownership() {
        let (ring, reader) = RingSink::with_capacity(8);
        let shared = SharedSink::new(Box::new(ring));
        let mut tagged = shared.with_bank(1);
        tagged.record_event(&TelemetryEvent::Demotion {
            access: 5,
            part: PartitionId::from_index(0),
        });
        let shared = match shared.try_unwrap() {
            Err(s) => s,
            Ok(_) => panic!("unwrap should fail while a clone is alive"),
        };
        drop(tagged);
        let _inner = shared.try_unwrap().expect("now sole owner");
        // RingSink ignores bank tags, so the record is byte-identical to a
        // serial run's.
        assert_eq!(
            reader.records(),
            vec![TelemetryRecord::Event(TelemetryEvent::Demotion {
                access: 5,
                part: PartitionId::from_index(0)
            })]
        );
    }

    #[test]
    fn into_parts_splits_sink_and_period() {
        let (sink, reader) = RingSink::with_capacity(4);
        let tele = Telemetry::new(Box::new(sink), 512);
        let (sink, period) = tele.into_parts();
        assert_eq!(period, 512);
        let mut sink = sink.expect("sink present");
        sink.record_event(&TelemetryEvent::Demotion {
            access: 1,
            part: PartitionId::from_index(0),
        });
        assert_eq!(reader.len(), 1);
        let (none, period) = Telemetry::disabled().into_parts();
        assert!(none.is_none());
        assert_eq!(period, DEFAULT_SAMPLE_PERIOD);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut tele = Telemetry::new(Box::new(NullSink), 0);
        assert_eq!(tele.sample_period(), DEFAULT_SAMPLE_PERIOD);
        tele.bind(1);
        tele.event(TelemetryEvent::Scrub {
            access: 1,
            repairs: 0,
        });
        assert!(tele.sample_due(DEFAULT_SAMPLE_PERIOD));
        tele.sample(sample(2, PartitionId::from_index(0)));
    }
}
