//! [`ParallelBankedLlc`]: a bank-sharded LLC whose batches are served by a
//! worker pool.
//!
//! The serial [`BankedLlc`] already decomposes a cache into independent
//! address-hashed banks; this module exploits that independence for
//! parallelism. [`Llc::access_batch`] shards the batch by bank hash on the
//! producing thread (in request order), streams per-bank sub-batches through
//! bounded SPSC queues to scoped workers, and scatters the outcomes back
//! into request order. Each bank is owned by exactly one worker, so every
//! bank still sees its requests strictly in trace order — which makes the
//! results (stats, partition sizes, per-bank telemetry streams, and the
//! outcome of every request) *bit-identical* to the serial `BankedLlc`,
//! regardless of `bank_jobs`. Only the interleaving of telemetry records
//! across banks varies.
//!
//! The engine parallelizes *throughput*, not latency: one `access` still
//! runs inline (there is nothing to overlap), and batches below
//! [`ParallelBankedLlc::PARALLEL_THRESHOLD`] fall back to the serial grouped
//! path, where per-bank batch specializations (prefetch pipelining) do the
//! amortizing.

use vantage_cache::{LineAddr, PartitionId};
use vantage_telemetry::Telemetry;

use crate::banked::BankedLlc;
use crate::error::SchemeConfigError;
use crate::llc::{AccessOutcome, AccessRequest, Llc, LlcStats};
use crate::sharded::Sharded;
use crate::spsc;

/// One unit of work shipped to a worker: a run of same-bank requests plus
/// the positions their outcomes scatter back to.
struct WorkBatch {
    bank: usize,
    idxs: Vec<u32>,
    reqs: Vec<AccessRequest>,
}

/// A multi-bank LLC that serves large batches with a scoped worker pool.
///
/// Composition over [`BankedLlc`]: construction, target splitting, stats
/// aggregation, telemetry fan-out and the single-access path all delegate;
/// only `access_batch` differs. Workers are spawned per batch with
/// [`std::thread::scope`] — batch sizes in the thousands amortize the spawn
/// cost, and no state outlives the call.
///
/// # Example
///
/// ```
/// use vantage_cache::SetAssocArray;
/// use vantage_partitioning::{
///     AccessRequest, BaselineLlc, Llc, ParallelBankedLlc, PartitionId, RankPolicy,
/// };
///
/// let banks: Vec<Box<dyn Llc>> = (0..4)
///     .map(|b| {
///         Box::new(BaselineLlc::try_new(
///             Box::new(SetAssocArray::hashed(1024, 16, b)),
///             2,
///             RankPolicy::Lru,
///         ).expect("valid baseline geometry")) as Box<dyn Llc>
///     })
///     .collect();
/// let mut llc = ParallelBankedLlc::try_new(banks, 7, 2).expect("valid bank set");
/// let reqs: Vec<AccessRequest> =
///     (0..100).map(|i| AccessRequest::read(PartitionId::from_index(0), vantage_cache::LineAddr(i))).collect();
/// let mut out = Vec::new();
/// llc.access_batch(&reqs, &mut out);
/// assert_eq!(out.len(), 100);
/// ```
pub struct ParallelBankedLlc {
    inner: BankedLlc,
    jobs: usize,
    batch: usize,
}

impl ParallelBankedLlc {
    /// Default number of same-bank requests per [`WorkBatch`].
    pub const DEFAULT_BATCH: usize = 64;

    /// In-flight batches per worker queue before the producer blocks.
    const QUEUE_CAP: usize = 8;

    /// Batches smaller than this are served serially — the worker-pool
    /// setup cost would dominate.
    pub const PARALLEL_THRESHOLD: usize = 256;

    /// Assembles a parallel banked LLC from per-bank caches; `jobs` is the
    /// worker count (clamped to the bank count, 0 treated as 1).
    ///
    /// # Errors
    ///
    /// Propagates [`BankedLlc::try_new`]'s errors.
    pub fn try_new(
        banks: Vec<Box<dyn Llc>>,
        bank_seed: u64,
        jobs: usize,
    ) -> Result<Self, SchemeConfigError> {
        let inner = BankedLlc::try_new(banks, bank_seed)?;
        let jobs = jobs.clamp(1, inner.num_banks());
        Ok(Self {
            inner,
            jobs,
            batch: Self::DEFAULT_BATCH,
        })
    }

    /// Wraps an already-assembled serial banked cache.
    pub fn from_banked(inner: BankedLlc, jobs: usize) -> Self {
        let jobs = jobs.clamp(1, inner.num_banks());
        Self {
            inner,
            jobs,
            batch: Self::DEFAULT_BATCH,
        }
    }

    /// Sets the per-bank sub-batch size (0 restores the default).
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch = if batch == 0 {
            Self::DEFAULT_BATCH
        } else {
            batch
        };
        self
    }

    /// The configured worker count.
    pub fn bank_jobs(&self) -> usize {
        self.jobs
    }

    /// The serial engine this cache wraps (e.g. for per-bank inspection).
    pub fn as_banked(&self) -> &BankedLlc {
        &self.inner
    }

    /// Unwraps back into the serial engine.
    pub fn into_banked(self) -> BankedLlc {
        self.inner
    }

    /// The sharded fan-out: group by bank on this thread (in order), stream
    /// bounded batches to `jobs` workers, scatter outcomes back.
    fn access_batch_parallel(&mut self, reqs: &[AccessRequest], out: &mut Vec<AccessOutcome>) {
        let jobs = self.jobs;
        let batch = self.batch;
        let seed = self.inner.bank_seed();
        let nbanks = Sharded::num_banks(&self.inner);
        let start = out.len();
        out.resize(start + reqs.len(), AccessOutcome::Miss);
        let out_tail = &mut out[start..];

        // Round-robin banks over workers: worker j owns every bank b with
        // b % jobs == j. Disjoint &mut borrows, checked by iter_mut.
        let mut worker_banks: Vec<Vec<(usize, &mut Box<dyn Llc>)>> =
            (0..jobs).map(|_| Vec::new()).collect();
        for (b, bank) in self.inner.banks_mut().iter_mut().enumerate() {
            worker_banks[b % jobs].push((b, bank));
        }

        std::thread::scope(|s| {
            let mut senders = Vec::with_capacity(jobs);
            let mut handles = Vec::with_capacity(jobs);
            for my_banks in worker_banks {
                let (tx, rx) = spsc::channel::<WorkBatch>(Self::QUEUE_CAP);
                senders.push(tx);
                handles.push(s.spawn(move || worker_loop(my_banks, &rx)));
            }

            // Produce: accumulate per-bank runs, flush a bank's run to its
            // owner the moment it reaches the batch size. Per-bank FIFO
            // order is preserved end-to-end (ordered scan here, FIFO queue,
            // single worker per bank), which is the determinism argument.
            let mut idx_buf: Vec<Vec<u32>> = vec![Vec::with_capacity(batch); nbanks];
            let mut req_buf: Vec<Vec<AccessRequest>> = vec![Vec::with_capacity(batch); nbanks];
            for (i, &req) in reqs.iter().enumerate() {
                let b = vantage_cache::hash::mix_bucket(req.addr.0, seed, nbanks as u32) as usize;
                idx_buf[b].push(i as u32);
                req_buf[b].push(req);
                if req_buf[b].len() == batch {
                    let _ = senders[b % jobs].send(WorkBatch {
                        bank: b,
                        idxs: std::mem::replace(&mut idx_buf[b], Vec::with_capacity(batch)),
                        reqs: std::mem::replace(&mut req_buf[b], Vec::with_capacity(batch)),
                    });
                }
            }
            for b in 0..nbanks {
                if !req_buf[b].is_empty() {
                    let _ = senders[b % jobs].send(WorkBatch {
                        bank: b,
                        idxs: std::mem::take(&mut idx_buf[b]),
                        reqs: std::mem::take(&mut req_buf[b]),
                    });
                }
            }
            drop(senders); // EOF: workers drain and return

            for h in handles {
                // A worker panic (a bank's scheme panicked mid-access)
                // propagates rather than silently losing outcomes.
                let results = h.join().expect("bank worker panicked");
                for (i, o) in results {
                    out_tail[i as usize] = o;
                }
            }
        });
    }
}

/// Serves batches for one worker's banks until the queue signals EOF;
/// returns the (request-index, outcome) pairs for the main thread to
/// scatter.
fn worker_loop(
    mut my_banks: Vec<(usize, &mut Box<dyn Llc>)>,
    rx: &spsc::Receiver<WorkBatch>,
) -> Vec<(u32, AccessOutcome)> {
    let mut results = Vec::new();
    let mut scratch = Vec::new();
    while let Some(wb) = rx.recv() {
        let (_, bank) = my_banks
            .iter_mut()
            .find(|(b, _)| *b == wb.bank)
            .expect("batch routed to owning worker");
        scratch.clear();
        bank.access_batch(&wb.reqs, &mut scratch);
        results.extend(wb.idxs.iter().copied().zip(scratch.iter().copied()));
    }
    results
}

impl Llc for ParallelBankedLlc {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        self.inner.access(req)
    }

    fn access_batch(&mut self, reqs: &[AccessRequest], out: &mut Vec<AccessOutcome>) {
        if self.jobs <= 1 || reqs.len() < Self::PARALLEL_THRESHOLD {
            // Serial grouped path: same result, no pool setup.
            return self.inner.access_batch(reqs, out);
        }
        self.access_batch_parallel(reqs, out);
    }

    fn num_partitions(&self) -> usize {
        self.inner.num_partitions()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn set_targets(&mut self, targets: &[u64]) {
        self.inner.set_targets(targets);
    }

    fn partition_size(&self, part: PartitionId) -> u64 {
        self.inner.partition_size(part)
    }

    fn create_partition(
        &mut self,
        spec: crate::llc::PartitionSpec,
    ) -> Result<PartitionId, crate::llc::LifecycleError> {
        self.inner.create_partition(spec)
    }

    fn destroy_partition(&mut self, part: PartitionId) -> Result<(), crate::llc::LifecycleError> {
        self.inner.destroy_partition(part)
    }

    fn observations(&mut self) -> crate::llc::PartitionObservations {
        self.inner.observations()
    }

    fn set_share_mode(&mut self, mode: vantage_cache::ShareMode) -> bool {
        self.inner.set_share_mode(mode)
    }

    fn share_mode(&self) -> vantage_cache::ShareMode {
        self.inner.share_mode()
    }

    fn stats(&self) -> &LlcStats {
        self.inner.stats()
    }

    fn stats_mut(&mut self) -> &mut LlcStats {
        self.inner.stats_mut()
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) -> bool {
        self.inner.set_telemetry(telemetry)
    }

    fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.inner.take_telemetry()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl vantage_snapshot::Snapshot for ParallelBankedLlc {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        // The worker pool holds no simulation state; the wrapped serial
        // engine is the whole checkpoint. A serial run's snapshot therefore
        // resumes under any job count, and vice versa.
        self.inner.save_state(enc);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        self.inner.load_state(dec)
    }
}

impl Sharded for ParallelBankedLlc {
    fn num_banks(&self) -> usize {
        Sharded::num_banks(&self.inner)
    }

    fn bank_of(&self, addr: LineAddr) -> usize {
        self.inner.bank_of(addr)
    }

    fn bank(&self, i: usize) -> &dyn Llc {
        self.inner.bank(i)
    }

    fn bank_mut(&mut self, i: usize) -> &mut dyn Llc {
        self.inner.bank_mut(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{BaselineLlc, RankPolicy};
    use vantage_cache::ZArray;

    fn banks(n: usize, lines_per_bank: usize) -> Vec<Box<dyn Llc>> {
        (0..n as u64)
            .map(|b| {
                Box::new(
                    BaselineLlc::try_new(
                        Box::new(ZArray::new(lines_per_bank, 4, 16, b)),
                        2,
                        RankPolicy::Lru,
                    )
                    .expect("valid baseline geometry"),
                ) as Box<dyn Llc>
            })
            .collect()
    }

    fn trace(n: u64) -> Vec<AccessRequest> {
        (0..n)
            .map(|i| {
                AccessRequest::read(
                    PartitionId::from_index((i % 2) as usize),
                    LineAddr((i * 2654435761) % 3000),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let reqs = trace(20_000);
        let mut serial = BankedLlc::try_new(banks(4, 512), 7).expect("valid bank set");
        let mut serial_out = Vec::new();
        serial.access_batch(&reqs, &mut serial_out);

        for jobs in [1, 2, 4] {
            let mut par = ParallelBankedLlc::try_new(banks(4, 512), 7, jobs)
                .expect("valid bank set")
                .with_batch_size(32);
            let mut par_out = Vec::new();
            par.access_batch(&reqs, &mut par_out);
            assert_eq!(serial_out, par_out, "outcomes diverge at jobs={jobs}");
            assert_eq!(serial.stats_mut().hits, par.stats_mut().hits);
            assert_eq!(serial.stats_mut().misses, par.stats_mut().misses);
            assert_eq!(serial.stats_mut().evictions, par.stats_mut().evictions);
            for p in 0..2 {
                assert_eq!(
                    serial.partition_size(PartitionId::from_index(p)),
                    par.partition_size(PartitionId::from_index(p))
                );
            }
        }
    }

    #[test]
    fn small_batches_take_the_serial_path() {
        let mut par = ParallelBankedLlc::try_new(banks(2, 256), 3, 2).expect("valid bank set");
        let reqs = trace(ParallelBankedLlc::PARALLEL_THRESHOLD as u64 - 1);
        let mut out = Vec::new();
        par.access_batch(&reqs, &mut out);
        assert_eq!(out.len(), reqs.len());
    }

    #[test]
    fn jobs_clamped_to_bank_count() {
        let par = ParallelBankedLlc::try_new(banks(2, 256), 3, 16).expect("valid bank set");
        assert_eq!(par.bank_jobs(), 2);
        let par = ParallelBankedLlc::try_new(banks(2, 256), 3, 0).expect("valid bank set");
        assert_eq!(par.bank_jobs(), 1);
    }

    #[test]
    fn delegates_llc_surface_to_inner() {
        let mut par = ParallelBankedLlc::try_new(banks(4, 256), 9, 2).expect("valid bank set");
        assert_eq!(par.capacity(), 1024);
        assert_eq!(par.num_partitions(), 2);
        assert!(par.name().starts_with("4x"));
        assert_eq!(Sharded::num_banks(&par), 4);
        par.set_targets(&[600, 424]);
        let addr = LineAddr(0x55);
        let b = par.bank_of(addr);
        par.access(AccessRequest::read(PartitionId::from_index(0), addr));
        assert_eq!(par.bank(b).stats().total_misses(), 1);
        assert_eq!(par.bank_mut(b).num_partitions(), 2);
        let serial = par.into_banked();
        assert_eq!(serial.capacity(), 1024);
    }
}
