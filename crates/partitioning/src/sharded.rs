//! The [`Sharded`] trait: caches composed of independent address-hashed
//! banks.
//!
//! Multi-banked LLCs ([`BankedLlc`](crate::BankedLlc) and its parallel
//! counterpart) split capacity into `B` independent banks and steer every
//! access to one bank by hashing its line address. Experiments and telemetry
//! code need to see through that composition — which bank an address maps
//! to, how many banks there are, per-bank statistics — without downcasting
//! to a concrete type. `Sharded` is that common surface.

use vantage_cache::LineAddr;

use crate::llc::Llc;

/// A cache whose capacity is split into independent address-hashed banks.
///
/// Implementors guarantee a *stable* bank mapping: `bank_of(addr)` depends
/// only on the address and the cache's construction-time configuration, never
/// on access history. That stability is what makes bank-sharded parallel
/// simulation deterministic — the same trace always decomposes into the same
/// per-bank subtraces.
pub trait Sharded {
    /// Number of banks.
    fn num_banks(&self) -> usize;

    /// The bank serving `addr` (always `< num_banks()`).
    fn bank_of(&self, addr: LineAddr) -> usize;

    /// Shared view of bank `i`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `i >= num_banks()`.
    fn bank(&self, i: usize) -> &dyn Llc;

    /// Mutable view of bank `i` (e.g. to reset its statistics).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `i >= num_banks()`.
    fn bank_mut(&mut self, i: usize) -> &mut dyn Llc;
}
