//! The unpartitioned baseline LLC: a plain shared cache with LRU or RRIP
//! replacement over any cache array.
//!
//! This is the cache all the paper's throughput figures normalize against
//! ("an unpartitioned 16-way set-associative L2 with LRU" in Fig. 6, 64-way
//! in Fig. 7) and, over a zcache array, the "LRU-Z4/52" configuration of
//! Fig. 6b. Partition IDs are still tracked so experiments can observe how
//! free-for-all sharing divides capacity, but targets are ignored.

use vantage_cache::{
    CacheArray, Frame, Ownership, PartitionId, RripConfig, RripPolicy, ShareMode, TagMeta, Walk,
    TAG_UNMANAGED,
};
use vantage_telemetry::{PartitionSample, Telemetry, TelemetryEvent};

use crate::error::SchemeConfigError;
use crate::llc::{AccessOutcome, AccessRequest, Llc, LlcStats, PartitionObservations};

/// Replacement ranking used by [`BaselineLlc`].
#[derive(Clone, Debug)]
pub enum RankPolicy {
    /// Exact least-recently-used (per-line access clocks).
    Lru,
    /// An RRIP variant (see [`RripConfig`]).
    Rrip(RripConfig),
}

enum RankState {
    /// Exact LRU needs full-width clocks; the shared stamp lane is unused.
    Lru { last: Vec<u64>, clock: u64 },
    /// RRPVs live in the shared [`TagMeta`] stamp lane.
    Rrip { policy: RripPolicy },
}

/// An unpartitioned shared cache.
///
/// # Example
///
/// ```
/// use vantage_cache::SetAssocArray;
/// use vantage_partitioning::{AccessRequest, BaselineLlc, Llc, PartitionId, RankPolicy};
///
/// let array = SetAssocArray::hashed(4096, 16, 1);
/// let mut llc = BaselineLlc::try_new(Box::new(array), 4, RankPolicy::Lru).expect("valid baseline geometry");
/// llc.access(AccessRequest::read(PartitionId::from_index(0), 0x10.into()));
/// assert_eq!(llc.stats().misses[0], 1);
/// llc.access(AccessRequest::read(PartitionId::from_index(0), 0x10.into()));
/// assert_eq!(llc.stats().hits[0], 1);
/// ```
pub struct BaselineLlc {
    array: Box<dyn CacheArray>,
    rank: RankState,
    /// Per-frame tag lanes shared with the Vantage core: the partition lane
    /// records which partition inserted each line (stats only,
    /// [`TAG_UNMANAGED`] for never-filled frames); the stamp lane carries
    /// RRPVs under [`RankState::Rrip`] and is unused under LRU.
    meta: TagMeta,
    part_lines: Vec<u64>,
    /// Cross-partition sharing resolution and its per-partition counters.
    own: Ownership,
    stats: LlcStats,
    walk: Walk,
    moves: Vec<(Frame, Frame)>,
    tele: Telemetry,
    accesses: u64,
    name: &'static str,
}

impl BaselineLlc {
    /// Creates an unpartitioned cache over `array` serving `partitions`
    /// requestors with the given replacement `rank` policy. Rejects
    /// partition counts outside `1..=u16::MAX`.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeConfigError::BadPartitionCount`] for an invalid
    /// `partitions`.
    pub fn try_new(
        array: Box<dyn CacheArray>,
        partitions: usize,
        rank: RankPolicy,
    ) -> Result<Self, SchemeConfigError> {
        if partitions == 0 || partitions > u16::MAX as usize {
            return Err(SchemeConfigError::BadPartitionCount { partitions });
        }
        let frames = array.num_frames();
        let (rank, name) = match rank {
            RankPolicy::Lru => (
                RankState::Lru {
                    last: vec![0; frames],
                    clock: 0,
                },
                "Baseline-LRU",
            ),
            RankPolicy::Rrip(cfg) => (
                RankState::Rrip {
                    policy: RripPolicy::new(cfg),
                },
                "Baseline-RRIP",
            ),
        };
        Ok(Self {
            array,
            rank,
            meta: TagMeta::new(frames),
            part_lines: vec![0; partitions],
            own: Ownership::new(ShareMode::Adopt, partitions),
            stats: LlcStats::new(partitions),
            walk: Walk::with_capacity(64),
            moves: Vec::with_capacity(8),
            tele: Telemetry::disabled(),
            accesses: 0,
            name,
        })
    }

    /// Emits one size sample per partition (baselines have no targets or
    /// apertures; those fields report 0).
    #[cold]
    fn emit_samples(&mut self) {
        for part in 0..self.part_lines.len() {
            self.tele.sample(PartitionSample {
                access: self.accesses,
                part: PartitionId::from_index(part),
                actual: self.part_lines[part],
                target: 0,
                aperture: 0.0,
                window: 0,
                churn: 0,
                shared: self.own.shared_hits()[part],
                transfers: self.own.transfers()[part],
            });
        }
    }

    /// Read-only access to the underlying array.
    pub fn array(&self) -> &dyn CacheArray {
        self.array.as_ref()
    }

    fn on_hit(&mut self, frame: Frame) {
        match &mut self.rank {
            RankState::Lru { last, clock } => {
                *clock += 1;
                last[frame as usize] = *clock;
            }
            RankState::Rrip { policy } => {
                self.meta.set_ts(frame as usize, policy.hit_rrpv());
            }
        }
    }

    fn select_victim(&mut self) -> usize {
        if let Some(i) = self.walk.first_empty() {
            return i;
        }
        match &mut self.rank {
            RankState::Lru { last, .. } => self
                .walk
                .nodes
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| last[n.frame as usize])
                .map(|(i, _)| i)
                .expect("walk non-empty"),
            RankState::Rrip { policy } => {
                let cands: Vec<u8> = self
                    .walk
                    .nodes
                    .iter()
                    .map(|n| self.meta.ts(n.frame as usize))
                    .collect();
                let (victim, aging) = policy.select_victim(&cands);
                if aging > 0 {
                    let max = policy.max_rrpv();
                    for n in &self.walk.nodes {
                        let f = n.frame as usize;
                        let v = self.meta.ts(f);
                        self.meta.set_ts(f, v.saturating_add(aging).min(max));
                    }
                }
                victim
            }
        }
    }
}

impl Llc for BaselineLlc {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        let AccessRequest { part, addr, .. } = req;
        let part = part.index();
        self.accesses += 1;
        if self.tele.sample_due(self.accesses) {
            self.emit_samples();
        }
        let addr = self.own.effective_addr(part as u16, addr);
        if let Some(frame) = self.array.lookup(addr) {
            let owner = self.meta.part(frame as usize);
            if owner != part as u16 {
                self.tele.event(TelemetryEvent::SharedHit {
                    access: self.accesses,
                    part: PartitionId::from_index(part),
                    owner: PartitionId::from_raw(owner),
                });
                if self.own.on_shared_hit(part as u16) {
                    // Adopt: the accessor takes the line over.
                    self.meta.set_part(frame as usize, part as u16);
                    self.part_lines[owner as usize] -= 1;
                    self.part_lines[part] += 1;
                    self.tele.event(TelemetryEvent::OwnershipTransfer {
                        access: self.accesses,
                        part: PartitionId::from_index(part),
                        from: PartitionId::from_raw(owner),
                    });
                }
            }
            self.on_hit(frame);
            self.stats.hits[part] += 1;
            return AccessOutcome::Hit;
        }
        self.stats.misses[part] += 1;
        if let RankState::Rrip { policy, .. } = &mut self.rank {
            policy.note_miss(part, addr);
        }
        self.array.walk(addr, &mut self.walk);
        let victim = self.select_victim();
        let evicted = self.walk.nodes[victim].is_occupied();
        if evicted {
            self.stats.evictions += 1;
            let vf = self.walk.nodes[victim].frame as usize;
            let vowner = self.meta.part(vf);
            self.part_lines[vowner as usize] -= 1;
            self.tele.event(TelemetryEvent::Eviction {
                access: self.accesses,
                part: PartitionId::from_raw(vowner),
                forced: false,
            });
        }
        self.moves.clear();
        let landing = {
            // Split borrow: install needs &mut array only.
            let walk = &self.walk;
            self.array.install(addr, walk, victim, &mut self.moves)
        };
        // Relocate per-frame metadata along with the moved lines (both tag
        // lanes move together; LRU clocks ride in their own lane).
        for &(from, to) in &self.moves {
            self.meta.copy(from, to);
            if let RankState::Lru { last, .. } = &mut self.rank {
                last[to as usize] = last[from as usize];
            }
        }
        self.meta.set_part(landing as usize, part as u16);
        self.part_lines[part] += 1;
        if self.own.mode() == ShareMode::Replicate {
            self.own.on_replica_fill(part as u16);
            self.tele.event(TelemetryEvent::Replica {
                access: self.accesses,
                part: PartitionId::from_index(part),
            });
        }
        match &mut self.rank {
            RankState::Lru { last, clock } => {
                *clock += 1;
                last[landing as usize] = *clock;
            }
            RankState::Rrip { policy } => {
                let v = policy.insertion_rrpv(part, addr);
                self.meta.set_ts(landing as usize, v);
            }
        }
        AccessOutcome::Miss
    }

    fn num_partitions(&self) -> usize {
        self.part_lines.len()
    }

    fn capacity(&self) -> usize {
        self.array.num_frames()
    }

    fn set_targets(&mut self, targets: &[u64]) {
        // Unpartitioned: targets are advisory no-ops, but validate shape so
        // misuse is caught uniformly across schemes.
        assert_eq!(
            targets.len(),
            self.part_lines.len(),
            "one target per partition"
        );
    }

    fn partition_size(&self, part: PartitionId) -> u64 {
        self.part_lines[part.index()]
    }

    fn stats(&self) -> &LlcStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut LlcStats {
        &mut self.stats
    }

    fn set_share_mode(&mut self, mode: ShareMode) -> bool {
        self.own.set_mode(mode);
        true
    }

    fn share_mode(&self) -> ShareMode {
        self.own.mode()
    }

    fn observations(&mut self) -> PartitionObservations {
        let n = self.part_lines.len();
        let mut obs = PartitionObservations::new(n);
        obs.actual.copy_from_slice(&self.part_lines);
        obs.hits.copy_from_slice(&self.stats.hits);
        obs.misses.copy_from_slice(&self.stats.misses);
        obs.shared_hits.copy_from_slice(self.own.shared_hits());
        obs.ownership_transfers
            .copy_from_slice(self.own.transfers());
        self.own.reset_counters();
        obs
    }

    fn set_telemetry(&mut self, mut telemetry: Telemetry) -> bool {
        telemetry.bind(self.part_lines.len());
        self.tele = telemetry;
        true
    }

    fn take_telemetry(&mut self) -> Option<Telemetry> {
        if self.tele.enabled() {
            Some(std::mem::take(&mut self.tele))
        } else {
            None
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

impl vantage_snapshot::Snapshot for BaselineLlc {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        match &self.rank {
            RankState::Lru { last, clock } => {
                enc.put_u8(0);
                enc.put_u64_slice(last);
                enc.put_u64(*clock);
            }
            RankState::Rrip { policy } => {
                enc.put_u8(1);
                policy.save_state(enc);
                enc.put_u8_slice(self.meta.ts_lane());
            }
        }
        enc.put_u16_slice(self.meta.parts());
        enc.put_u64_slice(&self.part_lines);
        self.stats.save_state(enc);
        enc.put_u64(self.accesses);
        self.tele.save_state(enc);
        self.array.save_state(enc);
        // v5 ownership tail. Readers detect it by presence (older
        // snapshots simply end here), mirroring the v3 lifecycle tail.
        self.own.save_state(enc);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let frames = self.meta.len();
        let partitions = self.part_lines.len();
        let tag = dec.take_u8()?;
        enum RankLoad {
            Lru(Vec<u64>, u64),
            Rrip(Vec<u8>),
        }
        let rank = match (tag, &mut self.rank) {
            (0, RankState::Lru { .. }) => {
                let last = dec.take_u64_vec()?;
                if last.len() != frames {
                    return Err(dec.mismatch("LRU clock count differs from frame count"));
                }
                RankLoad::Lru(last, dec.take_u64()?)
            }
            (1, RankState::Rrip { policy, .. }) => {
                policy.load_state(dec)?;
                let rrpv = dec.take_u8_vec()?;
                if rrpv.len() != frames {
                    return Err(dec.mismatch("RRPV count differs from frame count"));
                }
                let max = policy.max_rrpv();
                if rrpv.iter().any(|&v| v > max) {
                    return Err(dec.invalid("RRPV above configured maximum"));
                }
                RankLoad::Rrip(rrpv)
            }
            (0 | 1, _) => return Err(dec.mismatch("replacement policy kind differs from snapshot")),
            _ => return Err(dec.invalid("unknown replacement-policy tag")),
        };
        let owner = dec.take_u16_vec()?;
        if owner.len() != frames {
            return Err(dec.mismatch("owner map length differs from frame count"));
        }
        // v2 snapshots mark never-filled frames with the [`TAG_UNMANAGED`]
        // sentinel; v1 snapshots left them at owner 0. Both pass here, and
        // the normalization below makes them indistinguishable afterwards.
        if owner
            .iter()
            .any(|&o| o != TAG_UNMANAGED && o as usize >= partitions)
        {
            return Err(dec.invalid("frame owner beyond partition count"));
        }
        let part_lines = dec.take_u64_vec()?;
        if part_lines.len() != partitions {
            return Err(dec.mismatch("partition-size count differs"));
        }
        self.stats.load_state(dec)?;
        let accesses = dec.take_u64()?;
        self.tele.load_state(dec)?;
        self.array.load_state(dec)?;
        match (rank, &mut self.rank) {
            (RankLoad::Lru(last, clock), RankState::Lru { last: l, clock: c }) => {
                *l = last;
                *c = clock;
                self.meta.load_lanes(owner, vec![0u8; frames]);
            }
            (RankLoad::Rrip(rrpv), RankState::Rrip { .. }) => {
                self.meta.load_lanes(owner, rrpv);
            }
            _ => unreachable!("tag validated against variant above"),
        }
        // Normalize unoccupied frames to the sentinel convention so a v1
        // snapshot restores into exactly the state a fresh v2 run would
        // have. Occupied frames must carry a real partition ID.
        for f in 0..frames {
            if self.array.occupant(f as u32).is_none() {
                self.meta.set(f, TAG_UNMANAGED, 0);
            } else if self.meta.part(f) == TAG_UNMANAGED {
                return Err(dec.invalid("occupied frame without an owner"));
            }
        }
        self.part_lines = part_lines;
        self.accesses = accesses;
        // Pre-v5 snapshots end here: no ownership tail means the host's
        // configured mode stands and the sharing counters start at zero.
        if dec.remaining() > 0 {
            self.own.load_state(dec)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_cache::LineAddr;
    use vantage_cache::{RripMode, SetAssocArray, ZArray};

    fn lru_llc(frames: usize, ways: usize) -> BaselineLlc {
        BaselineLlc::try_new(
            Box::new(SetAssocArray::hashed(frames, ways, 3)),
            2,
            RankPolicy::Lru,
        )
        .expect("valid baseline geometry")
    }

    #[test]
    fn hit_after_miss() {
        let mut c = lru_llc(256, 4);
        assert_eq!(
            c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(1))),
            AccessOutcome::Miss
        );
        assert_eq!(
            c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(1))),
            AccessOutcome::Hit
        );
        assert_eq!(c.stats().hits[0], 1);
        assert_eq!(c.stats().misses[0], 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Modulo-indexed 1-set cache so we control the conflict pattern.
        let array = SetAssocArray::modulo(4, 4);
        let mut c = BaselineLlc::try_new(Box::new(array), 1, RankPolicy::Lru)
            .expect("valid baseline geometry");
        for i in 0..4u64 {
            c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
        }
        // Touch 0 to make 1 the LRU line.
        c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(0)));
        c.access(AccessRequest::read(
            PartitionId::from_index(0),
            LineAddr(100),
        )); // evicts 1
        assert_eq!(
            c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(0))),
            AccessOutcome::Hit
        );
        assert_eq!(
            c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(1))),
            AccessOutcome::Miss
        );
    }

    #[test]
    fn partition_sizes_track_ownership() {
        let mut c = lru_llc(256, 4);
        for i in 0..10u64 {
            c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
        }
        for i in 100..105u64 {
            c.access(AccessRequest::read(PartitionId::from_index(1), LineAddr(i)));
        }
        assert_eq!(c.partition_size(PartitionId::from_index(0)), 10);
        assert_eq!(c.partition_size(PartitionId::from_index(1)), 5);
        assert_eq!(c.capacity(), 256);
    }

    #[test]
    fn works_over_zcache_with_relocations() {
        let array = ZArray::new(512, 4, 16, 5);
        let mut c = BaselineLlc::try_new(Box::new(array), 1, RankPolicy::Lru)
            .expect("valid baseline geometry");
        // Drive enough traffic to force evictions with relocations.
        for i in 0..4096u64 {
            c.access(AccessRequest::read(
                PartitionId::from_index(0),
                LineAddr(i % 700),
            ));
        }
        assert!(c.stats().evictions > 0);
        assert_eq!(
            c.partition_size(PartitionId::from_index(0)),
            c.array().occupancy() as u64
        );
        // Re-access a recently used window: mostly hits.
        let before = c.stats().hits[0];
        for i in 0..50u64 {
            c.access(AccessRequest::read(
                PartitionId::from_index(0),
                LineAddr(i % 700),
            ));
        }
        assert!(c.stats().hits[0] > before);
    }

    #[test]
    fn rrip_baseline_runs() {
        let array = SetAssocArray::hashed(512, 16, 9);
        let cfg = RripConfig::paper(RripMode::Drrip, 2, 11);
        let mut c = BaselineLlc::try_new(Box::new(array), 2, RankPolicy::Rrip(cfg))
            .expect("valid baseline geometry");
        for i in 0..10_000u64 {
            c.access(AccessRequest::read(
                PartitionId::from_index((i % 2) as usize),
                LineAddr(i % 1500),
            ));
        }
        let s = c.stats();
        assert!(s.total_hits() > 0);
        assert!(s.total_misses() > 0);
        assert_eq!(c.name(), "Baseline-RRIP");
    }

    #[test]
    fn try_new_rejects_bad_partition_counts() {
        let arr = || Box::new(SetAssocArray::hashed(64, 4, 1));
        assert!(matches!(
            BaselineLlc::try_new(arr(), 0, RankPolicy::Lru),
            Err(crate::SchemeConfigError::BadPartitionCount { partitions: 0 })
        ));
        assert!(BaselineLlc::try_new(arr(), 2, RankPolicy::Lru).is_ok());
    }

    #[test]
    fn zero_partitions_is_a_typed_error() {
        use crate::SchemeConfigError;
        let err = BaselineLlc::try_new(
            Box::new(SetAssocArray::hashed(64, 4, 1)),
            0,
            RankPolicy::Lru,
        )
        .err();
        assert_eq!(
            err,
            Some(SchemeConfigError::BadPartitionCount { partitions: 0 })
        );
    }

    #[test]
    fn telemetry_emits_samples_and_evictions() {
        use vantage_telemetry::{RingSink, Telemetry, TelemetryRecord};
        let mut c = lru_llc(64, 4);
        let (sink, reader) = RingSink::with_capacity(4096);
        assert!(c.set_telemetry(Telemetry::new(Box::new(sink), 100)));
        for i in 0..1000u64 {
            c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
        }
        let recs = reader.records();
        let samples = recs
            .iter()
            .filter(|r| matches!(r, TelemetryRecord::Sample(_)))
            .count();
        let evictions = recs
            .iter()
            .filter(|r| matches!(r, TelemetryRecord::Event(TelemetryEvent::Eviction { .. })))
            .count();
        assert!(samples > 0, "periodic samples recorded");
        assert!(evictions > 0, "eviction events recorded");
        assert!(c.take_telemetry().is_some());
        assert!(c.take_telemetry().is_none(), "handle removed");
    }

    #[test]
    fn take_stats_resets_counters() {
        let mut c = lru_llc(64, 4);
        c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(1)));
        c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(1)));
        let taken = c.take_stats();
        assert_eq!(taken.hits[0], 1);
        assert_eq!(taken.misses[0], 1);
        assert_eq!(c.stats().total_hits() + c.stats().total_misses(), 0);
    }

    #[test]
    fn eviction_counter_counts_only_replacements() {
        let mut c = lru_llc(64, 4);
        for i in 0..64u64 {
            c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
        }
        // At most capacity lines could have been installed without eviction.
        assert_eq!(c.stats().evictions, 0);
        for i in 64..256u64 {
            c.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
        }
        assert!(c.stats().evictions > 0);
    }
}
