//! Multi-bank LLC organization (Table 2: "8 MB NUCA, 4 banks").
//!
//! Large shared caches are banked: addresses interleave across banks, each
//! bank has its own array and controller, and partition targets are split
//! per bank — which is exactly how the paper accounts its controller state
//! ("the controller ... only needs to track about 256 bits of state per
//! partition ... For 32 partitions and 4 banks (for an 8 MB cache), this
//! represents 4 KBytes", §4.3).
//!
//! [`BankedLlc`] shards *any* [`Llc`] implementation across banks with a
//! nonlinear address hash and divides targets evenly, aggregating
//! statistics on demand. Because Vantage's guarantees are per-controller
//! and its unmanaged-region math is scale-free, a banked Vantage inherits
//! the same bounds bank-by-bank.

use vantage_cache::hash::mix_bucket;
use vantage_cache::LineAddr;

use crate::error::SchemeConfigError;
use crate::llc::{AccessOutcome, Llc, LlcStats};

/// An address-interleaved multi-bank LLC.
///
/// Telemetry is not supported at the banked level (a single sink cannot be
/// shared across banks without serializing their access paths);
/// [`Llc::set_telemetry`] keeps its default `false` return. Install
/// telemetry on the per-bank caches before assembly instead.
///
/// # Example
///
/// ```
/// use vantage_partitioning::{BankedLlc, BaselineLlc, Llc, RankPolicy};
/// use vantage_cache::SetAssocArray;
///
/// let banks: Vec<Box<dyn Llc>> = (0..4)
///     .map(|b| {
///         Box::new(BaselineLlc::new(
///             Box::new(SetAssocArray::hashed(1024, 16, b)),
///             2,
///             RankPolicy::Lru,
///         )) as Box<dyn Llc>
///     })
///     .collect();
/// let mut llc = BankedLlc::new(banks, 7);
/// assert_eq!(llc.capacity(), 4096);
/// llc.access(0, 0x123.into());
/// ```
pub struct BankedLlc {
    banks: Vec<Box<dyn Llc>>,
    bank_seed: u64,
    partitions: usize,
    /// Lazily aggregated statistics (rebuilt on demand).
    agg: LlcStats,
    name: String,
}

impl BankedLlc {
    /// Assembles a banked LLC from per-bank caches.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is empty or the banks disagree on partition count;
    /// use [`BankedLlc::try_new`] to handle the error instead.
    pub fn new(banks: Vec<Box<dyn Llc>>, bank_seed: u64) -> Self {
        match Self::try_new(banks, bank_seed) {
            Ok(llc) => llc,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeConfigError::NoBanks`] for an empty bank list and
    /// [`SchemeConfigError::BankPartitionMismatch`] when the banks disagree
    /// on partition count.
    pub fn try_new(banks: Vec<Box<dyn Llc>>, bank_seed: u64) -> Result<Self, SchemeConfigError> {
        if banks.is_empty() {
            return Err(SchemeConfigError::NoBanks);
        }
        let partitions = banks[0].num_partitions();
        if !banks.iter().all(|b| b.num_partitions() == partitions) {
            return Err(SchemeConfigError::BankPartitionMismatch);
        }
        let name = format!("{}x{}", banks.len(), banks[0].name());
        Ok(Self {
            banks,
            bank_seed,
            partitions,
            agg: LlcStats::new(partitions),
            name,
        })
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The bank serving `addr`.
    #[inline]
    pub fn bank_of(&self, addr: LineAddr) -> usize {
        mix_bucket(addr.0, self.bank_seed, self.banks.len() as u32) as usize
    }

    /// Per-bank access (e.g. to reach scheme-specific instrumentation).
    pub fn bank(&self, i: usize) -> &dyn Llc {
        self.banks[i].as_ref()
    }

    fn refresh_stats(&mut self) {
        self.agg.reset();
        for b in &self.banks {
            let s = b.stats();
            for p in 0..self.partitions {
                self.agg.hits[p] += s.hits[p];
                self.agg.misses[p] += s.misses[p];
            }
            self.agg.evictions += s.evictions;
        }
    }
}

impl Llc for BankedLlc {
    fn access(&mut self, part: usize, addr: LineAddr) -> AccessOutcome {
        let bank = self.bank_of(addr);
        self.banks[bank].access(part, addr)
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn capacity(&self) -> usize {
        self.banks.iter().map(|b| b.capacity()).sum()
    }

    /// Splits each target evenly across banks (largest-remainder exact).
    fn set_targets(&mut self, targets: &[u64]) {
        assert_eq!(targets.len(), self.partitions, "one target per partition");
        let n = self.banks.len() as u64;
        for (b, bank) in self.banks.iter_mut().enumerate() {
            let share: Vec<u64> = targets
                .iter()
                .map(|&t| t / n + u64::from((b as u64) < t % n))
                .collect();
            bank.set_targets(&share);
        }
    }

    fn partition_size(&self, part: usize) -> u64 {
        self.banks.iter().map(|b| b.partition_size(part)).sum()
    }

    fn stats(&self) -> &LlcStats {
        // `stats()` is a cheap borrow by contract; BankedLlc callers should
        // use `stats_mut` (which refreshes) or per-bank stats for live
        // values. We refresh on the mutable path only.
        &self.agg
    }

    fn stats_mut(&mut self) -> &mut LlcStats {
        self.refresh_stats();
        &mut self.agg
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{BaselineLlc, RankPolicy};
    use crate::way_part::WayPartLlc;
    use vantage_cache::ZArray;

    fn banked_baseline(banks: usize, lines_per_bank: usize) -> BankedLlc {
        let banks: Vec<Box<dyn Llc>> = (0..banks as u64)
            .map(|b| {
                Box::new(BaselineLlc::new(
                    Box::new(ZArray::new(lines_per_bank, 4, 16, b)),
                    2,
                    RankPolicy::Lru,
                )) as Box<dyn Llc>
            })
            .collect();
        BankedLlc::new(banks, 99)
    }

    #[test]
    fn interleaving_spreads_addresses() {
        let llc = banked_baseline(4, 256);
        let mut counts = [0usize; 4];
        for i in 0..4000u64 {
            counts[llc.bank_of(LineAddr(i))] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "imbalanced banks: {counts:?}");
        }
    }

    #[test]
    fn same_address_always_same_bank() {
        let mut llc = banked_baseline(4, 256);
        assert_eq!(llc.access(0, LineAddr(42)), AccessOutcome::Miss);
        assert_eq!(llc.access(0, LineAddr(42)), AccessOutcome::Hit);
    }

    #[test]
    fn stats_aggregate_across_banks() {
        let mut llc = banked_baseline(2, 128);
        for i in 0..1000u64 {
            llc.access((i % 2) as usize, LineAddr(i));
        }
        let s = llc.stats_mut();
        assert_eq!(s.total_hits() + s.total_misses(), 1000);
    }

    #[test]
    fn targets_split_exactly() {
        let banks: Vec<Box<dyn Llc>> = (0..4u64)
            .map(|b| Box::new(WayPartLlc::new(1024, 16, 2, b)) as Box<dyn Llc>)
            .collect();
        let mut llc = BankedLlc::new(banks, 1);
        // 2600 is not divisible by 4: largest remainder must still hand out
        // whole-line shares summing to the total.
        llc.set_targets(&[2600, 1496]);
        assert_eq!(llc.capacity(), 4096);
        // Every bank received a valid (way-rounded) allocation; run traffic
        // to confirm the shards behave.
        for i in 0..20_000u64 {
            llc.access((i % 2) as usize, LineAddr(i % 3000));
        }
        assert!(llc.partition_size(0) > llc.partition_size(1));
    }

    #[test]
    fn per_bank_capacity_and_name() {
        let llc = banked_baseline(4, 256);
        assert_eq!(llc.num_banks(), 4);
        assert_eq!(llc.capacity(), 1024);
        assert!(llc.name().starts_with("4x"));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn empty_banks_rejected() {
        BankedLlc::new(Vec::new(), 0);
    }

    #[test]
    fn try_new_reports_structured_errors() {
        use crate::SchemeConfigError;
        assert_eq!(
            BankedLlc::try_new(Vec::new(), 0).err(),
            Some(SchemeConfigError::NoBanks)
        );
        let banks: Vec<Box<dyn Llc>> = vec![
            Box::new(WayPartLlc::new(256, 4, 2, 0)),
            Box::new(WayPartLlc::new(256, 4, 3, 1)),
        ];
        assert_eq!(
            BankedLlc::try_new(banks, 0).err(),
            Some(SchemeConfigError::BankPartitionMismatch)
        );
    }

    #[test]
    fn telemetry_unsupported_at_banked_level() {
        use vantage_telemetry::{NullSink, Telemetry};
        let mut llc = banked_baseline(2, 128);
        assert!(!llc.set_telemetry(Telemetry::new(Box::new(NullSink), 0)));
        assert!(llc.take_telemetry().is_none());
    }
}
