//! Multi-bank LLC organization (Table 2: "8 MB NUCA, 4 banks").
//!
//! Large shared caches are banked: addresses interleave across banks, each
//! bank has its own array and controller, and partition targets are split
//! per bank — which is exactly how the paper accounts its controller state
//! ("the controller ... only needs to track about 256 bits of state per
//! partition ... For 32 partitions and 4 banks (for an 8 MB cache), this
//! represents 4 KBytes", §4.3).
//!
//! [`BankedLlc`] shards *any* [`Llc`] implementation across banks with a
//! nonlinear address hash and divides targets evenly, aggregating
//! statistics on demand. Because Vantage's guarantees are per-controller
//! and its unmanaged-region math is scale-free, a banked Vantage inherits
//! the same bounds bank-by-bank.

use vantage_cache::hash::mix_bucket;
use vantage_cache::{LineAddr, PartitionId, ShareMode};
use vantage_telemetry::{SharedSink, Telemetry};

use crate::error::SchemeConfigError;
use crate::llc::{AccessOutcome, AccessRequest, Llc, LlcStats};
use crate::sharded::Sharded;

/// An address-interleaved multi-bank LLC.
///
/// Telemetry installed via [`Llc::set_telemetry`] fans out to every bank
/// through a [`SharedSink`]: each bank's records funnel into the one
/// installed sink, tagged with the originating bank (file sinks keep the
/// tag, in-memory sinks drop it). Each bank runs its own sampling clock, so
/// per-partition samples appear once per bank per period.
///
/// # Example
///
/// ```
/// use vantage_partitioning::{AccessRequest, BankedLlc, BaselineLlc, Llc, PartitionId, RankPolicy};
/// use vantage_cache::SetAssocArray;
///
/// let banks: Vec<Box<dyn Llc>> = (0..4)
///     .map(|b| {
///         Box::new(BaselineLlc::try_new(
///             Box::new(SetAssocArray::hashed(1024, 16, b)),
///             2,
///             RankPolicy::Lru,
///         ).expect("valid baseline geometry")) as Box<dyn Llc>
///     })
///     .collect();
/// let mut llc = BankedLlc::try_new(banks, 7).expect("valid bank set");
/// assert_eq!(llc.capacity(), 4096);
/// llc.access(AccessRequest::read(PartitionId::from_index(0), 0x123.into()));
/// ```
pub struct BankedLlc {
    banks: Vec<Box<dyn Llc>>,
    bank_seed: u64,
    partitions: usize,
    /// Lazily aggregated statistics (rebuilt on demand).
    agg: LlcStats,
    /// The shared fan-out handle (+ sample period) while telemetry is
    /// installed, used to recover the caller's sink on `take_telemetry`.
    tele: Option<(SharedSink, u64)>,
    name: String,
    /// Per-bank request grouping scratch for `access_batch` (index lists
    /// and request buffers, reused across batches).
    group_idxs: Vec<Vec<u32>>,
    group_reqs: Vec<Vec<AccessRequest>>,
    group_out: Vec<AccessOutcome>,
}

impl BankedLlc {
    /// Assembles a banked LLC from per-bank caches.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeConfigError::NoBanks`] for an empty bank list and
    /// [`SchemeConfigError::BankPartitionMismatch`] when the banks disagree
    /// on partition count.
    pub fn try_new(banks: Vec<Box<dyn Llc>>, bank_seed: u64) -> Result<Self, SchemeConfigError> {
        if banks.is_empty() {
            return Err(SchemeConfigError::NoBanks);
        }
        let partitions = banks[0].num_partitions();
        if !banks.iter().all(|b| b.num_partitions() == partitions) {
            return Err(SchemeConfigError::BankPartitionMismatch);
        }
        let name = format!("{}x{}", banks.len(), banks[0].name());
        let n = banks.len();
        Ok(Self {
            banks,
            bank_seed,
            partitions,
            agg: LlcStats::new(partitions),
            tele: None,
            name,
            group_idxs: vec![Vec::new(); n],
            group_reqs: vec![Vec::new(); n],
            group_out: Vec::new(),
        })
    }

    /// The seed of the bank-steering hash.
    pub fn bank_seed(&self) -> u64 {
        self.bank_seed
    }

    /// Disjoint mutable views of all banks, for engines that drive banks
    /// from worker threads.
    pub(crate) fn banks_mut(&mut self) -> &mut [Box<dyn Llc>] {
        &mut self.banks
    }

    fn refresh_stats(&mut self) {
        self.agg.reset();
        for b in &self.banks {
            let s = b.stats();
            for p in 0..self.partitions {
                self.agg.hits[p] += s.hits[p];
                self.agg.misses[p] += s.misses[p];
            }
            self.agg.evictions += s.evictions;
        }
    }
}

impl Llc for BankedLlc {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        let bank = self.bank_of(req.addr);
        self.banks[bank].access(req)
    }

    /// Groups the batch by bank (stable, preserving per-bank request order)
    /// and serves each bank's group through its own `access_batch`, so
    /// per-bank batch specializations (e.g. Vantage's prefetching loop) see
    /// long runs instead of interleaved singletons. Outcomes land in request
    /// order.
    fn access_batch(&mut self, reqs: &[AccessRequest], out: &mut Vec<AccessOutcome>) {
        let n = self.banks.len();
        if n == 1 {
            return self.banks[0].access_batch(reqs, out);
        }
        for b in 0..n {
            self.group_idxs[b].clear();
            self.group_reqs[b].clear();
        }
        for (i, &req) in reqs.iter().enumerate() {
            let b = mix_bucket(req.addr.0, self.bank_seed, n as u32) as usize;
            self.group_idxs[b].push(i as u32);
            self.group_reqs[b].push(req);
        }
        let start = out.len();
        out.resize(start + reqs.len(), AccessOutcome::Miss);
        for (b, bank) in self.banks.iter_mut().enumerate() {
            self.group_out.clear();
            bank.access_batch(&self.group_reqs[b], &mut self.group_out);
            for (&i, &o) in self.group_idxs[b].iter().zip(&self.group_out) {
                out[start + i as usize] = o;
            }
        }
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn capacity(&self) -> usize {
        self.banks.iter().map(|b| b.capacity()).sum()
    }

    /// Splits each target evenly across banks (largest-remainder exact).
    fn set_targets(&mut self, targets: &[u64]) {
        assert_eq!(targets.len(), self.partitions, "one target per partition");
        let n = self.banks.len() as u64;
        for (b, bank) in self.banks.iter_mut().enumerate() {
            let share: Vec<u64> = targets
                .iter()
                .map(|&t| t / n + u64::from((b as u64) < t % n))
                .collect();
            bank.set_targets(&share);
        }
    }

    fn partition_size(&self, part: PartitionId) -> u64 {
        self.banks.iter().map(|b| b.partition_size(part)).sum()
    }

    /// Creates the partition in every bank, splitting the requested target
    /// evenly (largest-remainder, mirroring [`Llc::set_targets`]). Banks
    /// move in lockstep — construction enforces equal populations and every
    /// lifecycle call fans out — so all banks hand back the same slot.
    fn create_partition(
        &mut self,
        spec: crate::llc::PartitionSpec,
    ) -> Result<PartitionId, crate::llc::LifecycleError> {
        let n = self.banks.len() as u64;
        let mut id = None;
        for (b, bank) in self.banks.iter_mut().enumerate() {
            let share = spec.target / n + u64::from((b as u64) < spec.target % n);
            // Bank 0 screens the request (Unsupported/Exhausted fire before
            // any state moves); later banks cannot disagree with it.
            let got = bank.create_partition(crate::llc::PartitionSpec::with_target(share))?;
            assert!(
                id.replace(got).is_none_or(|prev| prev == got),
                "banks diverged on partition slot assignment"
            );
        }
        self.partitions = self.banks[0].num_partitions();
        self.agg.resize(self.partitions);
        Ok(id.expect("at least one bank"))
    }

    /// Destroys the partition in every bank; each bank drains it through
    /// its own demotion machinery.
    fn destroy_partition(&mut self, part: PartitionId) -> Result<(), crate::llc::LifecycleError> {
        for bank in &mut self.banks {
            bank.destroy_partition(part)?;
        }
        Ok(())
    }

    /// Sums each bank's snapshot, so bank-local dynamics metering (e.g.
    /// Vantage churn counters) survives sharding. Lifecycle lanes come from
    /// bank 0 (banks move in lockstep, so the deltas are identical; the
    /// other banks' queues are drained and discarded).
    fn observations(&mut self) -> crate::llc::PartitionObservations {
        let mut obs = crate::llc::PartitionObservations::new(self.partitions);
        for (b, bank) in self.banks.iter_mut().enumerate() {
            let bo = bank.observations();
            for p in 0..self.partitions {
                obs.actual[p] += bo.actual[p];
                obs.targets[p] += bo.targets[p];
                obs.hits[p] += bo.hits[p];
                obs.misses[p] += bo.misses[p];
                obs.shared_hits[p] += bo.shared_hits[p];
                obs.ownership_transfers[p] += bo.ownership_transfers[p];
                obs.churn[p] += bo.churn[p];
                obs.insertions[p] += bo.insertions[p];
            }
            if b == 0 {
                obs.live = bo.live;
                obs.arrived = bo.arrived;
                obs.departed = bo.departed;
            }
        }
        obs
    }

    /// Applies the mode to every bank. Banks are homogeneous (same scheme,
    /// same config), so they accept or reject uniformly and the shards
    /// never disagree on sharing semantics.
    fn set_share_mode(&mut self, mode: ShareMode) -> bool {
        let mut ok = true;
        for bank in &mut self.banks {
            ok &= bank.set_share_mode(mode);
        }
        ok
    }

    fn share_mode(&self) -> ShareMode {
        self.banks[0].share_mode()
    }

    fn stats(&self) -> &LlcStats {
        // `stats()` is a cheap borrow by contract; BankedLlc callers should
        // use `stats_mut` (which refreshes) or per-bank stats for live
        // values. We refresh on the mutable path only.
        &self.agg
    }

    fn stats_mut(&mut self) -> &mut LlcStats {
        self.refresh_stats();
        &mut self.agg
    }

    /// Fans the handle's sink out to every bank through a [`SharedSink`],
    /// tagging each bank's records. Returns `false` (leaving telemetry
    /// uninstalled) if any bank rejects telemetry or the handle is disabled.
    fn set_telemetry(&mut self, telemetry: Telemetry) -> bool {
        let (sink, period) = telemetry.into_parts();
        let Some(sink) = sink else {
            return false;
        };
        let shared = SharedSink::new(sink);
        for (b, bank) in self.banks.iter_mut().enumerate() {
            let tagged = Box::new(shared.with_bank(b as u16));
            if !bank.set_telemetry(Telemetry::new(tagged, period)) {
                // Roll back the banks already armed so no half-installed
                // fan-out leaks records.
                for armed in &mut self.banks[..b] {
                    armed.take_telemetry();
                }
                return false;
            }
        }
        self.tele = Some((shared, period));
        true
    }

    /// Disarms every bank and returns a handle wrapping the original sink.
    fn take_telemetry(&mut self) -> Option<Telemetry> {
        let (shared, period) = self.tele.take()?;
        for bank in &mut self.banks {
            // Dropping the per-bank handle releases its SharedSink clone
            // (flushing through the shared mutex on the way out).
            bank.take_telemetry();
        }
        match shared.try_unwrap() {
            Ok(sink) => Some(Telemetry::new(sink, period)),
            // A bank failed to give its clone back (it panicked mid-access,
            // say); the caller's sink is unrecoverable but all records up to
            // the failure were flushed.
            Err(_) => None,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl vantage_snapshot::Snapshot for BankedLlc {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        // One length-prefixed blob per bank: a bank's decode errors stay
        // contained to its own payload, and banks restore in order.
        enc.put_usize(self.banks.len());
        for bank in &self.banks {
            let mut sub = vantage_snapshot::Encoder::new();
            bank.save_state(&mut sub);
            enc.put_bytes(&sub.into_bytes());
        }
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let n = dec.take_usize()?;
        if n != self.banks.len() {
            return Err(dec.mismatch(&format!(
                "cache has {} banks, snapshot has {n}",
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            let blob = dec.take_bytes()?;
            let mut sub = vantage_snapshot::Decoder::new(&blob, "bank state");
            bank.load_state(&mut sub)?;
            sub.finish()?;
        }
        // Service mode: the saved run may have created/destroyed partitions,
        // resizing each bank's slot table. Re-derive the shared count and
        // insist the banks still agree.
        let partitions = self.banks[0].num_partitions();
        if !self.banks.iter().all(|b| b.num_partitions() == partitions) {
            return Err(dec.mismatch("banks disagree on partition count after restore"));
        }
        self.partitions = partitions;
        self.agg.resize(partitions);
        self.refresh_stats();
        Ok(())
    }
}

impl Sharded for BankedLlc {
    fn num_banks(&self) -> usize {
        self.banks.len()
    }

    #[inline]
    fn bank_of(&self, addr: LineAddr) -> usize {
        mix_bucket(addr.0, self.bank_seed, self.banks.len() as u32) as usize
    }

    fn bank(&self, i: usize) -> &dyn Llc {
        self.banks[i].as_ref()
    }

    fn bank_mut(&mut self, i: usize) -> &mut dyn Llc {
        self.banks[i].as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{BaselineLlc, RankPolicy};
    use crate::way_part::WayPartLlc;
    use vantage_cache::ZArray;

    fn banked_baseline(banks: usize, lines_per_bank: usize) -> BankedLlc {
        let banks: Vec<Box<dyn Llc>> = (0..banks as u64)
            .map(|b| {
                Box::new(
                    BaselineLlc::try_new(
                        Box::new(ZArray::new(lines_per_bank, 4, 16, b)),
                        2,
                        RankPolicy::Lru,
                    )
                    .expect("valid baseline geometry"),
                ) as Box<dyn Llc>
            })
            .collect();
        BankedLlc::try_new(banks, 99).expect("valid bank set")
    }

    #[test]
    fn interleaving_spreads_addresses() {
        let llc = banked_baseline(4, 256);
        let mut counts = [0usize; 4];
        for i in 0..4000u64 {
            counts[llc.bank_of(LineAddr(i))] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "imbalanced banks: {counts:?}");
        }
    }

    #[test]
    fn same_address_always_same_bank() {
        let mut llc = banked_baseline(4, 256);
        assert_eq!(
            llc.access(AccessRequest::read(
                PartitionId::from_index(0),
                LineAddr(42)
            )),
            AccessOutcome::Miss
        );
        assert_eq!(
            llc.access(AccessRequest::read(
                PartitionId::from_index(0),
                LineAddr(42)
            )),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn stats_aggregate_across_banks() {
        let mut llc = banked_baseline(2, 128);
        for i in 0..1000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index((i % 2) as usize),
                LineAddr(i),
            ));
        }
        let s = llc.stats_mut();
        assert_eq!(s.total_hits() + s.total_misses(), 1000);
    }

    #[test]
    fn targets_split_exactly() {
        let banks: Vec<Box<dyn Llc>> = (0..4u64)
            .map(|b| {
                Box::new(WayPartLlc::try_new(1024, 16, 2, b).expect("valid way-partition geometry"))
                    as Box<dyn Llc>
            })
            .collect();
        let mut llc = BankedLlc::try_new(banks, 1).expect("valid bank set");
        // 2600 is not divisible by 4: largest remainder must still hand out
        // whole-line shares summing to the total.
        llc.set_targets(&[2600, 1496]);
        assert_eq!(llc.capacity(), 4096);
        // Every bank received a valid (way-rounded) allocation; run traffic
        // to confirm the shards behave.
        for i in 0..20_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index((i % 2) as usize),
                LineAddr(i % 3000),
            ));
        }
        assert!(
            llc.partition_size(PartitionId::from_index(0))
                > llc.partition_size(PartitionId::from_index(1))
        );
    }

    #[test]
    fn per_bank_capacity_and_name() {
        let llc = banked_baseline(4, 256);
        assert_eq!(llc.num_banks(), 4);
        assert_eq!(llc.capacity(), 1024);
        assert!(llc.name().starts_with("4x"));
    }

    #[test]
    fn try_new_reports_structured_errors() {
        use crate::SchemeConfigError;
        assert_eq!(
            BankedLlc::try_new(Vec::new(), 0).err(),
            Some(SchemeConfigError::NoBanks)
        );
        let banks: Vec<Box<dyn Llc>> = vec![
            Box::new(WayPartLlc::try_new(256, 4, 2, 0).expect("valid way-partition geometry")),
            Box::new(WayPartLlc::try_new(256, 4, 3, 1).expect("valid way-partition geometry")),
        ];
        assert_eq!(
            BankedLlc::try_new(banks, 0).err(),
            Some(SchemeConfigError::BankPartitionMismatch)
        );
    }

    #[test]
    fn telemetry_fans_out_to_banks_and_recovers_sink() {
        use vantage_telemetry::{RingSink, Telemetry, TelemetryEvent, TelemetryRecord};
        let mut llc = banked_baseline(2, 128);
        let (sink, reader) = RingSink::with_capacity(65536);
        assert!(llc.set_telemetry(Telemetry::new(Box::new(sink), 64)));
        for i in 0..4000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index((i % 2) as usize),
                LineAddr(i % 400),
            ));
        }
        let recs = reader.records();
        assert!(
            recs.iter()
                .any(|r| matches!(r, TelemetryRecord::Event(TelemetryEvent::Eviction { .. }))),
            "bank events reach the shared sink"
        );
        assert!(
            recs.iter().any(|r| matches!(r, TelemetryRecord::Sample(_))),
            "per-bank samples reach the shared sink"
        );
        let back = llc.take_telemetry();
        assert!(back.is_some(), "original sink recovered");
        assert!(llc.take_telemetry().is_none(), "fan-out disarmed");
    }

    #[test]
    fn telemetry_disabled_handle_rejected() {
        use vantage_telemetry::Telemetry;
        let mut llc = banked_baseline(2, 128);
        assert!(!llc.set_telemetry(Telemetry::disabled()));
        assert!(llc.take_telemetry().is_none());
    }

    #[test]
    fn batch_matches_one_at_a_time() {
        let mut one = banked_baseline(4, 256);
        let mut batched = banked_baseline(4, 256);
        let reqs: Vec<AccessRequest> = (0..5000u64)
            .map(|i| {
                AccessRequest::read(
                    PartitionId::from_index((i % 2) as usize),
                    LineAddr((i * 37) % 1700),
                )
            })
            .collect();
        let singles: Vec<AccessOutcome> = reqs.iter().map(|&r| one.access(r)).collect();
        let mut outs = Vec::new();
        // Uneven chunking exercises the grouping scratch reuse.
        for chunk in reqs.chunks(777) {
            batched.access_batch(chunk, &mut outs);
        }
        assert_eq!(singles, outs);
        assert_eq!(one.stats_mut().hits, batched.stats_mut().hits);
        assert_eq!(one.stats_mut().misses, batched.stats_mut().misses);
        assert_eq!(one.stats_mut().evictions, batched.stats_mut().evictions);
    }

    #[test]
    fn sharded_views_expose_banks() {
        let mut llc = banked_baseline(4, 256);
        assert_eq!(Sharded::num_banks(&llc), 4);
        let addr = LineAddr(0xABC);
        let b = llc.bank_of(addr);
        assert!(b < 4);
        llc.access(AccessRequest::read(PartitionId::from_index(0), addr));
        assert_eq!(llc.bank(b).stats().total_misses(), 1, "steered to bank");
        assert_eq!(llc.bank_mut(b).num_partitions(), 2);
    }
}
