//! Capability traits: what a scheme *can do* beyond the base [`Llc`]
//! contract, advertised instead of downcast.
//!
//! The simulation layer used to reach into concrete scheme types (e.g.
//! `as_vantage()` downcasts) to flip per-partition replacement policies or
//! run integrity checks. These traits invert that: a scheme that supports
//! a capability implements the trait, and callers ask for
//! `&dyn HasInvariants` / `&mut dyn HasPartitionPolicy` without knowing
//! which scheme they hold.

use vantage_cache::replacement::rrip::BasePolicy;

/// A scheme whose per-partition insertion policy can be switched at run
/// time (e.g. Vantage-DRRIP dueling SRRIP vs BRRIP per partition, §6.2).
pub trait HasPartitionPolicy {
    /// Sets partition `part`'s base replacement/insertion policy.
    fn set_partition_policy(&mut self, part: usize, policy: BasePolicy);
}

/// An internal-consistency violation reported by [`HasInvariants`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

/// A scheme that can audit and repair its own bookkeeping (sizes, meters,
/// setpoints) — the integrity half of a fault-tolerance loop.
pub trait HasInvariants {
    /// Checks internal consistency without mutating state.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, described for logs/telemetry.
    fn check_invariants(&self) -> Result<(), InvariantViolation>;

    /// Audits and repairs bookkeeping in place, returning the number of
    /// corrections applied (0 when everything was already consistent).
    fn repair(&mut self) -> u64;

    /// Cumulative number of repair passes run.
    fn scrubs(&self) -> u64;

    /// Cumulative accesses that hit corrupted metadata and fell back to a
    /// safe path.
    fn corruption_fallbacks(&self) -> u64;
}
