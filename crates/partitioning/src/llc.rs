//! The [`Llc`] trait: a shared, partitioned last-level cache.

use vantage_cache::{LineAddr, PartitionId, ShareMode};
use vantage_telemetry::Telemetry;

/// The kind of memory operation an [`AccessRequest`] models.
///
/// Today every scheme treats reads and writes identically (the paper's
/// evaluation does not model dirty lines); the distinction is carried through
/// the access path so future write-back/dirty-line modeling needs no second
/// API migration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load.
    #[default]
    Read,
    /// A store (reserved for future dirty-line modeling).
    Write,
}

/// One cache access: which partition is asking, for which line, and how.
///
/// This is the unit of the [`Llc`] access API — both the one-at-a-time
/// [`Llc::access`] and the batched [`Llc::access_batch`] consume it — and it
/// is plain `Copy` data so request slices can be grouped, queued and shipped
/// across worker threads by sharded engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AccessRequest {
    /// The partition (a core/thread or a service-mode tenant) the access
    /// is on behalf of.
    pub part: PartitionId,
    /// The line address accessed.
    pub addr: LineAddr,
    /// Read or write (see [`AccessKind`]).
    pub kind: AccessKind,
}

impl AccessRequest {
    /// Builds a request with an explicit kind.
    #[inline]
    pub fn new(part: PartitionId, addr: LineAddr, kind: AccessKind) -> Self {
        Self { part, addr, kind }
    }

    /// Builds a read request — the common case throughout the simulator.
    #[inline]
    pub fn read(part: PartitionId, addr: LineAddr) -> Self {
        Self::new(part, addr, AccessKind::Read)
    }

    /// Builds a write request.
    #[inline]
    pub fn write(part: PartitionId, addr: LineAddr) -> Self {
        Self::new(part, addr, AccessKind::Write)
    }
}

/// Outcome of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was fetched and installed (possibly evicting another line).
    Miss,
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Aggregate per-LLC statistics, kept uniformly across schemes.
#[derive(Clone, Debug, Default)]
pub struct LlcStats {
    /// Hits per partition.
    pub hits: Vec<u64>,
    /// Misses per partition.
    pub misses: Vec<u64>,
    /// Total lines evicted (excluding fills into empty frames).
    pub evictions: u64,
}

impl LlcStats {
    /// Creates zeroed stats for `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        Self {
            hits: vec![0; partitions],
            misses: vec![0; partitions],
            evictions: 0,
        }
    }

    /// Total accesses by `part`.
    pub fn accesses(&self, part: PartitionId) -> u64 {
        let p = part.index();
        self.hits[p] + self.misses[p]
    }

    /// Miss ratio of `part` (0 if it made no accesses).
    pub fn miss_ratio(&self, part: PartitionId) -> f64 {
        let a = self.accesses(part);
        let p = part.index();
        if a == 0 {
            0.0
        } else {
            self.misses[p] as f64 / a as f64
        }
    }

    /// Total hits across partitions.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Total misses across partitions.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.hits.fill(0);
        self.misses.fill(0);
        self.evictions = 0;
    }

    /// Grows or shrinks the per-partition counters to `partitions` slots
    /// (new slots start at zero). Used by schemes with a runtime partition
    /// lifecycle when the slot table grows.
    pub fn resize(&mut self, partitions: usize) {
        self.hits.resize(partitions, 0);
        self.misses.resize(partitions, 0);
    }
}

impl vantage_snapshot::Snapshot for LlcStats {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64_slice(&self.hits);
        enc.put_u64_slice(&self.misses);
        enc.put_u64(self.evictions);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let hits = dec.take_u64_vec()?;
        let misses = dec.take_u64_vec()?;
        let evictions = dec.take_u64()?;
        if hits.len() != self.hits.len() || misses.len() != self.misses.len() {
            return Err(dec.mismatch(&format!(
                "stats cover {} partitions, snapshot has {}/{}",
                self.hits.len(),
                hits.len(),
                misses.len()
            )));
        }
        self.hits = hits;
        self.misses = misses;
        self.evictions = evictions;
        Ok(())
    }
}

/// A per-partition snapshot of occupancy and dynamics, in one shape shared
/// by allocation policies and telemetry.
///
/// All vectors have one entry per partition. `hits`/`misses` mirror
/// [`LlcStats`]; `targets`, `churn` and `insertions` are scheme-provided
/// where the scheme tracks them (schemes without the machinery report
/// zeros — see [`Llc::observations`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionObservations {
    /// Lines each partition currently holds.
    pub actual: Vec<u64>,
    /// The capacity target each partition was last given (0 if the scheme
    /// does not retain targets).
    pub targets: Vec<u64>,
    /// Cumulative hits per partition.
    pub hits: Vec<u64>,
    /// Cumulative misses per partition.
    pub misses: Vec<u64>,
    /// Lines lost (demotion or eviction) per partition since the previous
    /// snapshot (0 for schemes that do not meter churn).
    pub churn: Vec<u64>,
    /// Lines installed per partition since the previous snapshot (0 for
    /// schemes that do not meter insertions).
    pub insertions: Vec<u64>,
    /// Cross-partition hits by each *accessing* partition since the
    /// previous snapshot (sharing pressure; 0 when no lines are shared or
    /// under `ShareMode::Replicate`, where lookups are per-partition).
    pub shared_hits: Vec<u64>,
    /// Ownership transfers to each *adopting* partition since the previous
    /// snapshot (nonzero only under `ShareMode::Adopt`).
    pub ownership_transfers: Vec<u64>,
    /// Whether each slot hosts a live (serviceable) partition. Destroyed
    /// or never-created slots report `false`; consumers aggregating CSV
    /// rows or SLA reports must skip dead slots rather than ingest their
    /// zeroed/stale counters.
    pub live: Vec<bool>,
    /// Partitions created since the previous snapshot (service-mode
    /// arrival deltas for allocation policies).
    pub arrived: Vec<PartitionId>,
    /// Partitions destroyed since the previous snapshot (departure
    /// deltas; the slot may still be draining).
    pub departed: Vec<PartitionId>,
}

impl PartitionObservations {
    /// Creates a zeroed snapshot for `partitions` partitions (all live,
    /// no lifecycle deltas — the fixed-population default).
    pub fn new(partitions: usize) -> Self {
        Self {
            actual: vec![0; partitions],
            targets: vec![0; partitions],
            hits: vec![0; partitions],
            misses: vec![0; partitions],
            churn: vec![0; partitions],
            insertions: vec![0; partitions],
            shared_hits: vec![0; partitions],
            ownership_transfers: vec![0; partitions],
            live: vec![true; partitions],
            arrived: Vec::new(),
            departed: Vec::new(),
        }
    }

    /// Number of partitions in the snapshot.
    pub fn num_partitions(&self) -> usize {
        self.actual.len()
    }

    /// Number of live partitions in the snapshot.
    pub fn num_live(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }
}

/// Requested configuration for a partition created at runtime (see
/// [`Llc::create_partition`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Requested capacity target in lines of total cache capacity (the
    /// allocation-policy view; schemes scale it onto their mechanism).
    /// The grant may be smaller when spare capacity is short — the next
    /// repartitioning epoch trues it up.
    pub target: u64,
}

impl PartitionSpec {
    /// A spec requesting `target` lines.
    pub fn with_target(target: u64) -> Self {
        Self { target }
    }
}

/// Why a runtime partition lifecycle operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LifecycleError {
    /// The scheme has no runtime partition lifecycle (fixed population).
    Unsupported,
    /// Every slot the scheme can address is in use (the `u16` tag lane
    /// bounds the population at [`PartitionId::MAX_PARTITIONS`]).
    Exhausted,
    /// The partition is not live (already destroyed, still draining, or
    /// never created).
    NotLive(PartitionId),
    /// The ID does not name a slot this cache has ever allocated.
    OutOfRange(PartitionId),
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unsupported => f.write_str("scheme has no runtime partition lifecycle"),
            Self::Exhausted => f.write_str("partition slots exhausted (u16 tag lane)"),
            Self::NotLive(p) => write!(f, "partition {p} is not live"),
            Self::OutOfRange(p) => write!(f, "partition {p} was never allocated"),
        }
    }
}

impl std::error::Error for LifecycleError {}

/// A shared last-level cache serving multiple partitions.
///
/// A partition is usually a core/thread, but may be any capacity domain
/// (an address range pinned as a local store, a transactional-state
/// partition, a security domain, ...). Implementations differ in how — and
/// how strictly — they enforce the capacity targets.
///
/// # Target semantics
///
/// [`set_targets`](Llc::set_targets) receives one target per partition in
/// *lines of total cache capacity* (the allocation-policy view). Schemes map
/// these onto their own mechanism: way-partitioning and PIPP round to whole
/// ways; Vantage scales them onto its managed region.
///
/// # Threading
///
/// `Llc` requires `Send`: a cache (and everything it owns — arrays, RNGs,
/// telemetry sinks) can be moved to another thread, which is what lets a
/// sharded engine farm whole banks out to a worker pool. No `Sync` is
/// required; a bank is only ever driven by one thread at a time.
///
/// # Checkpoint/restore
///
/// `Llc` requires [`Snapshot`](vantage_snapshot::Snapshot): every scheme
/// must be able to serialize its mutable state for crash-safe checkpointing
/// and bit-identical resume. The supertrait (rather than an optional method)
/// makes the compiler enforce coverage — a new scheme cannot forget it.
/// The restore contract is the trait's: `load_state` runs on a cache freshly
/// built from the same configuration and seeds that produced the save.
pub trait Llc: Send + vantage_snapshot::Snapshot {
    /// Serves one access, updating replacement and partition state.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `req.part >= num_partitions()`.
    fn access(&mut self, req: AccessRequest) -> AccessOutcome;

    /// Serves `reqs` in order, appending one outcome per request to `out`.
    ///
    /// Semantically identical to calling [`access`](Llc::access) in a loop
    /// (which is the default implementation); schemes override it to amortize
    /// per-access costs across the batch — software-prefetching upcoming
    /// probes, grouping by bank, or fanning out to worker threads. `out` is
    /// appended to, not cleared, so callers can accumulate across batches.
    fn access_batch(&mut self, reqs: &[AccessRequest], out: &mut Vec<AccessOutcome>) {
        out.reserve(reqs.len());
        for &req in reqs {
            out.push(self.access(req));
        }
    }

    /// Number of partitions this cache was configured with.
    fn num_partitions(&self) -> usize;

    /// Total capacity in lines.
    fn capacity(&self) -> usize;

    /// Installs new capacity targets (in lines; see trait docs).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `targets.len() != num_partitions()` or
    /// if the sum of targets exceeds the capacity.
    fn set_targets(&mut self, targets: &[u64]);

    /// The number of lines partition `part` currently holds.
    fn partition_size(&self, part: PartitionId) -> u64;

    /// Creates a partition at runtime and returns its handle.
    ///
    /// Schemes with a runtime lifecycle (Vantage and its banked wrappers)
    /// allocate a slot (reusing a fully drained one when available), seed
    /// it with as much of `spec.target` as current spare capacity allows,
    /// and emit a partition-created telemetry event. The default is a
    /// fixed-population scheme: [`LifecycleError::Unsupported`].
    ///
    /// # Errors
    ///
    /// [`LifecycleError::Unsupported`] on fixed-population schemes and
    /// [`LifecycleError::Exhausted`] when the `u16` tag lane has no free
    /// slot left.
    fn create_partition(&mut self, spec: PartitionSpec) -> Result<PartitionId, LifecycleError> {
        let _ = spec;
        Err(LifecycleError::Unsupported)
    }

    /// Destroys a live partition.
    ///
    /// Destruction never flushes: the slot stops receiving capacity (its
    /// target moves to the unmanaged region) and its resident lines drain
    /// through the scheme's ordinary demotion machinery as other tenants
    /// churn. The slot becomes reusable once fully drained.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::Unsupported`] on fixed-population schemes,
    /// [`LifecycleError::OutOfRange`] for a handle this cache never
    /// allocated, and [`LifecycleError::NotLive`] when the partition was
    /// already destroyed.
    fn destroy_partition(&mut self, part: PartitionId) -> Result<(), LifecycleError> {
        let _ = part;
        Err(LifecycleError::Unsupported)
    }

    /// Hit/miss statistics.
    fn stats(&self) -> &LlcStats;

    /// Mutable statistics (e.g. to reset between measurement intervals).
    fn stats_mut(&mut self) -> &mut LlcStats;

    /// Takes the accumulated statistics, leaving zeroed counters — the
    /// uniform "read one measurement interval" operation across schemes.
    fn take_stats(&mut self) -> LlcStats {
        let partitions = self.num_partitions();
        std::mem::replace(self.stats_mut(), LlcStats::new(partitions))
    }

    /// Snapshots per-partition occupancy and dynamics (see
    /// [`PartitionObservations`]).
    ///
    /// The default implementation reports current sizes and cumulative
    /// hit/miss counters, with zeroed targets/churn/insertions; schemes
    /// that meter dynamics (e.g. Vantage's demotion machinery) override it.
    /// Takes `&mut self` so overriding schemes may drain epoch-relative
    /// counters.
    fn observations(&mut self) -> PartitionObservations {
        let n = self.num_partitions();
        let mut obs = PartitionObservations::new(n);
        for p in 0..n {
            obs.actual[p] = self.partition_size(PartitionId::from_index(p));
        }
        let stats = self.stats();
        obs.hits.copy_from_slice(&stats.hits);
        obs.misses.copy_from_slice(&stats.misses);
        obs
    }

    /// Installs the cross-partition sharing mode (see
    /// [`ShareMode`](vantage_cache::ShareMode)). Must be called on a cold
    /// cache — before any access — because lines already placed under the
    /// old mode keep their placement. Returns `false` (leaving the scheme
    /// in its default [`ShareMode::Adopt`] behavior) if the scheme does not
    /// implement the ownership layer.
    fn set_share_mode(&mut self, _mode: ShareMode) -> bool {
        false
    }

    /// The active cross-partition sharing mode.
    fn share_mode(&self) -> ShareMode {
        ShareMode::Adopt
    }

    /// Installs a telemetry handle; the cache emits dynamics events and
    /// periodic per-partition samples into it from now on. Returns `false`
    /// (dropping the handle) if the scheme does not support telemetry.
    fn set_telemetry(&mut self, _telemetry: Telemetry) -> bool {
        false
    }

    /// Removes and returns the installed telemetry handle (flushing is the
    /// caller's or the handle's `Drop`'s job), or `None` if absent.
    fn take_telemetry(&mut self) -> Option<Telemetry> {
        None
    }

    /// A short human-readable scheme name (e.g. `"Vantage"`, `"WayPart"`).
    fn name(&self) -> &str;
}

/// Converts line-granularity targets into a whole-way allocation summing to
/// exactly `ways`, giving every partition at least one way.
///
/// This is how way-granularity schemes (way-partitioning, PIPP) map the
/// allocation policy's targets onto their mechanism. Uses largest-remainder
/// apportionment on top of a one-way-per-partition floor.
///
/// # Panics
///
/// Panics if `targets` is empty or there are fewer ways than partitions.
pub fn ways_from_targets(targets: &[u64], ways: u32) -> Vec<u32> {
    let n = targets.len();
    assert!(n > 0, "no partitions");
    assert!(ways as usize >= n, "need at least one way per partition");
    let total: u64 = targets.iter().sum();
    let mut alloc = vec![1u32; n];
    let rem = ways - n as u32;
    if rem == 0 {
        return alloc;
    }
    // Desired way share beyond the 1-way floor.
    let extras: Vec<f64> = if total == 0 {
        vec![1.0; n]
    } else {
        targets
            .iter()
            .map(|&t| (t as f64 / total as f64 * f64::from(ways) - 1.0).max(0.0))
            .collect()
    };
    let extra_sum: f64 = extras.iter().sum();
    if extra_sum <= 0.0 {
        // Degenerate: all targets want less than one way; spread evenly.
        for i in 0..rem as usize {
            alloc[i % n] += 1;
        }
        return alloc;
    }
    let scaled: Vec<f64> = extras
        .iter()
        .map(|e| e * f64::from(rem) / extra_sum)
        .collect();
    let mut given = 0u32;
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(n);
    for (i, &s) in scaled.iter().enumerate() {
        let f = s.floor() as u32;
        alloc[i] += f;
        given += f;
        fracs.push((i, s - s.floor()));
    }
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fractions"));
    for k in 0..(rem - given) as usize {
        alloc[fracs[k % n].0] += 1;
    }
    debug_assert_eq!(alloc.iter().sum::<u32>(), ways);
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        assert!(AccessOutcome::Hit.is_hit());
        assert!(!AccessOutcome::Miss.is_hit());
    }

    #[test]
    fn request_constructors() {
        let r = AccessRequest::read(PartitionId::from_index(3), LineAddr(0x10));
        assert_eq!(
            r,
            AccessRequest::new(PartitionId::from_index(3), LineAddr(0x10), AccessKind::Read)
        );
        let w = AccessRequest::write(PartitionId::from_index(3), LineAddr(0x10));
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(AccessKind::default(), AccessKind::Read);
    }

    #[test]
    fn stats_accounting() {
        let mut s = LlcStats::new(2);
        s.hits[0] = 6;
        s.misses[0] = 2;
        s.misses[1] = 4;
        assert_eq!(s.accesses(PartitionId::from_index(0)), 8);
        assert_eq!(s.miss_ratio(PartitionId::from_index(0)), 0.25);
        assert_eq!(s.miss_ratio(PartitionId::from_index(1)), 1.0);
        assert_eq!(s.total_hits(), 6);
        assert_eq!(s.total_misses(), 6);
        s.reset();
        assert_eq!(s.accesses(PartitionId::from_index(0)), 0);
        assert_eq!(s.miss_ratio(PartitionId::from_index(0)), 0.0);
    }

    #[test]
    fn ways_sum_exactly_and_respect_floor() {
        let alloc = ways_from_targets(&[100, 100, 100, 100], 16);
        assert_eq!(alloc, vec![4, 4, 4, 4]);

        let alloc = ways_from_targets(&[700, 100, 100, 100], 16);
        assert_eq!(alloc.iter().sum::<u32>(), 16);
        assert!(alloc.iter().all(|&w| w >= 1));
        assert!(alloc[0] > alloc[1]);

        // A partition with a zero target still gets its floor way.
        let alloc = ways_from_targets(&[1000, 0, 0, 0], 8);
        assert_eq!(alloc.iter().sum::<u32>(), 8);
        assert_eq!(&alloc[1..], &[1, 1, 1]);
        assert_eq!(alloc[0], 5);
    }

    #[test]
    fn ways_handle_many_partitions() {
        let targets: Vec<u64> = (0..32).map(|i| 100 + i * 10).collect();
        let alloc = ways_from_targets(&targets, 64);
        assert_eq!(alloc.iter().sum::<u32>(), 64);
        assert!(alloc.iter().all(|&w| w >= 1));
    }

    #[test]
    fn zero_targets_split_evenly() {
        let alloc = ways_from_targets(&[0, 0], 8);
        assert_eq!(alloc.iter().sum::<u32>(), 8);
        assert!(alloc.iter().all(|&w| w >= 1));
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn too_few_ways_panics() {
        ways_from_targets(&[1, 2, 3, 4, 5], 4);
    }
}
