//! Configuration errors shared by the partitioning schemes.

use std::fmt;

/// A structurally invalid scheme configuration, reported by the `try_new`
/// constructors. The panicking `new` wrappers format these messages
/// verbatim, so legacy `#[should_panic]` expectations keep matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemeConfigError {
    /// The partition count is outside `1..=u16::MAX`.
    BadPartitionCount {
        /// The rejected count.
        partitions: usize,
    },
    /// More partitions than ways in a way-granularity scheme.
    PartitionsExceedWays {
        /// The rejected count.
        partitions: usize,
        /// Ways available.
        ways: usize,
    },
    /// A way index would not fit the scheme's per-way metadata.
    TooManyWays {
        /// The rejected way count.
        ways: usize,
    },
    /// A banked LLC was given no banks.
    NoBanks,
    /// The banks of a banked LLC disagree on partition count.
    BankPartitionMismatch,
}

impl fmt::Display for SchemeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadPartitionCount { partitions } => {
                write!(f, "bad partition count: {partitions} (need 1..=65535)")
            }
            Self::PartitionsExceedWays { partitions, ways } => {
                write!(
                    f,
                    "need 1..=ways partitions, got {partitions} for {ways} ways"
                )
            }
            Self::TooManyWays { ways } => {
                write!(f, "way index must fit in u8, got {ways} ways")
            }
            Self::NoBanks => write!(f, "need at least one bank"),
            Self::BankPartitionMismatch => {
                write!(f, "banks must agree on partition count")
            }
        }
    }
}

impl std::error::Error for SchemeConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_preserve_legacy_assert_phrases() {
        let cases = [
            (
                SchemeConfigError::BadPartitionCount { partitions: 0 },
                "bad partition count",
            ),
            (
                SchemeConfigError::PartitionsExceedWays {
                    partitions: 17,
                    ways: 16,
                },
                "need 1..=ways partitions",
            ),
            (
                SchemeConfigError::TooManyWays { ways: 512 },
                "way index must fit in u8",
            ),
            (SchemeConfigError::NoBanks, "at least one bank"),
            (
                SchemeConfigError::BankPartitionMismatch,
                "banks must agree on partition count",
            ),
        ];
        for (err, phrase) in cases {
            assert!(
                err.to_string().contains(phrase),
                "{err} should contain {phrase:?}"
            );
        }
    }
}
