//! [`PipelinedBankedLlc`]: a bank-sharded LLC fed through per-bank ring
//! buffers and served in long bank-major runs.
//!
//! The serial [`BankedLlc`] re-shards every batch it is handed and walks the
//! banks once per batch, so each bank's tag and metadata arrays are pulled
//! through the host's caches once per driver batch. This engine decouples
//! *production* (sharding requests by bank hash) from *consumption* (serving
//! a bank's requests): requests accumulate in per-bank rings of recycled
//! [`WorkBatch`] buffers, and a drain serves each bank's entire queued run
//! contiguously before touching the next bank. At memory-bound scales the
//! bank-major schedule keeps one bank's metadata hot for hundreds of
//! thousands of consecutive accesses instead of a few thousand, which is
//! where the engine's throughput advantage over the per-access serial path
//! comes from.
//!
//! Ordering and determinism: production scans the window in request order,
//! rings are FIFO, and a bank is only ever served by one consumer — so every
//! bank sees its requests strictly in trace order, exactly like the serial
//! engine. Outcomes, statistics, partition sizes and per-bank telemetry are
//! therefore bit-identical to [`BankedLlc`] at any `jobs` count; only the
//! service *schedule* (and the interleaving of telemetry records across
//! banks) differs. Each bank folds the hit bit of every outcome it serves
//! into a per-bank FNV-1a digest ([`PipelinedBankedLlc::bank_digests`]),
//! giving callers a cheap end-to-end equivalence check against a serial
//! reference without buffering outcome streams.
//!
//! Barriers: the engine is *windowed*, not transactional. Requests handed to
//! [`PipelinedBankedLlc::ingest`] may sit queued until [`barrier`] — every
//! observation or reconfiguration point (target updates, partition
//! lifecycle, stats, telemetry arming, checkpoints) must quiesce first, and
//! the [`Llc`] implementation does so automatically. Checkpoints only cut at
//! barriers: [`vantage_snapshot::Snapshot::save_state`] refuses to serialize
//! an engine with queued work, which is what keeps pipelined snapshots
//! bit-identical to serial ones.
//!
//! With `jobs > 1`, [`run_window`](PipelinedBankedLlc::run_window) streams
//! batches through bounded SPSC rings to scoped worker threads (one owner
//! per bank, round-robin over workers) so consumption overlaps production;
//! with `jobs <= 1` the same rings buffer the window in-process and the
//! drain runs inline. Both paths serve identical per-bank sequences.

use std::collections::VecDeque;

use vantage_cache::hash::mix_bucket;
use vantage_cache::{LineAddr, PartitionId};
use vantage_telemetry::Telemetry;

use crate::banked::BankedLlc;
use crate::error::SchemeConfigError;
use crate::llc::{AccessOutcome, AccessRequest, Llc, LlcStats};
use crate::sharded::Sharded;
use crate::spsc;

/// FNV-1a offset basis: the initial value of every per-bank digest.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a fold step over a `u64` word.
#[inline]
fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01B3)
}

/// One ring slot: a run of same-bank requests plus — on the
/// outcome-returning [`Llc::access_batch`] path — the request-order
/// positions their outcomes scatter back to. Buffers are recycled through a
/// spare pool rather than reallocated, so a steady-state window reuses the
/// same allocations every time.
#[derive(Default)]
struct WorkBatch {
    idxs: Vec<u32>,
    reqs: Vec<AccessRequest>,
}

/// Ring-occupancy accounting, sampled every time a batch is enqueued on a
/// bank ring. `peak_depth` is the deepest any ring has been (in batches);
/// `mean_depth` averages the depth over enqueue events. Deep rings mean
/// production outruns consumption between barriers — the buffering the
/// engine exists to exploit; a peak at the configured ring capacity means
/// inline backpressure drains fired.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RingStats {
    /// Deepest observed ring depth, in batches.
    pub peak_depth: usize,
    /// Sum of observed depths across enqueue samples.
    pub depth_sum: u64,
    /// Number of enqueue samples.
    pub samples: u64,
}

impl RingStats {
    /// Mean ring depth at enqueue, in batches (0.0 before any sample).
    pub fn mean_depth(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.samples as f64
        }
    }
}

/// A multi-bank LLC whose accesses flow through per-bank ring buffers and
/// are served in bank-major runs.
///
/// Composition over [`BankedLlc`]: construction, target splitting, stats
/// aggregation, telemetry fan-out and snapshotting all delegate; what
/// changes is the *service schedule* of batched accesses. See the module
/// docs for the ordering/determinism argument.
///
/// # Example
///
/// ```
/// use vantage_cache::SetAssocArray;
/// use vantage_partitioning::{
///     AccessRequest, BaselineLlc, Llc, PipelinedBankedLlc, PartitionId, RankPolicy,
/// };
///
/// let banks: Vec<Box<dyn Llc>> = (0..4)
///     .map(|b| {
///         Box::new(BaselineLlc::try_new(
///             Box::new(SetAssocArray::hashed(1024, 16, b)),
///             2,
///             RankPolicy::Lru,
///         ).expect("valid baseline geometry")) as Box<dyn Llc>
///     })
///     .collect();
/// let mut llc = PipelinedBankedLlc::try_new(banks, 7, 1).expect("valid bank set");
/// let reqs: Vec<AccessRequest> = (0..1000)
///     .map(|i| AccessRequest::read(PartitionId::from_index(0), vantage_cache::LineAddr(i)))
///     .collect();
/// llc.run_window(&reqs); // shard into rings, drain bank-major
/// assert_eq!(llc.pending(), 0, "run_window leaves the engine quiesced");
/// assert_eq!(llc.bank_digests().len(), 4);
/// ```
pub struct PipelinedBankedLlc {
    inner: BankedLlc,
    jobs: usize,
    /// Requests per [`WorkBatch`]: the granularity of ring slots and of the
    /// SPSC stream in parallel windows.
    batch: usize,
    /// Ring depth (in batches) at which an inline backpressure drain serves
    /// the whole ring for that bank.
    ring_cap: usize,
    /// One open (still-filling) batch per bank.
    staging: Vec<WorkBatch>,
    /// Closed batches queued per bank, oldest first.
    rings: Vec<VecDeque<WorkBatch>>,
    /// Recycled batch buffers (the "double buffering": a steady-state
    /// window is served out of the same allocations as the last one).
    spares: Vec<WorkBatch>,
    /// Per-bank FNV-1a digests over served outcome hit bits, in per-bank
    /// service order (== per-bank request order).
    digests: Vec<u64>,
    ring_stats: RingStats,
    /// Requests ingested but not yet served.
    pending: usize,
    scratch: Vec<AccessOutcome>,
}

impl PipelinedBankedLlc {
    /// Default requests per ring slot.
    pub const DEFAULT_BATCH: usize = 4096;

    /// Default ring depth (batches per bank) before inline backpressure.
    pub const DEFAULT_RING_CAP: usize = 64;

    /// In-flight batches per worker queue in parallel windows.
    const QUEUE_CAP: usize = 8;

    /// Windows smaller than this are served inline even with `jobs > 1` —
    /// the scoped-pool setup cost would dominate.
    pub const PARALLEL_THRESHOLD: usize = 256;

    /// Assembles a pipelined banked LLC from per-bank caches; `jobs` is the
    /// consumer thread count for [`run_window`](Self::run_window) (clamped
    /// to the bank count, 0 treated as 1; 1 means inline consumption).
    ///
    /// # Errors
    ///
    /// Propagates [`BankedLlc::try_new`]'s errors.
    pub fn try_new(
        banks: Vec<Box<dyn Llc>>,
        bank_seed: u64,
        jobs: usize,
    ) -> Result<Self, SchemeConfigError> {
        Ok(Self::from_banked(
            BankedLlc::try_new(banks, bank_seed)?,
            jobs,
        ))
    }

    /// Wraps an already-assembled serial banked cache.
    pub fn from_banked(inner: BankedLlc, jobs: usize) -> Self {
        let n = Sharded::num_banks(&inner);
        let jobs = jobs.clamp(1, n);
        Self {
            inner,
            jobs,
            batch: Self::DEFAULT_BATCH,
            ring_cap: Self::DEFAULT_RING_CAP,
            staging: (0..n).map(|_| WorkBatch::default()).collect(),
            rings: (0..n).map(|_| VecDeque::new()).collect(),
            spares: Vec::new(),
            digests: vec![DIGEST_SEED; n],
            ring_stats: RingStats::default(),
            pending: 0,
            scratch: Vec::new(),
        }
    }

    /// Sets the ring-slot batch size (0 restores the default).
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch = if batch == 0 {
            Self::DEFAULT_BATCH
        } else {
            batch
        };
        self
    }

    /// Sets the per-bank ring capacity in batches (0 restores the default).
    pub fn with_ring_capacity(mut self, cap: usize) -> Self {
        self.ring_cap = if cap == 0 {
            Self::DEFAULT_RING_CAP
        } else {
            cap
        };
        self
    }

    /// The configured consumer thread count.
    pub fn bank_jobs(&self) -> usize {
        self.jobs
    }

    /// Requests ingested but not yet served. Zero means the engine is
    /// quiesced (at a barrier).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Per-bank FNV-1a digests over the hit bit of every outcome served
    /// since construction (or the last [`reset_digests`](Self::reset_digests)),
    /// folded in per-bank service order. A serial reference produces the
    /// same digests by folding its outcome stream grouped by
    /// [`Sharded::bank_of`].
    pub fn bank_digests(&self) -> &[u64] {
        &self.digests
    }

    /// Resets the per-bank digests to [`DIGEST_SEED`] (e.g. after warmup,
    /// so digests cover only the measured window).
    pub fn reset_digests(&mut self) {
        self.digests.fill(DIGEST_SEED);
    }

    /// Ring-occupancy statistics since construction or the last
    /// [`reset_ring_stats`](Self::reset_ring_stats).
    pub fn ring_stats(&self) -> RingStats {
        self.ring_stats
    }

    /// Clears the ring-occupancy statistics.
    pub fn reset_ring_stats(&mut self) {
        self.ring_stats = RingStats::default();
    }

    /// The serial engine this cache wraps (e.g. for per-bank inspection).
    pub fn as_banked(&self) -> &BankedLlc {
        &self.inner
    }

    /// Unwraps back into the serial engine, discarding any queued work.
    pub fn into_banked(mut self) -> BankedLlc {
        self.barrier();
        self.inner
    }

    fn fresh_batch(&mut self) -> WorkBatch {
        self.spares.pop().unwrap_or_default()
    }

    /// Closes bank `b`'s staging batch onto its ring, sampling occupancy,
    /// and fires an inline backpressure drain when the ring is full.
    fn close_staging(&mut self, b: usize) {
        let fresh = self.fresh_batch();
        let full = std::mem::replace(&mut self.staging[b], fresh);
        if full.reqs.is_empty() {
            self.spares.push(full);
            return;
        }
        self.rings[b].push_back(full);
        let depth = self.rings[b].len();
        self.ring_stats.peak_depth = self.ring_stats.peak_depth.max(depth);
        self.ring_stats.depth_sum += depth as u64;
        self.ring_stats.samples += 1;
        if depth >= self.ring_cap {
            // Production outran this bank's ring: serve its whole queued
            // run now. Still one long bank-major run, just cut earlier.
            self.drain_bank(b);
        }
    }

    /// Shards `reqs` into the per-bank rings without serving them (except
    /// for backpressure drains). Call [`barrier`](Self::barrier) to flush.
    ///
    /// The request-order positions of outcomes are *not* retained: outcomes
    /// are folded into the per-bank digests when drained and otherwise
    /// discarded. Use [`Llc::access_batch`] when outcomes are needed.
    pub fn ingest(&mut self, reqs: &[AccessRequest]) {
        let n = self.rings.len();
        let seed = self.inner.bank_seed();
        for &req in reqs {
            let b = mix_bucket(req.addr.0, seed, n as u32) as usize;
            self.staging[b].reqs.push(req);
            self.pending += 1;
            if self.staging[b].reqs.len() >= self.batch {
                self.close_staging(b);
            }
        }
    }

    /// Drains every queued batch for bank `b` — one contiguous bank-major
    /// run — folding outcomes into the bank's digest. Batches carrying
    /// scatter indices must go through [`drain_bank_scatter`] instead.
    fn drain_bank(&mut self, b: usize) {
        while let Some(mut wb) = self.rings[b].pop_front() {
            debug_assert!(wb.idxs.is_empty(), "scatter batch on the digest-only drain");
            self.scratch.clear();
            self.inner
                .bank_mut(b)
                .access_batch(&wb.reqs, &mut self.scratch);
            let mut d = self.digests[b];
            for o in &self.scratch {
                d = fnv(d, o.is_hit() as u64);
            }
            self.digests[b] = d;
            self.pending -= wb.reqs.len();
            wb.reqs.clear();
            self.spares.push(wb);
        }
    }

    /// [`drain_bank`] that additionally scatters outcomes into `out` at
    /// each batch's recorded request-order positions.
    fn drain_bank_scatter(&mut self, b: usize, out: &mut [AccessOutcome]) {
        while let Some(mut wb) = self.rings[b].pop_front() {
            self.scratch.clear();
            self.inner
                .bank_mut(b)
                .access_batch(&wb.reqs, &mut self.scratch);
            let mut d = self.digests[b];
            for (&i, &o) in wb.idxs.iter().zip(&self.scratch) {
                d = fnv(d, o.is_hit() as u64);
                out[i as usize] = o;
            }
            self.digests[b] = d;
            self.pending -= wb.reqs.len();
            wb.idxs.clear();
            wb.reqs.clear();
            self.spares.push(wb);
        }
    }

    /// Quiesces the engine: closes every staging batch and serves every
    /// ring, bank-major. This is the *only* point where queued work is
    /// guaranteed served; epoch repartitioning, checkpoints, stats reads
    /// and lifecycle operations all sit behind it.
    pub fn barrier(&mut self) {
        if self.pending == 0 {
            return;
        }
        for b in 0..self.rings.len() {
            self.close_staging(b);
        }
        for b in 0..self.rings.len() {
            self.drain_bank(b);
        }
        debug_assert_eq!(self.pending, 0, "barrier left queued work behind");
    }

    /// Serves one window of requests through the engine's native path and
    /// quiesces: with `jobs <= 1` the window is sharded into the rings and
    /// drained bank-major inline; with `jobs > 1` production (sharding, on
    /// the calling thread) overlaps consumption (scoped workers owning
    /// banks round-robin, fed over bounded SPSC queues). Outcomes fold into
    /// the per-bank digests; use [`Llc::access_batch`] to get them back.
    pub fn run_window(&mut self, reqs: &[AccessRequest]) {
        if self.jobs > 1 && reqs.len() >= Self::PARALLEL_THRESHOLD {
            self.barrier();
            self.run_parallel(reqs, None);
        } else {
            self.ingest(reqs);
            self.barrier();
        }
    }

    /// The overlapped producer/consumer window: shard on this thread,
    /// stream bounded batches to `jobs` workers (worker `j` owns every bank
    /// `b` with `b % jobs == j`), fold digests bank-FIFO in the workers.
    /// With `out`, outcomes also scatter back to request order.
    fn run_parallel(&mut self, reqs: &[AccessRequest], out: Option<&mut [AccessOutcome]>) {
        debug_assert_eq!(self.pending, 0, "parallel window entered un-quiesced");
        let jobs = self.jobs;
        let batch = self.batch;
        let seed = self.inner.bank_seed();
        let nbanks = self.rings.len();
        let digests = &mut self.digests;
        let want_idxs = out.is_some();

        // Round-robin banks over workers, handing each worker its banks'
        // digest seeds. Disjoint &mut borrows, checked by iter_mut.
        let mut worker_banks: Vec<Vec<OwnedBank<'_>>> = (0..jobs).map(|_| Vec::new()).collect();
        for (b, bank) in self.inner.banks_mut().iter_mut().enumerate() {
            worker_banks[b % jobs].push((b, bank, digests[b]));
        }

        std::thread::scope(|s| {
            let mut senders = Vec::with_capacity(jobs);
            let mut handles = Vec::with_capacity(jobs);
            for my_banks in worker_banks {
                let (tx, rx) = spsc::channel::<(usize, WorkBatch)>(Self::QUEUE_CAP);
                senders.push(tx);
                handles.push(s.spawn(move || consumer_loop(my_banks, &rx)));
            }

            // Produce: per-bank runs flush to the owning worker the moment
            // they reach the batch size. Ordered scan + FIFO queue + single
            // owner per bank preserves per-bank request order end-to-end.
            let mut bufs: Vec<WorkBatch> = (0..nbanks).map(|_| WorkBatch::default()).collect();
            for (i, &req) in reqs.iter().enumerate() {
                let b = mix_bucket(req.addr.0, seed, nbanks as u32) as usize;
                if want_idxs {
                    bufs[b].idxs.push(i as u32);
                }
                bufs[b].reqs.push(req);
                if bufs[b].reqs.len() == batch {
                    let wb = std::mem::take(&mut bufs[b]);
                    let _ = senders[b % jobs].send((b, wb));
                }
            }
            for (b, buf) in bufs.iter_mut().enumerate() {
                if !buf.reqs.is_empty() {
                    let _ = senders[b % jobs].send((b, std::mem::take(buf)));
                }
            }
            drop(senders); // EOF: workers drain and return

            let mut scatter = out;
            for h in handles {
                // A worker panic (a bank's scheme panicked mid-access)
                // propagates rather than silently losing outcomes.
                let (pairs, bank_digests) = h.join().expect("bank consumer panicked");
                if let Some(out) = scatter.as_deref_mut() {
                    for (i, o) in pairs {
                        out[i as usize] = o;
                    }
                }
                for (b, d) in bank_digests {
                    digests[b] = d;
                }
            }
        });
    }
}

/// A consumer-owned bank: its index, the bank itself, and its running
/// outcome digest.
type OwnedBank<'a> = (usize, &'a mut Box<dyn Llc>, u64);

/// Serves batches for one consumer's banks until its queue signals EOF.
/// Returns the scatter pairs (empty unless the producer recorded indices)
/// and each owned bank's final digest.
#[allow(clippy::type_complexity)]
fn consumer_loop(
    mut my_banks: Vec<OwnedBank<'_>>,
    rx: &spsc::Receiver<(usize, WorkBatch)>,
) -> (Vec<(u32, AccessOutcome)>, Vec<(usize, u64)>) {
    let mut pairs = Vec::new();
    let mut scratch = Vec::new();
    while let Some((b, wb)) = rx.recv() {
        let (_, bank, digest) = my_banks
            .iter_mut()
            .find(|(owned, _, _)| *owned == b)
            .expect("batch routed to owning consumer");
        scratch.clear();
        bank.access_batch(&wb.reqs, &mut scratch);
        for &o in &scratch {
            *digest = fnv(*digest, o.is_hit() as u64);
        }
        pairs.extend(wb.idxs.iter().copied().zip(scratch.iter().copied()));
    }
    let digests = my_banks.iter().map(|&(b, _, d)| (b, d)).collect();
    (pairs, digests)
}

impl Llc for PipelinedBankedLlc {
    /// Serves one request inline. Quiesces first so the request observes
    /// every previously ingested access in order; the single-access path is
    /// therefore an implicit barrier, not a hot path.
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        self.barrier();
        let b = self.inner.bank_of(req.addr);
        let o = self.inner.access(req);
        self.digests[b] = fnv(self.digests[b], o.is_hit() as u64);
        o
    }

    /// The outcome-returning path: quiesce, shard the batch into the rings
    /// with scatter indices, drain bank-major, and hand outcomes back in
    /// request order. Identical results to [`BankedLlc::access_batch`];
    /// bank-major service schedule.
    fn access_batch(&mut self, reqs: &[AccessRequest], out: &mut Vec<AccessOutcome>) {
        self.barrier();
        let start = out.len();
        out.resize(start + reqs.len(), AccessOutcome::Miss);
        if self.jobs > 1 && reqs.len() >= Self::PARALLEL_THRESHOLD {
            self.run_parallel(reqs, Some(&mut out[start..]));
            return;
        }
        let n = self.rings.len();
        let seed = self.inner.bank_seed();
        for (i, &req) in reqs.iter().enumerate() {
            let b = mix_bucket(req.addr.0, seed, n as u32) as usize;
            self.staging[b].idxs.push(i as u32);
            self.staging[b].reqs.push(req);
            self.pending += 1;
            // No inline backpressure here: these batches carry scatter
            // indices scoped to this call, so they drain below, in full.
            if self.staging[b].reqs.len() >= self.batch {
                let fresh = self.fresh_batch();
                let full = std::mem::replace(&mut self.staging[b], fresh);
                self.rings[b].push_back(full);
                let depth = self.rings[b].len();
                self.ring_stats.peak_depth = self.ring_stats.peak_depth.max(depth);
                self.ring_stats.depth_sum += depth as u64;
                self.ring_stats.samples += 1;
            }
        }
        for b in 0..n {
            if !self.staging[b].reqs.is_empty() {
                let fresh = self.fresh_batch();
                let full = std::mem::replace(&mut self.staging[b], fresh);
                self.rings[b].push_back(full);
            }
        }
        let out_tail = {
            // Split the borrow: drain needs &mut self, scatter needs the
            // tail of `out`. The tail is disjoint from every field of self.
            &mut out[start..]
        };
        for b in 0..n {
            self.drain_bank_scatter(b, out_tail);
        }
    }

    fn num_partitions(&self) -> usize {
        self.inner.num_partitions()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Quiesces, then retargets: repartitioning is an epoch barrier, so
    /// every queued access lands under the old targets first.
    fn set_targets(&mut self, targets: &[u64]) {
        self.barrier();
        self.inner.set_targets(targets);
    }

    /// The size visible at the last barrier; queued accesses have not
    /// landed yet. Observation paths that must be exact (`observations`,
    /// `stats_mut`) quiesce automatically.
    fn partition_size(&self, part: PartitionId) -> u64 {
        self.inner.partition_size(part)
    }

    fn create_partition(
        &mut self,
        spec: crate::llc::PartitionSpec,
    ) -> Result<PartitionId, crate::llc::LifecycleError> {
        self.barrier();
        self.inner.create_partition(spec)
    }

    fn destroy_partition(&mut self, part: PartitionId) -> Result<(), crate::llc::LifecycleError> {
        self.barrier();
        self.inner.destroy_partition(part)
    }

    fn observations(&mut self) -> crate::llc::PartitionObservations {
        self.barrier();
        self.inner.observations()
    }

    /// Mode changes cut at a barrier: queued accesses were issued under the
    /// old mode and must land under it.
    fn set_share_mode(&mut self, mode: vantage_cache::ShareMode) -> bool {
        self.barrier();
        self.inner.set_share_mode(mode)
    }

    fn share_mode(&self) -> vantage_cache::ShareMode {
        self.inner.share_mode()
    }

    fn stats(&self) -> &LlcStats {
        self.inner.stats()
    }

    fn stats_mut(&mut self) -> &mut LlcStats {
        self.barrier();
        self.inner.stats_mut()
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) -> bool {
        self.barrier();
        self.inner.set_telemetry(telemetry)
    }

    fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.barrier();
        self.inner.take_telemetry()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl vantage_snapshot::Snapshot for PipelinedBankedLlc {
    /// Checkpoints only cut at barriers: serializing with queued work would
    /// bake the ring contents' *absence* into the snapshot and diverge from
    /// a serial run on restore. `save_state` takes `&self`, so it cannot
    /// quiesce for you — callers drain first (the simulator's checkpoint
    /// path barriers at the epoch boundary before saving).
    ///
    /// # Panics
    ///
    /// Panics if the engine has pending (ingested, unserved) requests.
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        assert_eq!(
            self.pending, 0,
            "checkpoint cut mid-window: barrier() before save_state"
        );
        // The rings hold no simulation state once drained; the wrapped
        // serial engine is the whole checkpoint, so snapshots interchange
        // with serial/parallel engines at any job count.
        self.inner.save_state(enc);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        // Queued pre-restore work is meaningless against the restored
        // state; drop it and start the new run quiesced with fresh digests.
        for b in 0..self.rings.len() {
            self.staging[b].idxs.clear();
            self.staging[b].reqs.clear();
            while let Some(mut wb) = self.rings[b].pop_front() {
                wb.idxs.clear();
                wb.reqs.clear();
                self.spares.push(wb);
            }
        }
        self.pending = 0;
        self.reset_digests();
        self.inner.load_state(dec)
    }
}

impl Sharded for PipelinedBankedLlc {
    fn num_banks(&self) -> usize {
        Sharded::num_banks(&self.inner)
    }

    fn bank_of(&self, addr: LineAddr) -> usize {
        self.inner.bank_of(addr)
    }

    fn bank(&self, i: usize) -> &dyn Llc {
        self.inner.bank(i)
    }

    fn bank_mut(&mut self, i: usize) -> &mut dyn Llc {
        self.inner.bank_mut(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{BaselineLlc, RankPolicy};
    use vantage_cache::ZArray;
    use vantage_snapshot::{Decoder, Encoder, Snapshot};

    fn banks(n: usize, lines_per_bank: usize) -> Vec<Box<dyn Llc>> {
        (0..n as u64)
            .map(|b| {
                Box::new(
                    BaselineLlc::try_new(
                        Box::new(ZArray::new(lines_per_bank, 4, 16, b)),
                        2,
                        RankPolicy::Lru,
                    )
                    .expect("valid baseline geometry"),
                ) as Box<dyn Llc>
            })
            .collect()
    }

    fn trace(n: u64) -> Vec<AccessRequest> {
        (0..n)
            .map(|i| {
                AccessRequest::read(
                    PartitionId::from_index((i % 2) as usize),
                    LineAddr((i * 2654435761) % 3000),
                )
            })
            .collect()
    }

    /// The serial reference for digest checks: fold a serial engine's
    /// outcome stream grouped by bank.
    fn serial_bank_digests(llc: &BankedLlc, reqs: &[AccessRequest]) -> (Vec<u64>, Vec<u64>) {
        let mut serial =
            BankedLlc::try_new(banks(Sharded::num_banks(llc), 512), 7).expect("valid bank set");
        let mut digests = vec![DIGEST_SEED; Sharded::num_banks(llc)];
        let mut stats = Vec::new();
        for &r in reqs {
            let b = serial.bank_of(r.addr);
            let o = serial.access(r);
            digests[b] = fnv(digests[b], o.is_hit() as u64);
        }
        let s = serial.stats_mut();
        stats.extend(s.hits.iter().copied());
        stats.extend(s.misses.iter().copied());
        stats.push(s.evictions);
        (digests, stats)
    }

    fn observed_stats(llc: &mut dyn Llc) -> Vec<u64> {
        let s = llc.stats_mut();
        let mut v: Vec<u64> = s.hits.to_vec();
        v.extend(s.misses.iter().copied());
        v.push(s.evictions);
        v
    }

    #[test]
    fn access_batch_matches_serial_bit_for_bit() {
        let reqs = trace(20_000);
        let mut serial = BankedLlc::try_new(banks(4, 512), 7).expect("valid bank set");
        let mut serial_out = Vec::new();
        for chunk in reqs.chunks(777) {
            serial.access_batch(chunk, &mut serial_out);
        }
        for jobs in [1, 2, 4] {
            let mut pipe = PipelinedBankedLlc::try_new(banks(4, 512), 7, jobs)
                .expect("valid bank set")
                .with_batch_size(64);
            let mut out = Vec::new();
            for chunk in reqs.chunks(777) {
                pipe.access_batch(chunk, &mut out);
            }
            assert_eq!(serial_out, out, "outcomes diverge at jobs={jobs}");
            assert_eq!(serial.stats_mut().hits, pipe.stats_mut().hits);
            assert_eq!(serial.stats_mut().misses, pipe.stats_mut().misses);
            assert_eq!(serial.stats_mut().evictions, pipe.stats_mut().evictions);
            assert_eq!(pipe.pending(), 0);
        }
    }

    #[test]
    fn windowed_digests_match_serial_at_any_jobs() {
        let reqs = trace(30_000);
        let probe = BankedLlc::try_new(banks(4, 512), 7).expect("valid bank set");
        let (want_digests, want_stats) = serial_bank_digests(&probe, &reqs);
        for jobs in [1, 2, 4] {
            let mut pipe = PipelinedBankedLlc::try_new(banks(4, 512), 7, jobs)
                .expect("valid bank set")
                .with_batch_size(128);
            for window in reqs.chunks(7001) {
                pipe.run_window(window);
                assert_eq!(pipe.pending(), 0, "run_window quiesces");
            }
            assert_eq!(pipe.bank_digests(), &want_digests[..], "jobs={jobs}");
            assert_eq!(observed_stats(&mut pipe), want_stats, "jobs={jobs}");
        }
    }

    #[test]
    fn ingest_with_backpressure_matches_serial() {
        let reqs = trace(30_000);
        let probe = BankedLlc::try_new(banks(4, 512), 7).expect("valid bank set");
        let (want_digests, want_stats) = serial_bank_digests(&probe, &reqs);
        // Tiny batches + shallow rings: inline backpressure drains fire
        // constantly, cutting the bank-major runs early.
        let mut pipe = PipelinedBankedLlc::try_new(banks(4, 512), 7, 1)
            .expect("valid bank set")
            .with_batch_size(16)
            .with_ring_capacity(2);
        for chunk in reqs.chunks(1234) {
            pipe.ingest(chunk);
        }
        pipe.barrier();
        assert_eq!(pipe.bank_digests(), &want_digests[..]);
        assert_eq!(observed_stats(&mut pipe), want_stats);
        let rs = pipe.ring_stats();
        assert_eq!(rs.peak_depth, 2, "backpressure capped the rings");
        assert!(rs.samples > 0 && rs.mean_depth() > 0.0);
    }

    #[test]
    fn empty_and_single_request_windows() {
        let mut pipe = PipelinedBankedLlc::try_new(banks(2, 256), 3, 1).expect("valid bank set");
        pipe.run_window(&[]);
        pipe.barrier();
        assert_eq!(pipe.pending(), 0);
        let mut out = Vec::new();
        pipe.access_batch(&[], &mut out);
        assert!(out.is_empty());
        let req = AccessRequest::read(PartitionId::from_index(0), LineAddr(9));
        pipe.access_batch(&[req], &mut out);
        assert_eq!(out, vec![AccessOutcome::Miss]);
        assert_eq!(pipe.access(req), AccessOutcome::Hit);
    }

    #[test]
    fn single_access_observes_queued_work() {
        let mut pipe = PipelinedBankedLlc::try_new(banks(2, 256), 3, 1).expect("valid bank set");
        let addr = LineAddr(0x77);
        pipe.ingest(&[AccessRequest::read(PartitionId::from_index(0), addr)]);
        assert!(pipe.pending() > 0);
        // The inline access must see the queued insertion of the same line.
        assert_eq!(
            pipe.access(AccessRequest::read(PartitionId::from_index(0), addr)),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn lifecycle_and_stats_quiesce_first() {
        let mut pipe = PipelinedBankedLlc::try_new(banks(2, 256), 3, 1).expect("valid bank set");
        let reqs = trace(1000);
        pipe.ingest(&reqs);
        assert!(pipe.pending() > 0);
        let s = pipe.stats_mut();
        assert_eq!(s.total_hits() + s.total_misses(), 1000, "stats_mut drained");
        pipe.ingest(&reqs);
        pipe.set_targets(&[300, 212]);
        assert_eq!(pipe.pending(), 0, "set_targets drained");
    }

    #[test]
    #[should_panic(expected = "barrier() before save_state")]
    fn snapshot_refuses_to_cut_mid_window() {
        let mut pipe = PipelinedBankedLlc::try_new(banks(2, 256), 3, 1).expect("valid bank set");
        pipe.ingest(&trace(100));
        let mut enc = Encoder::new();
        pipe.save_state(&mut enc);
    }

    #[test]
    fn snapshot_round_trips_at_a_barrier() {
        let reqs = trace(10_000);
        let mut pipe = PipelinedBankedLlc::try_new(banks(2, 256), 3, 1).expect("valid bank set");
        pipe.run_window(&reqs[..6000]);
        let mut enc = Encoder::new();
        pipe.save_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut restored =
            PipelinedBankedLlc::try_new(banks(2, 256), 3, 1).expect("valid bank set");
        // Queued work in the target must not leak into the restored run.
        restored.ingest(&reqs[..100]);
        let mut dec = Decoder::new(&bytes, "pipelined llc");
        restored.load_state(&mut dec).expect("restore succeeds");
        assert_eq!(restored.pending(), 0);

        pipe.reset_digests();
        restored.reset_digests();
        pipe.run_window(&reqs[6000..]);
        restored.run_window(&reqs[6000..]);
        assert_eq!(pipe.bank_digests(), restored.bank_digests());
        assert_eq!(observed_stats(&mut pipe), observed_stats(&mut restored));
    }

    #[test]
    fn jobs_clamped_and_surface_delegates() {
        let pipe = PipelinedBankedLlc::try_new(banks(2, 256), 3, 16).expect("valid bank set");
        assert_eq!(pipe.bank_jobs(), 2);
        let pipe = PipelinedBankedLlc::try_new(banks(2, 256), 3, 0).expect("valid bank set");
        assert_eq!(pipe.bank_jobs(), 1);
        let mut pipe = PipelinedBankedLlc::try_new(banks(4, 256), 9, 2).expect("valid bank set");
        assert_eq!(pipe.capacity(), 1024);
        assert_eq!(pipe.num_partitions(), 2);
        assert!(pipe.name().starts_with("4x"));
        assert_eq!(Sharded::num_banks(&pipe), 4);
        let addr = LineAddr(0x55);
        let b = pipe.bank_of(addr);
        pipe.access(AccessRequest::read(PartitionId::from_index(0), addr));
        assert_eq!(pipe.bank(b).stats().total_misses(), 1);
        assert_eq!(pipe.bank_mut(b).num_partitions(), 2);
        let serial = pipe.into_banked();
        assert_eq!(serial.capacity(), 1024);
    }
}
