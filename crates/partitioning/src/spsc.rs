//! Bounded single-producer/single-consumer channels.
//!
//! The parallel sharded engine ([`ParallelBankedLlc`](crate::ParallelBankedLlc))
//! streams per-bank request batches from the producing thread to one worker
//! per bank group. Each worker gets its own channel, so the queues are
//! strictly SPSC; the bound applies backpressure when a worker falls behind,
//! keeping the number of in-flight batches (and therefore memory) constant.
//!
//! The implementation is a `Mutex<VecDeque>` + two `Condvar`s — boring on
//! purpose: batches are coarse (tens of requests), so queue operations are
//! far off the hot path and lock-free cleverness would buy nothing.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    buf: VecDeque<T>,
    /// Set when either endpoint is dropped; wakes the other side.
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

/// The sending half of a bounded SPSC channel.
pub struct Sender<T> {
    ch: Arc<Shared<T>>,
}

/// The receiving half of a bounded SPSC channel.
pub struct Receiver<T> {
    ch: Arc<Shared<T>>,
}

/// Creates a bounded SPSC channel holding at most `cap` in-flight items.
///
/// # Panics
///
/// Panics if `cap` is zero (a zero-capacity rendezvous is never what the
/// batching engine wants and would deadlock a same-thread send).
pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "spsc channel capacity must be non-zero");
    let ch = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap),
            closed: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        cap,
    });
    (Sender { ch: ch.clone() }, Receiver { ch })
}

impl<T> Sender<T> {
    /// Sends `v`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` if the receiver has been dropped.
    pub fn send(&self, v: T) -> Result<(), T> {
        let mut st = self.ch.state.lock().expect("spsc lock poisoned");
        loop {
            if st.closed {
                return Err(v);
            }
            if st.buf.len() < self.ch.cap {
                st.buf.push_back(v);
                self.ch.not_empty.notify_one();
                return Ok(());
            }
            st = self.ch.not_full.wait(st).expect("spsc lock poisoned");
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.ch.state.lock().expect("spsc lock poisoned");
        st.closed = true;
        // Queued items remain receivable; the receiver drains then sees EOF.
        self.ch.not_empty.notify_one();
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking while the queue is empty.
    ///
    /// Returns `None` once the sender has been dropped *and* the queue is
    /// drained — the clean end-of-stream signal workers terminate on.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.ch.state.lock().expect("spsc lock poisoned");
        loop {
            if let Some(v) = st.buf.pop_front() {
                self.ch.not_full.notify_one();
                return Some(v);
            }
            if st.closed {
                return None;
            }
            st = self.ch.not_empty.wait(st).expect("spsc lock poisoned");
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.ch.state.lock().expect("spsc lock poisoned");
        st.closed = true;
        self.ch.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = channel(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Some(i));
        }
    }

    #[test]
    fn eof_after_sender_drop() {
        let (tx, rx) = channel::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7), "queued items survive sender drop");
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "EOF is sticky");
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(1));
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let (tx, rx) = channel(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = channel::<u32>(0);
    }
}
