//! Timestamp histograms for measuring empirical eviction/demotion
//! priorities.
//!
//! The paper's associativity heat maps (Fig. 8) plot, over time, the
//! *eviction priority* of each evicted or demoted line: its rank among the
//! lines of its partition under the replacement policy, normalized to
//! `[0, 1]` (1.0 = the line the policy most wants gone). Tracking exact
//! ranks would require a sorted structure; with 8-bit coarse timestamps a
//! 256-bucket histogram gives the rank to within a timestamp quantum, which
//! is also exactly the precision the hardware itself has.

/// A histogram of 8-bit timestamps for one partition (or region).
///
/// # Example
///
/// ```
/// use vantage_partitioning::TsHistogram;
///
/// let mut h = TsHistogram::new();
/// h.add(10);
/// h.add(11);
/// h.add(12);
/// // With current time 12, the line stamped 10 is the oldest of the 3:
/// // both other lines are strictly younger (2 of 3), and the line itself
/// // counts as half a tie, so its rank is (2 + 1/2) / 3 = 5/6.
/// assert_eq!(h.rank(10, 12), 5.0 / 6.0);
/// ```
#[derive(Clone)]
pub struct TsHistogram {
    counts: [u32; 256],
    total: u64,
}

impl Default for TsHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl TsHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; 256],
            total: 0,
        }
    }

    /// Records a line stamped `ts`.
    #[inline]
    pub fn add(&mut self, ts: u8) {
        self.counts[ts as usize] += 1;
        self.total += 1;
    }

    /// Removes a line stamped `ts`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if no line with `ts` is recorded.
    #[inline]
    pub fn remove(&mut self, ts: u8) {
        debug_assert!(
            self.counts[ts as usize] > 0,
            "histogram underflow at ts {ts}"
        );
        self.counts[ts as usize] = self.counts[ts as usize].saturating_sub(1);
        self.total = self.total.saturating_sub(1);
    }

    /// Moves a line from stamp `old` to stamp `new` (e.g. on a hit).
    #[inline]
    pub fn restamp(&mut self, old: u8, new: u8) {
        self.remove(old);
        self.add(new);
    }

    /// Number of lines recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of lines recorded with timestamp `ts`.
    pub fn count(&self, ts: u8) -> u32 {
        self.counts[ts as usize]
    }

    /// The eviction-priority rank of a line stamped `ts` when the domain's
    /// current timestamp is `current`: the fraction of lines that are
    /// *younger* (smaller age, where age = `current - ts` mod 256), counting
    /// ties as half. Returns 0.5 for an empty histogram.
    ///
    /// Older lines get ranks near 1.0 — they are what LRU wants to evict.
    pub fn rank(&self, ts: u8, current: u8) -> f64 {
        if self.total == 0 {
            return 0.5;
        }
        let age = current.wrapping_sub(ts);
        let mut younger: u64 = 0;
        for a in 0..age {
            younger += u64::from(self.counts[current.wrapping_sub(a) as usize]);
        }
        let ties = u64::from(self.counts[ts as usize]);
        (younger as f64 + ties as f64 / 2.0) / self.total as f64
    }

    /// The count-weighted p-quantile age (0.0 = youngest, 1.0 = oldest),
    /// in timestamp units relative to `current`. Useful for tests.
    pub fn age_quantile(&self, p: f64, current: u8) -> u8 {
        let target = (p.clamp(0.0, 1.0) * self.total as f64) as u64;
        let mut seen = 0u64;
        for a in 0..=255u8 {
            seen += u64::from(self.counts[current.wrapping_sub(a) as usize]);
            if seen > target {
                return a;
            }
        }
        255
    }
}

impl std::fmt::Debug for TsHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsHistogram")
            .field("total", &self.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_orders_by_age() {
        let mut h = TsHistogram::new();
        // Stamps 0 (oldest) .. 9 (youngest), current = 9.
        for ts in 0..10u8 {
            h.add(ts);
        }
        let oldest = h.rank(0, 9);
        let mid = h.rank(5, 9);
        let youngest = h.rank(9, 9);
        assert!(oldest > mid && mid > youngest);
        assert!((oldest - 0.95).abs() < 1e-9, "oldest rank {oldest}");
        assert!((youngest - 0.05).abs() < 1e-9, "youngest rank {youngest}");
    }

    #[test]
    fn rank_is_exact_with_ties_counted_as_half() {
        let mut h = TsHistogram::new();
        h.add(10);
        h.add(11);
        h.add(12);
        // Unique stamps, current = 12: rank(ts) = (#younger + 1/2) / 3.
        assert_eq!(h.rank(10, 12), (2.0 + 0.5) / 3.0);
        assert_eq!(h.rank(11, 12), (1.0 + 0.5) / 3.0);
        assert_eq!(h.rank(12, 12), 0.5 / 3.0);
        // A tie splits: two lines at the oldest stamp share rank
        // (#younger + #ties/2) / total.
        h.add(10);
        assert_eq!(h.rank(10, 12), (2.0 + 1.0) / 4.0);
        // Ranks of populated stamps always lie strictly inside (0, 1): even
        // the youngest line carries half its own tie weight, and the oldest
        // still donates half of its own.
        for ts in [10u8, 11, 12] {
            let r = h.rank(ts, 12);
            assert!(r > 0.0 && r < 1.0, "rank({ts}) = {r} out of bounds");
        }
    }

    #[test]
    fn rank_handles_wraparound() {
        let mut h = TsHistogram::new();
        // Current = 2; stamps 250..=255 are older than stamps 0..=2.
        for ts in [250u8, 255, 0, 1, 2] {
            h.add(ts);
        }
        assert!(h.rank(250, 2) > h.rank(255, 2));
        assert!(h.rank(255, 2) > h.rank(1, 2));
    }

    #[test]
    fn restamp_preserves_total() {
        let mut h = TsHistogram::new();
        h.add(4);
        h.restamp(4, 9);
        assert_eq!(h.total(), 1);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.count(9), 1);
    }

    #[test]
    fn empty_histogram_rank_is_half() {
        let h = TsHistogram::new();
        assert_eq!(h.rank(3, 7), 0.5);
    }

    #[test]
    fn age_quantile_finds_median() {
        let mut h = TsHistogram::new();
        for ts in 0..100u8 {
            h.add(ts);
        }
        let median_age = h.age_quantile(0.5, 99);
        assert!((45..=55).contains(&median_age), "median age {median_age}");
    }
}
