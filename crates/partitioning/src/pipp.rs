//! PIPP: promotion/insertion pseudo-partitioning (Xie & Loh, ISCA 2009).
//!
//! PIPP approximates partitioning by managing each set's priority chain:
//!
//! * **Insertion**: a partition allocated `w` ways inserts new lines at
//!   chain position `w - 1` (0 = LRU end), so larger allocations insert
//!   closer to MRU and naturally retain more lines.
//! * **Promotion**: on a hit, a line moves up a single position with
//!   probability `p_prom = 3/4` (instead of jumping to MRU as in LRU).
//! * **Stream detection**: partitions missing on at least
//!   `θ_m = 12.5%` of their accesses in the last interval are classified as
//!   streaming; they are treated as owning a single way, insert at the
//!   bottom of the stack (position `s - 1`, where `s` counts total
//!   streaming ways) and promote with `p_stream = 1/128`, limiting cache
//!   pollution.
//!
//! These are the parameter values the Vantage paper uses for its PIPP
//! baseline (§5). As the paper observes (§6.1), insertion positions equal to
//! the way allocation stop scaling with many partitions: with 32 partitions
//! on a 64-way cache most partitions insert near the LRU end, causing
//! contention at the bottom of the chain and dead lines at the top (Fig. 7).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_cache::{
    CacheArray, Ownership, PartitionId, SetAssocArray, ShareMode, TagMeta, Walk, TAG_UNMANAGED,
};
use vantage_telemetry::{PartitionSample, Telemetry, TelemetryEvent};

use crate::error::SchemeConfigError;
use crate::llc::{
    ways_from_targets, AccessOutcome, AccessRequest, Llc, LlcStats, PartitionObservations,
};

/// Tuning knobs for [`PippLlc`] (defaults are the paper's values).
#[derive(Clone, Debug)]
pub struct PippConfig {
    /// Probability a hit promotes the line one position.
    pub p_prom: f64,
    /// Promotion probability for streaming partitions.
    pub p_stream: f64,
    /// Miss-ratio threshold for classifying a partition as streaming.
    pub theta_miss: f64,
    /// Minimum interval accesses before (re)classifying a partition.
    pub min_classify_accesses: u64,
}

impl Default for PippConfig {
    fn default() -> Self {
        Self {
            p_prom: 0.75,
            p_stream: 1.0 / 128.0,
            theta_miss: 0.125,
            min_classify_accesses: 1000,
        }
    }
}

/// A PIPP-managed set-associative LLC.
///
/// # Example
///
/// ```
/// use vantage_partitioning::{AccessRequest, Llc, PartitionId, PippConfig, PippLlc};
///
/// let mut llc = PippLlc::try_new(4096, 16, 4, PippConfig::default(), 7).expect("valid PIPP geometry");
/// llc.set_targets(&[1024, 1024, 1024, 1024]);
/// llc.access(AccessRequest::read(PartitionId::from_index(0), 0x3.into()));
/// ```
pub struct PippLlc {
    array: SetAssocArray,
    ways: u32,
    /// Per-set priority chains: `chain[set*ways + pos]` is the way at
    /// position `pos` (0 = LRU end).
    chain: Vec<u8>,
    /// Per-frame tag lanes shared with the Vantage core: the partition lane
    /// holds each line's inserting partition ([`TAG_UNMANAGED`] for
    /// never-filled frames), the stamp lane the inverse chain map
    /// (`meta.ts(frame)` is the frame's chain position).
    meta: TagMeta,
    alloc: Vec<u32>,
    streaming: Vec<bool>,
    part_lines: Vec<u64>,
    /// Cross-partition sharing resolution and its per-partition counters.
    own: Ownership,
    /// Interval counters for stream classification.
    interval_hits: Vec<u64>,
    interval_misses: Vec<u64>,
    cfg: PippConfig,
    rng: SmallRng,
    stats: LlcStats,
    walk: Walk,
    tele: Telemetry,
    accesses: u64,
}

impl PippLlc {
    /// Creates a PIPP cache of `frames` lines and `ways` ways (H3-hashed
    /// indexing) shared by `partitions` partitions.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeConfigError::PartitionsExceedWays`] unless
    /// `1 <= partitions <= ways`, and [`SchemeConfigError::TooManyWays`]
    /// when a way index would not fit the per-way chain metadata.
    pub fn try_new(
        frames: usize,
        ways: usize,
        partitions: usize,
        cfg: PippConfig,
        seed: u64,
    ) -> Result<Self, SchemeConfigError> {
        if partitions == 0 || partitions > ways {
            return Err(SchemeConfigError::PartitionsExceedWays { partitions, ways });
        }
        if ways > u8::MAX as usize + 1 {
            return Err(SchemeConfigError::TooManyWays { ways });
        }
        let array = SetAssocArray::hashed(frames, ways, seed);
        let sets = frames / ways;
        let mut chain = Vec::with_capacity(frames);
        for _ in 0..sets {
            chain.extend(0..ways as u8);
        }
        let mut meta = TagMeta::new(frames);
        for f in 0..frames {
            meta.set_ts(f, (f % ways) as u8);
        }
        let mut llc = Self {
            array,
            ways: ways as u32,
            chain,
            meta,
            alloc: vec![0; partitions],
            streaming: vec![false; partitions],
            part_lines: vec![0; partitions],
            own: Ownership::new(ShareMode::Adopt, partitions),
            interval_hits: vec![0; partitions],
            interval_misses: vec![0; partitions],
            cfg,
            rng: SmallRng::seed_from_u64(seed ^ 0x9157),
            stats: LlcStats::new(partitions),
            walk: Walk::with_capacity(ways),
            tele: Telemetry::disabled(),
            accesses: 0,
        };
        let even = vec![1u64; partitions];
        Llc::set_targets(&mut llc, &even);
        Ok(llc)
    }

    /// Emits one sample per partition; `target` is the (pseudo-)allocation
    /// in lines. PIPP has no apertures or setpoints, so those report 0.
    #[cold]
    fn emit_samples(&mut self) {
        let lines_per_way = (self.meta.len() / self.ways as usize) as u64;
        for part in 0..self.part_lines.len() {
            self.tele.sample(PartitionSample {
                access: self.accesses,
                part: PartitionId::from_index(part),
                actual: self.part_lines[part],
                target: u64::from(self.alloc[part]) * lines_per_way,
                aperture: 0.0,
                window: 0,
                churn: 0,
                shared: self.own.shared_hits()[part],
                transfers: self.own.transfers()[part],
            });
        }
    }

    /// Current way allocation (streaming partitions are reported as
    /// allocated, even though they effectively use one way).
    pub fn way_allocation(&self) -> &[u32] {
        &self.alloc
    }

    /// Which partitions are currently classified as streaming.
    pub fn streaming_flags(&self) -> &[bool] {
        &self.streaming
    }

    #[inline]
    fn chain_slice(&mut self, set: u32) -> &mut [u8] {
        let w = self.ways as usize;
        let base = set as usize * w;
        &mut self.chain[base..base + w]
    }

    /// Moves way `way` in `set`'s chain from its current position to `to`,
    /// shifting the ways in between.
    fn reposition(&mut self, set: u32, way: u8, to: usize) {
        let ways = self.ways;
        let chain = self.chain_slice(set);
        let from = chain
            .iter()
            .position(|&w| w == way)
            .expect("way present in chain");
        if from == to {
            return;
        }
        if from < to {
            chain[from..=to].rotate_left(1);
        } else {
            chain[to..=from].rotate_right(1);
        }
        // Rebuild the inverse map for the touched span.
        let (lo, hi) = (from.min(to), from.max(to));
        let span: Vec<u8> = chain[lo..=hi].to_vec();
        for (off, &w) in span.iter().enumerate() {
            let frame = set * ways + u32::from(w);
            self.meta.set_ts(frame as usize, (lo + off) as u8);
        }
    }

    /// The insertion position for partition `part` (0-indexed from the LRU
    /// end), per the paper's parameters.
    fn insert_position(&self, part: usize) -> usize {
        if self.streaming[part] {
            // Streaming apps share the bottom of the stack: one way each.
            let s: u32 = self
                .streaming
                .iter()
                .zip(&self.alloc)
                .map(|(&st, _)| u32::from(st))
                .sum();
            (s.max(1) - 1) as usize
        } else {
            (self.alloc[part].max(1) - 1) as usize
        }
        .min(self.ways as usize - 1)
    }

    /// Re-runs stream classification from the interval counters and resets
    /// them. Called on every repartitioning ([`set_targets`](Llc::set_targets)).
    fn classify_streams(&mut self) {
        for p in 0..self.streaming.len() {
            let acc = self.interval_hits[p] + self.interval_misses[p];
            if acc >= self.cfg.min_classify_accesses {
                let ratio = self.interval_misses[p] as f64 / acc as f64;
                self.streaming[p] = ratio >= self.cfg.theta_miss;
            }
            self.interval_hits[p] = 0;
            self.interval_misses[p] = 0;
        }
    }
}

impl Llc for PippLlc {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        let AccessRequest { part, addr, .. } = req;
        let part = part.index();
        let addr = self.own.effective_addr(part as u16, addr);
        self.accesses += 1;
        if self.tele.sample_due(self.accesses) {
            self.emit_samples();
        }
        if let Some(frame) = self.array.lookup(addr) {
            let owner = self.meta.part(frame as usize);
            if owner != part as u16 {
                self.tele.event(TelemetryEvent::SharedHit {
                    access: self.accesses,
                    part: PartitionId::from_index(part),
                    owner: PartitionId::from_raw(owner),
                });
                if self.own.on_shared_hit(part as u16) {
                    // Adopt: the accessor takes the line over (the chain
                    // position is placement state and stays put).
                    self.meta.set_part(frame as usize, part as u16);
                    self.part_lines[owner as usize] -= 1;
                    self.part_lines[part] += 1;
                    self.tele.event(TelemetryEvent::OwnershipTransfer {
                        access: self.accesses,
                        part: PartitionId::from_index(part),
                        from: PartitionId::from_raw(owner),
                    });
                }
            }
            self.stats.hits[part] += 1;
            self.interval_hits[part] += 1;
            // Single-step probabilistic promotion.
            let p = if self.streaming[self.meta.part(frame as usize) as usize] {
                self.cfg.p_stream
            } else {
                self.cfg.p_prom
            };
            if self.rng.gen_bool(p) {
                let pos = self.meta.ts(frame as usize) as usize;
                if pos + 1 < self.ways as usize {
                    let set = frame / self.ways;
                    let way = (frame % self.ways) as u8;
                    self.reposition(set, way, pos + 1);
                }
            }
            return AccessOutcome::Hit;
        }

        self.stats.misses[part] += 1;
        self.interval_misses[part] += 1;
        // Victim: the lowest-priority frame, preferring empty frames.
        let walk = &mut self.walk;
        self.array.walk(addr, walk);
        let set = walk.nodes[0].frame / self.ways;
        let victim_way = {
            let ways = self.ways as usize;
            let base = set as usize * ways;
            let chain = &self.chain[base..base + ways];
            *chain
                .iter()
                .find(|&&w| !walk.nodes[w as usize].is_occupied())
                .unwrap_or(&chain[0])
        };
        let vnode = walk.nodes[victim_way as usize];
        if vnode.is_occupied() {
            self.stats.evictions += 1;
            let vowner = self.meta.part(vnode.frame as usize);
            self.part_lines[vowner as usize] -= 1;
            self.tele.event(TelemetryEvent::Eviction {
                access: self.accesses,
                part: PartitionId::from_raw(vowner),
                forced: false,
            });
        }
        let mut moves = Vec::new();
        let landing = {
            let walk = &self.walk;
            self.array
                .install(addr, walk, victim_way as usize, &mut moves)
        };
        debug_assert!(moves.is_empty());
        self.meta.set_part(landing as usize, part as u16);
        self.part_lines[part] += 1;
        if self.own.mode() == ShareMode::Replicate {
            self.own.on_replica_fill(part as u16);
            self.tele.event(TelemetryEvent::Replica {
                access: self.accesses,
                part: PartitionId::from_index(part),
            });
        }
        let pos = self.insert_position(part);
        self.reposition(set, victim_way, pos);
        AccessOutcome::Miss
    }

    fn num_partitions(&self) -> usize {
        self.part_lines.len()
    }

    fn capacity(&self) -> usize {
        self.meta.len()
    }

    fn set_targets(&mut self, targets: &[u64]) {
        let mut alloc = ways_from_targets(targets, self.ways);
        self.classify_streams();
        // Streaming partitions are capped at one way; their surplus goes to
        // the largest non-streaming partition.
        let mut surplus = 0u32;
        for (p, a) in alloc.iter_mut().enumerate() {
            if self.streaming[p] && *a > 1 {
                surplus += *a - 1;
                *a = 1;
            }
        }
        if surplus > 0 {
            if let Some((best, _)) = alloc
                .iter()
                .enumerate()
                .filter(|(p, _)| !self.streaming[*p])
                .max_by_key(|(_, &a)| a)
            {
                alloc[best] += surplus;
            } else {
                alloc[0] += surplus; // everyone streams; shape is moot
            }
        }
        self.alloc = alloc;
    }

    fn partition_size(&self, part: PartitionId) -> u64 {
        self.part_lines[part.index()]
    }

    fn stats(&self) -> &LlcStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut LlcStats {
        &mut self.stats
    }

    fn set_share_mode(&mut self, mode: ShareMode) -> bool {
        self.own.set_mode(mode);
        true
    }

    fn share_mode(&self) -> ShareMode {
        self.own.mode()
    }

    fn observations(&mut self) -> PartitionObservations {
        let n = self.part_lines.len();
        let mut obs = PartitionObservations::new(n);
        obs.actual.copy_from_slice(&self.part_lines);
        obs.hits.copy_from_slice(&self.stats.hits);
        obs.misses.copy_from_slice(&self.stats.misses);
        obs.shared_hits.copy_from_slice(self.own.shared_hits());
        obs.ownership_transfers
            .copy_from_slice(self.own.transfers());
        self.own.reset_counters();
        obs
    }

    fn set_telemetry(&mut self, mut telemetry: Telemetry) -> bool {
        telemetry.bind(self.part_lines.len());
        self.tele = telemetry;
        true
    }

    fn take_telemetry(&mut self) -> Option<Telemetry> {
        if self.tele.enabled() {
            Some(std::mem::take(&mut self.tele))
        } else {
            None
        }
    }

    fn name(&self) -> &str {
        "PIPP"
    }
}

impl vantage_snapshot::Snapshot for PippLlc {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u8_slice(&self.chain);
        enc.put_u32_slice(&self.alloc);
        enc.put_u64(self.streaming.len() as u64);
        for &s in &self.streaming {
            enc.put_bool(s);
        }
        enc.put_u16_slice(self.meta.parts());
        enc.put_u64_slice(&self.part_lines);
        enc.put_u64_slice(&self.interval_hits);
        enc.put_u64_slice(&self.interval_misses);
        for s in self.rng.state() {
            enc.put_u64(s);
        }
        self.stats.save_state(enc);
        enc.put_u64(self.accesses);
        self.tele.save_state(enc);
        self.array.save_state(enc);
        // v5 ownership tail. Readers detect it by presence (older
        // snapshots simply end here), mirroring the v3 lifecycle tail.
        self.own.save_state(enc);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let frames = self.meta.len();
        let partitions = self.part_lines.len();
        let ways = self.ways as usize;
        let chain = dec.take_u8_vec()?;
        if chain.len() != frames {
            return Err(dec.mismatch("chain length differs from frame count"));
        }
        // Each set's chain must be a permutation of its ways; the inverse
        // map is derived from it rather than trusted from the file.
        let mut pos_of = vec![0u8; frames];
        for (set, sc) in chain.chunks_exact(ways).enumerate() {
            let mut seen = [false; 256];
            for (pos, &w) in sc.iter().enumerate() {
                if w as usize >= ways || seen[w as usize] {
                    return Err(dec.invalid("set chain is not a permutation of the ways"));
                }
                seen[w as usize] = true;
                pos_of[set * ways + w as usize] = pos as u8;
            }
        }
        let alloc = dec.take_u32_vec()?;
        if alloc.len() != partitions {
            return Err(dec.mismatch("way-allocation length differs"));
        }
        let n = dec.take_u64()? as usize;
        if n != partitions {
            return Err(dec.mismatch("streaming-flag count differs"));
        }
        let mut streaming = Vec::with_capacity(n);
        for _ in 0..n {
            streaming.push(dec.take_bool()?);
        }
        let owner = dec.take_u16_vec()?;
        let part_lines = dec.take_u64_vec()?;
        let interval_hits = dec.take_u64_vec()?;
        let interval_misses = dec.take_u64_vec()?;
        if owner.len() != frames
            || part_lines.len() != partitions
            || interval_hits.len() != partitions
            || interval_misses.len() != partitions
        {
            return Err(dec.mismatch("per-partition metadata lengths differ"));
        }
        // v2 snapshots mark never-filled frames with the [`TAG_UNMANAGED`]
        // sentinel; v1 snapshots left them at owner 0. Both pass here, and
        // the normalization below makes them indistinguishable afterwards.
        if owner
            .iter()
            .any(|&o| o != TAG_UNMANAGED && o as usize >= partitions)
        {
            return Err(dec.invalid("frame owner beyond partition count"));
        }
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = dec.take_u64()?;
        }
        self.stats.load_state(dec)?;
        let accesses = dec.take_u64()?;
        self.tele.load_state(dec)?;
        self.array.load_state(dec)?;
        self.chain = chain;
        self.meta.load_lanes(owner, pos_of);
        // Normalize unoccupied frames to the sentinel convention so a v1
        // snapshot restores into exactly the state a fresh v2 run would
        // have (the chain position in the stamp lane stays meaningful for
        // empty frames and is left untouched).
        for f in 0..frames {
            if self.array.occupant(f as u32).is_none() {
                self.meta.set_part(f, TAG_UNMANAGED);
            } else if self.meta.part(f) == TAG_UNMANAGED {
                return Err(dec.invalid("occupied frame without an owner"));
            }
        }
        self.alloc = alloc;
        self.streaming = streaming;
        self.part_lines = part_lines;
        self.interval_hits = interval_hits;
        self.interval_misses = interval_misses;
        self.rng = SmallRng::from_state(rng_state);
        self.accesses = accesses;
        // Pre-v5 snapshots end here: no ownership tail means the host's
        // configured mode stands and the sharing counters start at zero.
        if dec.remaining() > 0 {
            self.own.load_state(dec)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_cache::LineAddr;

    fn pipp(parts: usize) -> PippLlc {
        PippLlc::try_new(1024, 16, parts, PippConfig::default(), 42).expect("valid PIPP geometry")
    }

    #[test]
    fn chain_invariants_hold_under_traffic() {
        let mut llc = pipp(4);
        llc.set_targets(&[256, 256, 256, 256]);
        for i in 0..50_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index((i % 4) as usize),
                LineAddr(i % 2000),
            ));
        }
        // Every set's chain must remain a permutation of the ways.
        let ways = 16usize;
        for set in 0..(1024 / ways) {
            let mut seen = [false; 16];
            for pos in 0..ways {
                let w = llc.chain[set * ways + pos] as usize;
                assert!(!seen[w], "way {w} duplicated in set {set}");
                seen[w] = true;
                let frame = set * ways + w;
                assert_eq!(llc.meta.ts(frame) as usize, pos, "pos_of out of sync");
            }
        }
    }

    #[test]
    fn larger_allocations_retain_more() {
        let mut llc = pipp(2);
        llc.set_targets(&[960, 64]); // 15 vs 1 way
                                     // Equal access pressure from both partitions.
        for i in 0..400_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index(0),
                LineAddr(i % 600),
            ));
            llc.access(AccessRequest::read(
                PartitionId::from_index(1),
                LineAddr(10_000 + i % 600),
            ));
        }
        assert!(
            llc.partition_size(PartitionId::from_index(0))
                > llc.partition_size(PartitionId::from_index(1)),
            "sizes {} vs {}",
            llc.partition_size(PartitionId::from_index(0)),
            llc.partition_size(PartitionId::from_index(1))
        );
    }

    #[test]
    fn approximate_sizing_not_strict() {
        // PIPP only approximates targets: a high-churn small partition can
        // exceed its share, unlike way-partitioning.
        let mut llc = pipp(2);
        llc.set_targets(&[512, 512]);
        for i in 0..100_000u64 {
            // Partition 1 misses constantly (streams), partition 0 is idle.
            llc.access(AccessRequest::read(PartitionId::from_index(1), LineAddr(i)));
        }
        assert!(
            llc.partition_size(PartitionId::from_index(1)) > 512,
            "idle partner cedes space in PIPP"
        );
    }

    #[test]
    fn stream_detection_classifies_thrashers() {
        let mut llc = pipp(2);
        llc.set_targets(&[512, 512]);
        // Partition 0: cache-resident loop. Partition 1: pure stream.
        for i in 0..50_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index(0),
                LineAddr(i % 128),
            ));
            llc.access(AccessRequest::read(
                PartitionId::from_index(1),
                LineAddr(1_000_000 + i),
            ));
        }
        llc.set_targets(&[512, 512]); // triggers classification
        assert!(!llc.streaming_flags()[0]);
        assert!(llc.streaming_flags()[1]);
        // The streamer is throttled to one effective way at insertion.
        assert_eq!(llc.insert_position(1), 0);
    }

    #[test]
    fn insert_positions_collapse_with_many_partitions() {
        // The scalability failure the paper highlights: 16 partitions on 16
        // ways all insert at the LRU end.
        let llc =
            PippLlc::try_new(1024, 16, 16, PippConfig::default(), 1).expect("valid PIPP geometry");
        for p in 0..16 {
            assert_eq!(llc.insert_position(p), 0);
        }
    }

    #[test]
    fn try_new_rejects_bad_geometry() {
        assert!(matches!(
            PippLlc::try_new(1024, 16, 0, PippConfig::default(), 1),
            Err(crate::SchemeConfigError::PartitionsExceedWays { .. })
        ));
        assert!(PippLlc::try_new(1024, 16, 4, PippConfig::default(), 1).is_ok());
    }

    #[test]
    fn telemetry_counts_eviction_churn() {
        use vantage_telemetry::{RingSink, Telemetry, TelemetryRecord};
        let mut llc = pipp(2);
        let (sink, reader) = RingSink::with_capacity(8192);
        llc.set_telemetry(Telemetry::new(Box::new(sink), 512));
        for i in 0..5000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index((i % 2) as usize),
                LineAddr(i),
            ));
        }
        let total_churn: u64 = reader
            .records()
            .iter()
            .filter_map(|r| match r {
                TelemetryRecord::Sample(s) => Some(s.churn),
                _ => None,
            })
            .sum();
        assert!(total_churn > 0, "streaming traffic must churn lines");
    }

    #[test]
    fn hits_and_misses_counted() {
        let mut llc = pipp(2);
        assert_eq!(
            llc.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(7))),
            AccessOutcome::Miss
        );
        assert_eq!(
            llc.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(7))),
            AccessOutcome::Hit
        );
        assert_eq!(llc.stats().hits[0], 1);
        assert_eq!(llc.stats().misses[0], 1);
        assert_eq!(llc.name(), "PIPP");
    }
}
