//! Way-partitioning (column caching): strict partitioning by restricting
//! line placement to a per-partition subset of the ways.
//!
//! On a miss from partition `p`, the victim is the least-recently-used line
//! among the ways assigned to `p` in the indexed set; lookups remain global,
//! so lines of other partitions still hit while they age out. This gives
//! strict sizing and isolation but couples each partition's associativity to
//! its way count — the scalability problem Vantage fixes (paper §2, Table 1,
//! Figs. 6-8).
//!
//! Repartitioning reassigns ways lazily: resident lines of the previous
//! owner are evicted only as the new owner misses into each set, which
//! reproduces the slow target-tracking the paper observes in Fig. 8a.

use vantage_cache::{
    Ownership, PartitionId, SetAssocArray, ShareMode, TagMeta, TsLru, TAG_UNMANAGED,
};
use vantage_telemetry::{PartitionSample, Telemetry, TelemetryEvent};

use crate::error::SchemeConfigError;
use crate::hist::TsHistogram;
use crate::llc::{
    ways_from_targets, AccessOutcome, AccessRequest, Llc, LlcStats, PartitionObservations,
};

/// A sample of one eviction's empirical priority, for Fig. 8-style heat
/// maps: (access sequence number, partition, priority in `[0, 1]`).
pub type PrioritySample = (u64, u16, f32);

/// Optional eviction-priority instrumentation shared by scheme
/// implementations: per-partition coarse timestamps plus histograms that
/// turn an evicted line's timestamp into a rank among its partition's lines.
pub(crate) struct PriorityProbe {
    lru: Vec<TsLru>,
    hist: Vec<TsHistogram>,
    samples: Vec<PrioritySample>,
}

impl PriorityProbe {
    pub(crate) fn new(partitions: usize) -> Self {
        Self {
            lru: (0..partitions).map(|_| TsLru::new(64)).collect(),
            hist: (0..partitions).map(|_| TsHistogram::new()).collect(),
            samples: Vec::new(),
        }
    }

    pub(crate) fn on_access(&mut self, part: usize, part_lines: u64) -> u8 {
        self.lru[part].set_period_for_size(part_lines.max(16));
        self.lru[part].on_access();
        self.lru[part].current()
    }

    pub(crate) fn stamp_insert(&mut self, part: usize, ts: u8) {
        self.hist[part].add(ts);
    }

    pub(crate) fn stamp_hit(&mut self, part: usize, old: u8, new: u8) {
        self.hist[part].restamp(old, new);
    }

    pub(crate) fn record_evict(&mut self, access_no: u64, part: usize, ts: u8) {
        let rank = self.hist[part].rank(ts, self.lru[part].current());
        self.hist[part].remove(ts);
        self.samples.push((access_no, part as u16, rank as f32));
    }

    pub(crate) fn drain(&mut self) -> Vec<PrioritySample> {
        std::mem::take(&mut self.samples)
    }
}

/// A way-partitioned set-associative LLC with per-partition LRU.
///
/// # Example
///
/// ```
/// use vantage_partitioning::{AccessRequest, Llc, PartitionId, WayPartLlc};
///
/// // 4096 lines, 16 ways, 2 partitions.
/// let mut llc = WayPartLlc::try_new(4096, 16, 2, 1).expect("valid way-partition geometry");
/// llc.set_targets(&[3072, 1024]); // 12 + 4 ways
/// assert_eq!(llc.way_allocation(), &[12, 4]);
/// llc.access(AccessRequest::read(PartitionId::from_index(0), 0x99.into()));
/// ```
pub struct WayPartLlc {
    array: SetAssocArray,
    ways: u32,
    /// Owning partition of each way.
    way_owner: Vec<u16>,
    /// Current way counts per partition.
    alloc: Vec<u32>,
    /// Exact-LRU clocks per frame.
    last: Vec<u64>,
    clock: u64,
    /// Per-frame tag lanes shared with the Vantage core: the partition
    /// lane holds the inserting partition ([`TAG_UNMANAGED`] for
    /// never-filled frames), the stamp lane the probe's coarse timestamps.
    meta: TagMeta,
    part_lines: Vec<u64>,
    /// Cross-partition sharing resolution and its per-partition counters.
    own: Ownership,
    stats: LlcStats,
    probe: Option<PriorityProbe>,
    tele: Telemetry,
    accesses: u64,
}

impl WayPartLlc {
    /// Creates a way-partitioned cache of `frames` lines and `ways` ways
    /// (H3-hashed set indexing, seeded by `seed`), initially divided evenly
    /// among `partitions`.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeConfigError::PartitionsExceedWays`] unless
    /// `1 <= partitions <= ways`.
    pub fn try_new(
        frames: usize,
        ways: usize,
        partitions: usize,
        seed: u64,
    ) -> Result<Self, SchemeConfigError> {
        if partitions == 0 || partitions > ways {
            return Err(SchemeConfigError::PartitionsExceedWays { partitions, ways });
        }
        let array = SetAssocArray::hashed(frames, ways, seed);
        let mut llc = Self {
            array,
            ways: ways as u32,
            way_owner: vec![0; ways],
            alloc: vec![0; partitions],
            last: vec![0; frames],
            clock: 0,
            meta: TagMeta::new(frames),
            part_lines: vec![0; partitions],
            own: Ownership::new(ShareMode::Adopt, partitions),
            stats: LlcStats::new(partitions),
            probe: None,
            tele: Telemetry::disabled(),
            accesses: 0,
        };
        let even = vec![1u64; partitions];
        llc.set_targets(&even);
        Ok(llc)
    }

    /// Emits one sample per partition; `target` is the way allocation in
    /// lines (ways have no apertures or setpoints, so those report 0).
    #[cold]
    fn emit_samples(&mut self) {
        let lines_per_way = (self.last.len() / self.ways as usize) as u64;
        for part in 0..self.part_lines.len() {
            self.tele.sample(PartitionSample {
                access: self.accesses,
                part: PartitionId::from_index(part),
                actual: self.part_lines[part],
                target: u64::from(self.alloc[part]) * lines_per_way,
                aperture: 0.0,
                window: 0,
                churn: 0,
                shared: self.own.shared_hits()[part],
                transfers: self.own.transfers()[part],
            });
        }
    }

    /// Enables Fig. 8-style eviction-priority sampling.
    pub fn enable_priority_probe(&mut self) {
        if self.probe.is_none() {
            self.probe = Some(PriorityProbe::new(self.part_lines.len()));
        }
    }

    /// Drains accumulated priority samples (empty if the probe is off).
    pub fn drain_priority_samples(&mut self) -> Vec<PrioritySample> {
        self.probe
            .as_mut()
            .map(PriorityProbe::drain)
            .unwrap_or_default()
    }

    /// The current whole-way allocation.
    pub fn way_allocation(&self) -> &[u32] {
        &self.alloc
    }

    /// Reassigns ways directly (bypassing the line-target conversion).
    ///
    /// Way ownership changes are *stable*: partitions losing ways release
    /// their highest-numbered ways, which gainers pick up, minimizing churn.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` does not sum to the way count or gives any
    /// partition zero ways.
    pub fn set_ways(&mut self, alloc: &[u32]) {
        assert_eq!(alloc.len(), self.alloc.len(), "one entry per partition");
        assert_eq!(
            alloc.iter().sum::<u32>(),
            self.ways,
            "allocation must cover all ways"
        );
        assert!(alloc.iter().all(|&w| w >= 1), "every partition needs a way");
        // Release ways from shrinking partitions.
        let mut have: Vec<Vec<usize>> = vec![Vec::new(); alloc.len()];
        for (w, &p) in self.way_owner.iter().enumerate() {
            have[p as usize].push(w);
        }
        let mut free: Vec<usize> = Vec::new();
        for (p, ways) in have.iter_mut().enumerate() {
            while ways.len() > alloc[p] as usize {
                free.push(ways.pop().expect("non-empty"));
            }
        }
        // Hand them to growing partitions.
        for (p, ways) in have.iter_mut().enumerate() {
            while ways.len() < alloc[p] as usize {
                let w = free.pop().expect("conservation of ways");
                self.way_owner[w] = p as u16;
                ways.push(w);
            }
        }
        self.alloc.copy_from_slice(alloc);
    }
}

impl Llc for WayPartLlc {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        let AccessRequest { part, addr, .. } = req;
        let part = part.index();
        use vantage_cache::CacheArray;
        let addr = self.own.effective_addr(part as u16, addr);
        self.accesses += 1;
        if self.tele.sample_due(self.accesses) {
            self.emit_samples();
        }
        let probe_ts = self
            .probe
            .as_mut()
            .map(|pr| pr.on_access(part, self.part_lines[part]));

        if let Some(frame) = self.array.lookup(addr) {
            let f = frame as usize;
            let owner = self.meta.part(f) as usize;
            let adopted = owner != part && {
                self.tele.event(TelemetryEvent::SharedHit {
                    access: self.accesses,
                    part: PartitionId::from_index(part),
                    owner: PartitionId::from_index(owner),
                });
                let adopt = self.own.on_shared_hit(part as u16);
                if adopt {
                    // Adopt: the accessor takes the leftover line over.
                    self.meta.set_part(f, part as u16);
                    self.part_lines[owner] -= 1;
                    self.part_lines[part] += 1;
                    self.tele.event(TelemetryEvent::OwnershipTransfer {
                        access: self.accesses,
                        part: PartitionId::from_index(part),
                        from: PartitionId::from_index(owner),
                    });
                }
                adopt
            };
            self.clock += 1;
            self.last[f] = self.clock;
            if let (Some(pr), Some(ts)) = (self.probe.as_mut(), probe_ts) {
                // The line is re-stamped under its *owner's* clock domain;
                // owner and accessor coincide except right after releasing a
                // way, when hitting another partition's leftover line (or
                // always, for pinned lines under `ShareMode::Pin`).
                let owner_now = if adopted { part } else { owner };
                let ts = if owner_now == part {
                    ts
                } else {
                    pr.lru[owner_now].current()
                };
                if adopted {
                    // The histogram entry moves between partitions with
                    // the ownership.
                    pr.hist[owner].remove(self.meta.ts(f));
                    pr.hist[part].add(ts);
                } else {
                    pr.stamp_hit(owner_now, self.meta.ts(f), ts);
                }
                self.meta.set_ts(f, ts);
            }
            self.stats.hits[part] += 1;
            return AccessOutcome::Hit;
        }

        self.stats.misses[part] += 1;
        // Victim: LRU among this partition's ways in the indexed set. The
        // walk yields the whole set in way order; filter to owned ways.
        let mut walk = vantage_cache::Walk::with_capacity(self.ways as usize);
        self.array.walk(addr, &mut walk);
        let mut victim: Option<usize> = None;
        let mut best = u64::MAX;
        for (i, node) in walk.nodes.iter().enumerate() {
            if self.way_owner[i] as usize != part {
                continue;
            }
            if !node.is_occupied() {
                victim = Some(i);
                break;
            }
            let l = self.last[node.frame as usize];
            if l < best {
                best = l;
                victim = Some(i);
            }
        }
        let victim = victim.expect("every partition owns at least one way");
        let vnode = walk.nodes[victim];
        if vnode.is_occupied() {
            self.stats.evictions += 1;
            let vowner = self.meta.part(vnode.frame as usize) as usize;
            self.part_lines[vowner] -= 1;
            self.tele.event(TelemetryEvent::Eviction {
                access: self.accesses,
                part: PartitionId::from_index(vowner),
                forced: false,
            });
            if let Some(pr) = self.probe.as_mut() {
                pr.record_evict(self.accesses, vowner, self.meta.ts(vnode.frame as usize));
            }
        }
        let mut moves = Vec::new();
        let landing = self.array.install(addr, &walk, victim, &mut moves);
        debug_assert!(moves.is_empty(), "set-associative arrays never relocate");
        self.meta.set_part(landing as usize, part as u16);
        self.part_lines[part] += 1;
        if self.own.mode() == ShareMode::Replicate {
            self.own.on_replica_fill(part as u16);
            self.tele.event(TelemetryEvent::Replica {
                access: self.accesses,
                part: PartitionId::from_index(part),
            });
        }
        self.clock += 1;
        self.last[landing as usize] = self.clock;
        if let (Some(pr), Some(ts)) = (self.probe.as_mut(), probe_ts) {
            pr.stamp_insert(part, ts);
            self.meta.set_ts(landing as usize, ts);
        }
        AccessOutcome::Miss
    }

    fn num_partitions(&self) -> usize {
        self.part_lines.len()
    }

    fn capacity(&self) -> usize {
        self.last.len()
    }

    fn set_targets(&mut self, targets: &[u64]) {
        let alloc = ways_from_targets(targets, self.ways);
        self.set_ways(&alloc);
    }

    fn partition_size(&self, part: PartitionId) -> u64 {
        self.part_lines[part.index()]
    }

    fn stats(&self) -> &LlcStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut LlcStats {
        &mut self.stats
    }

    fn set_share_mode(&mut self, mode: ShareMode) -> bool {
        self.own.set_mode(mode);
        true
    }

    fn share_mode(&self) -> ShareMode {
        self.own.mode()
    }

    fn observations(&mut self) -> PartitionObservations {
        let n = self.part_lines.len();
        let mut obs = PartitionObservations::new(n);
        obs.actual.copy_from_slice(&self.part_lines);
        obs.hits.copy_from_slice(&self.stats.hits);
        obs.misses.copy_from_slice(&self.stats.misses);
        obs.shared_hits.copy_from_slice(self.own.shared_hits());
        obs.ownership_transfers
            .copy_from_slice(self.own.transfers());
        self.own.reset_counters();
        obs
    }

    fn set_telemetry(&mut self, mut telemetry: Telemetry) -> bool {
        telemetry.bind(self.part_lines.len());
        self.tele = telemetry;
        true
    }

    fn take_telemetry(&mut self) -> Option<Telemetry> {
        if self.tele.enabled() {
            Some(std::mem::take(&mut self.tele))
        } else {
            None
        }
    }

    fn name(&self) -> &str {
        "WayPart"
    }
}

impl vantage_snapshot::Snapshot for WayPartLlc {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u16_slice(&self.way_owner);
        enc.put_u32_slice(&self.alloc);
        enc.put_u64_slice(&self.last);
        enc.put_u64(self.clock);
        enc.put_u16_slice(self.meta.parts());
        enc.put_u64_slice(&self.part_lines);
        self.stats.save_state(enc);
        enc.put_u64(self.accesses);
        enc.put_u8_slice(self.meta.ts_lane());
        match &self.probe {
            None => enc.put_bool(false),
            Some(pr) => {
                enc.put_bool(true);
                for lru in &pr.lru {
                    lru.save_state(enc);
                }
                // Histograms are rebuilt from resident lines on restore;
                // only undrained samples need to travel.
                enc.put_usize(pr.samples.len());
                for &(access, part, rank) in &pr.samples {
                    enc.put_u64(access);
                    enc.put_u16(part);
                    enc.put_u32(rank.to_bits());
                }
            }
        }
        self.tele.save_state(enc);
        self.array.save_state(enc);
        // v5 ownership tail. Readers detect it by presence (older
        // snapshots simply end here), mirroring the v3 lifecycle tail.
        self.own.save_state(enc);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        use vantage_cache::CacheArray;
        let frames = self.meta.len();
        let partitions = self.part_lines.len();
        let way_owner = dec.take_u16_vec()?;
        if way_owner.len() != self.way_owner.len() {
            return Err(dec.mismatch("way count differs"));
        }
        if way_owner.iter().any(|&o| o as usize >= partitions) {
            return Err(dec.invalid("way owner beyond partition count"));
        }
        let alloc = dec.take_u32_vec()?;
        if alloc.len() != partitions {
            return Err(dec.mismatch("way-allocation length differs"));
        }
        if alloc.iter().sum::<u32>() != self.ways || alloc.contains(&0) {
            return Err(dec.invalid("way allocation does not cover all ways"));
        }
        let last = dec.take_u64_vec()?;
        let clock = dec.take_u64()?;
        let owner = dec.take_u16_vec()?;
        let part_lines = dec.take_u64_vec()?;
        if last.len() != frames || owner.len() != frames || part_lines.len() != partitions {
            return Err(dec.mismatch("frame metadata lengths differ"));
        }
        // v2 snapshots mark never-filled frames with the [`TAG_UNMANAGED`]
        // sentinel; v1 snapshots left them at owner 0. Both pass here, and
        // the normalization below makes them indistinguishable afterwards.
        if owner
            .iter()
            .any(|&o| o != TAG_UNMANAGED && o as usize >= partitions)
        {
            return Err(dec.invalid("frame owner beyond partition count"));
        }
        self.stats.load_state(dec)?;
        let accesses = dec.take_u64()?;
        let probe_ts = dec.take_u8_vec()?;
        if probe_ts.len() != frames {
            return Err(dec.mismatch("probe timestamp length differs"));
        }
        let probe = if dec.take_bool()? {
            let mut pr = PriorityProbe::new(partitions);
            for lru in &mut pr.lru {
                lru.load_state(dec)?;
            }
            let n = dec.take_usize()?;
            // Each pending sample occupies 14 bytes; a count the remaining
            // payload cannot hold is a hostile length prefix.
            if n > dec.remaining() / 14 {
                return Err(dec.invalid("pending-sample count exceeds payload"));
            }
            pr.samples.reserve(n);
            for _ in 0..n {
                let access = dec.take_u64()?;
                let part = dec.take_u16()?;
                let rank = f32::from_bits(dec.take_u32()?);
                pr.samples.push((access, part, rank));
            }
            Some(pr)
        } else {
            None
        };
        self.tele.load_state(dec)?;
        self.array.load_state(dec)?;
        self.way_owner = way_owner;
        self.alloc = alloc;
        self.last = last;
        self.clock = clock;
        self.meta.load_lanes(owner, probe_ts);
        self.part_lines = part_lines;
        self.accesses = accesses;
        self.probe = probe;
        // Normalize unoccupied frames to the sentinel convention so a v1
        // snapshot (owner 0 on never-filled frames) restores into exactly
        // the state a fresh v2 run would have. Occupied frames are checked
        // above to carry a real partition ID.
        for f in 0..frames {
            if self.array.occupant(f as u32).is_none() {
                self.meta.set(f, TAG_UNMANAGED, 0);
            } else if self.meta.part(f) == TAG_UNMANAGED {
                return Err(dec.invalid("occupied frame without an owner"));
            }
        }
        if let Some(pr) = self.probe.as_mut() {
            // Rebuild the per-partition histograms from the restored lines:
            // a histogram is exactly "the multiset of resident stamps".
            for f in 0..frames {
                if self.array.occupant(f as u32).is_some() {
                    pr.hist[self.meta.part(f) as usize].add(self.meta.ts(f));
                }
            }
        }
        // Pre-v5 snapshots end here: no ownership tail means the host's
        // configured mode stands and the sharing counters start at zero.
        if dec.remaining() > 0 {
            self.own.load_state(dec)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_cache::LineAddr;

    #[test]
    fn strict_isolation_between_partitions() {
        let mut llc = WayPartLlc::try_new(1024, 16, 2, 1).expect("valid way-partition geometry");
        llc.set_targets(&[512, 512]);
        // Partition 0 touches a small working set; partition 1 streams.
        for i in 0..64u64 {
            llc.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
        }
        for i in 0..100_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index(1),
                LineAddr(1_000_000 + i),
            ));
        }
        // Partition 0's lines are untouched by partition 1's thrashing.
        let misses_before = llc.stats().misses[0];
        for i in 0..64u64 {
            llc.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
        }
        assert_eq!(llc.stats().misses[0], misses_before, "isolation violated");
    }

    #[test]
    fn partition_cannot_exceed_way_share() {
        let mut llc = WayPartLlc::try_new(1024, 16, 2, 2).expect("valid way-partition geometry");
        llc.set_targets(&[256, 768]); // 4 vs 12 ways
        for i in 0..100_000u64 {
            llc.access(AccessRequest::read(PartitionId::from_index(0), LineAddr(i)));
        }
        // Partition 0 owns 4/16 of the ways = 256 lines at most.
        assert!(llc.partition_size(PartitionId::from_index(0)) <= 256);
    }

    #[test]
    fn repartitioning_is_lazy() {
        let mut llc = WayPartLlc::try_new(1024, 16, 2, 3).expect("valid way-partition geometry");
        llc.set_targets(&[512, 512]);
        for i in 0..100_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index(0),
                LineAddr(i % 2000),
            ));
            llc.access(AccessRequest::read(
                PartitionId::from_index(1),
                LineAddr(10_000 + i % 2000),
            ));
        }
        let before = llc.partition_size(PartitionId::from_index(0));
        assert!(
            before > 400,
            "partition 0 should be near its 512-line share"
        );
        // Shrink partition 0 to 1 way; its lines drain only as partition 1
        // misses into sets.
        llc.set_targets(&[64, 960]);
        assert!(
            llc.partition_size(PartitionId::from_index(0)) > 300,
            "resize must not flush instantly"
        );
        for i in 0..200_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index(1),
                LineAddr(50_000 + i),
            ));
        }
        assert!(
            llc.partition_size(PartitionId::from_index(0)) <= 100,
            "old lines eventually drain"
        );
    }

    #[test]
    fn one_way_partition_has_poor_associativity() {
        // A 1-way partition degenerates to direct-mapped (64 slots here). A
        // scattered 48-line working set then suffers birthday conflicts,
        // while the same working set in a 64-line *associative* partition
        // would fit without a single steady-state miss.
        let mut llc = WayPartLlc::try_new(1024, 16, 2, 4).expect("valid way-partition geometry");
        llc.set_targets(&[64, 960]); // 1 way vs 15 ways
        assert_eq!(llc.way_allocation()[0], 1);
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        // Sparse random addresses (dense ranges are conflict-free under the
        // GF(2)-linear H3 hash, by design).
        let ws: Vec<LineAddr> = (0..48).map(|_| LineAddr(rng.gen())).collect();
        for _rep in 0..50 {
            for &a in &ws {
                llc.access(AccessRequest::read(PartitionId::from_index(0), a));
            }
        }
        let s = llc.stats();
        let ratio = s.misses[0] as f64 / (s.hits[0] + s.misses[0]) as f64;
        assert!(ratio > 0.05, "direct-mapped partition missed only {ratio}");
    }

    #[test]
    fn probe_records_eviction_priorities() {
        let mut llc = WayPartLlc::try_new(256, 4, 2, 5).expect("valid way-partition geometry");
        llc.enable_priority_probe();
        llc.set_targets(&[128, 128]);
        for i in 0..20_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index((i % 2) as usize),
                LineAddr(i % 700),
            ));
        }
        let samples = llc.drain_priority_samples();
        assert!(!samples.is_empty());
        for (_, part, pr) in &samples {
            assert!(*part < 2);
            assert!((0.0..=1.0).contains(pr));
        }
        assert!(
            llc.drain_priority_samples().is_empty(),
            "drain empties the buffer"
        );
    }

    #[test]
    fn try_new_rejects_more_partitions_than_ways() {
        assert!(matches!(
            WayPartLlc::try_new(1024, 16, 17, 1),
            Err(crate::SchemeConfigError::PartitionsExceedWays {
                partitions: 17,
                ways: 16
            })
        ));
        assert!(WayPartLlc::try_new(1024, 16, 16, 1).is_ok());
    }

    #[test]
    fn telemetry_samples_report_way_targets() {
        use vantage_telemetry::{RingSink, Telemetry, TelemetryRecord};
        let mut llc = WayPartLlc::try_new(1024, 16, 2, 1).expect("valid way-partition geometry");
        llc.set_targets(&[768, 256]); // 12 + 4 ways, 64 lines/way
        let (sink, reader) = RingSink::with_capacity(4096);
        llc.set_telemetry(Telemetry::new(Box::new(sink), 256));
        for i in 0..2000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index((i % 2) as usize),
                LineAddr(i),
            ));
        }
        let targets: Vec<(PartitionId, u64)> = reader
            .records()
            .iter()
            .filter_map(|r| match r {
                TelemetryRecord::Sample(s) => Some((s.part, s.target)),
                _ => None,
            })
            .collect();
        assert!(!targets.is_empty());
        assert!(targets.contains(&(PartitionId::from_index(0), 12 * 64)));
        assert!(targets.contains(&(PartitionId::from_index(1), 4 * 64)));
    }

    #[test]
    fn sizes_and_stats_stay_consistent() {
        let mut llc = WayPartLlc::try_new(512, 8, 4, 6).expect("valid way-partition geometry");
        llc.set_targets(&[128, 128, 128, 128]);
        for i in 0..50_000u64 {
            llc.access(AccessRequest::read(
                PartitionId::from_index((i % 4) as usize),
                LineAddr(i % 3000),
            ));
        }
        let total: u64 = (0..4)
            .map(|p| llc.partition_size(PartitionId::from_index(p)))
            .sum();
        assert!(total <= 512);
        assert_eq!(llc.num_partitions(), 4);
        assert_eq!(llc.name(), "WayPart");
    }
}
