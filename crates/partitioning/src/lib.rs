//! Last-level cache partitioning schemes.
//!
//! This crate defines the [`Llc`] abstraction — a shared last-level cache
//! that serves accesses on behalf of partitions and enforces per-partition
//! capacity targets — and implements the schemes the Vantage paper compares
//! against:
//!
//! * [`BaselineLlc`] — an unpartitioned cache (LRU or RRIP) over any
//!   [`CacheArray`](vantage_cache::CacheArray); the normalization baseline.
//! * [`WayPartLlc`] — way-partitioning / column caching (Chiou et al.,
//!   DAC 2000): each partition owns a subset of the ways; strict isolation
//!   but associativity proportional to the way count.
//! * [`PippLlc`] — promotion/insertion pseudo-partitioning (Xie & Loh,
//!   ISCA 2009): insertion position equals the partition's way allocation,
//!   single-step probabilistic promotion on hits, plus stream detection.
//!
//! Vantage itself implements this same [`Llc`] trait (in the `vantage`
//! crate), so simulators and experiments treat all schemes uniformly.

pub mod banked;
pub mod baseline;
pub mod caps;
pub mod error;
pub mod hist;
pub mod llc;
pub mod parallel;
pub mod pipeline;
pub mod pipp;
pub mod sharded;
pub mod spsc;
pub mod way_part;

pub use banked::BankedLlc;
pub use baseline::{BaselineLlc, RankPolicy};
pub use caps::{HasInvariants, HasPartitionPolicy, InvariantViolation};
pub use error::SchemeConfigError;
pub use hist::TsHistogram;
pub use llc::{
    AccessKind, AccessOutcome, AccessRequest, LifecycleError, Llc, LlcStats, PartitionObservations,
    PartitionSpec,
};
pub use parallel::ParallelBankedLlc;
pub use pipeline::{PipelinedBankedLlc, RingStats};
pub use pipp::{PippConfig, PippLlc};
pub use sharded::Sharded;
pub use vantage_cache::PartitionId;
pub use way_part::WayPartLlc;
