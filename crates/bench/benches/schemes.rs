//! Scheme microbenchmarks: per-access cost of each LLC under steady-state
//! churn, plus the Vantage unmanaged-region-size ablation.
//!
//! The interesting comparison is Vantage vs the unpartitioned baseline on
//! the same array: the difference is the cost of demotion checks and
//! setpoint bookkeeping, which the paper argues is small (§4.3,
//! "Implementation costs").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vantage::{VantageConfig, VantageLlc};
use vantage_bench::{warm, AddrStream};
use vantage_cache::{SetAssocArray, ZArray};
use vantage_partitioning::{
    AccessRequest, BaselineLlc, Llc, PartitionId, PippConfig, PippLlc, RankPolicy, WayPartLlc,
};

const LINES: usize = 32 * 1024;
const PARTS: usize = 4;

fn schemes() -> Vec<(&'static str, Box<dyn Llc>)> {
    let targets = vec![(LINES / PARTS) as u64; PARTS];
    let mut out: Vec<(&'static str, Box<dyn Llc>)> = vec![
        (
            "Baseline-LRU-SA16",
            Box::new(
                BaselineLlc::try_new(
                    Box::new(SetAssocArray::hashed(LINES, 16, 1)),
                    PARTS,
                    RankPolicy::Lru,
                )
                .expect("valid baseline geometry"),
            ),
        ),
        (
            "Baseline-LRU-Z4/52",
            Box::new(
                BaselineLlc::try_new(
                    Box::new(ZArray::new(LINES, 4, 52, 1)),
                    PARTS,
                    RankPolicy::Lru,
                )
                .expect("valid baseline geometry"),
            ),
        ),
        (
            "WayPart-SA16",
            Box::new(
                WayPartLlc::try_new(LINES, 16, PARTS, 1).expect("valid way-partition geometry"),
            ),
        ),
        (
            "PIPP-SA16",
            Box::new(
                PippLlc::try_new(LINES, 16, PARTS, PippConfig::default(), 1)
                    .expect("valid PIPP geometry"),
            ),
        ),
        (
            "Vantage-Z4/52",
            Box::new(
                VantageLlc::try_new(
                    Box::new(ZArray::new(LINES, 4, 52, 1)),
                    PARTS,
                    VantageConfig::default(),
                    1,
                )
                .expect("valid Vantage config"),
            ),
        ),
        (
            "Vantage-Z4/16",
            Box::new(
                VantageLlc::try_new(
                    Box::new(ZArray::new(LINES, 4, 16, 1)),
                    PARTS,
                    VantageConfig {
                        unmanaged_fraction: 0.10,
                        ..VantageConfig::default()
                    },
                    1,
                )
                .expect("valid Vantage config"),
            ),
        ),
    ];
    for (_, llc) in &mut out {
        llc.set_targets(&targets);
    }
    out
}

fn bench_access_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("llc_access_churn");
    g.sample_size(20);
    for (name, mut llc) in schemes() {
        // Working set 4x capacity: heavy miss traffic (replacement path).
        let mut stream = AddrStream::new(4 * LINES as u64, 11);
        warm(llc.as_mut(), PARTS, 2 * LINES as u64, &mut stream);
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                i += 1;
                std::hint::black_box(llc.access(AccessRequest::read(
                    PartitionId::from_index((i % PARTS as u64) as usize),
                    stream.next_addr(),
                )))
            })
        });
    }
    g.finish();
}

fn bench_access_hits(c: &mut Criterion) {
    let mut g = c.benchmark_group("llc_access_hits");
    g.sample_size(20);
    for (name, mut llc) in schemes() {
        // Working set fits: hit path cost.
        let mut stream = AddrStream::new(LINES as u64 / 2, 13);
        warm(llc.as_mut(), PARTS, 2 * LINES as u64, &mut stream);
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                i += 1;
                std::hint::black_box(llc.access(AccessRequest::read(
                    PartitionId::from_index((i % PARTS as u64) as usize),
                    stream.next_addr(),
                )))
            })
        });
    }
    g.finish();
}

fn bench_repartition(c: &mut Criterion) {
    let mut g = c.benchmark_group("llc_set_targets");
    g.sample_size(20);
    for (name, mut llc) in schemes() {
        let mut stream = AddrStream::new(2 * LINES as u64, 17);
        warm(llc.as_mut(), PARTS, LINES as u64, &mut stream);
        let a = vec![(LINES / PARTS) as u64; PARTS];
        let mut b_targets = vec![
            (LINES / 2) as u64,
            (LINES / 4) as u64,
            (LINES / 8) as u64,
            (LINES / 8) as u64,
        ];
        let spare = LINES as u64 - b_targets.iter().sum::<u64>();
        b_targets[0] += spare;
        let mut flip = false;
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                flip = !flip;
                llc.set_targets(if flip { &b_targets } else { &a });
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_access_churn,
    bench_access_hits,
    bench_repartition
);
criterion_main!(benches);
