//! One benchmark per paper table/figure: each runs a reduced-scale kernel
//! of the corresponding experiment, keeping the full regeneration pipeline
//! exercised under `cargo bench`. The paper-scale numbers come from the
//! `vantage-experiments` binary (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use vantage::model::{assoc, sizing};
use vantage::{DemotionMode, VantageConfig};
use vantage_bench::tiny_sim;
use vantage_experiments::montecarlo::{managed_demotion_cdf, zcache_eviction_cdf, DemotionPolicy};
use vantage_sim::{ArrayKind, BaselineRank, SchemeKind};

const INSTR_4C: u64 = 60_000;
const INSTR_32C: u64 = 15_000;

fn sa16_lru() -> SchemeKind {
    SchemeKind::Baseline {
        array: ArrayKind::SetAssoc { ways: 16 },
        rank: BaselineRank::Lru,
    }
}

fn bench_model_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_model");
    g.sample_size(10);
    g.bench_function("fig1_zcache_mc", |b| {
        b.iter(|| std::hint::black_box(zcache_eviction_cdf(52, 2_000, 50, 1)))
    });
    g.bench_function("fig1_analytic_series", |b| {
        b.iter(|| std::hint::black_box(assoc::series(64, 100)))
    });
    g.bench_function("fig2_managed_mc", |b| {
        b.iter(|| {
            std::hint::black_box(managed_demotion_cdf(
                4096,
                0.3,
                16,
                DemotionPolicy::Aperture(0.09),
                5_000,
                50,
                2,
            ))
        })
    });
    g.bench_function("fig5_sizing_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=100 {
                acc += sizing::unmanaged_fraction(52, 1e-2, i as f64 / 100.0, 0.1).min(1.0);
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

fn bench_throughput_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_throughput");
    g.sample_size(10);
    // Fig. 6a kernel: one 4-core mix under baseline + the three schemes.
    g.bench_function("fig6a_kernel_baseline", |b| {
        b.iter(|| std::hint::black_box(tiny_sim(&sa16_lru(), 4, INSTR_4C, 5)))
    });
    g.bench_function("fig6a_kernel_waypart", |b| {
        b.iter(|| std::hint::black_box(tiny_sim(&SchemeKind::WayPart, 4, INSTR_4C, 5)))
    });
    g.bench_function("fig6a_kernel_pipp", |b| {
        b.iter(|| std::hint::black_box(tiny_sim(&SchemeKind::Pipp, 4, INSTR_4C, 5)))
    });
    g.bench_function("fig6a_kernel_vantage", |b| {
        b.iter(|| std::hint::black_box(tiny_sim(&SchemeKind::vantage_paper(), 4, INSTR_4C, 5)))
    });
    // Fig. 7 kernel: the 32-core configuration.
    g.bench_function("fig7_kernel_vantage_32core", |b| {
        b.iter(|| std::hint::black_box(tiny_sim(&SchemeKind::vantage_paper(), 32, INSTR_32C, 5)))
    });
    g.finish();
}

fn bench_sensitivity_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_sensitivity");
    g.sample_size(10);
    // Fig. 9 ablation: unmanaged-region size.
    for u in [0.05, 0.30] {
        let kind = SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig {
                unmanaged_fraction: u,
                ..VantageConfig::default()
            },
            drrip: false,
        };
        g.bench_function(format!("fig9_kernel_u{:.0}pct", u * 100.0), |b| {
            b.iter(|| std::hint::black_box(tiny_sim(&kind, 4, INSTR_4C, 6)))
        });
    }
    // Fig. 10 ablation: array family under Vantage.
    for (name, array, u) in [
        ("z4_52", ArrayKind::Z4_52, 0.05),
        ("sa16", ArrayKind::SetAssoc { ways: 16 }, 0.10),
    ] {
        let kind = SchemeKind::Vantage {
            array,
            cfg: VantageConfig {
                unmanaged_fraction: u,
                ..VantageConfig::default()
            },
            drrip: false,
        };
        g.bench_function(format!("fig10_kernel_{name}"), |b| {
            b.iter(|| std::hint::black_box(tiny_sim(&kind, 4, INSTR_4C, 7)))
        });
    }
    // Fig. 11 kernel: RRIP baseline vs Vantage.
    let tadrrip = SchemeKind::Baseline {
        array: ArrayKind::Z4_52,
        rank: BaselineRank::TaDrrip,
    };
    g.bench_function("fig11_kernel_tadrrip", |b| {
        b.iter(|| std::hint::black_box(tiny_sim(&tadrrip, 4, INSTR_4C, 8)))
    });
    // Model-check ablation: setpoint vs perfect-aperture demotions.
    let ideal = SchemeKind::Vantage {
        array: ArrayKind::Z4_52,
        cfg: VantageConfig {
            demotion_mode: DemotionMode::PerfectAperture,
            ..VantageConfig::default()
        },
        drrip: false,
    };
    g.bench_function("modelcheck_kernel_perfect_aperture", |b| {
        b.iter(|| std::hint::black_box(tiny_sim(&ideal, 4, INSTR_4C, 9)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_model_figures,
    bench_throughput_figures,
    bench_sensitivity_figures
);
criterion_main!(benches);
