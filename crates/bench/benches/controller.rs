//! Controller and policy microbenchmarks: the hardware-path operations of
//! the Vantage controller (demotion checks, candidate metering, threshold
//! tables), the analytical model functions, and UCP's monitor/allocator.

use criterion::{criterion_group, criterion_main, Criterion};
use vantage::controller::{PartitionState, ThresholdTable};
use vantage::model::{assoc, managed, sizing};
use vantage_cache::{LineAddr, TsLru};
use vantage_partitioning::TsHistogram;
use vantage_ucp::{interpolate_curve, lookahead, Umon};

fn bench_controller_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller");
    g.sample_size(30);

    g.bench_function("threshold_table_build", |b| {
        b.iter(|| {
            std::hint::black_box(
                ThresholdTable::try_new(10_000, 0.1, 0.5, 256, 8)
                    .expect("valid controller parameters"),
            )
        })
    });

    let table =
        ThresholdTable::try_new(10_000, 0.1, 0.5, 256, 8).expect("valid controller parameters");
    let mut size = 9_900u64;
    g.bench_function("threshold_table_lookup", |b| {
        b.iter(|| {
            size = 9_900 + (size + 17) % 1_200;
            std::hint::black_box(table.threshold(size))
        })
    });

    let mut st = PartitionState::new(10_000, 0.1, 0.5, 256, 8, 7);
    st.actual = 10_400;
    let mut ts = 0u8;
    g.bench_function("demotion_check", |b| {
        b.iter(|| {
            ts = ts.wrapping_add(37);
            std::hint::black_box(st.should_demote_ts(ts))
        })
    });

    let mut flip = false;
    g.bench_function("note_candidate", |b| {
        b.iter(|| {
            flip = !flip;
            std::hint::black_box(st.note_candidate(flip, 256, 7))
        })
    });

    let mut lru = TsLru::for_size(10_000);
    g.bench_function("tslru_access", |b| {
        b.iter(|| std::hint::black_box(lru.on_access()))
    });

    let mut hist = TsHistogram::new();
    for i in 0..10_000u32 {
        hist.add((i % 256) as u8);
    }
    let mut t = 0u8;
    g.bench_function("histogram_rank", |b| {
        b.iter(|| {
            t = t.wrapping_add(7);
            std::hint::black_box(hist.rank(t, 128))
        })
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("model");
    g.sample_size(30);
    g.bench_function("assoc_cdf", |b| {
        b.iter(|| std::hint::black_box(assoc::cdf(0.93, 52)))
    });
    g.bench_function("eq2_one_demotion_cdf", |b| {
        b.iter(|| std::hint::black_box(managed::one_demotion_cdf(0.9, 52, 0.15)))
    });
    g.bench_function("unmanaged_fraction", |b| {
        b.iter(|| std::hint::black_box(sizing::unmanaged_fraction(52, 1e-3, 0.4, 0.1)))
    });
    g.finish();
}

fn bench_ucp(c: &mut Criterion) {
    let mut g = c.benchmark_group("ucp");
    g.sample_size(20);

    let mut umon = Umon::new(16, 64, 2048, 3);
    let mut i = 0u64;
    g.bench_function("umon_access", |b| {
        b.iter(|| {
            i += 1;
            umon.access(LineAddr(i % 50_000));
        })
    });

    // Lookahead over 4 partitions at way granularity and 32 partitions at
    // fine granularity (the paper's two operating points).
    let curve: Vec<u64> = (0..=16u64)
        .map(|w| 10_000u64.saturating_sub(w * 550))
        .collect();
    let curves4: Vec<Vec<u64>> = (0..4).map(|_| curve.clone()).collect();
    g.bench_function("lookahead_4x16", |b| {
        b.iter(|| std::hint::black_box(lookahead(&curves4, 16, 1)))
    });

    let fine: Vec<Vec<u64>> = (0..32).map(|_| interpolate_curve(&curve, 256)).collect();
    g.bench_function("lookahead_32x256", |b| {
        b.iter(|| std::hint::black_box(lookahead(&fine, 256, 1)))
    });

    g.bench_function("interpolate_curve_256", |b| {
        b.iter(|| std::hint::black_box(interpolate_curve(&curve, 256)))
    });
    g.finish();
}

criterion_group!(benches, bench_controller_ops, bench_model, bench_ucp);
criterion_main!(benches);
