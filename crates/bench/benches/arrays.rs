//! Array microbenchmarks: lookup, candidate-walk and install costs across
//! array families, including the zcache candidate-count ablation
//! (Z4/16 vs Z4/52 vs Z4/64).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_cache::{CacheArray, LineAddr, RandomArray, SetAssocArray, SkewArray, Walk, ZArray};

const FRAMES: usize = 32 * 1024;

fn arrays() -> Vec<(&'static str, Box<dyn CacheArray>)> {
    vec![
        ("SA16", Box::new(SetAssocArray::hashed(FRAMES, 16, 1))),
        ("SA64", Box::new(SetAssocArray::hashed(FRAMES, 64, 1))),
        ("Skew4", Box::new(SkewArray::new(FRAMES, 4, 1))),
        ("Z4/16", Box::new(ZArray::new(FRAMES, 4, 16, 1))),
        ("Z4/52", Box::new(ZArray::new(FRAMES, 4, 52, 1))),
        ("Z4/64", Box::new(ZArray::new(FRAMES, 4, 64, 1))),
        ("Rand52", Box::new(RandomArray::new(FRAMES, 52, 1))),
    ]
}

/// Fills an array to capacity through its own replacement process.
fn fill(array: &mut dyn CacheArray, seed: u64) -> Vec<LineAddr> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut walk = Walk::new();
    let mut moves = Vec::new();
    let mut resident = Vec::new();
    while array.occupancy() < array.num_frames() {
        let addr = LineAddr(rng.gen::<u64>() >> 8);
        if array.lookup(addr).is_some() {
            continue;
        }
        array.walk(addr, &mut walk);
        let v = walk.first_empty().unwrap_or(0);
        moves.clear();
        array.install(addr, &walk, v, &mut moves);
        resident.push(addr);
    }
    resident
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("array_lookup_hit");
    g.sample_size(20);
    for (name, mut array) in arrays() {
        let resident = fill(array.as_mut(), 7);
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                i = (i + 97) % resident.len();
                std::hint::black_box(array.lookup(resident[i]))
            })
        });
    }
    g.finish();
}

fn bench_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("array_walk");
    g.sample_size(20);
    for (name, mut array) in arrays() {
        fill(array.as_mut(), 9);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut walk = Walk::with_capacity(64);
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                let addr = LineAddr(rng.gen::<u64>() >> 8);
                array.walk(addr, &mut walk);
                std::hint::black_box(walk.len())
            })
        });
    }
    g.finish();
}

fn bench_replace(c: &mut Criterion) {
    let mut g = c.benchmark_group("array_walk_and_install");
    g.sample_size(20);
    for (name, mut array) in arrays() {
        fill(array.as_mut(), 13);
        let mut rng = SmallRng::seed_from_u64(15);
        let mut walk = Walk::with_capacity(64);
        let mut moves = Vec::with_capacity(8);
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                let addr = LineAddr(rng.gen::<u64>() >> 8);
                if array.lookup(addr).is_some() {
                    return;
                }
                array.walk(addr, &mut walk);
                // Deepest candidate: worst-case relocation chain.
                let v = walk.len() - 1;
                moves.clear();
                std::hint::black_box(array.install(addr, &walk, v, &mut moves));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lookup, bench_walk, bench_replace);
criterion_main!(benches);
