//! Benchmark trajectory recording.
//!
//! Every perf harness in the workspace appends run entries to a JSON
//! trajectory file at the repo root (`BENCH_hotpath.json`,
//! `BENCH_parallel.json`, `BENCH_service.json`). [`BenchRecord`] is the one
//! writer they share: it stamps the common preamble every entry carries
//! (timestamp, quick flag, seed), lets the harness render its own sections
//! into the body (the workspace is offline and vendors no serde, so
//! entries are hand-rolled JSON), and appends the finished entry
//! atomically via [`append_entry`] — temp file + fsync + rename, with
//! not-an-array files quarantined under a `.corrupt` suffix instead of
//! blocking the run.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One in-progress trajectory entry: the shared preamble plus whatever
/// sections the harness renders into [`BenchRecord::body_mut`]. Call
/// [`BenchRecord::append_to`] (or [`BenchRecord::finish`] for the raw
/// string) when done; the record closes the entry's braces itself, so
/// section writers end on their last section's closing `}`.
pub struct BenchRecord {
    body: String,
}

impl BenchRecord {
    /// Opens an entry stamped with the current wall-clock time.
    pub fn new(quick: bool, seed: u64) -> Self {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Self::with_timestamp(quick, seed, ts)
    }

    /// Opens an entry with an explicit timestamp (test support).
    pub fn with_timestamp(quick: bool, seed: u64, timestamp: u64) -> Self {
        let mut body = String::new();
        let _ = write!(
            body,
            "  {{\n    \"timestamp\": {timestamp},\n    \"quick\": {quick},\n    \
             \"seed\": {seed},\n"
        );
        Self { body }
    }

    /// The entry body, for the harness's own `write!` sections. The
    /// preamble ends with `,\n`, so the first section starts at four-space
    /// indent; the last section should end on its closing `}` with no
    /// trailing newline.
    pub fn body_mut(&mut self) -> &mut String {
        &mut self.body
    }

    /// Closes the entry and returns it as a string.
    pub fn finish(mut self) -> String {
        self.body.push_str("\n  }");
        self.body
    }

    /// Closes the entry and appends it to the trajectory at `path`.
    pub fn append_to(self, path: &Path) -> io::Result<()> {
        let entry = self.finish();
        append_entry(path, &entry)
    }
}

/// Appends `entry` to the JSON array in `path`, creating the file if needed.
///
/// The file is always a top-level JSON array of run entries. Appending
/// splices before the final `]` and replaces the file atomically (temp +
/// fsync + rename), so a crash mid-append leaves either the old trajectory
/// or the new one — never a torn file. A file that is not a well-formed
/// array (e.g. a torn write from before this hardening) is quarantined
/// under a `.corrupt` suffix with a warning and the trajectory restarted;
/// corruption never blocks recording new data and never errors the run.
pub fn append_entry(path: &Path, entry: &str) -> io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(old) => {
            let trimmed = old.trim_end();
            if let Some(prefix) = trimmed.strip_suffix(']') {
                let prefix = prefix.trim_end();
                if prefix.ends_with('[') {
                    // Empty array.
                    format!("{prefix}\n{entry}\n]\n")
                } else {
                    format!("{prefix},\n{entry}\n]\n")
                }
            } else {
                let quarantine = path.with_extension("json.corrupt");
                eprintln!(
                    "warning: {} is not a JSON array; quarantining the old \
                     contents to {} and restarting the trajectory",
                    path.display(),
                    quarantine.display()
                );
                std::fs::write(&quarantine, &old)?;
                format!("[\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, body.as_bytes())?;
        // Flush file contents to stable storage before the rename makes
        // them visible, so the rename can never publish a torn file.
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_carries_preamble_and_closes_the_entry() {
        let mut rec = BenchRecord::with_timestamp(true, 42, 1_000);
        let _ = write!(rec.body_mut(), "    \"section\": {{\"x\": 1}}");
        let entry = rec.finish();
        assert!(entry.starts_with("  {\n    \"timestamp\": 1000,\n"));
        assert!(entry.contains("\"quick\": true"));
        assert!(entry.contains("\"seed\": 42"));
        assert!(entry.ends_with("\"section\": {\"x\": 1}\n  }"));
    }

    #[test]
    fn entries_append_into_a_json_array() {
        let dir = std::env::temp_dir().join(format!("vantage-record-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        for ts in [1, 2] {
            let mut rec = BenchRecord::with_timestamp(false, 7, ts);
            let _ = write!(rec.body_mut(), "    \"run\": {ts}");
            rec.append_to(&path).unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.trim_start().starts_with('['));
        assert!(body.trim_end().ends_with(']'));
        assert_eq!(body.matches("\"timestamp\"").count(), 2);
        assert!(body.contains("\"run\": 1") && body.contains("\"run\": 2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_trajectory_is_quarantined_not_fatal() {
        let dir = std::env::temp_dir().join(format!("vantage-record-q-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let quarantine = dir.join("bench.json.corrupt");
        std::fs::write(&path, "{ torn write, no closing bracke").unwrap();
        append_entry(&path, "  {\"ok\": 1}").unwrap();
        // The bad contents moved aside, byte for byte...
        assert_eq!(
            std::fs::read_to_string(&quarantine).unwrap(),
            "{ torn write, no closing bracke"
        );
        // ...and the trajectory restarted as a well-formed array.
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.trim_start().starts_with('['));
        assert!(body.trim_end().ends_with(']'));
        assert!(body.contains("\"ok\": 1"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&quarantine);
    }
}
