//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches serve two purposes:
//!
//! * **Microbenchmarks** (`arrays`, `schemes`, `controller`): per-operation
//!   costs of the substrate and of each partitioning scheme, quantifying the
//!   paper's "simple to implement / low overhead" claims and the ablations
//!   DESIGN.md calls out (candidate count, unmanaged-region size, array
//!   family).
//! * **Figure kernels** (`figures`): one benchmark per paper table/figure,
//!   running a reduced-scale version of the corresponding experiment so the
//!   full regeneration pipeline stays exercised under `cargo bench`
//!   (the `vantage-experiments` binary produces the paper-scale outputs).
//!
//! The crate also owns the benchmark *trajectory* format: [`record`] is
//! the single writer behind every `BENCH_*.json` file the perf harnesses
//! append to.

pub mod record;
pub use record::{append_entry, BenchRecord};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_cache::LineAddr;
use vantage_partitioning::{AccessRequest, Llc, PartitionId};
use vantage_sim::{CmpSim, SchemeKind, SimResult, SystemConfig};
use vantage_workloads::{mixes, Mix};

/// A deterministic pseudo-random address stream with a bounded working set,
/// for driving LLCs outside the full simulator.
pub struct AddrStream {
    rng: SmallRng,
    working_set: u64,
    base: u64,
}

impl AddrStream {
    /// Creates a stream over `working_set` distinct lines.
    pub fn new(working_set: u64, seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            working_set,
            base: seed << 40,
        }
    }

    /// The next line address.
    #[inline]
    pub fn next_addr(&mut self) -> LineAddr {
        LineAddr(self.base + self.rng.gen_range(0..self.working_set))
    }
}

/// Warms an LLC with `n` accesses from `parts` alternating partitions.
pub fn warm(llc: &mut dyn Llc, parts: usize, n: u64, stream: &mut AddrStream) {
    for i in 0..n {
        llc.access(AccessRequest::read(
            PartitionId::from_index((i % parts as u64) as usize),
            stream.next_addr(),
        ));
    }
}

/// Runs one mix under one scheme at a tiny scale (for figure kernels).
pub fn tiny_sim(kind: &SchemeKind, cores: usize, instructions: u64, seed: u64) -> SimResult {
    let mut sys = if cores <= 4 {
        SystemConfig::small_scale()
    } else {
        SystemConfig::large_scale()
    };
    sys.cores = cores;
    sys.instructions = instructions;
    sys.seed = seed;
    let mix: Mix = mixes(cores, 1, seed)[7].clone();
    CmpSim::new(sys, kind, &mix).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_sim::ArrayKind;

    #[test]
    fn addr_stream_bounded() {
        let mut s = AddrStream::new(100, 3);
        for _ in 0..1000 {
            let a = s.next_addr();
            assert!(a.0 >= 3 << 40 && a.0 < (3 << 40) + 100);
        }
    }

    #[test]
    fn tiny_sim_runs_all_scheme_kinds() {
        for kind in [
            SchemeKind::Baseline {
                array: ArrayKind::SetAssoc { ways: 16 },
                rank: vantage_sim::BaselineRank::Lru,
            },
            SchemeKind::vantage_paper(),
        ] {
            let r = tiny_sim(&kind, 4, 20_000, 1);
            assert!(r.throughput > 0.0);
        }
    }
}
