//! Skew-associative cache arrays (Seznec, ISCA 1993).
//!
//! Each way is indexed with a *different* H3 hash function, which spreads
//! conflicts: two lines that collide in one way almost surely do not collide
//! in the others. The candidate set on a replacement is one frame per way,
//! which for well-hashed ways is statistically close to a uniform random
//! sample of `W` lines — the property Vantage's analysis builds on.

use std::cell::Cell;

use crate::array::{
    debug_check_walk, prefetch_slice, CacheArray, Frame, LineAddr, Walk, WalkNode, EMPTY_LINE,
    INVALID_FRAME, MAX_PROBE_WAYS,
};
use crate::hash::H3Hasher;

/// A skew-associative array: `ways` banks of `frames/ways` frames, each bank
/// indexed by its own hash function.
///
/// # Example
///
/// ```
/// use vantage_cache::{CacheArray, LineAddr, SkewArray, Walk};
///
/// let mut a = SkewArray::new(4096, 4, 11);
/// let mut walk = Walk::new();
/// a.walk(LineAddr(99), &mut walk);
/// assert!(walk.len() <= 4); // one candidate per way, deduplicated
/// ```
#[derive(Clone, Debug)]
pub struct SkewArray {
    /// Packed line store, [`EMPTY_LINE`] marking free frames (one `u64` per
    /// frame — see the note on [`EMPTY_LINE`]).
    lines: Vec<u64>,
    hashers: Vec<H3Hasher>,
    bank_size: u32,
    occupancy: usize,
    /// Memo of the last missing lookup's frames, reused by `walk` for the
    /// same address (hash positions never change, so it cannot go stale).
    probe_addr: Cell<u64>,
    probe_frames: Cell<[Frame; MAX_PROBE_WAYS]>,
}

impl SkewArray {
    /// Creates a skew-associative array with `ways` hash functions derived
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is not a positive multiple of `ways`.
    pub fn new(frames: usize, ways: usize, seed: u64) -> Self {
        assert!(ways > 0, "ways must be non-zero");
        assert!(
            frames > 0 && frames.is_multiple_of(ways),
            "frames must be a positive multiple of ways"
        );
        assert!(frames <= u32::MAX as usize, "frame count must fit in u32");
        let hashers = (0..ways)
            .map(|w| H3Hasher::new(seed.wrapping_add(w as u64 * 0x5851_F42D)))
            .collect();
        Self {
            lines: vec![EMPTY_LINE; frames],
            hashers,
            bank_size: (frames / ways) as u32,
            occupancy: 0,
            probe_addr: Cell::new(EMPTY_LINE),
            probe_frames: Cell::new([INVALID_FRAME; MAX_PROBE_WAYS]),
        }
    }

    /// The frame address `addr` maps to in way `way`.
    #[inline]
    pub(crate) fn frame_in_way(&self, addr: LineAddr, way: usize) -> Frame {
        way as u32 * self.bank_size + self.hashers[way].bucket(addr.0, self.bank_size)
    }
}

impl CacheArray for SkewArray {
    fn num_frames(&self) -> usize {
        self.lines.len()
    }

    fn ways(&self) -> usize {
        self.hashers.len()
    }

    fn candidates_per_walk(&self) -> usize {
        self.hashers.len()
    }

    fn lookup(&self, addr: LineAddr) -> Option<Frame> {
        if addr.0 == EMPTY_LINE {
            return None; // reserved sentinel, never stored
        }
        let ways = self.hashers.len();
        if ways <= MAX_PROBE_WAYS {
            let mut frames = [INVALID_FRAME; MAX_PROBE_WAYS];
            for (w, slot) in frames.iter_mut().enumerate().take(ways) {
                let f = self.frame_in_way(addr, w);
                *slot = f;
                if self.lines[f as usize] == addr.0 {
                    return Some(f);
                }
            }
            self.probe_addr.set(addr.0);
            self.probe_frames.set(frames);
            None
        } else {
            (0..ways)
                .map(|w| self.frame_in_way(addr, w))
                .find(|&f| self.lines[f as usize] == addr.0)
        }
    }

    fn walk(&mut self, addr: LineAddr, walk: &mut Walk) {
        walk.clear();
        let ways = self.hashers.len();
        let memo = (ways <= MAX_PROBE_WAYS && self.probe_addr.get() == addr.0)
            .then(|| self.probe_frames.get());
        for w in 0..ways {
            let frame = match memo {
                Some(frames) => frames[w],
                None => self.frame_in_way(addr, w),
            };
            // Different ways index disjoint banks, so frames never collide
            // across ways; no dedup needed.
            let line = self.lines[frame as usize];
            walk.nodes
                .push(WalkNode::new(frame, line != EMPTY_LINE, None, w));
        }
        debug_check_walk(walk, ways);
    }

    fn install(
        &mut self,
        addr: LineAddr,
        walk: &Walk,
        victim: usize,
        _moves: &mut Vec<(Frame, Frame)>,
    ) -> Frame {
        assert_ne!(
            addr.0, EMPTY_LINE,
            "line address u64::MAX is reserved as the empty-frame sentinel"
        );
        let node = walk.nodes[victim];
        debug_assert_eq!(
            self.occupant(node.frame).is_some(),
            node.is_occupied(),
            "stale walk"
        );
        if self.lines[node.frame as usize] == EMPTY_LINE {
            self.occupancy += 1;
        }
        self.lines[node.frame as usize] = addr.0;
        node.frame
    }

    fn invalidate(&mut self, addr: LineAddr) -> Option<Frame> {
        let frame = self.lookup(addr)?;
        self.lines[frame as usize] = EMPTY_LINE;
        self.occupancy -= 1;
        Some(frame)
    }

    fn occupant(&self, frame: Frame) -> Option<LineAddr> {
        let line = self.lines[frame as usize];
        (line != EMPTY_LINE).then_some(LineAddr(line))
    }

    fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn prefetch(&self, addr: LineAddr, frames: &mut [Frame; MAX_PROBE_WAYS]) -> usize {
        let ways = self.hashers.len().min(MAX_PROBE_WAYS);
        for (w, slot) in frames.iter_mut().enumerate().take(ways) {
            let f = self.frame_in_way(addr, w);
            *slot = f;
            prefetch_slice(&self.lines, f as usize);
        }
        ways
    }
}

impl vantage_snapshot::Snapshot for SkewArray {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64_slice(&self.lines);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let lines = dec.take_u64_vec()?;
        if lines.len() != self.lines.len() {
            return Err(dec.mismatch(&format!(
                "skew array has {} frames, snapshot has {}",
                self.lines.len(),
                lines.len()
            )));
        }
        self.occupancy = lines.iter().filter(|&&l| l != EMPTY_LINE).count();
        self.lines = lines;
        self.probe_addr.set(EMPTY_LINE);
        self.probe_frames.set([INVALID_FRAME; MAX_PROBE_WAYS]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_come_from_distinct_banks() {
        let mut a = SkewArray::new(1024, 4, 1);
        let mut walk = Walk::new();
        a.walk(LineAddr(123), &mut walk);
        assert_eq!(walk.len(), 4);
        let banks: Vec<u32> = walk.nodes.iter().map(|n| n.frame / 256).collect();
        assert_eq!(banks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn install_lookup_roundtrip() {
        let mut a = SkewArray::new(256, 4, 2);
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        for i in 0..32u64 {
            let addr = LineAddr(i * 17);
            a.walk(addr, &mut walk);
            let slot = walk.first_empty().unwrap_or(0);
            a.install(addr, &walk, slot, &mut moves);
            assert!(a.lookup(addr).is_some());
        }
        assert!(a.occupancy() >= 24, "most installs should have found room");
    }

    #[test]
    fn conflicting_lines_spread_across_ways() {
        // Lines that collide in way 0 should mostly not collide in way 1.
        let a = SkewArray::new(4096, 2, 3);
        let target = a.frame_in_way(LineAddr(0), 0);
        let colliders: Vec<LineAddr> = (1..100_000u64)
            .map(LineAddr)
            .filter(|&x| a.frame_in_way(x, 0) == target)
            .collect();
        assert!(colliders.len() > 5, "need some way-0 colliders to test");
        let mut way1 = std::collections::HashSet::new();
        for &c in &colliders {
            way1.insert(a.frame_in_way(c, 1));
        }
        assert!(
            way1.len() > colliders.len() / 2,
            "way-1 frames should be diverse"
        );
    }

    #[test]
    fn invalidate_then_miss() {
        let mut a = SkewArray::new(64, 4, 4);
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        let addr = LineAddr(5);
        a.walk(addr, &mut walk);
        a.install(addr, &walk, 0, &mut moves);
        assert!(a.invalidate(addr).is_some());
        assert_eq!(a.lookup(addr), None);
    }
}
