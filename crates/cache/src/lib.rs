//! Cache array substrate for the Vantage reproduction.
//!
//! This crate implements the hardware structures that the Vantage paper
//! (Sanchez & Kozyrakis, ISCA 2011) builds on:
//!
//! * [`hash`] — H3 universal hash functions, used to index hashed
//!   set-associative caches, skew-associative caches and zcaches.
//! * [`array`] — the [`CacheArray`] abstraction: a container of physical
//!   *frames* that can look up lines and produce *replacement candidate
//!   walks*. Implementations:
//!   [`SetAssocArray`] (optionally hashed), [`SkewArray`],
//!   [`ZArray`] (zcache with multi-level candidate walks and relocation),
//!   and [`RandomArray`] (an idealized array returning uniformly random
//!   candidates, used to validate the analytical models).
//! * [`replacement`] — replacement policy building blocks: coarse-timestamp
//!   LRU ([`TsLru`]) and the RRIP family ([`RripPolicy`], with SRRIP / BRRIP
//!   / DRRIP / thread-aware DRRIP variants).
//!
//! The crate deliberately stops below the level of a full cache: partitioned
//! last-level caches are composed from these pieces by the `vantage` and
//! `vantage-partitioning` crates.
//!
//! # Example
//!
//! Build a Z4/52 zcache array (4 ways, 52 replacement candidates) and run a
//! replacement:
//!
//! ```
//! use vantage_cache::{CacheArray, LineAddr, Walk, ZArray};
//!
//! // 1024 frames, 4 ways, up to 52 candidates per replacement.
//! let mut array = ZArray::new(1024, 4, 52, 0xC0FFEE);
//! let mut walk = Walk::new();
//!
//! let addr = LineAddr(0x42);
//! assert!(array.lookup(addr).is_none());
//!
//! // Miss: get candidates, pick one (here the first), install the line.
//! array.walk(addr, &mut walk);
//! let mut moves = Vec::new();
//! let frame = array.install(addr, &walk, 0, &mut moves);
//! assert_eq!(array.lookup(addr), Some(frame));
//! ```

pub mod array;
pub mod hash;
pub mod ownership;
pub mod part_id;
pub mod random_array;
pub mod replacement;
pub mod set_assoc;
pub mod skew;
pub mod tagmeta;
pub mod zarray;

pub use array::{
    prefetch_slice, CacheArray, Frame, LineAddr, Walk, WalkNode, INVALID_FRAME, MAX_PROBE_WAYS,
};
pub use hash::H3Hasher;
pub use ownership::{Ownership, ShareMode};
pub use part_id::PartitionId;
pub use random_array::RandomArray;
pub use replacement::lru::TsLru;
pub use replacement::rrip::{RripConfig, RripMode, RripPolicy};
pub use set_assoc::SetAssocArray;
pub use skew::SkewArray;
pub use tagmeta::{TagMeta, TAG_UNMANAGED};
pub use zarray::ZArray;
