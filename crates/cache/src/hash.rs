//! H3 universal hash functions.
//!
//! The Vantage paper relies on cache arrays with *good hashing*: each way of
//! a skew-associative cache or zcache is indexed with a different hash
//! function drawn from the H3 family of universal hash functions
//! (Carter & Wegman, 1977), and hashed set-associative caches use one such
//! function for their single index.
//!
//! An H3 function maps an `n`-bit key to an `m`-bit index; output bit `i` is
//! the parity of `key & q_i` for a random mask `q_i`. Equivalently (and much
//! faster in software), the key is split into bytes and the output is the
//! XOR of one 256-entry table lookup per byte; this is the classic
//! tabulation-hashing implementation used here.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of input bytes hashed (line addresses fit in 64 bits).
const INPUT_BYTES: usize = 8;

/// A nonlinear 64-bit mixer (the splitmix64 finalizer).
///
/// H3 functions are GF(2)-linear, which is a *feature* for cache indexing
/// (dense and strided address ranges map conflict-free) but a hazard for
/// set *sampling*: a dense range can be rank-deficient in the sampled index
/// bits, concentrating many lines onto few sampled sets. Components that
/// need statistical uniformity rather than conflict-freedom (utility-monitor
/// sampling, dueling-bucket selection) should mix with this instead.
///
/// # Example
///
/// ```
/// use vantage_cache::hash::mix64;
///
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Maps `key` uniformly into `0..buckets` using [`mix64`].
///
/// # Panics
///
/// Panics if `buckets` is zero.
#[inline]
pub fn mix_bucket(key: u64, seed: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "bucket count must be non-zero");
    ((u128::from(mix64(key ^ seed)) * u128::from(buckets)) >> 64) as u32
}

/// An H3 (tabulation) hash function from 64-bit line addresses to 32-bit
/// indices.
///
/// Functions are drawn from the family with an explicit seed so that
/// experiments are reproducible; two hashers built with the same seed are
/// identical, and hashers with different seeds are independent draws.
///
/// # Example
///
/// ```
/// use vantage_cache::H3Hasher;
///
/// let h = H3Hasher::new(12345);
/// // Deterministic: same key, same hash.
/// assert_eq!(h.hash(0xDEAD_BEEF), h.hash(0xDEAD_BEEF));
/// // H3 is linear in GF(2): h(a ^ b) == h(a) ^ h(b) ^ h(0), and h(0) == 0.
/// assert_eq!(h.hash(0), 0);
/// ```
#[derive(Clone)]
pub struct H3Hasher {
    tables: Box<[[u32; 256]; INPUT_BYTES]>,
    seed: u64,
}

impl H3Hasher {
    /// Draws a new hash function from the H3 family using `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut tables = Box::new([[0u32; 256]; INPUT_BYTES]);
        for table in tables.iter_mut() {
            // Random column masks, one per input bit of this byte. Entry v is
            // the XOR of the masks of the bits set in v, which makes the
            // whole function GF(2)-linear as H3 requires.
            let mut masks = [0u32; 8];
            for m in masks.iter_mut() {
                *m = rng.gen();
            }
            for (v, entry) in table.iter_mut().enumerate() {
                let mut acc = 0u32;
                for (bit, m) in masks.iter().enumerate() {
                    if v & (1 << bit) != 0 {
                        acc ^= m;
                    }
                }
                *entry = acc;
            }
        }
        Self { tables, seed }
    }

    /// Hashes a 64-bit key to a 32-bit value.
    ///
    /// The eight table lookups are combined as a balanced XOR tree rather
    /// than a serial fold: the loads are independent, so the reduction is
    /// 3 dependent XORs deep instead of 8 — this sits on the walk's
    /// critical path (dozens of hashes per replacement).
    #[inline]
    pub fn hash(&self, key: u64) -> u32 {
        let b = key.to_le_bytes();
        let t = &self.tables;
        let a01 = t[0][b[0] as usize] ^ t[1][b[1] as usize];
        let a23 = t[2][b[2] as usize] ^ t[3][b[3] as usize];
        let a45 = t[4][b[4] as usize] ^ t[5][b[5] as usize];
        let a67 = t[6][b[6] as usize] ^ t[7][b[7] as usize];
        (a01 ^ a23) ^ (a45 ^ a67)
    }

    /// Hashes `key` into the range `0..buckets`.
    ///
    /// `buckets` does not need to be a power of two; a fixed-point multiply
    /// maps the 32-bit hash uniformly onto the range.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    #[inline]
    pub fn bucket(&self, key: u64, buckets: u32) -> u32 {
        assert!(buckets > 0, "bucket count must be non-zero");
        ((u64::from(self.hash(key)) * u64::from(buckets)) >> 32) as u32
    }

    /// The seed this function was drawn with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl std::fmt::Debug for H3Hasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("H3Hasher")
            .field("seed", &self.seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = H3Hasher::new(7);
        let b = H3Hasher::new(7);
        for k in [0u64, 1, 42, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            assert_eq!(a.hash(k), b.hash(k));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = H3Hasher::new(1);
        let b = H3Hasher::new(2);
        // With 32-bit outputs, 16 collisions in a row is astronomically
        // unlikely for independent draws.
        let all_equal = (0..16u64).all(|k| a.hash(k) == b.hash(k));
        assert!(!all_equal);
    }

    #[test]
    fn gf2_linearity() {
        let h = H3Hasher::new(99);
        assert_eq!(h.hash(0), 0);
        for (a, b) in [(3u64, 5u64), (0xFF00, 0x00FF), (u64::MAX, 12345)] {
            assert_eq!(h.hash(a ^ b), h.hash(a) ^ h.hash(b));
        }
    }

    #[test]
    fn bucket_stays_in_range() {
        let h = H3Hasher::new(3);
        for buckets in [1u32, 2, 3, 64, 1000, 4096] {
            for k in 0..1000u64 {
                assert!(h.bucket(k * 0x9E37_79B9, buckets) < buckets);
            }
        }
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        let h = H3Hasher::new(11);
        let buckets = 64u32;
        let samples = 64_000u64;
        let mut counts = vec![0u64; buckets as usize];
        for k in 0..samples {
            counts[h.bucket(k, buckets) as usize] += 1;
        }
        let expected = samples / u64::from(buckets);
        for &c in &counts {
            // Loose 3-sigma-ish bound: each bucket within 20% of expected.
            assert!(
                c > expected * 8 / 10 && c < expected * 12 / 10,
                "bucket count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bucket count")]
    fn zero_buckets_panics() {
        H3Hasher::new(0).bucket(1, 0);
    }
}
