//! ZCache arrays (Sanchez & Kozyrakis, MICRO 2010).
//!
//! A zcache is a skew-associative cache whose replacement process walks the
//! hash positions of the lines it finds, obtaining an arbitrarily large
//! number of replacement candidates `R` with a small number of ways `W`:
//! depth 0 yields `W` candidates (the incoming line's own positions), depth 1
//! yields up to `W·(W-1)` more (each depth-0 line's alternative positions),
//! and so on. A Z4/52 cache is a 4-way zcache walking
//! `4 + 12 + 36 = 52` candidates.
//!
//! Evicting a candidate at depth `d` requires relocating `d` lines: the
//! victim's frame is filled by its parent's line, whose frame is filled by
//! the grandparent's line, until a depth-0 frame — one of the incoming
//! line's own hash positions — is freed. Because the candidates of a
//! well-hashed zcache are statistically close to a uniform random sample of
//! the cache's lines, the associativity distribution follows
//! `FA(x) = x^R` regardless of workload, which is the property Vantage's
//! analytical models are built on (paper §3.2).

use std::cell::Cell;

use crate::array::{
    debug_check_walk, prefetch_slice, CacheArray, Frame, LineAddr, Walk, WalkNode, EMPTY_LINE,
    INVALID_FRAME, MAX_PROBE_WAYS,
};
use crate::hash::H3Hasher;

/// A zcache array: `ways` hashed banks with a multi-level candidate walk.
///
/// # Example
///
/// A Z4/52 configuration as used throughout the paper's evaluation:
///
/// ```
/// use vantage_cache::{CacheArray, LineAddr, Walk, ZArray};
///
/// let mut a = ZArray::new(32 * 1024, 4, 52, 0xFEED);
/// assert_eq!(a.candidates_per_walk(), 52);
/// let mut walk = Walk::new();
/// a.walk(LineAddr(7), &mut walk);
/// assert!(walk.len() >= 1); // empty frames terminate the walk early
/// ```
#[derive(Clone, Debug)]
pub struct ZArray {
    /// Packed line store, [`EMPTY_LINE`] marking free frames: one `u64` per
    /// frame instead of a 16-byte `Option<LineAddr>` halves the randomly
    /// probed footprint, which is what walk throughput is bound by.
    lines: Vec<u64>,
    hashers: Vec<H3Hasher>,
    bank_size: u32,
    max_candidates: usize,
    occupancy: usize,
    /// Frame-dedup scratch: `seen[f] == epoch` means frame `f` is already in
    /// the current walk. Epoch-stamping avoids clearing per walk; one byte
    /// per frame keeps the scratch cache-resident at the cost of a bulk
    /// clear every 255 walks.
    seen: Vec<u8>,
    epoch: u8,
    /// Memo of the last missing lookup: `walk` for the same address reuses
    /// the depth-0 frames the lookup already hashed. An address's hash
    /// positions never change, so the memo cannot go stale.
    probe_addr: Cell<u64>,
    probe_frames: Cell<[Frame; MAX_PROBE_WAYS]>,
    /// Per-frame memo of the resident line's bank-local bucket in *every*
    /// way (`pos[frame * ways + way]`), maintained on install and mirrored
    /// along relocation chains. The BFS expansion reads a parent line's
    /// alternative positions from one contiguous load here instead of
    /// recomputing `W - 1` H3 hashes (8 table lookups each) per expanded
    /// node — a line's hash positions never change, so the memo cannot go
    /// stale. Empty when buckets do not fit in a `u16` (see `pos_ok`).
    pos: Vec<u16>,
    /// Whether `pos` is maintained (`bank_size <= 65536`); when false the
    /// walk falls back to hashing. Every paper configuration fits.
    pos_ok: bool,
}

impl ZArray {
    /// Creates a zcache with `ways` hash functions (derived from `seed`)
    /// that gathers up to `max_candidates` replacement candidates per walk.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is not a positive multiple of `ways`, if
    /// `max_candidates < ways`, or if `ways < 2` (a 1-way zcache cannot
    /// expand its walk).
    pub fn new(frames: usize, ways: usize, max_candidates: usize, seed: u64) -> Self {
        assert!(ways >= 2, "a zcache needs at least 2 ways");
        assert!(
            frames > 0 && frames.is_multiple_of(ways),
            "frames must be a positive multiple of ways"
        );
        assert!(frames <= u32::MAX as usize, "frame count must fit in u32");
        assert!(
            max_candidates >= ways,
            "max_candidates must be at least the way count"
        );
        let hashers = (0..ways)
            .map(|w| H3Hasher::new(seed.wrapping_add(w as u64 * 0x9E37_79B9)))
            .collect();
        let bank_size = (frames / ways) as u32;
        let pos_ok = bank_size <= 1 << 16;
        Self {
            lines: vec![EMPTY_LINE; frames],
            hashers,
            bank_size,
            max_candidates,
            occupancy: 0,
            seen: vec![0; frames],
            epoch: 0,
            probe_addr: Cell::new(EMPTY_LINE),
            probe_frames: Cell::new([INVALID_FRAME; MAX_PROBE_WAYS]),
            pos: if pos_ok {
                vec![0; frames * ways]
            } else {
                Vec::new()
            },
            pos_ok,
        }
    }

    /// Records `addr`'s bank-local bucket in every way into the position
    /// memo for the frame it now occupies, reusing the probe memo's hashes
    /// when they cover `addr`.
    fn memo_positions(&mut self, addr: LineAddr, frame: Frame) {
        let ways = self.hashers.len();
        let base = frame as usize * ways;
        let memo = (ways <= MAX_PROBE_WAYS && self.probe_addr.get() == addr.0)
            .then(|| self.probe_frames.get());
        for w in 0..ways {
            let f = match memo {
                Some(frames) => frames[w],
                None => self.frame_in_way(addr, w),
            };
            self.pos[base + w] = (f - w as u32 * self.bank_size) as u16;
        }
    }

    /// The frame `addr` maps to in `way`.
    #[inline]
    fn frame_in_way(&self, addr: LineAddr, way: usize) -> Frame {
        way as u32 * self.bank_size + self.hashers[way].bucket(addr.0, self.bank_size)
    }

    /// The way a frame belongs to.
    #[inline]
    fn way_of(&self, frame: Frame) -> usize {
        (frame / self.bank_size) as usize
    }
}

impl CacheArray for ZArray {
    fn num_frames(&self) -> usize {
        self.lines.len()
    }

    fn ways(&self) -> usize {
        self.hashers.len()
    }

    fn candidates_per_walk(&self) -> usize {
        self.max_candidates
    }

    fn lookup(&self, addr: LineAddr) -> Option<Frame> {
        if addr.0 == EMPTY_LINE {
            return None; // reserved sentinel, never stored
        }
        let ways = self.hashers.len();
        if ways <= MAX_PROBE_WAYS {
            let mut frames = [INVALID_FRAME; MAX_PROBE_WAYS];
            for (w, slot) in frames.iter_mut().enumerate().take(ways) {
                let f = self.frame_in_way(addr, w);
                *slot = f;
                if self.lines[f as usize] == addr.0 {
                    return Some(f);
                }
            }
            // Miss: every way was hashed, so memoize for the walk that the
            // replacement process is about to run for this address.
            self.probe_addr.set(addr.0);
            self.probe_frames.set(frames);
            None
        } else {
            (0..ways)
                .map(|w| self.frame_in_way(addr, w))
                .find(|&f| self.lines[f as usize] == addr.0)
        }
    }

    fn walk(&mut self, addr: LineAddr, walk: &mut Walk) {
        walk.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Rare wrap (every 255 walks): reset stamps so stale epochs
            // cannot match.
            self.seen.fill(0);
            self.epoch = 1;
        }
        let ways = self.hashers.len();

        // Depth 0: the incoming line's own positions (distinct banks, so no
        // dedup needed among them), reusing the missing lookup's hashes via
        // the probe memo when it matches. An empty frame ends the walk
        // early — the replacement process would use it directly.
        let memo = (ways <= MAX_PROBE_WAYS && self.probe_addr.get() == addr.0)
            .then(|| self.probe_frames.get());
        for w in 0..ways {
            let frame = match memo {
                Some(frames) => frames[w],
                None => self.frame_in_way(addr, w),
            };
            self.seen[frame as usize] = self.epoch;
            let line = self.lines[frame as usize];
            walk.nodes
                .push(WalkNode::new(frame, line != EMPTY_LINE, None, w));
            if line == EMPTY_LINE {
                return;
            }
        }

        // BFS expansion: each occupied node contributes its line's
        // alternative positions in the other ways — read from the position
        // memo (one contiguous load per parent) when maintained, falling
        // back to `W - 1` H3 hashes when not. The parent's way comes from
        // the node itself, not a `frame / bank_size` division.
        let mut cursor = 0;
        while walk.nodes.len() < self.max_candidates && cursor < walk.nodes.len() {
            let parent = walk.nodes[cursor];
            debug_assert!(parent.is_occupied(), "empty nodes end the walk below");
            let parent_way = parent.way();
            let base = parent.frame as usize * ways;
            for w in 0..ways {
                if w == parent_way {
                    continue;
                }
                let frame = if self.pos_ok {
                    w as u32 * self.bank_size + u32::from(self.pos[base + w])
                } else {
                    self.frame_in_way(LineAddr(self.lines[parent.frame as usize]), w)
                };
                if self.seen[frame as usize] == self.epoch {
                    continue; // duplicate frame, already a candidate
                }
                self.seen[frame as usize] = self.epoch;
                let occupant = self.lines[frame as usize];
                walk.nodes.push(WalkNode::new(
                    frame,
                    occupant != EMPTY_LINE,
                    Some(cursor as u32),
                    w,
                ));
                if occupant == EMPTY_LINE || walk.nodes.len() == self.max_candidates {
                    debug_check_walk(walk, ways);
                    return;
                }
            }
            cursor += 1;
        }
        debug_check_walk(walk, ways);
    }

    fn install(
        &mut self,
        addr: LineAddr,
        walk: &Walk,
        victim: usize,
        moves: &mut Vec<(Frame, Frame)>,
    ) -> Frame {
        assert_ne!(
            addr.0, EMPTY_LINE,
            "line address u64::MAX is reserved as the empty-frame sentinel"
        );
        let victim_node = walk.nodes[victim];
        debug_assert_eq!(
            self.occupant(victim_node.frame).is_some(),
            victim_node.is_occupied(),
            "stale walk passed to install"
        );
        if !victim_node.is_occupied() {
            self.occupancy += 1;
        }

        // Relocate from the victim up the parent chain: each node's frame
        // receives its parent's line, freeing a depth-0 frame for the
        // incoming line. The victim end moves first, so every destination
        // frame has just been vacated — the chain is walked directly, with
        // no per-install allocation.
        let ways = self.hashers.len();
        let mut cur = victim;
        while let Some(p) = walk.nodes[cur].parent() {
            let to = walk.nodes[cur].frame;
            let from = walk.nodes[p as usize].frame;
            self.lines[to as usize] = self.lines[from as usize];
            if self.pos_ok {
                // A relocated line keeps its hash positions; move its memo
                // entry along with it.
                self.pos.copy_within(
                    from as usize * ways..(from as usize + 1) * ways,
                    to as usize * ways,
                );
            }
            moves.push((from, to));
            cur = p as usize;
        }
        let root = walk.nodes[cur].frame;
        self.lines[root as usize] = addr.0;
        if self.pos_ok {
            self.memo_positions(addr, root);
        }
        root
    }

    fn invalidate(&mut self, addr: LineAddr) -> Option<Frame> {
        let frame = self.lookup(addr)?;
        self.lines[frame as usize] = EMPTY_LINE;
        self.occupancy -= 1;
        Some(frame)
    }

    fn occupant(&self, frame: Frame) -> Option<LineAddr> {
        let line = self.lines[frame as usize];
        (line != EMPTY_LINE).then_some(LineAddr(line))
    }

    fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn prefetch(&self, addr: LineAddr, frames: &mut [Frame; MAX_PROBE_WAYS]) -> usize {
        let ways = self.hashers.len().min(MAX_PROBE_WAYS);
        for (w, slot) in frames.iter_mut().enumerate().take(ways) {
            let f = self.frame_in_way(addr, w);
            *slot = f;
            prefetch_slice(&self.lines, f as usize);
            if self.pos_ok {
                // The walk's BFS expansion reads the position memo row of
                // every occupied depth-0 frame; warm it alongside the line.
                prefetch_slice(&self.pos, f as usize * self.hashers.len());
            }
        }
        ways
    }

    fn prefetch_expand(&self, frames: &[Frame], out: &mut Vec<Frame>) {
        if !self.pos_ok {
            return; // no memo: expanding would cost W-1 hashes per frame
        }
        let ways = self.hashers.len();
        // The only producer of `frames` is `prefetch`, which writes the
        // depth-0 probe frames in way order — in that case the index *is*
        // the way, sparing a division per frame.
        let way_ordered = frames.len() == ways;
        for (i, &f) in frames.iter().enumerate() {
            if f == INVALID_FRAME || self.lines[f as usize] == EMPTY_LINE {
                continue;
            }
            // Mirror the walk's expansion: the occupant's alternative
            // positions in every other way, read from the (warm) memo row.
            let own = if way_ordered { i } else { self.way_of(f) };
            let base = f as usize * ways;
            for w in 0..ways {
                if w == own {
                    continue;
                }
                let g = w as u32 * self.bank_size + u32::from(self.pos[base + w]);
                prefetch_slice(&self.lines, g as usize);
                prefetch_slice(&self.pos, g as usize * ways);
                out.push(g);
            }
        }
    }

    fn lookup_prefetched(&self, addr: LineAddr, frames: &[Frame]) -> Option<Frame> {
        let ways = self.hashers.len();
        if addr.0 == EMPTY_LINE || frames.len() != ways || ways > MAX_PROBE_WAYS {
            return self.lookup(addr);
        }
        for &f in frames {
            if self.lines[f as usize] == addr.0 {
                return Some(f);
            }
        }
        // Miss: memoize the (already computed) probe frames for the walk,
        // exactly as a full lookup would.
        let mut memo = [INVALID_FRAME; MAX_PROBE_WAYS];
        memo[..ways].copy_from_slice(frames);
        self.probe_addr.set(addr.0);
        self.probe_frames.set(memo);
        None
    }
}

impl vantage_snapshot::Snapshot for ZArray {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64_slice(&self.lines);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let lines = dec.take_u64_vec()?;
        if lines.len() != self.lines.len() {
            return Err(dec.mismatch(&format!(
                "zcache has {} frames, snapshot has {}",
                self.lines.len(),
                lines.len()
            )));
        }
        self.occupancy = lines.iter().filter(|&&l| l != EMPTY_LINE).count();
        self.lines = lines;
        // Scratch and memo state is rebuilt, not restored: walk dedup
        // stamps reset (behavior-identical — stamps only live within one
        // walk), the probe memo is dropped (hash positions are
        // recomputed), and the position memo is rebuilt from the resident
        // lines (a line's hash positions depend only on the construction
        // seed, which restore-into-same-config guarantees).
        self.seen.fill(0);
        self.epoch = 0;
        self.probe_addr.set(EMPTY_LINE);
        self.probe_frames.set([INVALID_FRAME; MAX_PROBE_WAYS]);
        if self.pos_ok {
            for f in 0..self.lines.len() {
                let line = self.lines[f];
                if line != EMPTY_LINE {
                    self.memo_positions(LineAddr(line), f as Frame);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Checks the placement invariant: every line sits in one of the frames
    /// its hash functions map it to.
    fn check_placement(a: &ZArray) {
        for f in 0..a.num_frames() {
            if let Some(addr) = a.occupant(f as Frame) {
                let ok = (0..a.ways()).any(|w| a.frame_in_way(addr, w) == f as Frame);
                assert!(ok, "line {addr} at frame {f} violates placement invariant");
            }
        }
    }

    /// Fills the array via its own replacement process.
    fn fill(a: &mut ZArray, n: u64, rng: &mut SmallRng) {
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        for _ in 0..n {
            let addr = LineAddr(rng.gen::<u64>() >> 4);
            if a.lookup(addr).is_some() {
                continue;
            }
            a.walk(addr, &mut walk);
            let victim = walk
                .first_empty()
                .unwrap_or_else(|| rng.gen_range(0..walk.len()));
            a.install(addr, &walk, victim, &mut moves);
            moves.clear();
        }
    }

    #[test]
    fn z4_52_walk_reaches_52_candidates_when_full() {
        let mut a = ZArray::new(4096, 4, 52, 7);
        let mut rng = SmallRng::seed_from_u64(1);
        fill(&mut a, 40_000, &mut rng);
        assert_eq!(a.occupancy(), 4096, "array should be full");
        let mut walk = Walk::new();
        let mut total = 0usize;
        let trials = 200;
        for i in 0..trials {
            a.walk(LineAddr(0xABCD_0000 + i), &mut walk);
            total += walk.len();
            assert!(walk.len() <= 52);
        }
        // Hash collisions occasionally dedup a candidate, but the average
        // walk on a full array must be close to the nominal 52.
        assert!(
            total as f64 / trials as f64 > 50.0,
            "avg walk {}",
            total as f64 / trials as f64
        );
    }

    #[test]
    fn walk_levels_have_expected_structure() {
        let mut a = ZArray::new(4096, 4, 52, 8);
        let mut rng = SmallRng::seed_from_u64(2);
        fill(&mut a, 40_000, &mut rng);
        let mut walk = Walk::new();
        a.walk(LineAddr(0x1234_5678), &mut walk);
        // Depth of each node via parent chain.
        let mut depth = vec![0usize; walk.len()];
        for (i, n) in walk.nodes.iter().enumerate() {
            if let Some(p) = n.parent() {
                depth[i] = depth[p as usize] + 1;
            }
        }
        // Level sizes follow the zcache tree: exactly `ways` roots, at most
        // `ways·(ways-1)^k` nodes at depth k. (Hash collisions can dedup a
        // shallow candidate and push the BFS one level deeper, so the walk
        // is not strictly capped at 3 levels — the per-level bounds are the
        // structural invariant.)
        assert_eq!(depth.iter().filter(|&&d| d == 0).count(), 4);
        for k in 1..=depth.iter().copied().max().unwrap_or(0) {
            let cap = 4 * 3usize.pow(k as u32);
            assert!(depth.iter().filter(|&&d| d == k).count() <= cap);
        }
        // BFS order: depth never decreases along the candidate list.
        assert!(
            depth.windows(2).all(|w| w[0] <= w[1]),
            "walk is breadth-first"
        );
        // Each node carries the way its frame belongs to (the BFS relies on
        // this instead of dividing by the bank size).
        for n in &walk.nodes {
            assert_eq!(n.way(), (n.frame / a.bank_size) as usize);
        }
    }

    #[test]
    fn position_memo_matches_hashes_after_relocations() {
        let mut a = ZArray::new(1024, 4, 52, 21);
        let mut rng = SmallRng::seed_from_u64(5);
        fill(&mut a, 20_000, &mut rng);
        assert!(a.pos_ok);
        for f in 0..a.num_frames() {
            if let Some(addr) = a.occupant(f as Frame) {
                for w in 0..a.ways() {
                    let memo = w as u32 * a.bank_size + u32::from(a.pos[f * a.ways() + w]);
                    assert_eq!(
                        memo,
                        a.frame_in_way(addr, w),
                        "stale position memo for frame {f} way {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn relocations_preserve_placement_invariant() {
        let mut a = ZArray::new(1024, 4, 52, 9);
        let mut rng = SmallRng::seed_from_u64(3);
        fill(&mut a, 20_000, &mut rng);
        check_placement(&a);
    }

    #[test]
    fn deep_eviction_reports_moves_and_keeps_lines_findable() {
        let mut a = ZArray::new(1024, 4, 52, 10);
        let mut rng = SmallRng::seed_from_u64(4);
        fill(&mut a, 10_000, &mut rng);
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        let addr = LineAddr(0xBEEF_0001);
        a.walk(addr, &mut walk);
        // Pick the deepest candidate.
        let mut depth = vec![0usize; walk.len()];
        for (i, n) in walk.nodes.iter().enumerate() {
            if let Some(p) = n.parent() {
                depth[i] = depth[p as usize] + 1;
            }
        }
        let (victim, &d) = depth.iter().enumerate().max_by_key(|(_, &d)| d).unwrap();
        let displaced: Vec<LineAddr> = {
            // The victim's ancestors' lines will be relocated; they must all
            // remain findable afterwards.
            let mut v = Vec::new();
            let mut i = victim;
            while let Some(p) = walk.nodes[i].parent() {
                v.push(a.occupant(walk.nodes[p as usize].frame).unwrap());
                i = p as usize;
            }
            v
        };
        a.install(addr, &walk, victim, &mut moves);
        assert_eq!(moves.len(), d, "evicting at depth d takes d moves");
        assert!(a.lookup(addr).is_some());
        for l in displaced {
            assert!(a.lookup(l).is_some(), "relocated line {l} lost");
        }
        check_placement(&a);
    }

    #[test]
    fn empty_frame_terminates_walk() {
        let mut a = ZArray::new(1024, 4, 52, 11);
        let mut walk = Walk::new();
        a.walk(LineAddr(1), &mut walk);
        // Cold array: the very first candidate is empty.
        assert_eq!(walk.len(), 1);
        assert!(!walk.nodes[0].is_occupied());
    }

    #[test]
    fn occupancy_tracks_installs_and_evictions() {
        let mut a = ZArray::new(64, 4, 16, 12);
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        for i in 0..64u64 {
            let addr = LineAddr(i);
            a.walk(addr, &mut walk);
            let v = walk.first_empty().unwrap_or(0);
            a.install(addr, &walk, v, &mut moves);
            moves.clear();
        }
        let occ = a.occupancy();
        // Now every install on a full array must keep occupancy constant.
        for i in 64..96u64 {
            let addr = LineAddr(i);
            a.walk(addr, &mut walk);
            let v = walk.first_empty().unwrap_or(walk.len() - 1);
            a.install(addr, &walk, v, &mut moves);
            moves.clear();
        }
        assert!(a.occupancy() >= occ);
        assert!(a.occupancy() <= 64);
    }

    #[test]
    #[should_panic(expected = "at least 2 ways")]
    fn one_way_zcache_rejected() {
        ZArray::new(64, 1, 4, 0);
    }
}
