//! Set-associative cache arrays, with optional H3-hashed indexing.

use std::cell::Cell;

use crate::array::{
    debug_check_walk, prefetch_slice, CacheArray, Frame, LineAddr, Walk, WalkNode, EMPTY_LINE,
    MAX_PROBE_WAYS,
};
use crate::hash::H3Hasher;

/// How a [`SetAssocArray`] maps addresses to sets.
#[derive(Clone, Debug)]
enum Indexing {
    /// `set = addr mod num_sets` (classic untashed indexing).
    Modulo,
    /// `set = H3(addr) mod num_sets` (hashed indexing, as in modern LLCs).
    Hashed(H3Hasher),
}

/// A set-associative array: `num_sets × ways` frames, candidates are the
/// `ways` frames of the indexed set.
///
/// With hashed indexing this models the "hashed set-associative caches" that
/// the paper shows Vantage also works on (Fig. 10), at the cost of a less
/// uniform candidate distribution than a zcache.
///
/// # Example
///
/// ```
/// use vantage_cache::{CacheArray, LineAddr, SetAssocArray, Walk};
///
/// let mut a = SetAssocArray::hashed(4096, 16, 7);
/// let mut walk = Walk::new();
/// a.walk(LineAddr(10), &mut walk);
/// assert_eq!(walk.len(), 16); // R == ways for set-associative arrays
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocArray {
    /// Packed line store, [`EMPTY_LINE`] marking free frames (one `u64` per
    /// frame — see the note on [`EMPTY_LINE`]).
    lines: Vec<u64>,
    num_sets: u32,
    ways: u32,
    indexing: Indexing,
    occupancy: usize,
    /// Memo of the last missing lookup's set index, reused by `walk` for
    /// the same address (the set of an address never changes).
    probe_addr: Cell<u64>,
    probe_set: Cell<u32>,
}

impl SetAssocArray {
    /// Creates an array with classic modulo indexing.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is not a positive multiple of `ways`.
    pub fn modulo(frames: usize, ways: usize) -> Self {
        Self::build(frames, ways, Indexing::Modulo)
    }

    /// Creates an array indexed with an H3 hash drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is not a positive multiple of `ways`.
    pub fn hashed(frames: usize, ways: usize, seed: u64) -> Self {
        Self::build(frames, ways, Indexing::Hashed(H3Hasher::new(seed)))
    }

    fn build(frames: usize, ways: usize, indexing: Indexing) -> Self {
        assert!(ways > 0, "ways must be non-zero");
        assert!(
            frames > 0 && frames.is_multiple_of(ways),
            "frames must be a positive multiple of ways"
        );
        assert!(frames <= u32::MAX as usize, "frame count must fit in u32");
        Self {
            lines: vec![EMPTY_LINE; frames],
            num_sets: (frames / ways) as u32,
            ways: ways as u32,
            indexing,
            occupancy: 0,
            probe_addr: Cell::new(EMPTY_LINE),
            probe_set: Cell::new(0),
        }
    }

    /// The number of sets.
    pub fn num_sets(&self) -> u32 {
        self.num_sets
    }

    #[inline]
    fn set_of(&self, addr: LineAddr) -> u32 {
        match &self.indexing {
            Indexing::Modulo => (addr.0 % u64::from(self.num_sets)) as u32,
            Indexing::Hashed(h) => h.bucket(addr.0, self.num_sets),
        }
    }

    #[inline]
    fn frame_of(&self, set: u32, way: u32) -> Frame {
        set * self.ways + way
    }
}

impl CacheArray for SetAssocArray {
    fn num_frames(&self) -> usize {
        self.lines.len()
    }

    fn ways(&self) -> usize {
        self.ways as usize
    }

    fn candidates_per_walk(&self) -> usize {
        self.ways as usize
    }

    fn lookup(&self, addr: LineAddr) -> Option<Frame> {
        if addr.0 == EMPTY_LINE {
            return None; // reserved sentinel, never stored
        }
        let set = self.set_of(addr);
        let hit = (0..self.ways)
            .map(|w| self.frame_of(set, w))
            .find(|&f| self.lines[f as usize] == addr.0);
        if hit.is_none() {
            self.probe_addr.set(addr.0);
            self.probe_set.set(set);
        }
        hit
    }

    fn walk(&mut self, addr: LineAddr, walk: &mut Walk) {
        walk.clear();
        let set = if self.probe_addr.get() == addr.0 {
            self.probe_set.get()
        } else {
            self.set_of(addr)
        };
        for w in 0..self.ways {
            let frame = self.frame_of(set, w);
            let line = self.lines[frame as usize];
            walk.nodes
                .push(WalkNode::new(frame, line != EMPTY_LINE, None, w as usize));
        }
        debug_check_walk(walk, self.ways as usize);
    }

    fn install(
        &mut self,
        addr: LineAddr,
        walk: &Walk,
        victim: usize,
        _moves: &mut Vec<(Frame, Frame)>,
    ) -> Frame {
        assert_ne!(
            addr.0, EMPTY_LINE,
            "line address u64::MAX is reserved as the empty-frame sentinel"
        );
        let node = walk.nodes[victim];
        debug_assert_eq!(
            self.occupant(node.frame).is_some(),
            node.is_occupied(),
            "stale walk"
        );
        if self.lines[node.frame as usize] == EMPTY_LINE {
            self.occupancy += 1;
        }
        self.lines[node.frame as usize] = addr.0;
        node.frame
    }

    fn invalidate(&mut self, addr: LineAddr) -> Option<Frame> {
        let frame = self.lookup(addr)?;
        self.lines[frame as usize] = EMPTY_LINE;
        self.occupancy -= 1;
        Some(frame)
    }

    fn occupant(&self, frame: Frame) -> Option<LineAddr> {
        let line = self.lines[frame as usize];
        (line != EMPTY_LINE).then_some(LineAddr(line))
    }

    fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn prefetch(&self, addr: LineAddr, frames: &mut [Frame; MAX_PROBE_WAYS]) -> usize {
        let set = self.set_of(addr);
        // A set's frames are contiguous; touching the first and last line
        // covers the whole set regardless of way count.
        prefetch_slice(&self.lines, self.frame_of(set, 0) as usize);
        prefetch_slice(&self.lines, self.frame_of(set, self.ways - 1) as usize);
        let n = (self.ways as usize).min(MAX_PROBE_WAYS);
        for (w, slot) in frames.iter_mut().enumerate().take(n) {
            *slot = self.frame_of(set, w as u32);
        }
        n
    }
}

impl vantage_snapshot::Snapshot for SetAssocArray {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64_slice(&self.lines);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let lines = dec.take_u64_vec()?;
        if lines.len() != self.lines.len() {
            return Err(dec.mismatch(&format!(
                "set-assoc array has {} frames, snapshot has {}",
                self.lines.len(),
                lines.len()
            )));
        }
        self.occupancy = lines.iter().filter(|&&l| l != EMPTY_LINE).count();
        self.lines = lines;
        self.probe_addr.set(EMPTY_LINE);
        self.probe_set.set(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_addr(i: u64) -> LineAddr {
        LineAddr(i)
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut a = SetAssocArray::modulo(64, 4);
        let mut walk = Walk::new();
        let addr = fill_addr(33);
        assert_eq!(a.lookup(addr), None);
        a.walk(addr, &mut walk);
        assert_eq!(walk.len(), 4);
        let mut moves = Vec::new();
        let f = a.install(addr, &walk, 0, &mut moves);
        assert!(moves.is_empty(), "set-assoc installs never relocate");
        assert_eq!(a.lookup(addr), Some(f));
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn modulo_indexing_maps_conflicting_addresses_to_same_set() {
        let mut a = SetAssocArray::modulo(64, 4); // 16 sets
        let mut walk = Walk::new();
        a.walk(fill_addr(5), &mut walk);
        let frames_a: Vec<Frame> = walk.nodes.iter().map(|n| n.frame).collect();
        a.walk(fill_addr(5 + 16), &mut walk);
        let frames_b: Vec<Frame> = walk.nodes.iter().map(|n| n.frame).collect();
        assert_eq!(frames_a, frames_b);
    }

    #[test]
    fn hashed_indexing_spreads_sequential_addresses() {
        let mut a = SetAssocArray::hashed(1024, 4, 99); // 256 sets
        let mut walk = Walk::new();
        let mut sets = std::collections::HashSet::new();
        for i in 0..64 {
            a.walk(fill_addr(i), &mut walk);
            sets.insert(walk.nodes[0].frame / 4);
        }
        // Sequential addresses should land in many distinct sets.
        assert!(sets.len() > 32, "only {} distinct sets", sets.len());
    }

    #[test]
    fn eviction_replaces_victim() {
        let mut a = SetAssocArray::modulo(8, 4); // 2 sets
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        // Fill set 0 with addresses 0, 2, 4, 6.
        for i in 0..4u64 {
            let addr = fill_addr(i * 2);
            a.walk(addr, &mut walk);
            let slot = walk.first_empty().expect("room available");
            a.install(addr, &walk, slot, &mut moves);
        }
        assert_eq!(a.occupancy(), 4);
        // Set 0 is full; install a conflicting address over candidate 2.
        let newcomer = fill_addr(8);
        a.walk(newcomer, &mut walk);
        assert!(walk.first_empty().is_none());
        let evicted = a.occupant(walk.nodes[2].frame).unwrap();
        a.install(newcomer, &walk, 2, &mut moves);
        assert_eq!(a.lookup(evicted), None);
        assert!(a.lookup(newcomer).is_some());
        assert_eq!(a.occupancy(), 4);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut a = SetAssocArray::modulo(16, 4);
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        let addr = fill_addr(7);
        a.walk(addr, &mut walk);
        a.install(addr, &walk, 0, &mut moves);
        let f = a.invalidate(addr);
        assert!(f.is_some());
        assert_eq!(a.lookup(addr), None);
        assert_eq!(a.occupancy(), 0);
        assert_eq!(a.invalidate(addr), None);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_panics() {
        SetAssocArray::modulo(10, 4);
    }
}
