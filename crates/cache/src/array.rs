//! The [`CacheArray`] abstraction: physical frame containers with
//! replacement-candidate walks.
//!
//! Vantage is array-agnostic: it enforces partition sizes purely through the
//! replacement process, so all it needs from the underlying array is
//! (1) associative lookup and (2) a list of *replacement candidates* on each
//! eviction. Arrays differ in how many candidates they provide and how close
//! those candidates are to a uniform random sample of the cache's lines
//! (paper §3.2).
//!
//! A [`Walk`] captures one replacement's candidates together with the parent
//! links needed to perform zcache-style relocations: evicting a candidate at
//! depth `d` frees its depth-0 ancestor frame (one of the incoming line's own
//! hash positions) by moving `d` intermediate lines one step each.

use std::fmt;

/// A cache-line address (the memory address divided by the line size).
///
/// A newtype rather than a bare `u64` so that line addresses, byte addresses
/// and frame indices cannot be confused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

/// Index of a physical frame (a line-sized slot) within an array.
///
/// Frames are numbered `0..num_frames()` and identify where per-line
/// metadata lives: callers keep metadata in a `Vec` indexed by frame and
/// mirror the moves reported by [`CacheArray::install`].
pub type Frame = u32;

/// Sentinel for "no frame".
pub const INVALID_FRAME: Frame = u32::MAX;

/// Sentinel marking an empty frame in the arrays' packed line stores.
///
/// Arrays store one raw `u64` per frame instead of a 16-byte
/// `Option<LineAddr>`, halving the randomly probed footprint of the
/// lookup/walk hot path; [`CacheArray::install`] rejects this address.
pub(crate) const EMPTY_LINE: u64 = u64::MAX;

/// Widest way count the arrays' lookup→walk probe memo covers (every
/// configuration in the paper uses far fewer ways). Also the size of the
/// frame scratch handed to [`CacheArray::prefetch`].
pub const MAX_PROBE_WAYS: usize = 8;

/// Sentinel for "depth-0 node, no parent" in [`WalkNode`]'s packed parent
/// index. Walks are far shorter than `u16::MAX` nodes (R ≤ 64 in every
/// paper configuration), so a `u16` index always fits.
const NO_PARENT: u16 = u16::MAX;

/// One node of a replacement-candidate walk.
///
/// Packed to 8 bytes: the walk buffer is re-read by every stage of a
/// replacement — candidate scan, victim selection, relocation — so keeping
/// a whole Z4/52 walk in seven cache lines measurably cuts hot-path
/// traffic. Instead of the resident line (which stages re-read from the
/// array when they truly need it, i.e. almost never), the node carries an
/// occupancy flag plus the frame's *way*, sparing the zcache BFS a
/// `frame / bank_size` division per expanded parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkNode {
    /// The physical frame this candidate occupies.
    pub frame: Frame,
    /// Parent index, [`NO_PARENT`]-encoded.
    parent_raw: u16,
    /// The way (bank) `frame` belongs to; 0 for arrays without way
    /// structure.
    way: u8,
    /// 1 if the frame held a line when the walk was gathered.
    occupied: u8,
}

impl WalkNode {
    /// Builds a node for `frame` (resident in `way`, `occupied` or empty),
    /// expanded from the walk node at index `parent`.
    #[inline]
    pub fn new(frame: Frame, occupied: bool, parent: Option<u32>, way: usize) -> Self {
        debug_assert!(way <= u8::MAX as usize, "way index must fit in u8");
        let parent_raw = match parent {
            Some(p) => {
                debug_assert!(p < u32::from(NO_PARENT), "parent index must fit in u16");
                p as u16
            }
            None => NO_PARENT,
        };
        Self {
            frame,
            parent_raw,
            way: way as u8,
            occupied: occupied as u8,
        }
    }

    /// Whether the candidate frame held a line when the walk was gathered.
    #[inline]
    pub fn is_occupied(&self) -> bool {
        self.occupied != 0
    }

    /// The way (bank) the candidate frame belongs to.
    #[inline]
    pub fn way(&self) -> usize {
        self.way as usize
    }

    /// Index (into [`Walk::nodes`]) of the parent node, or `None` at depth 0.
    ///
    /// The parent chain leads to a depth-0 frame, which is one of the
    /// incoming line's own hash positions.
    #[inline]
    pub fn parent(&self) -> Option<u32> {
        (self.parent_raw != NO_PARENT).then_some(u32::from(self.parent_raw))
    }
}

/// A reusable buffer holding the candidates of one replacement.
///
/// Candidates appear in breadth-first order: the first `ways` nodes are the
/// incoming line's own positions (depth 0), followed by deeper zcache
/// expansion levels, if any.
#[derive(Clone, Debug, Default)]
pub struct Walk {
    /// The candidate nodes, breadth-first.
    pub nodes: Vec<WalkNode>,
}

impl Walk {
    /// Creates an empty walk buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty walk buffer with room for `cap` candidates.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(cap),
        }
    }

    /// Removes all candidates, keeping the allocation.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Number of candidates gathered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the walk holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the first empty (invalid) candidate frame, if any.
    pub fn first_empty(&self) -> Option<usize> {
        self.nodes.iter().position(|n| !n.is_occupied())
    }

    /// Iterates over `(index, node)` pairs of candidates holding valid lines.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, &WalkNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_occupied())
    }
}

/// Issues a best-effort read prefetch for the `i`-th element of `s`.
///
/// Purely a performance hint: out-of-bounds indices are ignored, and on
/// architectures without a stable prefetch intrinsic this is a no-op.
/// Batched access paths use it to overlap the memory latency of upcoming
/// probes with current work (see [`CacheArray::prefetch`]).
#[inline(always)]
pub fn prefetch_slice<T>(s: &[T], i: usize) {
    if let Some(p) = s.get(i) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `p` points into a live borrow of `s`; _mm_prefetch has no
        // architectural effect beyond cache-state hints.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                (p as *const T).cast::<i8>(),
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = p;
    }
}

/// A physical cache array: lookup, candidate generation and installation.
///
/// Implementations must maintain the *placement invariant*: every stored line
/// resides in one of the frames its hash functions map it to. For zcaches
/// this means [`install`](CacheArray::install) may relocate lines along the
/// walk's parent chain; the moves are reported so the caller can relocate
/// per-frame metadata in lockstep.
///
/// The trait is object-safe so that last-level caches can be generic over
/// arrays at run time. It is additionally `Send` so that whole cache object
/// graphs (e.g. the banks of a sharded LLC) can move across the worker
/// threads of a parallel simulation engine, and
/// [`Snapshot`](vantage_snapshot::Snapshot) so that checkpoint/restore can
/// serialize arrays behind trait objects. Arrays save only their resident
/// lines (plus any replacement RNG); derived structures — occupancy
/// counters, hash tables, position memos, probe caches — are rebuilt on
/// load, which restores into an array *constructed from the same
/// configuration and seed* as the one saved.
pub trait CacheArray: Send + vantage_snapshot::Snapshot {
    /// Total number of frames (the cache's capacity in lines).
    fn num_frames(&self) -> usize;

    /// Number of ways (hash functions); depth-0 candidates per walk.
    fn ways(&self) -> usize;

    /// Nominal number of replacement candidates per walk (`R` in the paper).
    fn candidates_per_walk(&self) -> usize;

    /// Returns the frame holding `addr`, if present.
    fn lookup(&self, addr: LineAddr) -> Option<Frame>;

    /// Fills `walk` with replacement candidates for incoming line `addr`.
    ///
    /// `walk` is cleared first. After return it holds at least one node
    /// (arrays never have zero ways) and at most
    /// [`candidates_per_walk`](CacheArray::candidates_per_walk) nodes —
    /// deduplicated, so fewer may appear when hash positions collide.
    fn walk(&mut self, addr: LineAddr, walk: &mut Walk);

    /// Installs `addr`, evicting the candidate at `walk.nodes[victim]`.
    ///
    /// Any relocations performed (zcache chain moves) are appended to
    /// `moves` as `(from_frame, to_frame)` pairs in the order applied, so the
    /// caller can mirror them onto its metadata *after* retiring the victim's
    /// metadata. Returns the frame where `addr` was placed (always a depth-0
    /// frame of `addr`'s walk).
    ///
    /// # Panics
    ///
    /// Panics if `victim` is out of bounds for `walk`, or if `walk` was not
    /// produced for `addr` by this array in its current state.
    fn install(
        &mut self,
        addr: LineAddr,
        walk: &Walk,
        victim: usize,
        moves: &mut Vec<(Frame, Frame)>,
    ) -> Frame;

    /// Removes `addr` from the array, returning the frame it occupied.
    fn invalidate(&mut self, addr: LineAddr) -> Option<Frame>;

    /// The line stored in `frame`, if any.
    fn occupant(&self, frame: Frame) -> Option<LineAddr>;

    /// Number of valid lines currently stored.
    fn occupancy(&self) -> usize;

    /// Issues best-effort memory prefetches for the state a subsequent
    /// [`lookup`](CacheArray::lookup) of `addr` will probe, and writes the
    /// depth-0 frames `addr` hashes to into `frames` (so callers can
    /// prefetch their *own* per-frame metadata alongside). Returns the
    /// number of frames written, at most [`MAX_PROBE_WAYS`].
    ///
    /// Purely a performance hint for batched access paths: correctness
    /// never depends on it, stale hints are merely wasted, and the default
    /// implementation does nothing. Implementations must not mutate
    /// observable state.
    fn prefetch(&self, _addr: LineAddr, _frames: &mut [Frame; MAX_PROBE_WAYS]) -> usize {
        0
    }

    /// Deepens an earlier [`CacheArray::prefetch`]: expands `frames` (probe
    /// or walk frames whose rows are already cache-resident from a prior
    /// prefetch stage) one replacement-walk level, issuing prefetches for
    /// each child candidate's state and appending the children to `out` so
    /// callers can pipeline further stages (and warm their own per-frame
    /// metadata).
    ///
    /// Like [`prefetch`](CacheArray::prefetch), this is purely a
    /// performance hint: the expansion may be stale by the time a real walk
    /// runs, correctness never depends on it, and the default
    /// implementation does nothing. Implementations must not mutate
    /// observable state.
    fn prefetch_expand(&self, _frames: &[Frame], _out: &mut Vec<Frame>) {}

    /// [`lookup`](CacheArray::lookup) for callers that already hold the
    /// probe frames a prior [`prefetch`](CacheArray::prefetch) of `addr`
    /// wrote: implementations may skip rehashing and probe the given
    /// frames directly. `frames` must be exactly what `prefetch(addr)`
    /// produced for this same array (the hash functions are fixed at
    /// construction, so those frames never go stale); implementations
    /// fall back to a full [`lookup`](CacheArray::lookup) when the hint
    /// does not fit. Observable behavior is identical to `lookup`.
    fn lookup_prefetched(&self, addr: LineAddr, _frames: &[Frame]) -> Option<Frame> {
        self.lookup(addr)
    }
}

/// Checks, in debug builds, that a walk's parent links are well formed:
/// parents always precede children and depth-0 nodes have no parent.
pub(crate) fn debug_check_walk(walk: &Walk, ways: usize) {
    debug_assert!(walk.nodes.len() <= u32::MAX as usize);
    for (i, n) in walk.nodes.iter().enumerate() {
        match n.parent() {
            None => debug_assert!(i < ways, "non-root node {i} lacks parent"),
            Some(p) => debug_assert!((p as usize) < i, "parent {p} not before child {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_formats() {
        let a = LineAddr(0xABC);
        assert_eq!(format!("{a}"), "0xabc");
        assert_eq!(format!("{a:?}"), "LineAddr(0xabc)");
        assert_eq!(LineAddr::from(5u64), LineAddr(5));
    }

    #[test]
    fn walk_helpers() {
        let mut w = Walk::with_capacity(4);
        assert!(w.is_empty());
        w.nodes.push(WalkNode::new(0, true, None, 0));
        w.nodes.push(WalkNode::new(1, false, None, 1));
        w.nodes.push(WalkNode::new(2, true, Some(0), 2));
        assert_eq!(w.len(), 3);
        assert_eq!(w.first_empty(), Some(1));
        let occ: Vec<usize> = w.occupied().map(|(i, _)| i).collect();
        assert_eq!(occ, vec![0, 2]);
        assert_eq!(std::mem::size_of::<WalkNode>(), 8, "walk node stays packed");
        assert_eq!(w.nodes[0].parent(), None);
        assert_eq!(w.nodes[2].parent(), Some(0));
        assert_eq!(w.nodes[2].way(), 2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.first_empty(), None);
    }
}
