//! [`PartitionId`]: the typed handle for a cache partition.
//!
//! Partition identity used to be a raw `usize` (or `u16` in the tag
//! lanes) threaded through every layer, which made it easy to confuse a
//! partition index with a way index, a bank index or a tenant slot. The
//! newtype pins the meaning down at every public boundary while staying
//! `#[repr(transparent)]` over the `u16` the tag metadata lanes store, so
//! it costs nothing at runtime.

use std::fmt;

use crate::tagmeta::TAG_UNMANAGED;

/// A typed partition handle.
///
/// Wraps the `u16` partition ID the tag metadata lanes
/// ([`TagMeta`](crate::TagMeta)) store per frame, which bounds a cache at
/// 65 534 concurrent partitions plus the [`UNMANAGED`](Self::UNMANAGED)
/// sentinel. IDs are dense slot indices: schemes hand them out from a
/// slot table and may reuse a slot after its partition is destroyed and
/// fully drained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct PartitionId(u16);

impl PartitionId {
    /// The unmanaged-region sentinel: lines demoted out of every managed
    /// partition carry this ID in their tag.
    pub const UNMANAGED: PartitionId = PartitionId(TAG_UNMANAGED);

    /// The largest number of concurrently live partitions an LLC can
    /// address (all `u16` values below the sentinel).
    pub const MAX_PARTITIONS: usize = TAG_UNMANAGED as usize;

    /// Builds the ID for slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= PartitionId::MAX_PARTITIONS` (the value would
    /// collide with the unmanaged sentinel or overflow the tag lane).
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        assert!(
            index < Self::MAX_PARTITIONS,
            "partition index overflows the u16 tag lane"
        );
        PartitionId(index as u16)
    }

    /// Reinterprets a raw tag-lane value as an ID (no range check; the
    /// sentinel and even out-of-range fault-injected values pass through,
    /// which is what telemetry needs to report them faithfully).
    #[inline]
    pub const fn from_raw(raw: u16) -> Self {
        PartitionId(raw)
    }

    /// The slot index, for indexing per-partition tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw tag-lane value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Whether this is the unmanaged-region sentinel.
    #[inline]
    pub const fn is_unmanaged(self) -> bool {
        self.0 == TAG_UNMANAGED
    }
}

impl From<PartitionId> for u16 {
    #[inline]
    fn from(id: PartitionId) -> u16 {
        id.raw()
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unmanaged() {
            f.write_str("unmanaged")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_sentinel() {
        let p = PartitionId::from_index(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.raw(), 7);
        assert_eq!(u16::from(p), 7);
        assert!(!p.is_unmanaged());
        assert!(PartitionId::UNMANAGED.is_unmanaged());
        assert_eq!(PartitionId::from_raw(TAG_UNMANAGED), PartitionId::UNMANAGED);
    }

    #[test]
    fn displays_like_telemetry_spelling() {
        assert_eq!(PartitionId::from_index(12).to_string(), "12");
        assert_eq!(PartitionId::UNMANAGED.to_string(), "unmanaged");
    }

    #[test]
    #[should_panic(expected = "overflows the u16 tag lane")]
    fn index_colliding_with_sentinel_panics() {
        let _ = PartitionId::from_index(TAG_UNMANAGED as usize);
    }
}
