//! An idealized cache array returning truly uniform random candidates.
//!
//! The Vantage analysis assumes replacement candidates are independent and
//! uniformly distributed over the cache's frames. Real zcaches are close to
//! but not exactly this (paper §3.2); the paper validates its models by also
//! simulating an "unrealistic cache design that gives truly independent and
//! uniformly distributed candidates" (§6.2). [`RandomArray`] is that design:
//! it is unbuildable in hardware (lines can live anywhere, so lookups need a
//! full map) but is the exact embodiment of the analytical model.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::array::{CacheArray, Frame, LineAddr, Walk, WalkNode};

/// An array whose replacement candidates are `R` uniformly random frames.
///
/// # Example
///
/// ```
/// use vantage_cache::{CacheArray, LineAddr, RandomArray, Walk};
///
/// let mut a = RandomArray::new(1024, 16, 42);
/// let mut walk = Walk::new();
/// a.walk(LineAddr(3), &mut walk);
/// // Cold array: the walk ends at the first empty frame it samples.
/// assert_eq!(walk.len(), 1);
/// assert!(!walk.nodes[0].is_occupied());
/// ```
#[derive(Clone, Debug)]
pub struct RandomArray {
    lines: Vec<Option<LineAddr>>,
    map: HashMap<LineAddr, Frame>,
    candidates: usize,
    rng: SmallRng,
}

impl RandomArray {
    /// Creates an idealized array with `frames` frames yielding `candidates`
    /// uniform random candidates per replacement.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`, `candidates == 0`, or
    /// `candidates > frames`.
    pub fn new(frames: usize, candidates: usize, seed: u64) -> Self {
        assert!(frames > 0, "frames must be non-zero");
        assert!(
            candidates > 0 && candidates <= frames,
            "need 1..=frames candidates"
        );
        assert!(frames <= u32::MAX as usize, "frame count must fit in u32");
        Self {
            lines: vec![None; frames],
            map: HashMap::with_capacity(frames),
            candidates,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl CacheArray for RandomArray {
    fn num_frames(&self) -> usize {
        self.lines.len()
    }

    fn ways(&self) -> usize {
        // Any frame is a legal home, so "ways" is not meaningful; report the
        // candidate count so depth-0 semantics (install anywhere) hold.
        self.candidates
    }

    fn candidates_per_walk(&self) -> usize {
        self.candidates
    }

    fn lookup(&self, addr: LineAddr) -> Option<Frame> {
        self.map.get(&addr).copied()
    }

    fn walk(&mut self, addr: LineAddr, walk: &mut Walk) {
        debug_assert!(self.lookup(addr).is_none(), "walk for a resident line");
        walk.clear();
        let n = self.lines.len() as u32;
        // Sample candidate frames without replacement (Floyd would be
        // overkill: R << frames in all configurations, so rejection is fast).
        while walk.nodes.len() < self.candidates {
            let frame = self.rng.gen_range(0..n);
            if walk.nodes.iter().any(|c| c.frame == frame) {
                continue;
            }
            let line = self.lines[frame as usize];
            walk.nodes
                .push(WalkNode::new(frame, line.is_some(), None, 0));
            if line.is_none() {
                return; // empty frame: use it, as the real arrays do
            }
        }
    }

    fn install(
        &mut self,
        addr: LineAddr,
        walk: &Walk,
        victim: usize,
        _moves: &mut Vec<(Frame, Frame)>,
    ) -> Frame {
        let node = walk.nodes[victim];
        debug_assert_eq!(
            self.lines[node.frame as usize].is_some(),
            node.is_occupied(),
            "stale walk"
        );
        if let Some(old) = self.lines[node.frame as usize] {
            self.map.remove(&old);
        }
        self.lines[node.frame as usize] = Some(addr);
        self.map.insert(addr, node.frame);
        node.frame
    }

    fn invalidate(&mut self, addr: LineAddr) -> Option<Frame> {
        let frame = self.map.remove(&addr)?;
        self.lines[frame as usize] = None;
        Some(frame)
    }

    fn occupant(&self, frame: Frame) -> Option<LineAddr> {
        self.lines[frame as usize]
    }

    fn occupancy(&self) -> usize {
        self.map.len()
    }
}

impl vantage_snapshot::Snapshot for RandomArray {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        // u64::MAX marks an empty frame, matching the packed arrays'
        // sentinel convention (no simulated workload generates it).
        let packed: Vec<u64> = self
            .lines
            .iter()
            .map(|l| l.map_or(u64::MAX, |a| a.0))
            .collect();
        enc.put_u64_slice(&packed);
        for s in self.rng.state() {
            enc.put_u64(s);
        }
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let packed = dec.take_u64_vec()?;
        if packed.len() != self.lines.len() {
            return Err(dec.mismatch(&format!(
                "random array has {} frames, snapshot has {}",
                self.lines.len(),
                packed.len()
            )));
        }
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = dec.take_u64()?;
        }
        let mut map = HashMap::with_capacity(packed.len());
        for (f, &raw) in packed.iter().enumerate() {
            if raw != u64::MAX && map.insert(LineAddr(raw), f as Frame).is_some() {
                return Err(dec.invalid("duplicate resident line"));
            }
        }
        for (slot, &raw) in self.lines.iter_mut().zip(packed.iter()) {
            *slot = (raw != u64::MAX).then_some(LineAddr(raw));
        }
        self.map = map;
        self.rng = SmallRng::from_state(rng_state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_yield_distinct_frames() {
        let mut a = RandomArray::new(256, 16, 1);
        let mut walk = Walk::new();
        // Fill so walks return full candidate lists.
        let mut moves = Vec::new();
        for i in 0..2048u64 {
            let addr = LineAddr(i);
            if a.lookup(addr).is_some() {
                continue;
            }
            a.walk(addr, &mut walk);
            a.install(addr, &walk, walk.first_empty().unwrap_or(0), &mut moves);
        }
        a.walk(LineAddr(99_999), &mut walk);
        assert_eq!(walk.len(), 16);
        let mut frames: Vec<Frame> = walk.nodes.iter().map(|n| n.frame).collect();
        frames.sort_unstable();
        frames.dedup();
        assert_eq!(frames.len(), 16, "candidates must be distinct");
    }

    #[test]
    fn eviction_updates_map() {
        let mut a = RandomArray::new(8, 8, 2);
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        for i in 0..8u64 {
            let addr = LineAddr(i);
            a.walk(addr, &mut walk);
            a.install(addr, &walk, walk.first_empty().expect("room"), &mut moves);
        }
        assert_eq!(a.occupancy(), 8);
        let newcomer = LineAddr(100);
        a.walk(newcomer, &mut walk);
        let victim_line = a.occupant(walk.nodes[0].frame).expect("full array");
        a.install(newcomer, &walk, 0, &mut moves);
        assert_eq!(a.lookup(victim_line), None);
        assert!(a.lookup(newcomer).is_some());
        assert_eq!(a.occupancy(), 8);
    }

    #[test]
    fn candidates_cover_frames_uniformly() {
        let mut a = RandomArray::new(64, 4, 3);
        // Fill completely.
        let mut walk = Walk::new();
        let mut moves = Vec::new();
        for i in 0..640u64 {
            let addr = LineAddr(i);
            if a.lookup(addr).is_some() {
                continue;
            }
            a.walk(addr, &mut walk);
            a.install(addr, &walk, walk.first_empty().unwrap_or(0), &mut moves);
        }
        let mut counts = vec![0u32; 64];
        for t in 0..8000u64 {
            a.walk(LineAddr(1_000_000 + t), &mut walk);
            for n in &walk.nodes {
                counts[n.frame as usize] += 1;
            }
        }
        let expected = 8000 * 4 / 64; // 500 per frame
        for &c in &counts {
            assert!(
                c > expected * 7 / 10 && c < expected * 13 / 10,
                "count {c} vs {expected}"
            );
        }
    }
}
