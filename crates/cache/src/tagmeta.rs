//! Dense structure-of-arrays per-frame tag metadata.
//!
//! Partitioned caches extend every frame's tag with a partition ID and a
//! small replacement stamp (an 8-bit coarse timestamp or an RRPV). Keeping
//! those as an array-of-structs (`Vec<Tag { part, ts }>`) wastes a padding
//! byte per frame and, worse, makes the demotion candidate scan read
//! strided 4-byte records. [`TagMeta`] stores the two fields as separate
//! contiguous lanes instead:
//!
//! * `parts: Vec<u16>` — the owning partition of each frame, with the
//!   reserved sentinel [`TAG_UNMANAGED`] (`u16::MAX`) for lines in the
//!   unmanaged region **and** for frames that have never been filled.
//!   A never-filled frame is therefore distinguishable from a partition-0
//!   line by its tag alone, which the scrub/audit paths rely on.
//! * `ts: Vec<u8>` — the timestamp / RRPV lane.
//!
//! The lanes are exposed both element-wise (hot-path accessors, all
//! `#[inline]`) and as whole slices, so candidate scans and scrub passes
//! can run branchless, autovectorizable loops over contiguous `u16`/`u8`
//! data. Snapshot encoding is left to the owning cache: the lanes
//! serialize naturally as one `u16` slice plus one `u8` slice.

use crate::array::{prefetch_slice, Frame};

/// The reserved partition ID tagging unmanaged lines and never-filled
/// frames. Valid partition IDs are `0..TAG_UNMANAGED`.
pub const TAG_UNMANAGED: u16 = u16::MAX;

/// Size of the stamp domain (8-bit coarse timestamps / RRPVs).
const STAMP_DOMAIN: usize = 256;

/// Structure-of-arrays per-frame (partition ID, timestamp/RRPV) store.
#[derive(Clone, Debug)]
pub struct TagMeta {
    parts: Vec<u16>,
    ts: Vec<u8>,
    /// Lines per (partition, stamp) pair: `counts[row(part) + ts]`.
    ///
    /// Every lane write maintains this index, which exists for one
    /// reason: [`Self::clamp_stale`] consults it to skip its whole-lane
    /// sweep when no line carries the aliasing stamp — the common case
    /// by far, and the difference between O(1) and O(frames) per
    /// coarse-clock tick. At service-mode populations (thousands of
    /// small partitions) clocks tick every few accesses, so unskipped
    /// sweeps would dominate the entire simulation.
    ///
    /// Rows are allocated lazily up to the largest partition ID ever
    /// written (the sentinel maps to row 0), so the index costs
    /// `(max_part + 2) * 256` u32s — a few KB for core-count caches,
    /// ~1 MB at 4K tenants.
    counts: Vec<u32>,
}

impl TagMeta {
    /// Creates a store for `frames` frames, every tag reset to the
    /// never-filled state (`TAG_UNMANAGED`, stamp 0).
    pub fn new(frames: usize) -> Self {
        let mut counts = vec![0u32; STAMP_DOMAIN];
        counts[0] = frames as u32; // all frames: (TAG_UNMANAGED, 0)
        Self {
            parts: vec![TAG_UNMANAGED; frames],
            ts: vec![0; frames],
            counts,
        }
    }

    /// Index of `(part, ts)` in the count lane, growing it as needed.
    /// `TAG_UNMANAGED` wraps to row 0; partition `p` lives at row `p + 1`.
    #[inline]
    fn count_idx(&mut self, part: u16, ts: u8) -> usize {
        let row = part.wrapping_add(1) as usize * STAMP_DOMAIN;
        if row + STAMP_DOMAIN > self.counts.len() {
            self.counts.resize(row + STAMP_DOMAIN, 0);
        }
        row + ts as usize
    }

    /// Moves one line's count from tag `(op, ot)` to tag `(np, nt)`.
    #[inline]
    fn recount(&mut self, op: u16, ot: u8, np: u16, nt: u8) {
        let old = self.count_idx(op, ot);
        self.counts[old] -= 1;
        let new = self.count_idx(np, nt);
        self.counts[new] += 1;
    }

    /// Rebuilds the count index from the lanes (wholesale lane loads).
    fn rebuild_counts(&mut self) {
        let max_row = self
            .parts
            .iter()
            .map(|p| p.wrapping_add(1) as usize)
            .max()
            .unwrap_or(0);
        let rows = max_row + 1;
        self.counts.clear();
        self.counts.resize(rows * STAMP_DOMAIN, 0);
        for (p, t) in self.parts.iter().zip(self.ts.iter()) {
            let row = p.wrapping_add(1) as usize * STAMP_DOMAIN;
            self.counts[row + *t as usize] += 1;
        }
    }

    /// Number of frames covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the store covers zero frames.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The partition ID of frame `f`.
    #[inline]
    pub fn part(&self, f: usize) -> u16 {
        self.parts[f]
    }

    /// The timestamp / RRPV of frame `f`.
    #[inline]
    pub fn ts(&self, f: usize) -> u8 {
        self.ts[f]
    }

    /// Writes both lanes of frame `f`.
    #[inline]
    pub fn set(&mut self, f: usize, part: u16, ts: u8) {
        self.recount(self.parts[f], self.ts[f], part, ts);
        self.parts[f] = part;
        self.ts[f] = ts;
    }

    /// Writes only the partition lane of frame `f`.
    #[inline]
    pub fn set_part(&mut self, f: usize, part: u16) {
        self.recount(self.parts[f], self.ts[f], part, self.ts[f]);
        self.parts[f] = part;
    }

    /// Writes only the timestamp lane of frame `f`.
    #[inline]
    pub fn set_ts(&mut self, f: usize, ts: u8) {
        self.recount(self.parts[f], self.ts[f], self.parts[f], ts);
        self.ts[f] = ts;
    }

    /// Copies frame `from`'s tag into frame `to` (line relocation).
    #[inline]
    pub fn copy(&mut self, from: Frame, to: Frame) {
        let (f, t) = (from as usize, to as usize);
        self.recount(self.parts[t], self.ts[t], self.parts[f], self.ts[f]);
        self.parts[t] = self.parts[f];
        self.ts[t] = self.ts[f];
    }

    /// The whole partition lane.
    #[inline]
    pub fn parts(&self) -> &[u16] {
        &self.parts
    }

    /// The whole timestamp lane.
    #[inline]
    pub fn ts_lane(&self) -> &[u8] {
        &self.ts
    }

    /// Replaces both lanes wholesale (snapshot restore), rebuilding the
    /// count index. (There is deliberately no mutable slice access: every
    /// lane write must go through the setters so the index stays exact.)
    ///
    /// # Panics
    ///
    /// Panics if the lanes disagree with the store's frame count.
    pub fn load_lanes(&mut self, parts: Vec<u16>, ts: Vec<u8>) {
        assert_eq!(parts.len(), self.parts.len(), "partition lane length");
        assert_eq!(ts.len(), self.ts.len(), "timestamp lane length");
        self.parts = parts;
        self.ts = ts;
        self.rebuild_counts();
    }

    /// Issues prefetch hints for frame `f`'s entries in both lanes.
    #[inline]
    pub fn prefetch(&self, f: usize) {
        prefetch_slice(&self.parts, f);
        prefetch_slice(&self.ts, f);
    }

    /// Pins lines of `part` whose stamp is exactly `aliasing_ts` one tick
    /// behind it, i.e. at the maximum age of 255.
    ///
    /// Called right after a partition's coarse-timestamp clock advances to
    /// `aliasing_ts` and *before* any line is stamped with the new value:
    /// at that moment the only resident lines carrying `aliasing_ts` are
    /// ones stamped a full 256 ticks ago, which the 8-bit age arithmetic
    /// `current - ts` would otherwise alias to age 0 — back inside every
    /// keep window, dodging demotion indefinitely. Re-stamping them to
    /// `aliasing_ts + 1` reads as age 255 now and on every later tick
    /// (each subsequent advance re-pins them), so truly stale lines stay
    /// the oldest instead of the youngest.
    ///
    /// The count index makes the usual case O(1): when no resident line
    /// carries `(part, aliasing_ts)` — a line has to sit untouched for a
    /// full 256 ticks to qualify — the sweep is skipped outright. Only
    /// genuinely aliasing populations pay the branchless whole-lane pass,
    /// which matters at service-mode populations where small partitions
    /// tick their clocks every few accesses.
    ///
    /// Returns how many frames were pinned, so callers maintaining stamp
    /// histograms can move the affected entries without a rescan.
    pub fn clamp_stale(&mut self, part: u16, aliasing_ts: u8) -> usize {
        let idx = self.count_idx(part, aliasing_ts);
        if self.counts[idx] == 0 {
            return 0;
        }
        let pinned = aliasing_ts.wrapping_add(1);
        let mut count = 0usize;
        for (p, t) in self.parts.iter().zip(self.ts.iter_mut()) {
            let hit = (*p == part) & (*t == aliasing_ts);
            count += usize::from(hit);
            *t = if hit { pinned } else { *t };
        }
        debug_assert_eq!(count as u32, self.counts[idx], "count index exact");
        self.counts[idx] = 0;
        let to = self.count_idx(part, pinned);
        self.counts[to] += count as u32;
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_store_is_unmanaged_everywhere() {
        let m = TagMeta::new(8);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
        for f in 0..8 {
            assert_eq!(
                m.part(f),
                TAG_UNMANAGED,
                "frame {f} must default to the sentinel"
            );
            assert_eq!(m.ts(f), 0);
        }
    }

    #[test]
    fn set_and_copy_move_both_lanes() {
        let mut m = TagMeta::new(4);
        m.set(1, 7, 42);
        assert_eq!((m.part(1), m.ts(1)), (7, 42));
        m.copy(1, 3);
        assert_eq!((m.part(3), m.ts(3)), (7, 42));
        m.set_part(3, 2);
        m.set_ts(3, 9);
        assert_eq!((m.part(3), m.ts(3)), (2, 9));
        assert_eq!((m.part(1), m.ts(1)), (7, 42), "source unchanged");
    }

    #[test]
    fn clamp_stale_pins_only_matching_lines() {
        let mut m = TagMeta::new(6);
        m.set(0, 3, 10); // target partition, aliasing stamp -> pinned
        m.set(1, 3, 11); // target partition, other stamp -> untouched
        m.set(2, 5, 10); // other partition, aliasing stamp -> untouched
        m.set(3, 3, 10); // target partition, aliasing stamp -> pinned
        m.set(4, TAG_UNMANAGED, 10); // unmanaged -> untouched here
        assert_eq!(m.clamp_stale(3, 10), 2, "two lines of partition 3 pinned");
        assert_eq!(m.ts(0), 11);
        assert_eq!(m.ts(1), 11);
        assert_eq!(m.ts(2), 10);
        assert_eq!(m.ts(3), 11);
        assert_eq!(m.ts(4), 10);
        // The unmanaged domain clamps with the sentinel as the partition.
        assert_eq!(m.clamp_stale(TAG_UNMANAGED, 10), 1);
        assert_eq!(m.ts(4), 11);
    }

    #[test]
    fn clamp_stale_wraps_at_the_domain_edge() {
        let mut m = TagMeta::new(1);
        m.set(0, 0, 255);
        assert_eq!(m.clamp_stale(0, 255), 1);
        assert_eq!(m.ts(0), 0, "pin wraps modulo 256");
    }

    #[test]
    fn count_index_stays_exact_through_every_setter() {
        // The clamp fast path trusts the per-(part, ts) counts; drive every
        // mutation kind and check the sweep agrees with the index (the
        // debug_assert inside clamp_stale cross-checks the full count).
        let mut m = TagMeta::new(8);
        assert_eq!(m.clamp_stale(TAG_UNMANAGED, 0), 8, "init state counted");
        m.set(0, 3, 10);
        m.set(1, 3, 10);
        m.copy(0, 2); // (3, 10) again
        m.set_part(2, 5); // now (5, 10)
        m.set_ts(1, 11); // now (3, 11)
        assert_eq!(m.clamp_stale(3, 10), 1, "only frame 0 left at (3, 10)");
        assert_eq!(m.clamp_stale(3, 11), 2, "frame 1 plus frame 0's pin");
        assert_eq!(m.clamp_stale(5, 10), 1);
        assert_eq!(m.clamp_stale(5, 10), 0, "pinned away: skip is exact");
        m.load_lanes(vec![7; 8], vec![200; 8]);
        assert_eq!(m.clamp_stale(7, 200), 8, "load_lanes rebuilds the index");
    }

    #[test]
    fn load_lanes_replaces_contents() {
        let mut m = TagMeta::new(3);
        m.load_lanes(vec![1, 2, TAG_UNMANAGED], vec![9, 8, 7]);
        assert_eq!(m.parts(), &[1, 2, TAG_UNMANAGED]);
        assert_eq!(m.ts_lane(), &[9, 8, 7]);
    }

    #[test]
    #[should_panic(expected = "partition lane length")]
    fn load_lanes_rejects_wrong_length() {
        TagMeta::new(3).load_lanes(vec![0; 2], vec![0; 3]);
    }
}
