//! Line-ownership layer: how cross-partition sharing is resolved.
//!
//! Vantage's tag model gives every line exactly one owning partition (the
//! `parts` lane of [`TagMeta`](crate::TagMeta)). That is the right invariant
//! for the replacement machinery, but it leaves a policy question open: when
//! partition A hits a line that partition B inserted, whose line is it now?
//! Historically the answer was hard-coded per scheme (Vantage re-tagged the
//! line to the accessor; the baselines left it alone). [`Ownership`] lifts
//! that decision out of the schemes into one shared layer with an explicit
//! [`ShareMode`] knob:
//!
//! * [`ShareMode::Adopt`] — the accessor adopts the line: it is re-tagged to
//!   the accessing partition and the owner's actual size shrinks by one.
//!   This is the default and is bit-identical to the pre-refactor behavior.
//! * [`ShareMode::Replicate`] — shared lines are duplicated per partition.
//!   Implemented by salting the looked-up address with the accessing
//!   partition ([`Ownership::effective_addr`]), so two partitions reading
//!   the same line each keep a private copy: capacity is traded for
//!   isolation, and cross-partition hits can never occur.
//! * [`ShareMode::Pin`] — lines keep their first owner. A cross-partition
//!   hit still counts as a hit for the accessor, but ownership (and hence
//!   the owner's measured size, demotion pressure, and eviction exposure)
//!   never transfers.
//!
//! The layer also owns the per-partition sharing counters (shared hits,
//! ownership transfers, replica fills) that feed `PolicyInput` and
//! telemetry, so allocation policies can see sharing pressure.

use crate::array::LineAddr;

/// Bit position of the per-partition address salt used by
/// [`ShareMode::Replicate`]. Application address spaces live well below
/// this (mix generators place apps at `region << 32` offsets under a
/// `1 << 40` base), so the salt never collides with a real address bit.
const REPLICA_SALT_SHIFT: u32 = 48;

/// How cross-partition sharing is resolved. See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ShareMode {
    /// Re-tag shared lines to the accessing partition (historical default).
    #[default]
    Adopt,
    /// Duplicate shared lines per partition via address salting.
    Replicate,
    /// Lines keep their first owner; hits never transfer ownership.
    Pin,
}

impl ShareMode {
    /// All modes, in CLI/report order.
    pub const ALL: [ShareMode; 3] = [ShareMode::Adopt, ShareMode::Replicate, ShareMode::Pin];

    /// Stable lowercase label (CLI values, bench records, CSV columns).
    pub fn label(self) -> &'static str {
        match self {
            ShareMode::Adopt => "adopt",
            ShareMode::Replicate => "replicate",
            ShareMode::Pin => "pin",
        }
    }

    /// Parses a CLI label. Accepts the exact [`Self::label`] strings.
    pub fn parse(s: &str) -> Option<ShareMode> {
        match s {
            "adopt" => Some(ShareMode::Adopt),
            "replicate" => Some(ShareMode::Replicate),
            "pin" => Some(ShareMode::Pin),
            _ => None,
        }
    }

    /// Snapshot encoding (stable across versions).
    pub fn as_u8(self) -> u8 {
        match self {
            ShareMode::Adopt => 0,
            ShareMode::Replicate => 1,
            ShareMode::Pin => 2,
        }
    }

    /// Inverse of [`Self::as_u8`].
    pub fn from_u8(v: u8) -> Option<ShareMode> {
        match v {
            0 => Some(ShareMode::Adopt),
            1 => Some(ShareMode::Replicate),
            2 => Some(ShareMode::Pin),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShareMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-cache ownership state: the active [`ShareMode`] plus the
/// per-partition sharing counters it produces.
///
/// Counters accumulate like `LlcStats` lanes and are drained by the same
/// observation cycle (the owning cache snapshots-and-resets them when its
/// stats are taken).
#[derive(Clone, Debug)]
pub struct Ownership {
    mode: ShareMode,
    /// Cross-partition hits observed per *accessing* partition.
    shared_hits: Vec<u64>,
    /// Ownership transfers per *accessing* (adopting) partition.
    transfers: Vec<u64>,
    /// Replica fills per partition (Replicate mode only).
    replicas: Vec<u64>,
}

impl Ownership {
    /// Creates the layer for `partitions` partitions in `mode`.
    pub fn new(mode: ShareMode, partitions: usize) -> Self {
        Self {
            mode,
            shared_hits: vec![0; partitions],
            transfers: vec![0; partitions],
            replicas: vec![0; partitions],
        }
    }

    /// The active mode.
    #[inline]
    pub fn mode(&self) -> ShareMode {
        self.mode
    }

    /// Switches the mode. Callers must only do this on a cold cache (or
    /// accept that lines installed under the old mode keep their placement).
    pub fn set_mode(&mut self, mode: ShareMode) {
        self.mode = mode;
    }

    /// Number of partitions covered by the counter lanes.
    #[inline]
    pub fn partitions(&self) -> usize {
        self.shared_hits.len()
    }

    /// Grows the counter lanes to cover at least `partitions` partitions
    /// (partition lifecycle: slots are never shrunk, matching `LlcStats`).
    pub fn ensure_partitions(&mut self, partitions: usize) {
        if partitions > self.shared_hits.len() {
            self.shared_hits.resize(partitions, 0);
            self.transfers.resize(partitions, 0);
            self.replicas.resize(partitions, 0);
        }
    }

    /// The address a lookup by `part` actually uses. Identity except under
    /// [`ShareMode::Replicate`], where the partition index is folded into
    /// high address bits so each partition fills a private copy of every
    /// line it touches.
    #[inline]
    pub fn effective_addr(&self, part: u16, addr: LineAddr) -> LineAddr {
        match self.mode {
            ShareMode::Replicate => LineAddr(addr.0 ^ ((part as u64 + 1) << REPLICA_SALT_SHIFT)),
            _ => addr,
        }
    }

    /// Records a cross-partition hit by `accessor` on a line owned by
    /// another partition, and decides whether ownership transfers.
    ///
    /// Returns `true` when the accessor adopts the line (the caller must
    /// then re-tag the frame and move the owner's actual-size count), and
    /// `false` when the line stays pinned to its current owner. Under
    /// [`ShareMode::Replicate`] cross-partition hits cannot occur (address
    /// salting keeps lookups disjoint), so this is never reached in that
    /// mode; it conservatively reports no transfer.
    #[inline]
    pub fn on_shared_hit(&mut self, accessor: u16) -> bool {
        self.shared_hits[accessor as usize] += 1;
        match self.mode {
            ShareMode::Adopt => {
                self.transfers[accessor as usize] += 1;
                true
            }
            ShareMode::Replicate | ShareMode::Pin => false,
        }
    }

    /// Records a replica fill by `part` (an install whose address carried
    /// the Replicate salt).
    #[inline]
    pub fn on_replica_fill(&mut self, part: u16) {
        self.replicas[part as usize] += 1;
    }

    /// Cross-partition hits per accessing partition since the last drain.
    #[inline]
    pub fn shared_hits(&self) -> &[u64] {
        &self.shared_hits
    }

    /// Ownership transfers per adopting partition since the last drain.
    #[inline]
    pub fn transfers(&self) -> &[u64] {
        &self.transfers
    }

    /// Replica fills per partition since the last drain.
    #[inline]
    pub fn replicas(&self) -> &[u64] {
        &self.replicas
    }

    /// Resets every counter lane to zero (stat-drain cycle).
    pub fn reset_counters(&mut self) {
        self.shared_hits.fill(0);
        self.transfers.fill(0);
        self.replicas.fill(0);
    }

    /// Serializes the layer (mode byte plus the three counter lanes).
    pub fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u8(self.mode.as_u8());
        enc.put_u64_slice(&self.shared_hits);
        enc.put_u64_slice(&self.transfers);
        enc.put_u64_slice(&self.replicas);
    }

    /// Restores the layer saved by [`Self::save_state`]. The snapshot's
    /// mode must match the host's configured mode: lines were placed under
    /// the recorded mode, and silently reinterpreting them under another
    /// would corrupt occupancy accounting (same contract as the RRIP
    /// policy-kind check).
    pub fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let raw = dec.take_u8()?;
        let mode = ShareMode::from_u8(raw).ok_or_else(|| dec.invalid("unknown share-mode tag"))?;
        if mode != self.mode {
            return Err(dec.mismatch("share mode differs from snapshot"));
        }
        let shared_hits = dec.take_u64_vec()?;
        let transfers = dec.take_u64_vec()?;
        let replicas = dec.take_u64_vec()?;
        let n = self.shared_hits.len();
        if shared_hits.len() != n || transfers.len() != n || replicas.len() != n {
            return Err(dec.mismatch("ownership counter lane length differs"));
        }
        self.shared_hits = shared_hits;
        self.transfers = transfers;
        self.replicas = replicas;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for mode in ShareMode::ALL {
            assert_eq!(ShareMode::parse(mode.label()), Some(mode));
            assert_eq!(ShareMode::from_u8(mode.as_u8()), Some(mode));
            assert_eq!(format!("{mode}"), mode.label());
        }
        assert_eq!(ShareMode::parse("bogus"), None);
        assert_eq!(ShareMode::from_u8(3), None);
    }

    #[test]
    fn adopt_transfers_pin_does_not() {
        let mut o = Ownership::new(ShareMode::Adopt, 4);
        assert!(o.on_shared_hit(2));
        assert!(o.on_shared_hit(2));
        assert_eq!(o.shared_hits(), &[0, 0, 2, 0]);
        assert_eq!(o.transfers(), &[0, 0, 2, 0]);

        let mut p = Ownership::new(ShareMode::Pin, 4);
        assert!(!p.on_shared_hit(1));
        assert_eq!(p.shared_hits(), &[0, 1, 0, 0]);
        assert_eq!(p.transfers(), &[0, 0, 0, 0]);
    }

    #[test]
    fn effective_addr_salts_only_under_replicate() {
        let addr = LineAddr(0xAB_CDEF);
        for mode in [ShareMode::Adopt, ShareMode::Pin] {
            let o = Ownership::new(mode, 2);
            assert_eq!(o.effective_addr(0, addr), addr);
            assert_eq!(o.effective_addr(1, addr), addr);
        }
        let r = Ownership::new(ShareMode::Replicate, 2);
        let a0 = r.effective_addr(0, addr);
        let a1 = r.effective_addr(1, addr);
        assert_ne!(a0, a1, "per-partition copies are distinct lines");
        assert_ne!(a0, addr, "partition 0 is salted too");
        assert_eq!(
            a0.0 & ((1 << REPLICA_SALT_SHIFT) - 1),
            addr.0,
            "low bits preserved"
        );
    }

    #[test]
    fn ensure_partitions_grows_monotonically() {
        let mut o = Ownership::new(ShareMode::Adopt, 2);
        o.on_shared_hit(1);
        o.ensure_partitions(5);
        assert_eq!(o.partitions(), 5);
        assert_eq!(o.shared_hits(), &[0, 1, 0, 0, 0]);
        o.ensure_partitions(3); // never shrinks
        assert_eq!(o.partitions(), 5);
    }

    #[test]
    fn snapshot_round_trips_and_rejects_mode_mismatch() {
        let mut o = Ownership::new(ShareMode::Pin, 3);
        o.on_shared_hit(0);
        o.on_shared_hit(2);
        let mut enc = vantage_snapshot::Encoder::new();
        o.save_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut fresh = Ownership::new(ShareMode::Pin, 3);
        let mut dec = vantage_snapshot::Decoder::new(&bytes, "ownership");
        fresh.load_state(&mut dec).expect("same-mode restore");
        assert_eq!(fresh.shared_hits(), &[1, 0, 1]);

        let mut wrong = Ownership::new(ShareMode::Adopt, 3);
        let mut dec = vantage_snapshot::Decoder::new(&bytes, "ownership");
        assert!(
            wrong.load_state(&mut dec).is_err(),
            "mode mismatch rejected"
        );
    }
}
