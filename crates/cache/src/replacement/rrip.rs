//! The RRIP replacement-policy family (Jaleel et al., ISCA 2010), adapted to
//! candidate-based arrays.
//!
//! Each line carries an M-bit *re-reference prediction value* (RRPV);
//! `2^M - 1` means "re-referenced in the distant future" (best eviction
//! candidate) and `0` means "near-immediate". Variants differ in insertion:
//!
//! * **SRRIP** (scan-resistant): insert at `max - 1` ("long" interval).
//! * **BRRIP** (thrash-resistant): insert at `max` ("distant"), except with
//!   low probability (1/32) at `max - 1`.
//! * **DRRIP**: choose between SRRIP and BRRIP dynamically with set dueling
//!   and a saturating policy-selector (PSEL) counter.
//! * **TA-DRRIP**: thread-aware dueling (TADIP-style) — one PSEL and one set
//!   of leader buckets per thread/partition.
//!
//! Skew-associative caches and zcaches have no sets, so "set dueling"
//! becomes *bucket dueling*: an H3 hash of the address selects a leader
//! bucket, which works identically (the paper notes RRIP policies are
//! "trivially applicable" to zcaches, §6.2).
//!
//! Victim selection among candidates: evict any candidate with RRPV = max;
//! if none exists, age all candidates up by the deficit and retry — with
//! candidate lists this is a single arithmetic step, see
//! [`RripPolicy::select_victim`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::array::LineAddr;
use crate::hash::H3Hasher;

/// Which RRIP variant drives insertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RripMode {
    /// Static re-reference interval prediction: always insert "long".
    Srrip,
    /// Bimodal: insert "distant", occasionally "long".
    Brrip,
    /// Dynamic: bucket dueling with one global PSEL.
    Drrip,
    /// Thread-aware dynamic: per-partition PSEL and leader buckets.
    TaDrrip,
    /// Each partition's base policy is set externally (used by
    /// Vantage-DRRIP, where UMON picks SRRIP or BRRIP per partition at each
    /// repartitioning, paper §6.2).
    PerPartition,
}

/// The two base policies DRRIP-style modes arbitrate between.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BasePolicy {
    /// Insert at `max - 1`.
    #[default]
    Srrip,
    /// Insert at `max`, with probability 1/32 at `max - 1`.
    Brrip,
}

/// Configuration for [`RripPolicy`].
#[derive(Clone, Debug)]
pub struct RripConfig {
    /// RRPV width in bits (the paper's experiments use 3).
    pub bits: u8,
    /// Dueling mode.
    pub mode: RripMode,
    /// Number of partitions (threads) sharing the cache.
    pub partitions: usize,
    /// Total dueling buckets; two per PSEL are leaders.
    pub duel_buckets: u32,
    /// Saturating PSEL magnitude (counter range is `-psel_max..=psel_max`).
    pub psel_max: i32,
    /// RNG seed for BRRIP's bimodal coin.
    pub seed: u64,
}

impl RripConfig {
    /// The paper's configuration: 3-bit RRPVs.
    pub fn paper(mode: RripMode, partitions: usize, seed: u64) -> Self {
        Self {
            bits: 3,
            mode,
            partitions,
            duel_buckets: 32,
            psel_max: 512,
            seed,
        }
    }
}

/// RRIP insertion/promotion/selection logic for one cache.
///
/// Per-line state (the RRPV) is owned by the caller, which stores it in its
/// per-frame metadata; this struct holds only the policy-level registers.
///
/// # Example
///
/// ```
/// use vantage_cache::{LineAddr, RripConfig, RripMode, RripPolicy};
///
/// let mut p = RripPolicy::new(RripConfig::paper(RripMode::Srrip, 1, 7));
/// let rrpv = p.insertion_rrpv(0, LineAddr(4));
/// assert_eq!(rrpv, 6); // SRRIP inserts at max-1 = 2^3 - 2
///
/// let mut cands = [3u8, 6, 7, 0];
/// let (victim, aged) = p.select_victim(&cands);
/// assert_eq!((victim, aged), (2, 0)); // an RRPV-7 line exists
/// ```
#[derive(Clone, Debug)]
pub struct RripPolicy {
    max: u8,
    mode: RripMode,
    /// One PSEL for DRRIP; one per partition for TA-DRRIP. Positive values
    /// mean BRRIP is doing better (fewer misses in its leader buckets).
    psel: Vec<i32>,
    psel_max: i32,
    /// Externally-set per-partition base policies (PerPartition mode).
    part_policy: Vec<BasePolicy>,
    duel_hasher: H3Hasher,
    duel_buckets: u32,
    rng: SmallRng,
}

impl RripPolicy {
    /// Creates the policy from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 7, if `partitions` is 0, or if
    /// `duel_buckets < 2`.
    pub fn new(config: RripConfig) -> Self {
        assert!(
            config.bits >= 1 && config.bits <= 7,
            "RRPV width must be 1..=7 bits"
        );
        assert!(config.partitions > 0, "need at least one partition");
        assert!(config.duel_buckets >= 2, "need at least 2 dueling buckets");
        let psel_len = match config.mode {
            RripMode::TaDrrip => config.partitions,
            _ => 1,
        };
        Self {
            max: (1u8 << config.bits) - 1,
            mode: config.mode,
            psel: vec![0; psel_len],
            psel_max: config.psel_max,
            part_policy: vec![BasePolicy::default(); config.partitions],
            duel_hasher: H3Hasher::new(config.seed ^ 0xD0E1),
            duel_buckets: config.duel_buckets,
            rng: SmallRng::seed_from_u64(config.seed),
        }
    }

    /// Maximum RRPV (the "distant future" value).
    #[inline]
    pub fn max_rrpv(&self) -> u8 {
        self.max
    }

    /// The RRPV a hit promotes a line to (hit-priority promotion).
    #[inline]
    pub fn hit_rrpv(&self) -> u8 {
        0
    }

    /// Sets partition `part`'s base policy (only meaningful in
    /// [`RripMode::PerPartition`]).
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn set_partition_policy(&mut self, part: usize, policy: BasePolicy) {
        self.part_policy[part] = policy;
    }

    /// The base policy partition `part` currently uses for follower
    /// accesses.
    pub fn partition_policy(&self, part: usize) -> BasePolicy {
        match self.mode {
            RripMode::Srrip => BasePolicy::Srrip,
            RripMode::Brrip => BasePolicy::Brrip,
            RripMode::Drrip => {
                if self.psel[0] > 0 {
                    BasePolicy::Brrip
                } else {
                    BasePolicy::Srrip
                }
            }
            RripMode::TaDrrip => {
                if self.psel[part] > 0 {
                    BasePolicy::Brrip
                } else {
                    BasePolicy::Srrip
                }
            }
            RripMode::PerPartition => self.part_policy[part],
        }
    }

    /// Dueling role of an address for a given PSEL domain: `Some(policy)` if
    /// the address falls in one of that domain's two leader buckets.
    fn leader_role(&self, domain: usize, addr: LineAddr) -> Option<BasePolicy> {
        let bucket = self.duel_hasher.bucket(addr.0, self.duel_buckets);
        // Rotate leader buckets by domain so TA-DRRIP threads duel on
        // disjoint buckets.
        let srrip_leader = (2 * domain as u32) % self.duel_buckets;
        let brrip_leader = (2 * domain as u32 + 1) % self.duel_buckets;
        if bucket == srrip_leader {
            Some(BasePolicy::Srrip)
        } else if bucket == brrip_leader {
            Some(BasePolicy::Brrip)
        } else {
            None
        }
    }

    /// Records a miss by `part` on `addr`, updating dueling state.
    ///
    /// Call on every cache miss before inserting the line.
    pub fn note_miss(&mut self, part: usize, addr: LineAddr) {
        let domain = match self.mode {
            RripMode::Drrip => 0,
            RripMode::TaDrrip => part,
            _ => return,
        };
        if let Some(role) = self.leader_role(domain, addr) {
            // A miss charges the leading policy: SRRIP-leader misses push
            // PSEL toward BRRIP and vice versa.
            let delta = match role {
                BasePolicy::Srrip => 1,
                BasePolicy::Brrip => -1,
            };
            self.psel[domain] = (self.psel[domain] + delta).clamp(-self.psel_max, self.psel_max);
        }
    }

    /// The RRPV to install a new line with, for partition `part` and address
    /// `addr` (leader buckets force their fixed policy).
    pub fn insertion_rrpv(&mut self, part: usize, addr: LineAddr) -> u8 {
        let policy = match self.mode {
            RripMode::Drrip => self
                .leader_role(0, addr)
                .unwrap_or_else(|| self.partition_policy(part)),
            RripMode::TaDrrip => self
                .leader_role(part, addr)
                .unwrap_or_else(|| self.partition_policy(part)),
            _ => self.partition_policy(part),
        };
        match policy {
            BasePolicy::Srrip => self.max - 1,
            BasePolicy::Brrip => {
                if self.rng.gen_ratio(1, 32) {
                    self.max - 1
                } else {
                    self.max
                }
            }
        }
    }

    /// Picks the victim among candidate RRPVs and returns
    /// `(victim_index, aging)`, where `aging` must be added (saturating at
    /// `max`) to every candidate's stored RRPV by the caller — this is the
    /// candidate-list equivalent of RRIP's "increment all and retry" loop.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn select_victim(&self, candidates: &[u8]) -> (usize, u8) {
        assert!(!candidates.is_empty(), "no candidates to select from");
        let (idx, &best) = candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .expect("non-empty");
        (idx, self.max - best)
    }
}

impl vantage_snapshot::Snapshot for RripPolicy {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_i32_slice(&self.psel);
        enc.put_u64(self.part_policy.len() as u64);
        for p in &self.part_policy {
            enc.put_u8(match p {
                BasePolicy::Srrip => 0,
                BasePolicy::Brrip => 1,
            });
        }
        for s in self.rng.state() {
            enc.put_u64(s);
        }
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let psel = dec.take_i32_vec()?;
        if psel.len() != self.psel.len() {
            return Err(dec.mismatch("PSEL domain count differs"));
        }
        if psel.iter().any(|&v| v.abs() > self.psel_max) {
            return Err(dec.invalid("PSEL value outside saturation range"));
        }
        let nparts = dec.take_usize()?;
        if nparts != self.part_policy.len() {
            return Err(dec.mismatch("partition count differs"));
        }
        let mut part_policy = Vec::with_capacity(nparts);
        for _ in 0..nparts {
            part_policy.push(match dec.take_u8()? {
                0 => BasePolicy::Srrip,
                1 => BasePolicy::Brrip,
                b => return Err(dec.invalid(&format!("base-policy tag {b}"))),
            });
        }
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = dec.take_u64()?;
        }
        self.psel = psel;
        self.part_policy = part_policy;
        self.rng = SmallRng::from_state(rng_state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(mode: RripMode) -> RripPolicy {
        RripPolicy::new(RripConfig::paper(mode, 4, 42))
    }

    #[test]
    fn srrip_inserts_long() {
        let mut p = policy(RripMode::Srrip);
        for i in 0..100u64 {
            assert_eq!(p.insertion_rrpv(0, LineAddr(i)), 6);
        }
    }

    #[test]
    fn brrip_inserts_mostly_distant() {
        let mut p = policy(RripMode::Brrip);
        let mut distant = 0;
        let n = 3200;
        for i in 0..n {
            if p.insertion_rrpv(0, LineAddr(i)) == 7 {
                distant += 1;
            }
        }
        // Expect ~31/32 distant: allow a generous band.
        assert!(distant > n * 9 / 10, "only {distant}/{n} distant inserts");
        assert!(distant < n, "BRRIP must occasionally insert long");
    }

    #[test]
    fn victim_selection_prefers_max_rrpv() {
        let p = policy(RripMode::Srrip);
        let (v, aging) = p.select_victim(&[1, 7, 3]);
        assert_eq!((v, aging), (1, 0));
    }

    #[test]
    fn victim_selection_reports_aging_deficit() {
        let p = policy(RripMode::Srrip);
        let (v, aging) = p.select_victim(&[1, 4, 3]);
        assert_eq!(v, 1);
        assert_eq!(aging, 3, "all candidates age by max - best");
    }

    #[test]
    fn drrip_psel_switches_policy() {
        let mut p = policy(RripMode::Drrip);
        assert_eq!(
            p.partition_policy(0),
            BasePolicy::Srrip,
            "ties break to SRRIP"
        );
        // Hammer misses on SRRIP leader addresses until PSEL goes positive.
        let srrip_leaders: Vec<LineAddr> = (0..100_000u64)
            .map(LineAddr)
            .filter(|&a| p.leader_role(0, a) == Some(BasePolicy::Srrip))
            .take(100)
            .collect();
        assert!(!srrip_leaders.is_empty());
        for _ in 0..20 {
            for &a in &srrip_leaders {
                p.note_miss(0, a);
            }
        }
        assert_eq!(p.partition_policy(0), BasePolicy::Brrip);
    }

    #[test]
    fn ta_drrip_duels_per_partition() {
        let mut p = policy(RripMode::TaDrrip);
        let leaders: Vec<LineAddr> = (0..100_000u64)
            .map(LineAddr)
            .filter(|&a| p.leader_role(1, a) == Some(BasePolicy::Srrip))
            .take(100)
            .collect();
        for _ in 0..20 {
            for &a in &leaders {
                p.note_miss(1, a);
            }
        }
        assert_eq!(p.partition_policy(1), BasePolicy::Brrip);
        assert_eq!(
            p.partition_policy(0),
            BasePolicy::Srrip,
            "other partitions unaffected"
        );
    }

    #[test]
    fn per_partition_mode_respects_external_choice() {
        let mut p = policy(RripMode::PerPartition);
        p.set_partition_policy(2, BasePolicy::Brrip);
        assert_eq!(p.partition_policy(2), BasePolicy::Brrip);
        assert_eq!(p.partition_policy(0), BasePolicy::Srrip);
    }

    #[test]
    fn psel_saturates() {
        let mut p = policy(RripMode::Drrip);
        let leaders: Vec<LineAddr> = (0..100_000u64)
            .map(LineAddr)
            .filter(|&a| p.leader_role(0, a) == Some(BasePolicy::Srrip))
            .take(64)
            .collect();
        for _ in 0..1000 {
            for &a in &leaders {
                p.note_miss(0, a);
            }
        }
        assert!(p.psel[0] <= 512);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_panics() {
        policy(RripMode::Srrip).select_victim(&[]);
    }
}
