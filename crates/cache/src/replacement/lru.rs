//! Coarse-grained timestamp LRU.
//!
//! Each line is tagged with an 8-bit timestamp; a domain (the whole cache,
//! or one Vantage partition) keeps a *current timestamp* register that is
//! incremented once every `period` accesses (the paper uses
//! `period = size/16`, making wrap-arounds rare). A line's eviction rank is
//! its age, `(current - tag) mod 256`: older lines rank higher.

/// Timestamp counter logic for one coarse-timestamp-LRU domain.
///
/// The Vantage controller instantiates one of these per partition (plus one
/// for the unmanaged region); an unpartitioned LRU cache uses a single
/// global instance.
///
/// # Example
///
/// ```
/// use vantage_cache::TsLru;
///
/// let mut lru = TsLru::new(4); // timestamp advances every 4 accesses
/// let tag = lru.current();
/// for _ in 0..8 {
///     lru.on_access();
/// }
/// assert_eq!(lru.age(tag), 2);
/// ```
#[derive(Clone, Debug)]
pub struct TsLru {
    current: u8,
    counter: u32,
    period: u32,
}

impl TsLru {
    /// Creates a domain whose timestamp advances every `period` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u32) -> Self {
        assert!(period > 0, "period must be non-zero");
        Self {
            current: 0,
            counter: 0,
            period,
        }
    }

    /// Creates a domain sized for `lines` lines, using the paper's
    /// `period = max(lines/16, 1)` rule.
    pub fn for_size(lines: u64) -> Self {
        Self::new(((lines / 16).max(1)).min(u32::MAX as u64) as u32)
    }

    /// The current timestamp, used to tag accessed lines.
    #[inline]
    pub fn current(&self) -> u8 {
        self.current
    }

    /// The current period in accesses per timestamp tick (instrumentation:
    /// lets tests assert which size a domain's clock is tracking).
    #[inline]
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Updates the period (e.g. when a Vantage partition's actual size
    /// changes). Takes effect on the next access.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_period(&mut self, period: u32) {
        assert!(period > 0, "period must be non-zero");
        self.period = period;
    }

    /// Re-derives the period from a line count, per the `size/16` rule.
    pub fn set_period_for_size(&mut self, lines: u64) {
        self.set_period(((lines / 16).max(1)).min(u32::MAX as u64) as u32);
    }

    /// Records one access; returns `true` if the current timestamp advanced
    /// (Vantage advances the setpoint timestamp in lockstep when this
    /// happens).
    #[inline]
    pub fn on_access(&mut self) -> bool {
        self.counter += 1;
        if self.counter >= self.period {
            self.counter = 0;
            self.current = self.current.wrapping_add(1);
            true
        } else {
            false
        }
    }

    /// The age of a line tagged `ts`, in timestamp units (modulo-256
    /// arithmetic). Older lines have larger ages and rank higher for
    /// eviction.
    #[inline]
    pub fn age(&self, ts: u8) -> u8 {
        self.current.wrapping_sub(ts)
    }
}

impl vantage_snapshot::Snapshot for TsLru {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u8(self.current);
        enc.put_u32(self.counter);
        // The period is config-derived but mutated at runtime (Vantage
        // retunes it as partition sizes move), so it is state.
        enc.put_u32(self.period);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let current = dec.take_u8()?;
        let counter = dec.take_u32()?;
        let period = dec.take_u32()?;
        if period == 0 {
            return Err(dec.invalid("zero TsLru period"));
        }
        self.current = current;
        self.counter = counter;
        self.period = period;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_every_period() {
        let mut lru = TsLru::new(3);
        assert_eq!(lru.current(), 0);
        assert!(!lru.on_access());
        assert!(!lru.on_access());
        assert!(lru.on_access());
        assert_eq!(lru.current(), 1);
    }

    #[test]
    fn age_uses_modulo_arithmetic() {
        let mut lru = TsLru::new(1);
        for _ in 0..255 {
            lru.on_access();
        }
        assert_eq!(lru.current(), 255);
        assert_eq!(lru.age(250), 5);
        lru.on_access(); // wraps to 0
        assert_eq!(lru.current(), 0);
        assert_eq!(lru.age(250), 6);
        assert_eq!(lru.age(0), 0);
    }

    #[test]
    fn for_size_uses_sixteenth_rule() {
        let lru = TsLru::for_size(1600);
        // period = 1600/16 = 100: the 100th access advances.
        let mut lru2 = lru.clone();
        for i in 1..=100u32 {
            let advanced = lru2.on_access();
            assert_eq!(advanced, i == 100);
        }
    }

    #[test]
    fn tiny_domains_get_period_one() {
        let mut lru = TsLru::for_size(3);
        assert!(lru.on_access(), "period clamps to 1 for tiny sizes");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        TsLru::new(0);
    }
}
