//! Replacement policy building blocks.
//!
//! Skew-associative caches and zcaches break the concept of a set, so they
//! cannot use policies that rely on per-set ordering (true LRU chains).
//! Instead, policies assign each line a small amount of per-line state that
//! induces a *global rank*; on a replacement the controller evicts the
//! candidate with the best rank (highest eviction priority).
//!
//! * [`lru::TsLru`] — coarse-grained timestamp LRU: an 8-bit timestamp per
//!   line, a domain-wide current timestamp advanced every
//!   `size/16` accesses, rank = age in timestamp units (paper §4.2).
//! * [`rrip::RripPolicy`] — the RRIP family (Jaleel et al., ISCA 2010):
//!   SRRIP, BRRIP, DRRIP with set dueling and thread-aware TA-DRRIP,
//!   adapted to candidate-based arrays (paper §6.2, Fig. 11).

pub mod lru;
pub mod rrip;
