//! `service` subcommand: service-mode partition lifecycle at scale.
//!
//! The paper's experiments pin one partition per core for a whole run.
//! This harness exercises the other deployment Vantage's scalability
//! argument targets — a consolidated service whose tenants arrive,
//! live, and leave — end to end:
//!
//! * **Churn run** — a [`TenantChurn`] population drives a Vantage LLC
//!   through `create_partition`/`destroy_partition`; every epoch an
//!   allocation policy ([`QosGuarantee::uniform`] by default,
//!   `--policy clustered` for the LFOC-style allocator) re-targets the
//!   live tenants. Per-tenant SLA accounting (accesses, hit rate,
//!   guaranteed floor, violations) is written to
//!   `<out>/service_sla.csv`.
//! * **Scale bench** — a steady 1024-live-partition access loop,
//!   recorded (with the churn run's throughput) to
//!   `BENCH_service.json` at the repo root. In quick mode (CI) the
//!   bench gates at [`SCALE_MIN_RATE`] accesses/second: fine-grain
//!   partitioning must not collapse when the population is three
//!   orders of magnitude past the core count.
//!
//! Destruction never flushes: departing tenants drain through ordinary
//! demotions, and the churn run counts lifecycle errors (which must be
//! zero) rather than tolerating them.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage::{VantageConfig, VantageLlc};
use vantage_cache::{LineAddr, ZArray};
use vantage_partitioning::{AccessRequest, Llc, PartitionId, PartitionSpec};
use vantage_sim::PolicyKind;
use vantage_ucp::{AllocationPolicy, ClusteredPolicy, EqualShares, PolicyInput, QosGuarantee};
use vantage_workloads::{ChurnEvent, TenantChurn, TenantChurnConfig};

use vantage_bench::{append_entry, BenchRecord};

use crate::common::{open_telemetry, record_failure, write_csv, Options};

/// Quick-mode floor on the 1024-partition steady-state access rate.
pub const SCALE_MIN_RATE: f64 = 1.0e6;

/// Live partitions in the scale bench.
const SCALE_PARTITIONS: usize = 1024;

/// Scale parameters for one service run.
#[derive(Clone, Copy, Debug)]
struct Scale {
    /// Cache lines in the churn run.
    frames: usize,
    /// Generator events consumed by the churn run.
    events: u64,
    /// Accesses between repartitioning epochs.
    epoch: u64,
    /// Admission cap for the churn population.
    max_tenants: usize,
    /// Cache lines in the scale bench.
    bench_frames: usize,
    /// Warmup / timed accesses in the scale bench.
    bench_warmup: u64,
    bench_timed: u64,
}

impl Scale {
    fn from_options(o: &Options) -> Self {
        if o.quick {
            Self {
                frames: 16 * 1024,
                events: 1_500_000,
                epoch: 20_000,
                max_tenants: 128,
                bench_frames: 64 * 1024,
                bench_warmup: 200_000,
                bench_timed: 1_000_000,
            }
        } else {
            Self {
                frames: 64 * 1024,
                events: 12_000_000,
                epoch: 50_000,
                max_tenants: 1024,
                bench_frames: 128 * 1024,
                bench_warmup: 1_000_000,
                bench_timed: 8_000_000,
            }
        }
    }
}

/// Per-tenant SLA ledger for the churn run's report.
#[derive(Clone, Debug)]
struct TenantSla {
    tenant: u64,
    slot: PartitionId,
    arrived_at: u64,
    departed_at: Option<u64>,
    accesses: u64,
    hits: u64,
    /// Repartitioning epochs this tenant was live for.
    epochs: u64,
    /// Smallest policy target granted across those epochs.
    min_target: u64,
    /// Epochs whose target fell below the guaranteed floor.
    floor_violations: u64,
}

/// Everything the churn run reports.
struct ChurnOutcome {
    events: u64,
    accesses: u64,
    wall_s: f64,
    tenants_admitted: u64,
    departures: u64,
    peak_live: usize,
    policy_name: &'static str,
    floor: u64,
    floor_violations: u64,
    lifecycle_errors: u64,
    sla: Vec<TenantSla>,
}

/// Instantiates the allocation policy for the service run. UMON-backed
/// policies are sized at construction and cannot follow a churning
/// population, so `ucp`/`missratio` fall back to the uniform QoS
/// contract with a note.
fn service_policy(kind: PolicyKind, floor: u64) -> (&'static str, Box<dyn AllocationPolicy>) {
    match kind {
        PolicyKind::Equal => ("equal", Box::new(EqualShares::new())),
        PolicyKind::Clustered => (
            "clustered",
            Box::new(ClusteredPolicy::try_new(8, floor).expect("valid cluster config")),
        ),
        PolicyKind::Qos => (
            "qos",
            Box::new(QosGuarantee::uniform(floor, 1.0).expect("valid uniform contract")),
        ),
        PolicyKind::Ucp | PolicyKind::MissRatio => {
            eprintln!(
                "  note: {} cannot follow a churning population; using the \
                 uniform qos contract",
                kind.label()
            );
            (
                "qos",
                Box::new(QosGuarantee::uniform(floor, 1.0).expect("valid uniform contract")),
            )
        }
    }
}

/// Runs the churn phase: tenants arrive and depart against a live
/// Vantage LLC while the allocation policy re-targets every epoch.
fn run_churn(opts: &Options, scale: Scale) -> ChurnOutcome {
    let seed = opts.seed;
    // Every live tenant is guaranteed 1/(4 * cap) of the cache.
    let floor = (scale.frames / (4 * scale.max_tenants)).max(1) as u64;
    let (policy_name, mut policy) = service_policy(opts.policy, floor);
    let mut llc = VantageLlc::try_new(
        Box::new(ZArray::new(scale.frames, 4, 16, seed)),
        1,
        VantageConfig::default(),
        seed,
    )
    .expect("valid Vantage config");
    if let Some(base) = &opts.telemetry {
        if let Some(t) = open_telemetry(base, "service") {
            llc.set_telemetry(t);
        }
    }
    // The construction-time slot belongs to no tenant; retire it so the
    // population starts empty (it drains instantly — nothing resident).
    llc.destroy_partition(PartitionId::from_index(0))
        .expect("fresh slot destroys cleanly");

    let mut gen = TenantChurn::try_new(TenantChurnConfig {
        max_tenants: scale.max_tenants,
        mean_lifetime: scale.events as f64 / 8.0,
        mean_interarrival: (scale.events as f64 / (6.0 * scale.max_tenants as f64)).max(1.0),
        footprint_lines: (scale.frames / 8) as u64,
        seed,
        ..TenantChurnConfig::default()
    })
    .expect("valid churn config");

    let mut slot_of: HashMap<u64, PartitionId> = HashMap::new();
    let mut ledger: HashMap<u64, TenantSla> = HashMap::new();
    let mut done: Vec<TenantSla> = Vec::new();
    let mut accesses = 0u64;
    let mut until_epoch = scale.epoch;
    let mut departures = 0u64;
    let mut peak_live = 0usize;
    let mut floor_violations = 0u64;
    let mut lifecycle_errors = 0u64;

    let t0 = Instant::now();
    for _ in 0..scale.events {
        match gen.next_event() {
            ChurnEvent::Arrive { tenant } => {
                match llc.create_partition(PartitionSpec::with_target(floor)) {
                    Ok(slot) => {
                        slot_of.insert(tenant, slot);
                        peak_live = peak_live.max(slot_of.len());
                        ledger.insert(
                            tenant,
                            TenantSla {
                                tenant,
                                slot,
                                arrived_at: gen.now(),
                                departed_at: None,
                                accesses: 0,
                                hits: 0,
                                epochs: 0,
                                min_target: u64::MAX,
                                floor_violations: 0,
                            },
                        );
                    }
                    Err(e) => {
                        lifecycle_errors += 1;
                        record_failure("service churn", format!("create_partition: {e}"));
                    }
                }
            }
            ChurnEvent::Depart { tenant } => {
                let slot = slot_of.remove(&tenant).expect("departing tenant is live");
                if let Err(e) = llc.destroy_partition(slot) {
                    lifecycle_errors += 1;
                    record_failure("service churn", format!("destroy_partition: {e}"));
                }
                departures += 1;
                let mut sla = ledger.remove(&tenant).expect("ledger covers live tenants");
                sla.departed_at = Some(gen.now());
                done.push(sla);
            }
            ChurnEvent::Access { tenant, addr } => {
                let slot = slot_of[&tenant];
                let out = llc.access(AccessRequest::read(slot, addr));
                let sla = ledger.get_mut(&tenant).expect("accessing tenant is live");
                sla.accesses += 1;
                sla.hits += u64::from(out.is_hit());
                accesses += 1;
                until_epoch -= 1;
                if until_epoch == 0 {
                    until_epoch = scale.epoch;
                    let capacity = llc.capacity() as u64;
                    let obs = llc.observations();
                    let input = PolicyInput {
                        capacity,
                        actual: &obs.actual,
                        hits: &obs.hits,
                        misses: &obs.misses,
                        churn: &obs.churn,
                        insertions: &obs.insertions,
                        shared_hits: &obs.shared_hits,
                        ownership_transfers: &obs.ownership_transfers,
                        live: &obs.live,
                        arrived: &obs.arrived,
                        departed: &obs.departed,
                    };
                    let targets = policy.reallocate(&input);
                    llc.set_targets(&targets);
                    for sla in ledger.values_mut() {
                        let t = targets.get(sla.slot.index()).copied().unwrap_or(0);
                        sla.epochs += 1;
                        sla.min_target = sla.min_target.min(t);
                        if t < floor {
                            sla.floor_violations += 1;
                            floor_violations += 1;
                        }
                    }
                }
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    done.extend(ledger.into_values());
    done.sort_by_key(|s| s.tenant);
    if let Some(mut t) = llc.take_telemetry() {
        t.flush();
        if let Some(e) = t.io_error() {
            record_failure("service telemetry", e);
        }
    }
    ChurnOutcome {
        events: scale.events,
        accesses,
        wall_s,
        tenants_admitted: gen.tenants_admitted(),
        departures,
        peak_live,
        policy_name,
        floor,
        floor_violations,
        lifecycle_errors,
        sla: done,
    }
}

/// The steady-state scale bench: 1024 live partitions, uniform tenant
/// traffic at 2x capacity pressure (the hot-path configuration the
/// BENCH gate gates).
fn bench_scale(opts: &Options, scale: Scale) -> (u64, f64, f64) {
    let seed = opts.seed;
    let f = scale.bench_frames;
    let mut llc = VantageLlc::try_new(
        Box::new(ZArray::new(f, 4, 16, seed)),
        SCALE_PARTITIONS,
        VantageConfig::default(),
        seed,
    )
    .expect("valid Vantage config");
    let even = vec![(f / SCALE_PARTITIONS) as u64; SCALE_PARTITIONS];
    llc.set_targets(&even);
    let ws = (2 * f / SCALE_PARTITIONS) as u64;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E7C);
    let mut drive = |n: u64| {
        for _ in 0..n {
            let p = (rng.gen::<u32>() as usize) % SCALE_PARTITIONS;
            let base = (p as u64 + 1) << 32;
            llc.access(AccessRequest::read(
                PartitionId::from_index(p),
                LineAddr(base + rng.gen_range(0..ws)),
            ));
        }
    };
    drive(scale.bench_warmup);
    let t0 = Instant::now();
    drive(scale.bench_timed);
    let wall_s = t0.elapsed().as_secs_f64();
    let rate = scale.bench_timed as f64 / wall_s.max(1e-9);
    (scale.bench_timed, wall_s, rate)
}

/// Renders the per-tenant SLA report rows.
fn sla_rows(out: &ChurnOutcome) -> Vec<String> {
    out.sla
        .iter()
        .map(|s| {
            let hit_rate = s.hits as f64 / s.accesses.max(1) as f64;
            let min_target = if s.min_target == u64::MAX {
                0
            } else {
                s.min_target
            };
            format!(
                "{},{},{},{},{},{},{:.4},{},{},{},{}",
                s.tenant,
                s.slot.index(),
                s.arrived_at,
                s.departed_at.map_or(-1i64, |d| d as i64),
                s.accesses,
                s.hits,
                hit_rate,
                s.epochs,
                min_target,
                out.floor,
                s.floor_violations
            )
        })
        .collect()
}

/// Renders one BENCH_service.json entry.
fn render_entry(opts: &Options, churn: &ChurnOutcome, bench: (u64, f64, f64)) -> String {
    let (accesses, wall_s, rate) = bench;
    let mut rec = BenchRecord::new(opts.quick, opts.seed);
    let s = rec.body_mut();
    let _ = writeln!(
        s,
        "    \"churn\": {{\"policy\": \"{}\", \"events\": {}, \"accesses\": {}, \
         \"wall_s\": {:.6}, \"events_per_sec\": {:.1}, \"tenants_admitted\": {}, \
         \"departures\": {}, \"peak_live\": {}, \"floor\": {}, \
         \"floor_violations\": {}, \"lifecycle_errors\": {}}},",
        churn.policy_name,
        churn.events,
        churn.accesses,
        churn.wall_s,
        churn.events as f64 / churn.wall_s.max(1e-9),
        churn.tenants_admitted,
        churn.departures,
        churn.peak_live,
        churn.floor,
        churn.floor_violations,
        churn.lifecycle_errors,
    );
    let _ = write!(
        s,
        "    \"scale_bench\": {{\"partitions\": {SCALE_PARTITIONS}, \"accesses\": {accesses}, \
         \"wall_s\": {wall_s:.6}, \"accesses_per_sec\": {rate:.1}, \
         \"min_rate\": {SCALE_MIN_RATE:.1}, \"enforced\": {}}}",
        opts.quick
    );
    rec.finish()
}

/// The `service` subcommand (see the [module docs](self)), writing the
/// trajectory to `BENCH_service.json` in the current directory.
pub fn service(opts: &Options) {
    service_to(opts, Path::new("BENCH_service.json"));
}

/// [`service`] writing the trajectory to an explicit path (test support).
pub fn service_to(opts: &Options, path: &Path) {
    let scale = Scale::from_options(opts);
    println!(
        "service: tenant churn ({} scale, policy {})",
        if opts.quick { "quick" } else { "full" },
        opts.policy.label()
    );
    let churn = run_churn(opts, scale);
    eprintln!(
        "  churn: {} events in {:.2}s ({:.0} ev/s), {} tenants admitted, \
         {} departed, peak {} live, {} floor violations, {} lifecycle errors",
        churn.events,
        churn.wall_s,
        churn.events as f64 / churn.wall_s.max(1e-9),
        churn.tenants_admitted,
        churn.departures,
        churn.peak_live,
        churn.floor_violations,
        churn.lifecycle_errors,
    );
    if churn.lifecycle_errors > 0 {
        // Already recorded per event; nothing to add.
    }
    if churn.floor_violations > 0 {
        record_failure(
            "service qos floors",
            format!(
                "{} epoch-tenant floor violations under the {} policy",
                churn.floor_violations, churn.policy_name
            ),
        );
    }
    write_csv(
        &opts.out_dir,
        "service_sla",
        "tenant,slot,arrived_at,departed_at,accesses,hits,hit_rate,epochs,min_target,floor,floor_violations",
        &sla_rows(&churn),
    );

    println!("service: {SCALE_PARTITIONS}-partition scale bench");
    let bench = bench_scale(opts, scale);
    let (_, _, rate) = bench;
    eprintln!(
        "  scale bench: {rate:>10.0} acc/s at {SCALE_PARTITIONS} live partitions \
         (min {SCALE_MIN_RATE:.0}, quick-enforced: {})",
        opts.quick
    );
    if opts.quick && rate < SCALE_MIN_RATE {
        record_failure(
            "service scale gate",
            format!(
                "{rate:.0} acc/s at {SCALE_PARTITIONS} partitions \
                 (min {SCALE_MIN_RATE:.0})"
            ),
        );
    }
    let entry = render_entry(opts, &churn, bench);
    match append_entry(path, &entry) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => record_failure(path.display().to_string(), e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            frames: 2 * 1024,
            events: 120_000,
            epoch: 5_000,
            max_tenants: 16,
            bench_frames: 8 * 1024,
            bench_warmup: 1_000,
            bench_timed: 2_000,
        }
    }

    #[test]
    fn churn_run_completes_cleanly_with_qos_floors() {
        let opts = Options {
            policy: PolicyKind::Qos,
            ..Options::default()
        };
        let out = run_churn(&opts, tiny_scale());
        assert_eq!(out.lifecycle_errors, 0, "lifecycle must be clean");
        assert_eq!(out.floor_violations, 0, "floors must hold");
        assert!(out.tenants_admitted > 4, "population churned");
        assert!(out.departures > 0, "tenants departed");
        assert!(!out.sla.is_empty());
        for s in &out.sla {
            if s.epochs > 0 {
                assert!(
                    s.min_target >= out.floor,
                    "tenant {} granted {} < floor {}",
                    s.tenant,
                    s.min_target,
                    out.floor
                );
            }
        }
    }

    #[test]
    fn clustered_policy_drives_the_churn_run_too() {
        let opts = Options {
            policy: PolicyKind::Clustered,
            ..Options::default()
        };
        let out = run_churn(&opts, tiny_scale());
        assert_eq!(out.lifecycle_errors, 0);
        assert_eq!(out.floor_violations, 0);
        assert_eq!(out.policy_name, "clustered");
    }

    #[test]
    fn scale_bench_reports_a_positive_rate() {
        let opts = Options::default();
        let (accesses, wall_s, rate) = bench_scale(&opts, tiny_scale());
        assert_eq!(accesses, 2_000);
        assert!(wall_s > 0.0);
        assert!(rate > 0.0);
    }
}
