//! Reproduction harness library for the Vantage paper.
//!
//! Each module regenerates one or more of the paper's tables/figures; the
//! `vantage-experiments` binary dispatches to them (see its `--help`).
//! The modules are exposed as a library so benchmarks and integration tests
//! can drive individual experiment kernels at reduced scale.

pub mod common;
pub mod fig_dynamics;
pub mod fig_model;
pub mod fig_sensitivity;
pub mod fig_throughput;
pub mod montecarlo;
pub mod perf;
pub mod perf_parallel;
pub mod run;
pub mod security;
pub mod service;
pub mod signal;
pub mod tables;
