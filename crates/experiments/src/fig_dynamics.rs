//! Fig. 8: target vs actual partition sizes over time, plus the empirical
//! associativity heat-map data, for way-partitioning, Vantage and PIPP.

use vantage_sim::{CmpSim, SchemeKind, SystemConfig};
use vantage_workloads::{spec_by_name, Category, Mix};

use crate::common::{open_telemetry, write_csv, Options};

/// Builds the paper-style 4-core mix used for the dynamics study: a phased
/// cache-friendly app (whose UCP target moves around), a cache-fitting app,
/// a streamer and an insensitive app.
pub fn fig8_mix() -> Mix {
    let apps = ["gcc_like", "soplex_like", "mcf_like", "perlbench_like"]
        .iter()
        .map(|n| spec_by_name(n).expect("catalog app"))
        .collect();
    Mix {
        name: "fig8".into(),
        class: [
            Category::Friendly,
            Category::Fitting,
            Category::Streaming,
            Category::Insensitive,
        ],
        apps,
    }
}

/// Runs the dynamics experiment. The tracked partition is core 0
/// (`gcc_like`), whose phase changes make UCP retarget it repeatedly.
pub fn fig8(opts: &Options) {
    println!("== Fig. 8: partition size tracking and associativity ==");
    let mut sys = opts.machine(SystemConfig::small_scale());
    sys.seed = opts.seed;
    sys.instructions = if opts.quick {
        1_000_000
    } else {
        opts.instructions_for(&sys)
    };
    let mix = fig8_mix();
    let tracked = 0usize;

    for kind in [
        SchemeKind::WayPart,
        SchemeKind::vantage_paper(),
        SchemeKind::Pipp,
    ] {
        let mut sim = CmpSim::new(sys.clone(), &kind, &mix);
        // The sim label carries any +policy suffix, keeping artifacts from
        // different allocation policies apart.
        let label = sim.label().to_string();
        let slug = label.replace(['/', '+'], "_").to_lowercase();
        sim.enable_trace(sys.repartition_interval / 5);
        sim.enable_priority_probe();
        if let Some(base) = &opts.telemetry {
            if let Some(t) = open_telemetry(base, &format!("fig8_{slug}")) {
                sim.set_telemetry(t);
            }
        }
        let r = sim.run();
        sim.take_telemetry();

        // Size-tracking series.
        let rows: Vec<String> = r
            .trace
            .iter()
            .map(|s| format!("{},{},{}", s.cycle, s.targets[tracked], s.actuals[tracked]))
            .collect();
        write_csv(
            &opts.out_dir,
            &format!("fig8_sizes_{slug}"),
            "cycle,target_lines,actual_lines",
            &rows,
        );

        // Tracking-error summary (the figure's visual takeaways). "Over"
        // counts enforcement violations — actual size beyond target, slack
        // and the MSS reserve; undershoot can be legitimate (demand-limited
        // partitions only fill what they touch).
        let mss = sys.l2_lines as f64 / (0.5 * 52.0);
        let mut over = 0usize;
        let mut err_sum = 0.0;
        let mut n = 0usize;
        for s in &r.trace {
            let t = s.targets[tracked] as f64;
            let a = s.actuals[tracked] as f64;
            if t > 0.0 {
                err_sum += (a - t).abs() / t;
                n += 1;
                if a > t * 1.15 + mss {
                    over += 1;
                }
            }
        }
        let over_pct = 100.0 * over as f64 / n.max(1) as f64;
        println!(
            "  {label:<16} mean |actual-target|/target = {:>6.1}%   enforcement violations: {over_pct:>5.1}% of samples",
            100.0 * err_sum / n.max(1) as f64
        );

        // Heat-map data: (access-time bucket, priority bucket) counts of
        // eviction/demotion priorities for the tracked partition.
        if !r.priority_samples.is_empty() {
            let buckets_t = 60usize;
            let buckets_p = 20usize;
            let max_access = r
                .priority_samples
                .iter()
                .map(|(a, _, _)| *a)
                .max()
                .unwrap_or(1)
                .max(1);
            let mut grid = vec![vec![0u32; buckets_p]; buckets_t];
            for (a, part, pri) in &r.priority_samples {
                if *part as usize != tracked {
                    continue;
                }
                let ti = ((a * buckets_t as u64 / (max_access + 1)) as usize).min(buckets_t - 1);
                let pi = ((f64::from(*pri) * buckets_p as f64) as usize).min(buckets_p - 1);
                grid[ti][pi] += 1;
            }
            let rows: Vec<String> = grid
                .iter()
                .enumerate()
                .map(|(t, row)| {
                    format!(
                        "{t},{}",
                        row.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
                    )
                })
                .collect();
            let header = format!(
                "time_bucket,{}",
                (0..buckets_p)
                    .map(|p| format!("p{:.2}", (p as f64 + 0.5) / buckets_p as f64))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            write_csv(&opts.out_dir, &format!("fig8_heat_{slug}"), &header, &rows);

            // Aggregate priority distribution summary.
            let pris: Vec<f64> = r
                .priority_samples
                .iter()
                .filter(|(_, p, _)| *p as usize == tracked)
                .map(|(_, _, pr)| f64::from(*pr))
                .collect();
            if !pris.is_empty() {
                let mean = pris.iter().sum::<f64>() / pris.len() as f64;
                let below_half =
                    pris.iter().filter(|&&p| p < 0.5).count() as f64 / pris.len() as f64;
                println!(
                    "  {label:<16} demotion/eviction priorities: mean {mean:.3}, {:.1}% below 0.5",
                    100.0 * below_half
                );
            }
        }
    }
    println!(
        "  paper shape: WayPart and Vantage track targets (WayPart drains slowly on\n  \
         downsizes; Vantage never exceeds its bound); PIPP only approximates them.\n  \
         Vantage's demotion priorities sit near 1.0; 1-way WayPart partitions evict\n  \
         near-uniformly. (Undershoot can be legitimate demand-limiting.)"
    );
}
