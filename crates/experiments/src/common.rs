//! Shared experiment infrastructure: options, CSV output, the
//! multi-scheme comparison runner and summary statistics.
//!
//! # Failure handling
//!
//! Experiment runs are *keep-going*: a mix that panics inside the simulator
//! or a CSV file that cannot be written is recorded in a process-wide
//! failure registry (see [`record_failure`]/[`take_failures`]) instead of
//! aborting the run. The `vantage-experiments` binary drains the registry
//! after the last command, prints a failure summary, and only then exits
//! nonzero — so one bad mix cannot take down an `all` sweep.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use vantage_cache::ShareMode;
use vantage_sim::{CmpSim, PolicyKind, SchemeKind, SimResult, SystemConfig};
use vantage_telemetry::{CsvSink, JsonSink, Telemetry, TelemetrySink};
use vantage_workloads::Mix;

/// A malformed command line: carries the message shown above the usage
/// block (typed, so argument errors never panic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

/// The options accepted by every experiment command.
pub const USAGE: &str = "options:
  --mixes N    mixes generated per workload class (default 1; paper 10)
  --instr N    per-core instruction quota override
  --out DIR    output directory for CSV artifacts (default results/)
  --seed N     master seed (default 42)
  --jobs N     worker threads for mix-level parallelism
  --banks N    shard each simulated LLC across N address-interleaved banks
  --bank-jobs M  worker threads serving banked batches (<= 1 is serial)
  --engine E   execution engine for banked machines: serial, batched
               (default), or pipelined (per-bank ring buffers, bank-major
               drains, epoch barriers)
  --quick      drastically reduced scale for smoke runs
  --policy P   allocation policy driving partition targets on UCP-managed
               schemes: ucp (default), equal, missratio, qos, clustered
  --share-mode M  how the LLC resolves cross-partition sharing: adopt
                  (default; re-tag to the accessor), replicate (duplicate
                  shared lines per partition), or pin (lines keep their
                  first owner)
  --telemetry P  record per-partition dynamics traces; P is a base path whose
                 extension picks the format (.csv, else JSON Lines) and each
                 simulated cache writes to a tagged sibling of P
  --checkpoint PATH  (run) periodically auto-checkpoint simulation state to
                     PATH, atomically
  --resume PATH      (run) restore simulation state from PATH before running
  --fork-sweep       (run) fork one warmed state into every --policy variant
  --stop-after N     (run) pause at the first chunk boundary at or past step
                     N, checkpoint, and exit";

/// Command-line options shared by all experiments.
#[derive(Clone, Debug)]
pub struct Options {
    /// Mixes generated per workload class (paper: 10).
    pub mixes_per_class: usize,
    /// Instruction quota per core (paper: 200M; scaled default).
    pub instructions: Option<u64>,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Quick mode: drastically reduced scale for smoke runs.
    pub quick: bool,
    /// Worker threads for mix-level parallelism (default: available cores).
    pub jobs: usize,
    /// Banks each simulated LLC is sharded across (default 1 = unbanked).
    pub banks: usize,
    /// Worker threads serving banked batches (default 1 = serial).
    pub bank_jobs: usize,
    /// Execution engine for banked machines (see
    /// [`SystemConfig::engine`]).
    pub engine: vantage::EngineKind,
    /// Allocation policy driving partition targets on UCP-managed schemes.
    pub policy: PolicyKind,
    /// How the LLC resolves cross-partition sharing (the ownership layer's
    /// knob; see [`ShareMode`](vantage_cache::ShareMode)).
    pub share_mode: ShareMode,
    /// Base path for telemetry traces (`None` = telemetry off). Each
    /// simulated cache writes to a sibling of this path tagged with the mix
    /// and scheme; a `.csv` extension selects CSV, anything else JSON Lines.
    pub telemetry: Option<PathBuf>,
    /// `run`: auto-checkpoint simulation state here at epoch boundaries.
    pub checkpoint: Option<PathBuf>,
    /// `run`: restore simulation state from this checkpoint before running.
    pub resume: Option<PathBuf>,
    /// `run`: fork one warmed state into every allocation-policy variant.
    pub fork_sweep: bool,
    /// `run`: pause at the first epoch boundary at or past this step count.
    pub stop_after: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            mixes_per_class: 1,
            instructions: None,
            out_dir: PathBuf::from("results"),
            seed: 42,
            quick: false,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            banks: 1,
            bank_jobs: 1,
            engine: vantage::EngineKind::default(),
            policy: PolicyKind::default(),
            share_mode: ShareMode::default(),
            telemetry: None,
            checkpoint: None,
            resume: None,
            fork_sweep: false,
            stop_after: None,
        }
    }
}

impl Options {
    /// Parses `--mixes N --instr N --out DIR --seed N --quick` style
    /// arguments. A typo'd flag or a malformed value yields a typed
    /// [`UsageError`] (never a panic) so the CLI can print a clean usage
    /// message and exit with status 2.
    pub fn try_parse(args: &[String]) -> Result<Self, UsageError> {
        let mut o = Self::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| UsageError(format!("missing value after {a}")))
            };
            fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, UsageError> {
                v.parse()
                    .map_err(|_| UsageError(format!("{flag} expects a number, got '{v}'")))
            }
            match a.as_str() {
                "--mixes" => o.mixes_per_class = num(a, take()?)?,
                "--instr" => o.instructions = Some(num(a, take()?)?),
                "--out" => o.out_dir = PathBuf::from(take()?),
                "--seed" => o.seed = num(a, take()?)?,
                "--jobs" => o.jobs = num::<usize>(a, take()?)?.max(1),
                "--banks" => o.banks = num::<usize>(a, take()?)?.max(1),
                "--bank-jobs" => o.bank_jobs = num::<usize>(a, take()?)?.max(1),
                "--engine" => {
                    let v = take()?;
                    o.engine = vantage::EngineKind::parse(&v).ok_or_else(|| {
                        UsageError(format!(
                            "--engine expects serial, batched or pipelined, got '{v}'"
                        ))
                    })?;
                }
                "--quick" => o.quick = true,
                "--policy" => {
                    let v = take()?;
                    o.policy = PolicyKind::parse(&v).ok_or_else(|| {
                        UsageError(format!(
                            "--policy expects ucp, equal, missratio, qos or clustered, got '{v}'"
                        ))
                    })?;
                }
                "--share-mode" => {
                    let v = take()?;
                    o.share_mode = ShareMode::parse(&v).ok_or_else(|| {
                        UsageError(format!(
                            "--share-mode expects adopt, replicate or pin, got '{v}'"
                        ))
                    })?;
                }
                "--telemetry" => o.telemetry = Some(PathBuf::from(take()?)),
                "--checkpoint" => o.checkpoint = Some(PathBuf::from(take()?)),
                "--resume" => o.resume = Some(PathBuf::from(take()?)),
                "--fork-sweep" => o.fork_sweep = true,
                "--stop-after" => o.stop_after = Some(num(a, take()?)?),
                other => return Err(UsageError(format!("unknown option: {other}"))),
            }
        }
        Ok(o)
    }

    /// [`Options::try_parse`], panicking on malformed arguments. Kept for
    /// API compatibility with callers that treat arguments as trusted
    /// (tests, scripts); the CLI itself uses `try_parse`.
    ///
    /// # Panics
    ///
    /// Panics on unknown flags or malformed values.
    pub fn parse(args: &[String]) -> Self {
        match Self::try_parse(args) {
            Ok(o) => o,
            Err(e) => panic!("{e}"),
        }
    }

    /// Applies the machine-shape flags (`--banks`, `--bank-jobs`,
    /// `--engine`) to a base machine and returns it; every experiment
    /// builds its [`SystemConfig`] through this so bank sharding and
    /// engine selection reach all commands uniformly.
    pub fn machine(&self, mut sys: SystemConfig) -> SystemConfig {
        sys.banks = self.banks;
        sys.bank_jobs = self.bank_jobs;
        sys.engine = self.engine;
        sys.policy = self.policy;
        sys.share_mode = self.share_mode;
        sys
    }

    /// The per-core instruction quota for a machine, honoring overrides and
    /// quick mode.
    pub fn instructions_for(&self, sys: &SystemConfig) -> u64 {
        if let Some(i) = self.instructions {
            return i;
        }
        if self.quick {
            sys.instructions / 20
        } else {
            sys.instructions
        }
    }
}

/// One recorded failure from a keep-going run: which unit failed and why.
#[derive(Clone, Debug)]
pub struct RunFailure {
    /// What failed (a mix name or an artifact path).
    pub what: String,
    /// The panic message or I/O error.
    pub why: String,
}

static FAILURES: Mutex<Vec<RunFailure>> = Mutex::new(Vec::new());

/// Records a failure in the process-wide registry (keep-going semantics).
pub fn record_failure(what: impl Into<String>, why: impl Into<String>) {
    let f = RunFailure {
        what: what.into(),
        why: why.into(),
    };
    eprintln!("  FAILED {}: {}", f.what, f.why);
    // The mutex is only poisoned if a panic escapes this module while the
    // lock is held, which the two-line critical section cannot do.
    match FAILURES.lock() {
        Ok(mut v) => v.push(f),
        Err(poisoned) => poisoned.into_inner().push(f),
    }
}

/// Drains every failure recorded so far (the CLI calls this once, at the
/// very end, to print the summary and pick the exit status).
pub fn take_failures() -> Vec<RunFailure> {
    match FAILURES.lock() {
        Ok(mut v) => std::mem::take(&mut *v),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    }
}

/// Writes CSV rows (first row = header) to `<out_dir>/<name>.csv`,
/// atomically: content goes to `<name>.csv.tmp` first and is renamed into
/// place only once fully flushed, so an interrupted run never leaves a
/// truncated artifact behind.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn try_write_csv(
    dir: &Path,
    name: &str,
    header: &str,
    rows: &[String],
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let tmp = dir.join(format!("{name}.csv.tmp"));
    let mut f = fs::File::create(&tmp)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// [`try_write_csv`] with keep-going error handling: an I/O failure is
/// recorded in the failure registry and `None` is returned, so figure code
/// keeps producing its remaining artifacts.
pub fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) -> Option<PathBuf> {
    match try_write_csv(dir, name, header, rows) {
        Ok(path) => {
            println!("  wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            record_failure(
                dir.join(format!("{name}.csv")).display().to_string(),
                e.to_string(),
            );
            None
        }
    }
}

/// Reduces a scheme/mix label to a filesystem-safe tag fragment.
pub fn slugify(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Derives the trace path for one simulated cache from the `--telemetry`
/// base path: `out.json` + tag `fig8_vantage` -> `out_fig8_vantage.json`.
pub fn telemetry_trace_path(base: &Path, tag: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .map_or_else(|| "telemetry".to_string(), |s| s.to_string_lossy().into());
    let ext = base
        .extension()
        .map_or_else(|| "json".to_string(), |e| e.to_string_lossy().into());
    base.with_file_name(format!("{stem}_{tag}.{ext}"))
}

/// Opens a telemetry producer writing to the tagged sibling of `base`
/// (see [`telemetry_trace_path`]); the extension picks the sink format
/// (`.csv` = CSV, anything else = JSON Lines). An unopenable path is
/// recorded in the failure registry and yields `None` (keep-going).
pub fn open_telemetry(base: &Path, tag: &str) -> Option<Telemetry> {
    let path = telemetry_trace_path(base, &slugify(tag));
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = fs::create_dir_all(dir) {
            record_failure(path.display().to_string(), e.to_string());
            return None;
        }
    }
    let csv = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
    let sink: Box<dyn TelemetrySink> = if csv {
        match CsvSink::create(&path) {
            Ok(s) => Box::new(s),
            Err(e) => {
                record_failure(path.display().to_string(), e.to_string());
                return None;
            }
        }
    } else {
        match JsonSink::create(&path) {
            Ok(s) => Box::new(s),
            Err(e) => {
                record_failure(path.display().to_string(), e.to_string());
                return None;
            }
        }
    };
    println!("  telemetry -> {}", path.display());
    Some(Telemetry::new(sink, 0))
}

/// Installs a per-cache telemetry trace on `sim` when a base path is set.
/// The tag carries the sim's full label (scheme plus any `+policy` suffix)
/// so traces from different allocation policies never collide.
pub(crate) fn install_telemetry(sim: &mut CmpSim, base: Option<&Path>, mix: &Mix) {
    let Some(base) = base else { return };
    let tag = format!("{}_{}", mix.name, sim.label());
    if let Some(t) = open_telemetry(base, &tag) {
        sim.set_telemetry(t);
    }
}

/// Retires a sim's telemetry producer: flush, then surface any absorbed
/// I/O error in the failure registry — a trace that lost data must not
/// pass silently.
pub(crate) fn retire_telemetry(sim: &mut CmpSim, mix: &Mix) {
    if let Some(mut t) = sim.take_telemetry() {
        t.flush();
        if let Some(e) = t.io_error() {
            record_failure(format!("telemetry for {} ({})", mix.name, sim.label()), e);
        }
    }
}

/// Result of running one mix under a baseline and several schemes.
#[derive(Clone, Debug)]
pub struct MixOutcome {
    /// The mix's name (e.g. `ffnn3`).
    pub mix: String,
    /// Baseline aggregate throughput.
    pub base_throughput: f64,
    /// Per scheme (same order as the scheme list): absolute throughput.
    pub throughput: Vec<f64>,
    /// Per scheme: managed-eviction fraction where applicable.
    pub managed_fraction: Vec<Option<f64>>,
}

impl MixOutcome {
    /// Normalized throughput of scheme `s` versus the baseline.
    pub fn normalized(&self, s: usize) -> f64 {
        self.throughput[s] / self.base_throughput
    }
}

/// Runs one mix under the baseline and each scheme.
fn run_one(
    sys: &SystemConfig,
    baseline: &SchemeKind,
    schemes: &[SchemeKind],
    mix: &Mix,
    telemetry: Option<&Path>,
) -> MixOutcome {
    let mut base_sim = CmpSim::new(sys.clone(), baseline, mix);
    install_telemetry(&mut base_sim, telemetry, mix);
    let base = base_sim.run();
    retire_telemetry(&mut base_sim, mix);
    let mut tp = Vec::with_capacity(schemes.len());
    let mut mf = Vec::with_capacity(schemes.len());
    for kind in schemes {
        let mut sim = CmpSim::new(sys.clone(), kind, mix);
        install_telemetry(&mut sim, telemetry, mix);
        let r: SimResult = sim.run();
        retire_telemetry(&mut sim, mix);
        tp.push(r.throughput);
        mf.push(r.managed_eviction_fraction);
    }
    MixOutcome {
        mix: mix.name.clone(),
        base_throughput: base.throughput,
        throughput: tp,
        managed_fraction: mf,
    }
}

/// Renders a panic payload as a printable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// [`run_one`] with the panic isolated: a mix whose simulation panics
/// becomes an `Err` carrying the panic message instead of unwinding into
/// the worker pool.
fn run_one_isolated(
    sys: &SystemConfig,
    baseline: &SchemeKind,
    schemes: &[SchemeKind],
    mix: &Mix,
    telemetry: Option<&Path>,
) -> Result<MixOutcome, RunFailure> {
    catch_unwind(AssertUnwindSafe(|| {
        run_one(sys, baseline, schemes, mix, telemetry)
    }))
    .map_err(|p| RunFailure {
        what: mix.name.clone(),
        why: panic_message(p.as_ref()),
    })
}

/// Runs every mix under the baseline and each scheme. Mixes are processed
/// in parallel across `jobs` workers (simulations are independent and
/// internally deterministic, so results do not depend on scheduling);
/// output order matches the input order.
///
/// A mix whose simulation panics is caught, recorded in the failure
/// registry and dropped from the output — one poisoned mix no longer kills
/// a whole sweep (`--keep-going` semantics; the CLI exits nonzero at the
/// very end if anything failed).
///
/// On SIGINT/SIGTERM (see [`crate::signal`]) no new mixes are started:
/// in-flight simulations finish, their outcomes are kept, and the partial
/// result set flows into whatever CSV artifacts the caller writes.
pub fn run_comparison_jobs(
    sys: &SystemConfig,
    baseline: &SchemeKind,
    schemes: &[SchemeKind],
    mixes: &[Mix],
    progress: bool,
    jobs: usize,
    telemetry: Option<&Path>,
) -> Vec<MixOutcome> {
    let jobs = jobs.max(1).min(mixes.len().max(1));
    let results: Vec<Result<MixOutcome, RunFailure>> = if jobs <= 1 {
        let mut v = Vec::with_capacity(mixes.len());
        for (i, mix) in mixes.iter().enumerate() {
            if let Some(signo) = crate::signal::pending() {
                eprintln!(
                    "  signal {signo}: stopping sweep after {i}/{} mixes",
                    mixes.len()
                );
                break;
            }
            if progress && (i % 10 == 0 || i + 1 == mixes.len()) {
                eprintln!("  [{}/{}] {}", i + 1, mixes.len(), mix.name);
            }
            v.push(run_one_isolated(sys, baseline, schemes, mix, telemetry));
        }
        v
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<MixOutcome, RunFailure>>>> =
            (0..mixes.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    if crate::signal::pending().is_some() {
                        // Wind down: in-flight mixes (other workers)
                        // finish, no new ones start.
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= mixes.len() {
                        break;
                    }
                    let outcome = run_one_isolated(sys, baseline, schemes, &mixes[i], telemetry);
                    // Workers cannot poison the slot: the fallible part ran
                    // under catch_unwind above.
                    match slots[i].lock() {
                        Ok(mut s) => *s = Some(outcome),
                        Err(poisoned) => *poisoned.into_inner() = Some(outcome),
                    }
                    let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress && (d.is_multiple_of(10) || d == mixes.len()) {
                        eprintln!("  [{d}/{}]", mixes.len());
                    }
                });
            }
        });
        if let Some(signo) = crate::signal::pending() {
            eprintln!("  signal {signo}: sweep stopped early; keeping finished mixes");
        }
        // Slots left `None` belong to mixes never started (signal wind-down).
        slots
            .into_iter()
            .filter_map(|s| {
                s.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect()
    };
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(o) => out.push(o),
            Err(f) => record_failure(format!("mix {}", f.what), f.why),
        }
    }
    out
}

/// [`run_comparison_jobs`] with single-threaded execution (used by callers
/// without an [`Options`] at hand).
pub fn run_comparison(
    sys: &SystemConfig,
    baseline: &SchemeKind,
    schemes: &[SchemeKind],
    mixes: &[Mix],
    progress: bool,
) -> Vec<MixOutcome> {
    run_comparison_jobs(sys, baseline, schemes, mixes, progress, 1, None)
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut logsum, mut n) = (0.0, 0u64);
    for v in values {
        logsum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (logsum / n as f64).exp()
    }
}

/// Per-scheme summary over a comparison (the numbers the paper's prose
/// quotes for Figs. 6a and 7).
#[derive(Clone, Debug)]
pub struct SchemeSummary {
    /// Scheme label.
    pub label: String,
    /// Geometric-mean normalized throughput.
    pub geomean: f64,
    /// Fraction of workloads with normalized throughput > 1.
    pub improved: f64,
    /// Best normalized throughput.
    pub best: f64,
    /// Worst normalized throughput.
    pub worst: f64,
}

/// Summarizes one scheme column of a comparison.
pub fn summarize(label: &str, outcomes: &[MixOutcome], s: usize) -> SchemeSummary {
    let norm: Vec<f64> = outcomes.iter().map(|o| o.normalized(s)).collect();
    SchemeSummary {
        label: label.to_string(),
        geomean: geomean(norm.iter().copied()),
        improved: norm.iter().filter(|&&x| x > 1.0).count() as f64 / norm.len().max(1) as f64,
        best: norm.iter().copied().fold(f64::MIN, f64::max),
        worst: norm.iter().copied().fold(f64::MAX, f64::min),
    }
}

/// Prints the standard summary block for a set of scheme summaries.
pub fn print_summaries(title: &str, summaries: &[SchemeSummary]) {
    println!("\n{title}");
    println!(
        "  {:<24} {:>9} {:>10} {:>8} {:>8}",
        "scheme", "geomean", "%improved", "best", "worst"
    );
    for s in summaries {
        println!(
            "  {:<24} {:>8.3}x {:>9.1}% {:>7.3}x {:>7.3}x",
            s.label,
            s.geomean,
            s.improved * 100.0,
            s.best,
            s.worst
        );
    }
}

/// Emits the sorted normalized-throughput curves (what Fig. 6a / Fig. 7
/// plot) as CSV rows: `rank,<scheme1>,<scheme2>,...` with each scheme's
/// column independently sorted ascending, as in the paper.
pub fn sorted_curves_csv(outcomes: &[MixOutcome], schemes: &[String]) -> (String, Vec<String>) {
    let mut columns: Vec<Vec<f64>> = (0..schemes.len())
        .map(|s| {
            let mut v: Vec<f64> = outcomes.iter().map(|o| o.normalized(s)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v
        })
        .collect();
    let header = format!("rank,{}", schemes.join(","));
    let rows = (0..outcomes.len())
        .map(|i| {
            let vals: Vec<String> = columns.iter_mut().map(|c| format!("{:.5}", c[i])).collect();
            format!("{},{}", i, vals.join(","))
        })
        .collect();
    (header, rows)
}

/// Renders a compact textual histogram of normalized values (a terminal
/// stand-in for the paper's curves).
pub fn ascii_distribution(label: &str, values: &[f64]) {
    if values.is_empty() {
        return;
    }
    let buckets = [
        (0.0, 0.9, "<0.90"),
        (0.9, 0.97, "0.90-0.97"),
        (0.97, 1.0, "0.97-1.00"),
        (1.0, 1.03, "1.00-1.03"),
        (1.03, 1.10, "1.03-1.10"),
        (1.10, f64::INFINITY, ">1.10"),
    ];
    print!("  {label:<24}");
    for (lo, hi, name) in buckets {
        let n = values.iter().filter(|&&v| v >= lo && v < hi).count();
        let pct = 100.0 * n as f64 / values.len() as f64;
        print!(" {name}:{pct:>4.0}%");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn options_parse_roundtrip() {
        let args: Vec<String> = [
            "--mixes",
            "3",
            "--instr",
            "500000",
            "--seed",
            "9",
            "--quick",
            "--policy",
            "missratio",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = Options::parse(&args);
        assert_eq!(o.mixes_per_class, 3);
        assert_eq!(o.instructions, Some(500_000));
        assert_eq!(o.seed, 9);
        assert!(o.quick);
        assert_eq!(o.policy, PolicyKind::MissRatio);
    }

    #[test]
    fn policy_flag_reaches_the_machine() {
        let o = Options::parse(&["--policy".to_string(), "qos".to_string()]);
        let sys = o.machine(SystemConfig::small_scale());
        assert_eq!(sys.policy, PolicyKind::Qos);
        let err = Options::try_parse(&["--policy".to_string(), "bogus".to_string()])
            .expect_err("bad policy rejected");
        assert!(err.0.contains("--policy"));
    }

    #[test]
    #[should_panic(expected = "unknown option")]
    fn unknown_option_rejected() {
        Options::parse(&["--bogus".to_string()]);
    }

    #[test]
    fn summaries_and_curves() {
        let outcomes = vec![
            MixOutcome {
                mix: "a".into(),
                base_throughput: 1.0,
                throughput: vec![1.1, 0.9],
                managed_fraction: vec![None, None],
            },
            MixOutcome {
                mix: "b".into(),
                base_throughput: 2.0,
                throughput: vec![2.4, 1.8],
                managed_fraction: vec![None, None],
            },
        ];
        let s = summarize("x", &outcomes, 0);
        assert!((s.geomean - (1.1f64 * 1.2).sqrt()).abs() < 1e-9);
        assert_eq!(s.improved, 1.0);
        let (header, rows) = sorted_curves_csv(&outcomes, &["x".into(), "y".into()]);
        assert_eq!(header, "rank,x,y");
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("0,1.10000,0.90000"));
    }
}
