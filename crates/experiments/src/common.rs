//! Shared experiment infrastructure: options, CSV output, the
//! multi-scheme comparison runner and summary statistics.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use vantage_sim::{CmpSim, SchemeKind, SimResult, SystemConfig};
use vantage_workloads::Mix;

/// Command-line options shared by all experiments.
#[derive(Clone, Debug)]
pub struct Options {
    /// Mixes generated per workload class (paper: 10).
    pub mixes_per_class: usize,
    /// Instruction quota per core (paper: 200M; scaled default).
    pub instructions: Option<u64>,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Quick mode: drastically reduced scale for smoke runs.
    pub quick: bool,
    /// Worker threads for mix-level parallelism (default: available cores).
    pub jobs: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            mixes_per_class: 1,
            instructions: None,
            out_dir: PathBuf::from("results"),
            seed: 42,
            quick: false,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

impl Options {
    /// Parses `--mixes N --instr N --out DIR --seed N --quick` style
    /// arguments (unknown arguments abort with a message).
    pub fn parse(args: &[String]) -> Self {
        let mut o = Self::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = || {
                it.next().unwrap_or_else(|| panic!("missing value after {a}")).clone()
            };
            match a.as_str() {
                "--mixes" => o.mixes_per_class = take().parse().expect("--mixes N"),
                "--instr" => o.instructions = Some(take().parse().expect("--instr N")),
                "--out" => o.out_dir = PathBuf::from(take()),
                "--seed" => o.seed = take().parse().expect("--seed N"),
                "--jobs" => o.jobs = take().parse::<usize>().expect("--jobs N").max(1),
                "--quick" => o.quick = true,
                other => panic!("unknown option: {other}"),
            }
        }
        o
    }

    /// The per-core instruction quota for a machine, honoring overrides and
    /// quick mode.
    pub fn instructions_for(&self, sys: &SystemConfig) -> u64 {
        if let Some(i) = self.instructions {
            return i;
        }
        if self.quick {
            sys.instructions / 20
        } else {
            sys.instructions
        }
    }
}

/// Writes CSV rows (first row = header) to `<out_dir>/<name>.csv`.
pub fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) -> PathBuf {
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    println!("  wrote {}", path.display());
    path
}

/// Result of running one mix under a baseline and several schemes.
#[derive(Clone, Debug)]
pub struct MixOutcome {
    /// The mix's name (e.g. `ffnn3`).
    pub mix: String,
    /// Baseline aggregate throughput.
    pub base_throughput: f64,
    /// Per scheme (same order as the scheme list): absolute throughput.
    pub throughput: Vec<f64>,
    /// Per scheme: managed-eviction fraction where applicable.
    pub managed_fraction: Vec<Option<f64>>,
}

impl MixOutcome {
    /// Normalized throughput of scheme `s` versus the baseline.
    pub fn normalized(&self, s: usize) -> f64 {
        self.throughput[s] / self.base_throughput
    }
}

/// Runs one mix under the baseline and each scheme.
fn run_one(
    sys: &SystemConfig,
    baseline: &SchemeKind,
    schemes: &[SchemeKind],
    mix: &Mix,
) -> MixOutcome {
    let base = CmpSim::new(sys.clone(), baseline, mix).run();
    let mut tp = Vec::with_capacity(schemes.len());
    let mut mf = Vec::with_capacity(schemes.len());
    for kind in schemes {
        let r: SimResult = CmpSim::new(sys.clone(), kind, mix).run();
        tp.push(r.throughput);
        mf.push(r.managed_eviction_fraction);
    }
    MixOutcome {
        mix: mix.name.clone(),
        base_throughput: base.throughput,
        throughput: tp,
        managed_fraction: mf,
    }
}

/// Runs every mix under the baseline and each scheme. Mixes are processed
/// in parallel across `jobs` workers (simulations are independent and
/// internally deterministic, so results do not depend on scheduling);
/// output order matches the input order.
pub fn run_comparison_jobs(
    sys: &SystemConfig,
    baseline: &SchemeKind,
    schemes: &[SchemeKind],
    mixes: &[Mix],
    progress: bool,
    jobs: usize,
) -> Vec<MixOutcome> {
    let jobs = jobs.max(1).min(mixes.len().max(1));
    if jobs <= 1 {
        let mut out = Vec::with_capacity(mixes.len());
        for (i, mix) in mixes.iter().enumerate() {
            if progress && (i % 10 == 0 || i + 1 == mixes.len()) {
                eprintln!("  [{}/{}] {}", i + 1, mixes.len(), mix.name);
            }
            out.push(run_one(sys, baseline, schemes, mix));
        }
        return out;
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<MixOutcome>>> =
        (0..mixes.len()).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= mixes.len() {
                    break;
                }
                let outcome = run_one(sys, baseline, schemes, &mixes[i]);
                *slots[i].lock().expect("poisoned slot") = Some(outcome);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if progress && (d % 10 == 0 || d == mixes.len()) {
                    eprintln!("  [{d}/{}]", mixes.len());
                }
            });
        }
    })
    .expect("worker panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("poisoned slot").expect("all slots filled"))
        .collect()
}

/// [`run_comparison_jobs`] with single-threaded execution (used by callers
/// without an [`Options`] at hand).
pub fn run_comparison(
    sys: &SystemConfig,
    baseline: &SchemeKind,
    schemes: &[SchemeKind],
    mixes: &[Mix],
    progress: bool,
) -> Vec<MixOutcome> {
    run_comparison_jobs(sys, baseline, schemes, mixes, progress, 1)
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut logsum, mut n) = (0.0, 0u64);
    for v in values {
        logsum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (logsum / n as f64).exp()
    }
}

/// Per-scheme summary over a comparison (the numbers the paper's prose
/// quotes for Figs. 6a and 7).
#[derive(Clone, Debug)]
pub struct SchemeSummary {
    /// Scheme label.
    pub label: String,
    /// Geometric-mean normalized throughput.
    pub geomean: f64,
    /// Fraction of workloads with normalized throughput > 1.
    pub improved: f64,
    /// Best normalized throughput.
    pub best: f64,
    /// Worst normalized throughput.
    pub worst: f64,
}

/// Summarizes one scheme column of a comparison.
pub fn summarize(label: &str, outcomes: &[MixOutcome], s: usize) -> SchemeSummary {
    let norm: Vec<f64> = outcomes.iter().map(|o| o.normalized(s)).collect();
    SchemeSummary {
        label: label.to_string(),
        geomean: geomean(norm.iter().copied()),
        improved: norm.iter().filter(|&&x| x > 1.0).count() as f64 / norm.len().max(1) as f64,
        best: norm.iter().copied().fold(f64::MIN, f64::max),
        worst: norm.iter().copied().fold(f64::MAX, f64::min),
    }
}

/// Prints the standard summary block for a set of scheme summaries.
pub fn print_summaries(title: &str, summaries: &[SchemeSummary]) {
    println!("\n{title}");
    println!(
        "  {:<24} {:>9} {:>10} {:>8} {:>8}",
        "scheme", "geomean", "%improved", "best", "worst"
    );
    for s in summaries {
        println!(
            "  {:<24} {:>8.3}x {:>9.1}% {:>7.3}x {:>7.3}x",
            s.label,
            s.geomean,
            s.improved * 100.0,
            s.best,
            s.worst
        );
    }
}

/// Emits the sorted normalized-throughput curves (what Fig. 6a / Fig. 7
/// plot) as CSV rows: `rank,<scheme1>,<scheme2>,...` with each scheme's
/// column independently sorted ascending, as in the paper.
pub fn sorted_curves_csv(outcomes: &[MixOutcome], schemes: &[String]) -> (String, Vec<String>) {
    let mut columns: Vec<Vec<f64>> = (0..schemes.len())
        .map(|s| {
            let mut v: Vec<f64> = outcomes.iter().map(|o| o.normalized(s)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v
        })
        .collect();
    let header = format!("rank,{}", schemes.join(","));
    let rows = (0..outcomes.len())
        .map(|i| {
            let vals: Vec<String> =
                columns.iter_mut().map(|c| format!("{:.5}", c[i])).collect();
            format!("{},{}", i, vals.join(","))
        })
        .collect();
    (header, rows)
}

/// Renders a compact textual histogram of normalized values (a terminal
/// stand-in for the paper's curves).
pub fn ascii_distribution(label: &str, values: &[f64]) {
    if values.is_empty() {
        return;
    }
    let buckets = [
        (0.0, 0.9, "<0.90"),
        (0.9, 0.97, "0.90-0.97"),
        (0.97, 1.0, "0.97-1.00"),
        (1.0, 1.03, "1.00-1.03"),
        (1.03, 1.10, "1.03-1.10"),
        (1.10, f64::INFINITY, ">1.10"),
    ];
    print!("  {label:<24}");
    for (lo, hi, name) in buckets {
        let n = values.iter().filter(|&&v| v >= lo && v < hi).count();
        let pct = 100.0 * n as f64 / values.len() as f64;
        print!(" {name}:{pct:>4.0}%");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn options_parse_roundtrip() {
        let args: Vec<String> =
            ["--mixes", "3", "--instr", "500000", "--seed", "9", "--quick"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let o = Options::parse(&args);
        assert_eq!(o.mixes_per_class, 3);
        assert_eq!(o.instructions, Some(500_000));
        assert_eq!(o.seed, 9);
        assert!(o.quick);
    }

    #[test]
    #[should_panic(expected = "unknown option")]
    fn unknown_option_rejected() {
        Options::parse(&["--bogus".to_string()]);
    }

    #[test]
    fn summaries_and_curves() {
        let outcomes = vec![
            MixOutcome {
                mix: "a".into(),
                base_throughput: 1.0,
                throughput: vec![1.1, 0.9],
                managed_fraction: vec![None, None],
            },
            MixOutcome {
                mix: "b".into(),
                base_throughput: 2.0,
                throughput: vec![2.4, 1.8],
                managed_fraction: vec![None, None],
            },
        ];
        let s = summarize("x", &outcomes, 0);
        assert!((s.geomean - (1.1f64 * 1.2).sqrt()).abs() < 1e-9);
        assert_eq!(s.improved, 1.0);
        let (header, rows) = sorted_curves_csv(&outcomes, &["x".into(), "y".into()]);
        assert_eq!(header, "rank,x,y");
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("0,1.10000,0.90000"));
    }
}
