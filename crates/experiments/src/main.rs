//! Reproduction harness for the Vantage paper: one subcommand per figure
//! and table of the evaluation, plus `all`.
//!
//! ```text
//! vantage-experiments <command> [--mixes N] [--instr N] [--out DIR] [--seed N] [--quick]
//!                               [--telemetry PATH]
//!
//! commands:
//!   fig1 fig2 fig3 fig5        model figures (analytical + Monte Carlo)
//!   table1 table2 table3       scheme table, machine table, classification
//!   fig6a fig6b fig7           throughput comparisons (4-core, 32-core)
//!   fig8                       size tracking + associativity heat maps
//!   fig9 fig10 fig11           sensitivity, cache designs, RRIP variants
//!   modelcheck                 §6.2 idealized-configuration check
//!   perf                       hot-path microbenchmarks -> BENCH_hotpath.json
//!   perf-parallel              bank-sharding scaling sweep -> BENCH_parallel.json
//!   service                    tenant-churn lifecycle run -> BENCH_service.json
//!   security                   prime+probe leak matrix -> BENCH_security.json
//!   all                        everything above, in order
//! ```
//!
//! `--mixes N` sets mixes per workload class (paper: 10; default: 1 for
//! single-machine runtimes), `--instr N` overrides the per-core instruction
//! quota, `--quick` shrinks everything for smoke testing. CSV artifacts are
//! written under `--out` (default `results/`).
//!
//! Runs are keep-going: a panicking step or mix is recorded (see
//! [`vantage_experiments::common`]) and the remaining steps still run; the
//! process prints a failure summary and exits nonzero only at the end.

use std::panic::{catch_unwind, AssertUnwindSafe};

use vantage_experiments::common::{record_failure, take_failures, Options, USAGE};
use vantage_experiments::{
    fig_dynamics, fig_model, fig_sensitivity, fig_throughput, perf, perf_parallel, run, security,
    service, signal, tables,
};

const COMMANDS: &str = "commands: fig1 fig2 fig3 fig5 table1 table2 table3 fig4|overheads \
                        fig6a fig6b fig7 fig8 fig9 fig10 fig11 modelcheck ablation perf \
                        perf-parallel service security run all";

/// Runs one experiment step, isolating panics so that `all` keeps going.
fn step(name: &str, f: impl FnOnce() + std::panic::UnwindSafe) {
    if let Err(p) = catch_unwind(f) {
        let why = if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        };
        record_failure(format!("step {name}"), why);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => {
            eprintln!("usage: vantage-experiments <command> [options]\n{COMMANDS}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if cmd == "--help" || cmd == "help" {
        println!("{COMMANDS}\n{USAGE}");
        return;
    }
    let opts = match Options::try_parse(&rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\nusage: vantage-experiments <command> [options]\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Graceful shutdown: on SIGINT/SIGTERM long-running steps finish their
    // in-flight unit of work (an epoch, a mix), write final checkpoints and
    // partial artifacts, and the process exits `128 + signo` below.
    signal::install();
    let t0 = std::time::Instant::now();
    type Step = (&'static str, fn(&Options));
    let all: &[Step] = &[
        ("fig1", fig_model::fig1),
        ("fig2", fig_model::fig2),
        ("fig3", fig_model::fig3),
        ("fig5", fig_model::fig5),
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("overheads", tables::overheads),
        ("fig6a", fig_throughput::fig6a),
        ("fig6b", fig_throughput::fig6b),
        ("fig7", fig_throughput::fig7),
        ("fig8", fig_dynamics::fig8),
        ("fig9", fig_sensitivity::fig9),
        ("fig10", fig_sensitivity::fig10),
        ("fig11", fig_sensitivity::fig11),
        ("modelcheck", fig_sensitivity::modelcheck),
    ];
    match cmd.as_str() {
        "fig1" => step("fig1", || fig_model::fig1(&opts)),
        "fig2" => step("fig2", || fig_model::fig2(&opts)),
        "fig3" => step("fig3", || fig_model::fig3(&opts)),
        "fig5" => step("fig5", || fig_model::fig5(&opts)),
        "table1" => step("table1", || tables::table1(&opts)),
        "table2" => step("table2", || tables::table2(&opts)),
        "table3" => step("table3", || tables::table3(&opts)),
        "fig4" | "overheads" => step("overheads", || tables::overheads(&opts)),
        "fig6a" => step("fig6a", || fig_throughput::fig6a(&opts)),
        "fig6b" => step("fig6b", || fig_throughput::fig6b(&opts)),
        "fig7" => step("fig7", || fig_throughput::fig7(&opts)),
        "fig8" => step("fig8", || fig_dynamics::fig8(&opts)),
        "fig9" => step("fig9", || fig_sensitivity::fig9(&opts)),
        "fig10" => step("fig10", || fig_sensitivity::fig10(&opts)),
        "fig11" => step("fig11", || fig_sensitivity::fig11(&opts)),
        "modelcheck" => step("modelcheck", || fig_sensitivity::modelcheck(&opts)),
        "ablation" => step("ablation", || fig_sensitivity::ablation(&opts)),
        "perf" => step("perf", || perf::perf(&opts)),
        "perf-parallel" => step("perf-parallel", || perf_parallel::perf_parallel(&opts)),
        "service" => step("service", || service::service(&opts)),
        "security" => step("security", || security::security(&opts)),
        "run" => step("run", || run::run(&opts)),
        "all" => {
            for (name, f) in all {
                step(name, AssertUnwindSafe(|| f(&opts)));
            }
        }
        other => {
            eprintln!("unknown command: {other}; try --help");
            std::process::exit(2);
        }
    }
    eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
    let failures = take_failures();
    if !failures.is_empty() {
        eprintln!("\n{} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  {}: {}", f.what, f.why);
        }
        std::process::exit(1);
    }
    // A signal-interrupted (but otherwise clean) run gets the conventional
    // `128 + signo` status so wrappers can tell "stopped" from "failed".
    if let Some(signo) = signal::pending() {
        eprintln!("[stopped by signal {signo}; state saved]");
        std::process::exit(signal::exit_status(signo));
    }
}
