//! Reproduction harness for the Vantage paper: one subcommand per figure
//! and table of the evaluation, plus `all`.
//!
//! ```text
//! vantage-experiments <command> [--mixes N] [--instr N] [--out DIR] [--seed N] [--quick]
//!
//! commands:
//!   fig1 fig2 fig3 fig5        model figures (analytical + Monte Carlo)
//!   table1 table2 table3       scheme table, machine table, classification
//!   fig6a fig6b fig7           throughput comparisons (4-core, 32-core)
//!   fig8                       size tracking + associativity heat maps
//!   fig9 fig10 fig11           sensitivity, cache designs, RRIP variants
//!   modelcheck                 §6.2 idealized-configuration check
//!   all                        everything above, in order
//! ```
//!
//! `--mixes N` sets mixes per workload class (paper: 10; default: 1 for
//! single-machine runtimes), `--instr N` overrides the per-core instruction
//! quota, `--quick` shrinks everything for smoke testing. CSV artifacts are
//! written under `--out` (default `results/`).

use vantage_experiments::common::Options;
use vantage_experiments::{fig_dynamics, fig_model, fig_sensitivity, fig_throughput, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => {
            eprintln!("usage: vantage-experiments <command> [options]; see --help");
            std::process::exit(2);
        }
    };
    if cmd == "--help" || cmd == "help" {
        println!(
            "commands: fig1 fig2 fig3 fig5 table1 table2 table3 fig4|overheads fig6a fig6b \
             fig7 fig8 fig9 fig10 fig11 modelcheck ablation all\noptions: --mixes N --instr N --out DIR --seed N --quick"
        );
        return;
    }
    let opts = Options::parse(&rest);
    let t0 = std::time::Instant::now();
    match cmd.as_str() {
        "fig1" => fig_model::fig1(&opts),
        "fig2" => fig_model::fig2(&opts),
        "fig3" => fig_model::fig3(&opts),
        "fig5" => fig_model::fig5(&opts),
        "table1" => tables::table1(&opts),
        "table2" => tables::table2(&opts),
        "table3" => tables::table3(&opts),
        "fig4" | "overheads" => tables::overheads(&opts),
        "fig6a" => fig_throughput::fig6a(&opts),
        "fig6b" => fig_throughput::fig6b(&opts),
        "fig7" => fig_throughput::fig7(&opts),
        "fig8" => fig_dynamics::fig8(&opts),
        "fig9" => fig_sensitivity::fig9(&opts),
        "fig10" => fig_sensitivity::fig10(&opts),
        "fig11" => fig_sensitivity::fig11(&opts),
        "modelcheck" => fig_sensitivity::modelcheck(&opts),
        "ablation" => fig_sensitivity::ablation(&opts),
        "all" => {
            fig_model::fig1(&opts);
            fig_model::fig2(&opts);
            fig_model::fig3(&opts);
            fig_model::fig5(&opts);
            tables::table1(&opts);
            tables::table2(&opts);
            tables::table3(&opts);
            tables::overheads(&opts);
            fig_throughput::fig6a(&opts);
            fig_throughput::fig6b(&opts);
            fig_throughput::fig7(&opts);
            fig_dynamics::fig8(&opts);
            fig_sensitivity::fig9(&opts);
            fig_sensitivity::fig10(&opts);
            fig_sensitivity::fig11(&opts);
            fig_sensitivity::modelcheck(&opts);
        }
        other => {
            eprintln!("unknown command: {other}; try --help");
            std::process::exit(2);
        }
    }
    eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
}
