//! Tables 1-3: the qualitative scheme classification, the modeled machine,
//! and the workload classification experiment.

use vantage_sim::{ArrayKind, BaselineRank, SchemeKind, SystemConfig};
use vantage_workloads::{catalog, Category};

use crate::common::{write_csv, Options};

/// Table 1: qualitative classification of partitioning schemes.
pub fn table1(_opts: &Options) {
    println!("== Table 1: classification of partitioning schemes ==");
    let rows = [
        (
            "Way-partitioning",
            "No",
            "No",
            "Yes",
            "Yes",
            "Yes",
            "Low",
            "Yes",
        ),
        (
            "Set-partitioning",
            "No",
            "Yes",
            "No",
            "Yes",
            "Yes",
            "High",
            "Yes",
        ),
        (
            "Page coloring",
            "No",
            "Yes",
            "No",
            "Yes",
            "Yes",
            "None (SW)",
            "Yes",
        ),
        (
            "Ins/repl policy-based",
            "Sometimes",
            "Sometimes",
            "Yes",
            "No",
            "No",
            "Low",
            "Yes",
        ),
        (
            "Vantage",
            "Yes",
            "Yes",
            "Yes",
            "Yes",
            "Yes",
            "Low",
            "No (most)",
        ),
    ];
    println!(
        "  {:<22} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "Scheme", "Scalable", "Assoc.", "Resize", "Strict", "Repl-indep", "HW cost", "Whole$"
    );
    for r in rows {
        println!(
            "  {:<22} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}",
            r.0, r.1, r.2, r.3, r.4, r.5, r.6, r.7
        );
    }
    println!("  (implemented in this repo: way-partitioning, PIPP, Vantage, baselines)");
}

/// Table 2: the modeled large-scale CMP.
pub fn table2(_opts: &Options) {
    println!("== Table 2: modeled systems ==");
    for (name, sys) in [
        ("small-scale (4-core)", SystemConfig::small_scale()),
        ("large-scale (32-core)", SystemConfig::large_scale()),
    ] {
        println!("  {name}:");
        println!(
            "    cores: {} in-order, IPC=1 except on memory accesses",
            sys.cores
        );
        println!(
            "    L1: {} KB, {}-way, per core; L2: {} MB shared, {}-way baseline, {}-cycle",
            sys.l1_lines * 64 / 1024,
            sys.l1_ways,
            sys.l2_lines * 64 / 1024 / 1024,
            sys.l2_ways,
            sys.l2_latency
        );
        println!(
            "    memory: {} channel(s), {}-cycle zero-load latency, {} cycles/line occupancy",
            sys.mem_channels, sys.mem_latency, sys.mem_cycles_per_line
        );
        println!(
            "    UCP: {} UMON sets, repartition every {} cycles; {} instrs/core per run",
            sys.umon_sets, sys.repartition_interval, sys.instructions
        );
    }
}

/// State-overhead breakdown (Fig. 4 / §4.3 "Implementation costs"),
/// reproducing the paper's "~1.5% overall" headline.
pub fn overheads(_opts: &Options) {
    use vantage::overhead::state_overhead;
    println!("== Fig. 4 / §4.3: Vantage state overhead ==");
    println!(
        "  {:<26} {:>8} {:>10} {:>12} {:>10}",
        "configuration", "ID bits", "tag KB", "ctrl bits", "overhead"
    );
    for (name, lines, parts) in [
        ("2MB L2, 4 partitions", 32u64 * 1024, 4u32),
        ("2MB L2, 32 partitions", 32 * 1024, 32),
        ("8MB L2, 32 partitions", 128 * 1024, 32),
        ("8MB L2, 128 partitions", 128 * 1024, 128),
        ("32MB L3, 512 partitions", 512 * 1024, 512),
    ] {
        let o = state_overhead(lines, parts, 64);
        println!(
            "  {:<26} {:>8} {:>10} {:>12} {:>9.2}%",
            name,
            o.partition_id_bits,
            o.added_tag_bits / 8 / 1024,
            o.controller_bits,
            100.0 * o.overhead_fraction
        );
    }
    println!("  paper headline: 8MB + 32 partitions = ~1.5% state overhead overall.");
}

/// Table 3: classify every catalog application from solo runs across cache
/// sizes, reproducing the paper's categorization rule.
pub fn table3(opts: &Options) {
    println!("== Table 3: workload classification from solo runs ==");
    let sizes_kb = [64usize, 256, 1024, 2048, 4096, 8192];
    let mut sys = opts.machine(SystemConfig::small_scale());
    sys.seed = opts.seed;
    // Classification needs several passes over the largest working sets
    // (cache-fitting loops are ~1.6 MB ≈ 26k lines at ~40 APKI).
    sys.instructions = if opts.quick { 1_500_000 } else { 8_000_000 };
    let kind = SchemeKind::Baseline {
        array: ArrayKind::SetAssoc { ways: 16 },
        rank: BaselineRank::Lru,
    };

    let mut rows = Vec::new();
    let mut correct = 0;
    let apps = catalog();
    println!(
        "  {:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {:>10} {:>6}",
        "app", "64KB", "256KB", "1MB", "2MB", "4MB", "8MB", "classified", "want"
    );
    for app in &apps {
        let mut mpki = Vec::new();
        for &kb in &sizes_kb {
            let mut s = sys.clone();
            s.l2_lines = kb * 1024 / 64;
            // Keep geometry valid for 16 ways.
            s.l2_ways = 16.min(s.l2_lines);
            let r = vantage_sim::cmp::run_solo(&s, &kind, app);
            mpki.push(r.mpki[0]);
        }
        let class = classify(&mpki);
        let ok = class == app.category;
        correct += usize::from(ok);
        println!(
            "  {:<18} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}  {:>10} {:>6}{}",
            app.name,
            mpki[0],
            mpki[1],
            mpki[2],
            mpki[3],
            mpki[4],
            mpki[5],
            format!("{:?}", class).chars().take(10).collect::<String>(),
            app.category.code(),
            if ok { "" } else { "  <-- MISMATCH" }
        );
        rows.push(format!(
            "{},{},{},{}",
            app.name,
            app.category.code(),
            class.code(),
            mpki.iter()
                .map(|m| format!("{m:.3}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    println!("  classification agreement: {}/{}", correct, apps.len());
    write_csv(
        &opts.out_dir,
        "table3_classification",
        "app,intended,classified,mpki_64k,mpki_256k,mpki_1m,mpki_2m,mpki_4m,mpki_8m",
        &rows,
    );
}

/// The paper's classification rule (§5): < 5 MPKI everywhere ⇒ insensitive;
/// abrupt drop when approaching capacity (> 1 MB) ⇒ fitting; gradual
/// benefit ⇒ friendly; no benefit ⇒ streaming.
fn classify(mpki: &[f64]) -> Category {
    // Insensitivity is judged at partition-relevant capacities (≥ 256 KB):
    // an app whose working set spills a 64 KB cache but vanishes into any
    // realistic partition has no capacity utility worth managing.
    let max = mpki.iter().skip(1).copied().fold(0.0, f64::max);
    if max < 5.0 {
        return Category::Insensitive;
    }
    let first = mpki[0];
    let last = *mpki.last().expect("non-empty");
    // Abrupt: some step at ≥1MB (index ≥ 2) removes over half the misses.
    let abrupt = mpki
        .windows(2)
        .enumerate()
        .any(|(i, w)| i >= 1 && w[1] < 0.45 * w[0]);
    if abrupt && last < 0.5 * first {
        return Category::Fitting;
    }
    if last < 0.75 * first {
        return Category::Friendly;
    }
    Category::Streaming
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_rule_on_archetypes() {
        // Insensitive: tiny MPKI everywhere.
        assert_eq!(
            classify(&[2.0, 1.0, 0.5, 0.4, 0.4, 0.4]),
            Category::Insensitive
        );
        // Fitting: abrupt knee at 2MB.
        assert_eq!(
            classify(&[40.0, 40.0, 39.0, 5.0, 0.5, 0.5]),
            Category::Fitting
        );
        // Friendly: gradual decline.
        assert_eq!(
            classify(&[40.0, 34.0, 28.0, 22.0, 17.0, 12.0]),
            Category::Friendly
        );
        // Streaming: flat and high.
        assert_eq!(
            classify(&[50.0, 50.0, 49.5, 49.5, 49.0, 49.0]),
            Category::Streaming
        );
    }
}
