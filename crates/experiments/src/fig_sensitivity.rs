//! Sensitivity and variant studies: Fig. 9 (unmanaged-region size), Fig. 10
//! (cache designs), Fig. 11 (RRIP variants) and the §6.2 model check.

use vantage::model::sizing;
use vantage::{DemotionMode, RankMode, VantageConfig};
use vantage_sim::{ArrayKind, BaselineRank, SchemeKind, SystemConfig};
use vantage_workloads::{mixes, Mix};

use crate::common::{geomean, print_summaries, run_comparison_jobs, summarize, write_csv, Options};

fn baseline_sa16() -> SchemeKind {
    SchemeKind::Baseline {
        array: ArrayKind::SetAssoc { ways: 16 },
        rank: BaselineRank::Lru,
    }
}

fn four_core(opts: &Options) -> (SystemConfig, Vec<Mix>) {
    let mut sys = opts.machine(SystemConfig::small_scale());
    sys.seed = opts.seed;
    sys.instructions = opts.instructions_for(&sys);
    let all = mixes(4, opts.mixes_per_class, opts.seed);
    (sys, all)
}

/// Fig. 9: sweep the unmanaged-region size from 5% to 30%: throughput
/// (9a) and the fraction of evictions forced from the managed region (9b),
/// with the model's worst-case `P_ev` markers.
pub fn fig9(opts: &Options) {
    println!("== Fig. 9: sensitivity to the unmanaged region size ==");
    let (sys, all) = four_core(opts);
    println!(
        "  {} mixes × 6 sizes, {} instrs/core",
        all.len(),
        sys.instructions
    );

    let us = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30];
    let schemes: Vec<SchemeKind> = us
        .iter()
        .map(|&u| SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig {
                unmanaged_fraction: u,
                ..VantageConfig::default()
            },
            drrip: false,
        })
        .collect();
    let labels: Vec<String> = us.iter().map(|u| format!("u={:.0}%", u * 100.0)).collect();
    let outcomes = run_comparison_jobs(
        &sys,
        &baseline_sa16(),
        &schemes,
        &all,
        true,
        opts.jobs,
        opts.telemetry.as_deref(),
    );

    let summaries: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(s, l)| summarize(l, &outcomes, s))
        .collect();
    print_summaries("Fig. 9a summary (normalized throughput per u):", &summaries);

    println!("\n  Fig. 9b: fraction of evictions from the managed region:");
    println!(
        "  {:<8} {:>12} {:>12} {:>12} {:>16}",
        "u", "median", "p90", "max", "model worst-case"
    );
    let mut rows = Vec::new();
    for (s, &u) in us.iter().enumerate() {
        let mut fr: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.managed_fraction[s])
            .collect();
        fr.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| fr[((fr.len() - 1) as f64 * p) as usize];
        let model = sizing::worst_case_pev(u, 52, 0.5, 0.1);
        println!(
            "  {:<8} {:>12.2e} {:>12.2e} {:>12.2e} {:>16.2e}",
            labels[s],
            q(0.5),
            q(0.9),
            fr.last().copied().unwrap_or(0.0),
            model
        );
        rows.push(format!(
            "{u},{:.3e},{:.3e},{:.3e},{:.3e}",
            q(0.5),
            q(0.9),
            fr.last().copied().unwrap_or(0.0),
            model
        ));
    }
    write_csv(
        &opts.out_dir,
        "fig9b_managed_evictions",
        "u,median,p90,max,model_pev",
        &rows,
    );
    println!(
        "  paper shape: throughput is largely insensitive (u = 5% best under UCP);\n  \
         managed-region evictions fall orders of magnitude as u grows."
    );
}

/// Fig. 10: Vantage over different cache designs, each tuned as in the
/// paper (u = 5% for Z4/52 and SA64; u = 10% for Z4/16 and SA16).
pub fn fig10(opts: &Options) {
    println!("== Fig. 10: Vantage on different cache designs ==");
    let (sys, all) = four_core(opts);
    println!(
        "  {} mixes × 4 designs, {} instrs/core",
        all.len(),
        sys.instructions
    );

    let design = |array: ArrayKind, u: f64| SchemeKind::Vantage {
        array,
        cfg: VantageConfig {
            unmanaged_fraction: u,
            ..VantageConfig::default()
        },
        drrip: false,
    };
    let schemes = vec![
        design(ArrayKind::Z4_52, 0.05),
        design(ArrayKind::SetAssoc { ways: 64 }, 0.05),
        design(ArrayKind::Z4_16, 0.10),
        design(ArrayKind::SetAssoc { ways: 16 }, 0.10),
    ];
    let labels = [
        "Vantage-Z4/52".to_string(),
        "Vantage-SA64".to_string(),
        "Vantage-Z4/16".to_string(),
        "Vantage-SA16".to_string(),
    ];
    let outcomes = run_comparison_jobs(
        &sys,
        &baseline_sa16(),
        &schemes,
        &all,
        true,
        opts.jobs,
        opts.telemetry.as_deref(),
    );
    let summaries: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(s, l)| summarize(l, &outcomes, s))
        .collect();
    print_summaries("Fig. 10 summary (normalized throughput):", &summaries);
    println!(
        "  paper shape: Z4/52 ≈ SA64 > Z4/16 > SA16, degrading gracefully — Vantage is\n  \
         usable on plain hashed set-associative caches."
    );

    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{},{}",
                o.mix,
                (0..labels.len())
                    .map(|s| format!("{:.4}", o.normalized(s)))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect();
    write_csv(
        &opts.out_dir,
        "fig10_designs",
        &format!("mix,{}", labels.join(",")),
        &rows,
    );
}

/// Fig. 11: RRIP replacement variants with and without Vantage.
pub fn fig11(opts: &Options) {
    println!("== Fig. 11: RRIP variants and Vantage ==");
    let (sys, all) = four_core(opts);
    println!(
        "  {} mixes × 5 configurations, {} instrs/core",
        all.len(),
        sys.instructions
    );

    let schemes = vec![
        SchemeKind::Baseline {
            array: ArrayKind::Z4_52,
            rank: BaselineRank::Srrip,
        },
        SchemeKind::Baseline {
            array: ArrayKind::Z4_52,
            rank: BaselineRank::Drrip,
        },
        SchemeKind::Baseline {
            array: ArrayKind::Z4_52,
            rank: BaselineRank::TaDrrip,
        },
        SchemeKind::vantage_paper(),
        SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig {
                rank: RankMode::Rrip { bits: 3 },
                ..VantageConfig::default()
            },
            drrip: true,
        },
    ];
    let labels = vec![
        "SRRIP-Z4/52".to_string(),
        "DRRIP-Z4/52".to_string(),
        "TA-DRRIP-Z4/52".to_string(),
        "Vantage-LRU-Z4/52".to_string(),
        "Vantage-DRRIP-Z4/52".to_string(),
    ];
    let outcomes = run_comparison_jobs(
        &sys,
        &baseline_sa16(),
        &schemes,
        &all,
        true,
        opts.jobs,
        opts.telemetry.as_deref(),
    );
    let summaries: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(s, l)| summarize(l, &outcomes, s))
        .collect();
    print_summaries(
        "Fig. 11 summary (normalized throughput vs LRU-SA16):",
        &summaries,
    );
    println!(
        "  paper shape: Vantage-LRU outperforms all stand-alone RRIP variants;\n  \
         Vantage-DRRIP adds a small further gain (6.2% -> 6.8% geomean in the paper)."
    );

    let (header, rows) = crate::common::sorted_curves_csv(&outcomes, &labels);
    write_csv(&opts.out_dir, "fig11_rrip", &header, &rows);
}

/// Design-choice ablations (DESIGN.md §6): demote-on-average vs
/// demote-exactly-one (the Fig. 2b/2c distinction driven end-to-end) and
/// churn throttling (§3.4 option 2) vs the default borrow-to-MSS design.
pub fn ablation(opts: &Options) {
    println!("== Ablations: demotion policy and churn throttling ==");
    let (sys, all) = four_core(opts);
    let subset: Vec<Mix> = all
        .into_iter()
        .take(if opts.quick { 4 } else { 12 })
        .collect();

    let v = |cfg: VantageConfig| SchemeKind::Vantage {
        array: ArrayKind::Z4_52,
        cfg,
        drrip: false,
    };
    let schemes = vec![
        v(VantageConfig::default()),
        v(VantageConfig {
            demotion_mode: DemotionMode::ExactlyOne,
            ..VantageConfig::default()
        }),
        v(VantageConfig {
            churn_throttling: true,
            ..VantageConfig::default()
        }),
    ];
    let labels = [
        "setpoint (default)".to_string(),
        "exactly-one".to_string(),
        "churn-throttled".to_string(),
    ];
    let outcomes = run_comparison_jobs(
        &sys,
        &baseline_sa16(),
        &schemes,
        &subset,
        true,
        opts.jobs,
        opts.telemetry.as_deref(),
    );
    let summaries: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(s, l)| summarize(l, &outcomes, s))
        .collect();
    print_summaries("Ablation summary (normalized throughput):", &summaries);
    println!(
        "  notes: exactly-one can edge out the setpoint controller on pure throughput\n  \
         (it rate-matches demotions perfectly) but requires exact rank knowledge the\n  \
         hardware does not have, and it forfeits the soft-pinning tail guarantee of\n  \
         Fig. 2 (see the exactly_one unit test). Throttling trades high-churn\n  \
         partitions' hit rates for tighter sizing."
    );
    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{},{}",
                o.mix,
                (0..labels.len())
                    .map(|s| format!("{:.4}", o.normalized(s)))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect();
    write_csv(
        &opts.out_dir,
        "ablation",
        &format!("mix,{}", labels.join(",")),
        &rows,
    );
}

/// §6.2 model check: the practical setpoint controller vs (a) perfect
/// aperture knowledge and (b) a truly-random-candidates array. The paper
/// reports all three "perform exactly" alike.
pub fn modelcheck(opts: &Options) {
    println!("== §6.2 model check: idealized configurations ==");
    let (sys, all) = four_core(opts);
    // A subset is plenty: the claim is per-mix equality, not aggregates.
    let subset: Vec<Mix> = all
        .into_iter()
        .take(if opts.quick { 4 } else { 12 })
        .collect();

    let schemes = vec![
        SchemeKind::vantage_paper(),
        SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig {
                demotion_mode: DemotionMode::PerfectAperture,
                ..VantageConfig::default()
            },
            drrip: false,
        },
        SchemeKind::Vantage {
            array: ArrayKind::Random { candidates: 52 },
            cfg: VantageConfig::default(),
            drrip: false,
        },
    ];
    let labels = [
        "practical".to_string(),
        "perfect-aperture".to_string(),
        "random-array".to_string(),
    ];
    let outcomes = run_comparison_jobs(
        &sys,
        &baseline_sa16(),
        &schemes,
        &subset,
        true,
        opts.jobs,
        opts.telemetry.as_deref(),
    );

    println!(
        "  {:<8} {:>12} {:>18} {:>14}",
        "mix", "practical", "perfect-aperture", "random-array"
    );
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for o in &outcomes {
        println!(
            "  {:<8} {:>11.3}x {:>17.3}x {:>13.3}x",
            o.mix,
            o.normalized(0),
            o.normalized(1),
            o.normalized(2)
        );
        ratios.push(o.normalized(1) / o.normalized(0));
        ratios.push(o.normalized(2) / o.normalized(0));
        rows.push(format!(
            "{},{:.4},{:.4},{:.4}",
            o.mix,
            o.normalized(0),
            o.normalized(1),
            o.normalized(2)
        ));
    }
    let g = geomean(ratios.iter().copied());
    println!("  geomean |idealized / practical| = {g:.4} (paper: identical)");
    write_csv(
        &opts.out_dir,
        "modelcheck",
        &format!("mix,{}", labels.join(",")),
        &rows,
    );
}
