//! `security` subcommand: measured prime+probe leakage across schemes
//! and share modes.
//!
//! The paper argues partitioning for performance isolation; the same
//! mechanism is routinely proposed as a side-channel defense. This
//! harness measures — rather than asserts — how much a cache-occupancy
//! channel actually carries on each scheme, and how the ownership
//! layer's [`ShareMode`] knob changes the answer when attacker and
//! victim *share* data:
//!
//! * An attacker primes a probe set in the shared region
//!   ([`PrimeProbe`] geometry from `vantage-workloads`), the victim
//!   either touches it and thrashes its own partition (`secret = 1`)
//!   or idles (`secret = 0`), and the attacker counts probe misses.
//! * Over many trials the per-trial miss counts are thresholded into a
//!   binary observable at the threshold maximizing mutual information
//!   ([`binary_channel_bits`]) — an attacker-optimal channel-capacity
//!   estimate, reported in bits/trial and scaled to bits/second at a
//!   nominal [`NOMINAL_ACCESS_RATE`] accesses/second.
//! * The matrix covers an unpartitioned baseline (the reference leak),
//!   way-partitioning, and Vantage, each under every [`ShareMode`];
//!   Vantage additionally under tenant-churn bursts and register/tag
//!   fault injection, the two disturbances the recovery machinery
//!   exists for.
//!
//! Under `Adopt`, partitioning alone does *not* close the channel: the
//! victim's touch re-tags the shared lines into its own partition,
//! where its replacement pressure evicts them — an ownership channel
//! that `Pin` and `Replicate` block. The recorded gate asserts exactly
//! that: Vantage+`Pin` must leak at most [`MAX_LEAK_RATIO`] of the
//! unpartitioned reference. Results go to `<out>/security_leak.csv`
//! and `BENCH_security.json` at the repo root; CI re-asserts the gate
//! from the JSON artifact.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use vantage::{FaultKind, FaultPlan, VantageConfig, VantageLlc};
use vantage_cache::hash::mix64;
use vantage_cache::{SetAssocArray, ShareMode, ZArray};
use vantage_partitioning::{
    AccessOutcome, AccessRequest, BaselineLlc, Llc, PartitionId, PartitionSpec, RankPolicy,
    WayPartLlc,
};
use vantage_workloads::{binary_channel_bits, count_misses, PrimeProbe};

use vantage_bench::{append_entry, BenchRecord};

use crate::common::{open_telemetry, record_failure, write_csv, Options};

/// Nominal LLC access rate used to scale bits/trial into bits/second.
pub const NOMINAL_ACCESS_RATE: f64 = 1.0e9;

/// The gate: Vantage+`Pin` may leak at most this fraction of the
/// unpartitioned reference channel.
pub const MAX_LEAK_RATIO: f64 = 0.01;

/// Meaningfulness floor on the reference channel (bits/trial): if the
/// unpartitioned cache doesn't leak at least this much, the harness
/// geometry is broken and the ratio gate would pass vacuously.
pub const MIN_REFERENCE_LEAK: f64 = 0.1;

/// Salt for the per-trial secret bit draw.
const SECRET_SALT: u64 = 0x5EC2E7;

/// Cache lines in the measured machine.
const FRAMES: usize = 4096;

/// Measured partitions (attacker = 0, victim = 1).
const PARTS: usize = 2;

/// Trials per matrix cell.
fn trials_for(opts: &Options) -> u64 {
    if opts.quick {
        96
    } else {
        384
    }
}

/// One measured channel: the best-threshold 2×2 contingency table and
/// its capacity estimate.
#[derive(Clone, Debug)]
pub struct ChannelMeasurement {
    /// Trials run.
    pub trials: u64,
    /// Trials whose secret bit was set.
    pub secret_trials: u64,
    /// Total accesses issued (prime + victim + perturbation + probe).
    pub accesses: u64,
    /// Per-trial `(secret, probe misses)` samples, in trial order.
    pub samples: Vec<(bool, u64)>,
    /// Miss-count threshold maximizing mutual information.
    pub threshold: u64,
    /// Best-threshold table `[n00, n01, n10, n11]`
    /// (`n[secret][observed]`).
    pub table: [u64; 4],
    /// Channel capacity estimate at that threshold, bits/trial.
    pub bits_per_trial: f64,
}

impl ChannelMeasurement {
    /// Accesses issued per trial, on average.
    pub fn accesses_per_trial(&self) -> f64 {
        self.accesses as f64 / self.trials.max(1) as f64
    }

    /// Leak rate in bits/second at [`NOMINAL_ACCESS_RATE`].
    pub fn bits_per_sec(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.bits_per_trial * NOMINAL_ACCESS_RATE / self.accesses_per_trial()
    }

    /// FNV-1a digest of the `(secret, misses)` trial sequence — the
    /// engine-equivalence fingerprint (identical across
    /// Serial/Batched/Pipelined engines for the same machine and seed).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u64| {
            for byte in b.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for &(secret, misses) in &self.samples {
            eat(secret as u64);
            eat(misses);
        }
        h
    }
}

/// Runs `trials` prime+probe trials against `llc` and estimates the
/// channel. `perturb` runs between the victim phase and the probe of
/// every trial (tenant churn, background noise; pass a no-op closure
/// for a clean run) and returns the number of accesses it issued.
///
/// Exposed for the engine-equivalence integration test; the subcommand
/// drives it through [`security`].
pub fn measure_channel(
    llc: &mut dyn Llc,
    pp: &PrimeProbe,
    trials: u64,
    mut perturb: impl FnMut(&mut dyn Llc, u64) -> u64,
) -> ChannelMeasurement {
    let mut reqs: Vec<AccessRequest> = Vec::new();
    let mut outs: Vec<AccessOutcome> = Vec::new();
    let mut samples = Vec::with_capacity(trials as usize);
    let mut accesses = 0u64;
    let mut secret_trials = 0u64;
    for trial in 0..trials {
        reqs.clear();
        outs.clear();
        pp.prime(&mut reqs);
        llc.access_batch(&reqs, &mut outs);
        accesses += reqs.len() as u64;

        let secret = mix64(pp.seed ^ SECRET_SALT ^ trial) & 1 == 1;
        secret_trials += u64::from(secret);
        reqs.clear();
        pp.victim_act(secret, trial, &mut reqs);
        if !reqs.is_empty() {
            outs.clear();
            llc.access_batch(&reqs, &mut outs);
            accesses += reqs.len() as u64;
        }

        accesses += perturb(llc, trial);

        reqs.clear();
        outs.clear();
        pp.probe(&mut reqs);
        llc.access_batch(&reqs, &mut outs);
        accesses += reqs.len() as u64;
        samples.push((secret, count_misses(&outs)));
    }
    let (threshold, table, bits_per_trial) = best_threshold(&samples);
    ChannelMeasurement {
        trials,
        secret_trials,
        accesses,
        samples,
        threshold,
        table,
        bits_per_trial,
    }
}

/// Scans every binary split of the observed miss counts and returns the
/// `(threshold, table, bits)` maximizing mutual information, where a
/// trial observes `1` iff its miss count exceeds the threshold.
fn best_threshold(samples: &[(bool, u64)]) -> (u64, [u64; 4], f64) {
    let mut cuts: Vec<u64> = samples.iter().map(|&(_, m)| m).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut best = (0u64, [0u64; 4], -1.0f64);
    for &thr in &cuts {
        let mut t = [0u64; 4];
        for &(secret, misses) in samples {
            t[2 * usize::from(secret) + usize::from(misses > thr)] += 1;
        }
        let bits = binary_channel_bits(t[0], t[1], t[2], t[3]);
        if bits > best.2 {
            best = (thr, t, bits);
        }
    }
    if best.2 < 0.0 {
        best.2 = 0.0;
    }
    best
}

/// One row of the measured matrix.
struct MatrixRow {
    scheme: &'static str,
    mode: ShareMode,
    condition: &'static str,
    m: ChannelMeasurement,
}

/// Builds the unpartitioned reference machine (hashed 16-way LRU,
/// [`FRAMES`] lines, [`PARTS`] requestors, no capacity enforcement).
fn build_unpartitioned(seed: u64) -> BaselineLlc {
    BaselineLlc::try_new(
        Box::new(SetAssocArray::hashed(FRAMES, 16, seed)),
        PARTS,
        RankPolicy::Lru,
    )
    .expect("valid baseline config")
}

/// Builds the way-partitioned machine (16 ways split evenly).
fn build_waypart(seed: u64, mode: ShareMode) -> WayPartLlc {
    let mut llc = WayPartLlc::try_new(FRAMES, 16, PARTS, seed).expect("valid waypart config");
    assert!(llc.set_share_mode(mode), "waypart supports every mode");
    llc
}

/// Builds the Vantage machine (Z4/52 array, even quarter-capacity
/// targets so the victim's streaming sweep overruns its share), with an
/// optional fault plan.
fn build_vantage(seed: u64, mode: ShareMode, faults: bool) -> VantageLlc {
    let mut llc = VantageLlc::try_new(
        Box::new(ZArray::new(FRAMES, 4, 16, seed)),
        PARTS,
        VantageConfig::default(),
        seed,
    )
    .expect("valid Vantage config");
    llc.set_targets(&[(FRAMES / 4) as u64; PARTS]);
    assert!(llc.set_share_mode(mode), "vantage supports every mode");
    if faults {
        llc.set_fault_plan(Some(FaultPlan::new(
            seed ^ 0xFA_17,
            2_000,
            &[
                FaultKind::TagPart,
                FaultKind::TagTs,
                FaultKind::ActualSize,
                FaultKind::Setpoint,
                FaultKind::Meters,
            ],
        )));
        llc.set_scrub_period(Some(8_192));
    }
    llc
}

/// The measured prime+probe geometry: the default probe set, with the
/// victim's active-trial sweep sized to wrap the whole [`FRAMES`]-line
/// machine — on the unpartitioned reference even MRU probe lines must
/// be evicted, or the occupancy channel under test never fires.
pub fn probe_geometry(seed: u64) -> PrimeProbe {
    let mut pp = PrimeProbe::new(PartitionId::from_index(0), PartitionId::from_index(1), seed);
    pp.victim_accesses = 2 * FRAMES;
    pp
}

/// A no-op perturbation (the `clean` condition).
fn no_perturb(_: &mut dyn Llc, _: u64) -> u64 {
    0
}

/// The `churn` condition: every trial, two short-lived tenants arrive,
/// stream a burst of private traffic, and depart — the admission/drain
/// path runs concurrently with the measured channel.
fn churn_perturb(llc: &mut dyn Llc, trial: u64) -> u64 {
    let mut reqs: Vec<AccessRequest> = Vec::new();
    let mut outs: Vec<AccessOutcome> = Vec::new();
    let mut slots = Vec::new();
    for k in 0..2u64 {
        match llc.create_partition(PartitionSpec::with_target(64)) {
            Ok(slot) => slots.push(slot),
            Err(e) => record_failure("security churn", format!("create_partition: {e}")),
        }
        if let Some(&slot) = slots.last() {
            let base = mix64(trial ^ (k << 32) ^ 0xC0_FFEE);
            for n in 0..256u64 {
                reqs.push(AccessRequest::read(
                    slot,
                    vantage_workloads::sharing::private_line(
                        slot.raw(),
                        (base.wrapping_add(n)) % (1 << 24),
                    ),
                ));
            }
        }
    }
    llc.access_batch(&reqs, &mut outs);
    for slot in slots {
        if let Err(e) = llc.destroy_partition(slot) {
            record_failure("security churn", format!("destroy_partition: {e}"));
        }
    }
    reqs.len() as u64
}

/// Runs the full measurement matrix.
fn run_matrix(opts: &Options) -> Vec<MatrixRow> {
    let trials = trials_for(opts);
    let seed = opts.seed;
    let pp = probe_geometry(seed);
    let mut rows = Vec::new();
    let mut push =
        |scheme: &'static str, mode: ShareMode, condition: &'static str, m: ChannelMeasurement| {
            eprintln!(
            "  {scheme:>8} {:>9} {condition:>6}: {:.4} bits/trial ({:.3e} bits/s), thr {} misses",
            mode.label(),
            m.bits_per_trial,
            m.bits_per_sec(),
            m.threshold,
        );
            rows.push(MatrixRow {
                scheme,
                mode,
                condition,
                m,
            });
        };

    // Unpartitioned reference: the share mode is irrelevant to an
    // unenforced cache's occupancy channel, so one row suffices.
    let mut llc = build_unpartitioned(seed);
    push(
        "unpart",
        ShareMode::Adopt,
        "clean",
        measure_channel(&mut llc, &pp, trials, no_perturb),
    );

    for &mode in &ShareMode::ALL {
        let mut llc = build_waypart(seed, mode);
        push(
            "waypart",
            mode,
            "clean",
            measure_channel(&mut llc, &pp, trials, no_perturb),
        );
    }

    for &mode in &ShareMode::ALL {
        // The clean-condition Vantage machine carries the telemetry trace
        // (SharedHit / OwnershipTransfer / Replica events per mode).
        let mut llc = build_vantage(seed, mode, false);
        if let Some(base) = &opts.telemetry {
            if let Some(t) = open_telemetry(base, &format!("security-{}", mode.label())) {
                llc.set_telemetry(t);
            }
        }
        let m = measure_channel(&mut llc, &pp, trials, no_perturb);
        if let Some(mut t) = llc.take_telemetry() {
            t.flush();
            if let Some(e) = t.io_error() {
                record_failure("security telemetry", e);
            }
        }
        push("vantage", mode, "clean", m);

        let mut llc = build_vantage(seed, mode, false);
        push(
            "vantage",
            mode,
            "churn",
            measure_channel(&mut llc, &pp, trials, churn_perturb),
        );

        let mut llc = build_vantage(seed, mode, true);
        push(
            "vantage",
            mode,
            "faults",
            measure_channel(&mut llc, &pp, trials, no_perturb),
        );
    }
    rows
}

/// Finds the matrix cell `(scheme, mode, "clean")`.
fn cell<'a>(rows: &'a [MatrixRow], scheme: &str, mode: ShareMode) -> Option<&'a MatrixRow> {
    rows.iter()
        .find(|r| r.scheme == scheme && r.mode == mode && r.condition == "clean")
}

/// Renders one `BENCH_security.json` entry.
fn render_entry(opts: &Options, rows: &[MatrixRow], gate: &GateOutcome, wall_s: f64) -> String {
    let mut rec = BenchRecord::new(opts.quick, opts.seed);
    let s = rec.body_mut();
    let _ = writeln!(
        s,
        "    \"machine\": {{\"frames\": {FRAMES}, \"parts\": {PARTS}, \
         \"trials\": {}, \"nominal_access_rate\": {NOMINAL_ACCESS_RATE:.1}, \
         \"wall_s\": {wall_s:.3}}},",
        trials_for(opts),
    );
    let _ = writeln!(s, "    \"channels\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{\"scheme\": \"{}\", \"mode\": \"{}\", \"condition\": \"{}\", \
             \"bits_per_trial\": {:.6}, \"bits_per_sec\": {:.3}, \
             \"threshold\": {}, \"table\": [{}, {}, {}, {}], \
             \"accesses_per_trial\": {:.1}}}{}",
            r.scheme,
            r.mode.label(),
            r.condition,
            r.m.bits_per_trial,
            r.m.bits_per_sec(),
            r.m.threshold,
            r.m.table[0],
            r.m.table[1],
            r.m.table[2],
            r.m.table[3],
            r.m.accesses_per_trial(),
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = write!(
        s,
        "    \"gate\": {{\"reference_bits_per_trial\": {:.6}, \
         \"vantage_pin_bits_per_trial\": {:.6}, \"ratio\": {:.6}, \
         \"max_ratio\": {MAX_LEAK_RATIO}, \"min_reference\": {MIN_REFERENCE_LEAK}, \
         \"pass\": {}}}",
        gate.reference, gate.pin, gate.ratio, gate.pass,
    );
    rec.finish()
}

/// The gate verdict recorded alongside the matrix.
struct GateOutcome {
    reference: f64,
    pin: f64,
    ratio: f64,
    pass: bool,
}

/// Evaluates the leak-rate gate: the unpartitioned channel must be a
/// real channel, and Vantage+`Pin` must carry at most
/// [`MAX_LEAK_RATIO`] of it.
fn evaluate_gate(rows: &[MatrixRow]) -> GateOutcome {
    let reference = cell(rows, "unpart", ShareMode::Adopt).map_or(0.0, |r| r.m.bits_per_trial);
    let pin = cell(rows, "vantage", ShareMode::Pin).map_or(f64::INFINITY, |r| r.m.bits_per_trial);
    let ratio = if reference > 0.0 {
        pin / reference
    } else {
        f64::INFINITY
    };
    let pass = reference >= MIN_REFERENCE_LEAK && ratio <= MAX_LEAK_RATIO;
    GateOutcome {
        reference,
        pin,
        ratio,
        pass,
    }
}

/// The `security` subcommand (see the [module docs](self)), writing
/// the record to `BENCH_security.json` in the current directory.
pub fn security(opts: &Options) {
    security_to(opts, Path::new("BENCH_security.json"));
}

/// [`security`] writing the record to an explicit path (test support).
pub fn security_to(opts: &Options, path: &Path) {
    println!(
        "security: prime+probe leak matrix ({} scale, {} trials/cell)",
        if opts.quick { "quick" } else { "full" },
        trials_for(opts),
    );
    let t0 = Instant::now();
    let rows = run_matrix(opts);
    let wall_s = t0.elapsed().as_secs_f64();
    let gate = evaluate_gate(&rows);
    eprintln!(
        "  gate: reference {:.4} bits/trial, vantage+pin {:.4} ({}{:.4}x, max {MAX_LEAK_RATIO}) — {}",
        gate.reference,
        gate.pin,
        if gate.ratio.is_finite() { "" } else { ">" },
        if gate.ratio.is_finite() { gate.ratio } else { 0.0 },
        if gate.pass { "pass" } else { "FAIL" },
    );
    if gate.reference < MIN_REFERENCE_LEAK {
        record_failure(
            "security reference channel",
            format!(
                "unpartitioned leak {:.4} bits/trial below the {MIN_REFERENCE_LEAK} \
                 meaningfulness floor — harness geometry is not exercising the channel",
                gate.reference
            ),
        );
    } else if !gate.pass {
        record_failure(
            "security leak gate",
            format!(
                "vantage+pin leaks {:.4} bits/trial vs reference {:.4} \
                 (ratio {:.4} > max {MAX_LEAK_RATIO})",
                gate.pin, gate.reference, gate.ratio
            ),
        );
    }
    write_csv(
        &opts.out_dir,
        "security_leak",
        "scheme,mode,condition,trials,secret_trials,threshold,n00,n01,n10,n11,\
         bits_per_trial,accesses_per_trial,bits_per_sec",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{:.6},{:.1},{:.3}",
                    r.scheme,
                    r.mode.label(),
                    r.condition,
                    r.m.trials,
                    r.m.secret_trials,
                    r.m.threshold,
                    r.m.table[0],
                    r.m.table[1],
                    r.m.table[2],
                    r.m.table[3],
                    r.m.bits_per_trial,
                    r.m.accesses_per_trial(),
                    r.m.bits_per_sec(),
                )
            })
            .collect::<Vec<_>>(),
    );
    let entry = render_entry(opts, &rows, &gate, wall_s);
    match append_entry(path, &entry) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => record_failure(path.display().to_string(), e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(seed: u64) -> PrimeProbe {
        probe_geometry(seed)
    }

    #[test]
    fn unpartitioned_reference_leaks() {
        let mut llc = build_unpartitioned(11);
        let m = measure_channel(&mut llc, &pp(11), 48, no_perturb);
        assert!(
            m.bits_per_trial >= MIN_REFERENCE_LEAK,
            "occupancy channel must be real: {} bits/trial",
            m.bits_per_trial
        );
    }

    #[test]
    fn vantage_pin_closes_the_channel() {
        let mut llc = build_vantage(11, ShareMode::Pin, false);
        let m = measure_channel(&mut llc, &pp(11), 48, no_perturb);
        assert!(
            m.bits_per_trial <= 0.02,
            "pin must block both channels: {} bits/trial",
            m.bits_per_trial
        );
    }

    #[test]
    fn vantage_adopt_keeps_the_ownership_channel_open() {
        let mut llc = build_vantage(11, ShareMode::Adopt, false);
        let m = measure_channel(&mut llc, &pp(11), 48, no_perturb);
        let mut pinned = build_vantage(11, ShareMode::Pin, false);
        let p = measure_channel(&mut pinned, &pp(11), 48, no_perturb);
        assert!(
            m.bits_per_trial > p.bits_per_trial + 0.1,
            "adopt ({}) should leak well above pin ({})",
            m.bits_per_trial,
            p.bits_per_trial
        );
    }

    #[test]
    fn churn_perturbation_runs_cleanly_on_vantage() {
        let mut llc = build_vantage(11, ShareMode::Replicate, false);
        let m = measure_channel(&mut llc, &pp(11), 8, churn_perturb);
        assert_eq!(m.trials, 8);
        assert!(m.accesses > 8 * 512, "churn traffic was issued");
    }

    #[test]
    fn best_threshold_finds_the_separating_cut() {
        let samples: Vec<(bool, u64)> = (0..40)
            .map(|i| (i % 2 == 1, if i % 2 == 1 { 200 } else { 3 }))
            .collect();
        let (thr, table, bits) = best_threshold(&samples);
        assert!((3..200).contains(&thr));
        assert_eq!(table, [20, 0, 0, 20]);
        assert!((bits - 1.0).abs() < 1e-12);
    }

    #[test]
    fn digest_is_deterministic() {
        let mut a = build_vantage(5, ShareMode::Adopt, false);
        let mut b = build_vantage(5, ShareMode::Adopt, false);
        let ma = measure_channel(&mut a, &pp(5), 12, no_perturb);
        let mb = measure_channel(&mut b, &pp(5), 12, no_perturb);
        assert_eq!(ma.digest(), mb.digest());
    }
}
